# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_threading[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_agas[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_parcel[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
