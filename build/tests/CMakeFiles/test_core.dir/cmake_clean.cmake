file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_algorithm1_property.cpp.o"
  "CMakeFiles/test_core.dir/core/test_algorithm1_property.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_coalescing_counters.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coalescing_counters.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_coalescing_handler.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coalescing_handler.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_coalescing_registry.cpp.o"
  "CMakeFiles/test_core.dir/core/test_coalescing_registry.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
