file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_config.cpp.o"
  "CMakeFiles/test_common.dir/common/test_config.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o"
  "CMakeFiles/test_common.dir/common/test_histogram.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_mpmc_queue.cpp.o"
  "CMakeFiles/test_common.dir/common/test_mpmc_queue.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_spinlock.cpp.o"
  "CMakeFiles/test_common.dir/common/test_spinlock.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stopwatch.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stopwatch.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_unique_function.cpp.o"
  "CMakeFiles/test_common.dir/common/test_unique_function.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
