file(REMOVE_RECURSE
  "CMakeFiles/test_parcel.dir/parcel/test_action.cpp.o"
  "CMakeFiles/test_parcel.dir/parcel/test_action.cpp.o.d"
  "CMakeFiles/test_parcel.dir/parcel/test_parcel.cpp.o"
  "CMakeFiles/test_parcel.dir/parcel/test_parcel.cpp.o.d"
  "CMakeFiles/test_parcel.dir/parcel/test_parcelhandler.cpp.o"
  "CMakeFiles/test_parcel.dir/parcel/test_parcelhandler.cpp.o.d"
  "test_parcel"
  "test_parcel.pdb"
  "test_parcel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
