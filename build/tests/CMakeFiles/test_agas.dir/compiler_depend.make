# Empty compiler generated dependencies file for test_agas.
# This may be replaced when dependencies are built.
