file(REMOVE_RECURSE
  "CMakeFiles/test_agas.dir/agas/test_address_space.cpp.o"
  "CMakeFiles/test_agas.dir/agas/test_address_space.cpp.o.d"
  "CMakeFiles/test_agas.dir/agas/test_gid.cpp.o"
  "CMakeFiles/test_agas.dir/agas/test_gid.cpp.o.d"
  "test_agas"
  "test_agas.pdb"
  "test_agas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
