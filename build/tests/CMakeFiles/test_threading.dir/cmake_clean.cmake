file(REMOVE_RECURSE
  "CMakeFiles/test_threading.dir/threading/test_future.cpp.o"
  "CMakeFiles/test_threading.dir/threading/test_future.cpp.o.d"
  "CMakeFiles/test_threading.dir/threading/test_instrumentation.cpp.o"
  "CMakeFiles/test_threading.dir/threading/test_instrumentation.cpp.o.d"
  "CMakeFiles/test_threading.dir/threading/test_scheduler.cpp.o"
  "CMakeFiles/test_threading.dir/threading/test_scheduler.cpp.o.d"
  "test_threading"
  "test_threading.pdb"
  "test_threading[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
