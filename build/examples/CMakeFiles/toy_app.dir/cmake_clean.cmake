file(REMOVE_RECURSE
  "CMakeFiles/toy_app.dir/toy_app.cpp.o"
  "CMakeFiles/toy_app.dir/toy_app.cpp.o.d"
  "toy_app"
  "toy_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toy_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
