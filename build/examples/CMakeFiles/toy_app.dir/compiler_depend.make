# Empty compiler generated dependencies file for toy_app.
# This may be replaced when dependencies are built.
