
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coal/collectives/CMakeFiles/coal_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/apps/CMakeFiles/coal_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/adaptive/CMakeFiles/coal_adaptive.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/runtime/CMakeFiles/coal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/perf/CMakeFiles/coal_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/core/CMakeFiles/coal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/parcel/CMakeFiles/coal_parcel.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/threading/CMakeFiles/coal_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/agas/CMakeFiles/coal_agas.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/net/CMakeFiles/coal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/timing/CMakeFiles/coal_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/serialization/CMakeFiles/coal_serialization.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/trace/CMakeFiles/coal_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/common/CMakeFiles/coal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
