file(REMOVE_RECURSE
  "CMakeFiles/parquet_app.dir/parquet_app.cpp.o"
  "CMakeFiles/parquet_app.dir/parquet_app.cpp.o.d"
  "parquet_app"
  "parquet_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parquet_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
