# Empty compiler generated dependencies file for parquet_app.
# This may be replaced when dependencies are built.
