file(REMOVE_RECURSE
  "CMakeFiles/trace_tour.dir/trace_tour.cpp.o"
  "CMakeFiles/trace_tour.dir/trace_tour.cpp.o.d"
  "trace_tour"
  "trace_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
