# Empty compiler generated dependencies file for trace_tour.
# This may be replaced when dependencies are built.
