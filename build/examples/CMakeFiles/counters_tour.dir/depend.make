# Empty dependencies file for counters_tour.
# This may be replaced when dependencies are built.
