file(REMOVE_RECURSE
  "CMakeFiles/counters_tour.dir/counters_tour.cpp.o"
  "CMakeFiles/counters_tour.dir/counters_tour.cpp.o.d"
  "counters_tour"
  "counters_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
