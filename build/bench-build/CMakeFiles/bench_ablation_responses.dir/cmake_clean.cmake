file(REMOVE_RECURSE
  "../bench/bench_ablation_responses"
  "../bench/bench_ablation_responses.pdb"
  "CMakeFiles/bench_ablation_responses.dir/bench_ablation_responses.cpp.o"
  "CMakeFiles/bench_ablation_responses.dir/bench_ablation_responses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_responses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
