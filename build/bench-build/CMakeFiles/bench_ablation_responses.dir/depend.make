# Empty dependencies file for bench_ablation_responses.
# This may be replaced when dependencies are built.
