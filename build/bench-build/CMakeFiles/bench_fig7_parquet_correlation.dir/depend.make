# Empty dependencies file for bench_fig7_parquet_correlation.
# This may be replaced when dependencies are built.
