file(REMOVE_RECURSE
  "../bench/bench_alltoall"
  "../bench/bench_alltoall.pdb"
  "CMakeFiles/bench_alltoall.dir/bench_alltoall.cpp.o"
  "CMakeFiles/bench_alltoall.dir/bench_alltoall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
