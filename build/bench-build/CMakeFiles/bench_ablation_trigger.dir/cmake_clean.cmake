file(REMOVE_RECURSE
  "../bench/bench_ablation_trigger"
  "../bench/bench_ablation_trigger.pdb"
  "CMakeFiles/bench_ablation_trigger.dir/bench_ablation_trigger.cpp.o"
  "CMakeFiles/bench_ablation_trigger.dir/bench_ablation_trigger.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
