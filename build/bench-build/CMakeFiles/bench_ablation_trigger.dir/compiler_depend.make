# Empty compiler generated dependencies file for bench_ablation_trigger.
# This may be replaced when dependencies are built.
