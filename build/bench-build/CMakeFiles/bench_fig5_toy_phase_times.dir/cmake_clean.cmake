file(REMOVE_RECURSE
  "../bench/bench_fig5_toy_phase_times"
  "../bench/bench_fig5_toy_phase_times.pdb"
  "CMakeFiles/bench_fig5_toy_phase_times.dir/bench_fig5_toy_phase_times.cpp.o"
  "CMakeFiles/bench_fig5_toy_phase_times.dir/bench_fig5_toy_phase_times.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_toy_phase_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
