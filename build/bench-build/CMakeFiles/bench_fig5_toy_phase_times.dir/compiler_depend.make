# Empty compiler generated dependencies file for bench_fig5_toy_phase_times.
# This may be replaced when dependencies are built.
