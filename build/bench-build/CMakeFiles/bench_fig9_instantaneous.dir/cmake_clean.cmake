file(REMOVE_RECURSE
  "../bench/bench_fig9_instantaneous"
  "../bench/bench_fig9_instantaneous.pdb"
  "CMakeFiles/bench_fig9_instantaneous.dir/bench_fig9_instantaneous.cpp.o"
  "CMakeFiles/bench_fig9_instantaneous.dir/bench_fig9_instantaneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_instantaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
