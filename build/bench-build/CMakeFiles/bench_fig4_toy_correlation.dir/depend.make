# Empty dependencies file for bench_fig4_toy_correlation.
# This may be replaced when dependencies are built.
