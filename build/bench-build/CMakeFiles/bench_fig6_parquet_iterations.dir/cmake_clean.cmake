file(REMOVE_RECURSE
  "../bench/bench_fig6_parquet_iterations"
  "../bench/bench_fig6_parquet_iterations.pdb"
  "CMakeFiles/bench_fig6_parquet_iterations.dir/bench_fig6_parquet_iterations.cpp.o"
  "CMakeFiles/bench_fig6_parquet_iterations.dir/bench_fig6_parquet_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_parquet_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
