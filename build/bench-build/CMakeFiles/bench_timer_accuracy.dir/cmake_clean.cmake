file(REMOVE_RECURSE
  "../bench/bench_timer_accuracy"
  "../bench/bench_timer_accuracy.pdb"
  "CMakeFiles/bench_timer_accuracy.dir/bench_timer_accuracy.cpp.o"
  "CMakeFiles/bench_timer_accuracy.dir/bench_timer_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timer_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
