# Empty dependencies file for bench_timer_accuracy.
# This may be replaced when dependencies are built.
