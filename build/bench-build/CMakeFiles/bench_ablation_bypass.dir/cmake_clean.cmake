file(REMOVE_RECURSE
  "../bench/bench_ablation_bypass"
  "../bench/bench_ablation_bypass.pdb"
  "CMakeFiles/bench_ablation_bypass.dir/bench_ablation_bypass.cpp.o"
  "CMakeFiles/bench_ablation_bypass.dir/bench_ablation_bypass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
