file(REMOVE_RECURSE
  "CMakeFiles/coal_collectives.dir/collectives.cpp.o"
  "CMakeFiles/coal_collectives.dir/collectives.cpp.o.d"
  "libcoal_collectives.a"
  "libcoal_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
