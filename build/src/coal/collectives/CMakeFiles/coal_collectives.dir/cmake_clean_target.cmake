file(REMOVE_RECURSE
  "libcoal_collectives.a"
)
