# Empty dependencies file for coal_collectives.
# This may be replaced when dependencies are built.
