# Empty compiler generated dependencies file for coal_parcel.
# This may be replaced when dependencies are built.
