file(REMOVE_RECURSE
  "libcoal_parcel.a"
)
