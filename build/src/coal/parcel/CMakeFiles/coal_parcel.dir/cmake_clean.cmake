file(REMOVE_RECURSE
  "CMakeFiles/coal_parcel.dir/action_registry.cpp.o"
  "CMakeFiles/coal_parcel.dir/action_registry.cpp.o.d"
  "CMakeFiles/coal_parcel.dir/parcel.cpp.o"
  "CMakeFiles/coal_parcel.dir/parcel.cpp.o.d"
  "CMakeFiles/coal_parcel.dir/parcelhandler.cpp.o"
  "CMakeFiles/coal_parcel.dir/parcelhandler.cpp.o.d"
  "libcoal_parcel.a"
  "libcoal_parcel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_parcel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
