file(REMOVE_RECURSE
  "CMakeFiles/coal_common.dir/config.cpp.o"
  "CMakeFiles/coal_common.dir/config.cpp.o.d"
  "CMakeFiles/coal_common.dir/histogram.cpp.o"
  "CMakeFiles/coal_common.dir/histogram.cpp.o.d"
  "CMakeFiles/coal_common.dir/logging.cpp.o"
  "CMakeFiles/coal_common.dir/logging.cpp.o.d"
  "CMakeFiles/coal_common.dir/stats.cpp.o"
  "CMakeFiles/coal_common.dir/stats.cpp.o.d"
  "libcoal_common.a"
  "libcoal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
