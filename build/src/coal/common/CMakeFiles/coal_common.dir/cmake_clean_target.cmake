file(REMOVE_RECURSE
  "libcoal_common.a"
)
