# Empty dependencies file for coal_common.
# This may be replaced when dependencies are built.
