
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coal/common/config.cpp" "src/coal/common/CMakeFiles/coal_common.dir/config.cpp.o" "gcc" "src/coal/common/CMakeFiles/coal_common.dir/config.cpp.o.d"
  "/root/repo/src/coal/common/histogram.cpp" "src/coal/common/CMakeFiles/coal_common.dir/histogram.cpp.o" "gcc" "src/coal/common/CMakeFiles/coal_common.dir/histogram.cpp.o.d"
  "/root/repo/src/coal/common/logging.cpp" "src/coal/common/CMakeFiles/coal_common.dir/logging.cpp.o" "gcc" "src/coal/common/CMakeFiles/coal_common.dir/logging.cpp.o.d"
  "/root/repo/src/coal/common/stats.cpp" "src/coal/common/CMakeFiles/coal_common.dir/stats.cpp.o" "gcc" "src/coal/common/CMakeFiles/coal_common.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
