file(REMOVE_RECURSE
  "CMakeFiles/coal_core.dir/coalescing_counters.cpp.o"
  "CMakeFiles/coal_core.dir/coalescing_counters.cpp.o.d"
  "CMakeFiles/coal_core.dir/coalescing_defaults.cpp.o"
  "CMakeFiles/coal_core.dir/coalescing_defaults.cpp.o.d"
  "CMakeFiles/coal_core.dir/coalescing_message_handler.cpp.o"
  "CMakeFiles/coal_core.dir/coalescing_message_handler.cpp.o.d"
  "CMakeFiles/coal_core.dir/coalescing_registry.cpp.o"
  "CMakeFiles/coal_core.dir/coalescing_registry.cpp.o.d"
  "libcoal_core.a"
  "libcoal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
