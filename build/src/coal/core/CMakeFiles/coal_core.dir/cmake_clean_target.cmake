file(REMOVE_RECURSE
  "libcoal_core.a"
)
