# Empty dependencies file for coal_core.
# This may be replaced when dependencies are built.
