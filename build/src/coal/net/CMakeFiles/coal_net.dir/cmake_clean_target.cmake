file(REMOVE_RECURSE
  "libcoal_net.a"
)
