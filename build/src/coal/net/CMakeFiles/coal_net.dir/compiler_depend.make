# Empty compiler generated dependencies file for coal_net.
# This may be replaced when dependencies are built.
