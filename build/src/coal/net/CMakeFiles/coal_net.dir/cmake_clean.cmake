file(REMOVE_RECURSE
  "CMakeFiles/coal_net.dir/loopback.cpp.o"
  "CMakeFiles/coal_net.dir/loopback.cpp.o.d"
  "CMakeFiles/coal_net.dir/sim_network.cpp.o"
  "CMakeFiles/coal_net.dir/sim_network.cpp.o.d"
  "libcoal_net.a"
  "libcoal_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
