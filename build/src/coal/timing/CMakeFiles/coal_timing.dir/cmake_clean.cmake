file(REMOVE_RECURSE
  "CMakeFiles/coal_timing.dir/busy_work.cpp.o"
  "CMakeFiles/coal_timing.dir/busy_work.cpp.o.d"
  "CMakeFiles/coal_timing.dir/deadline_timer.cpp.o"
  "CMakeFiles/coal_timing.dir/deadline_timer.cpp.o.d"
  "CMakeFiles/coal_timing.dir/timer_accuracy.cpp.o"
  "CMakeFiles/coal_timing.dir/timer_accuracy.cpp.o.d"
  "libcoal_timing.a"
  "libcoal_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
