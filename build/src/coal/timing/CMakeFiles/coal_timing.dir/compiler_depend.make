# Empty compiler generated dependencies file for coal_timing.
# This may be replaced when dependencies are built.
