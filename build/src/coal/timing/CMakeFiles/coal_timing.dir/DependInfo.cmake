
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coal/timing/busy_work.cpp" "src/coal/timing/CMakeFiles/coal_timing.dir/busy_work.cpp.o" "gcc" "src/coal/timing/CMakeFiles/coal_timing.dir/busy_work.cpp.o.d"
  "/root/repo/src/coal/timing/deadline_timer.cpp" "src/coal/timing/CMakeFiles/coal_timing.dir/deadline_timer.cpp.o" "gcc" "src/coal/timing/CMakeFiles/coal_timing.dir/deadline_timer.cpp.o.d"
  "/root/repo/src/coal/timing/timer_accuracy.cpp" "src/coal/timing/CMakeFiles/coal_timing.dir/timer_accuracy.cpp.o" "gcc" "src/coal/timing/CMakeFiles/coal_timing.dir/timer_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coal/common/CMakeFiles/coal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
