file(REMOVE_RECURSE
  "libcoal_timing.a"
)
