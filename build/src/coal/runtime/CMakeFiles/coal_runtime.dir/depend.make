# Empty dependencies file for coal_runtime.
# This may be replaced when dependencies are built.
