file(REMOVE_RECURSE
  "libcoal_runtime.a"
)
