file(REMOVE_RECURSE
  "CMakeFiles/coal_runtime.dir/counters_setup.cpp.o"
  "CMakeFiles/coal_runtime.dir/counters_setup.cpp.o.d"
  "CMakeFiles/coal_runtime.dir/locality.cpp.o"
  "CMakeFiles/coal_runtime.dir/locality.cpp.o.d"
  "CMakeFiles/coal_runtime.dir/runtime.cpp.o"
  "CMakeFiles/coal_runtime.dir/runtime.cpp.o.d"
  "libcoal_runtime.a"
  "libcoal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
