
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coal/agas/address_space.cpp" "src/coal/agas/CMakeFiles/coal_agas.dir/address_space.cpp.o" "gcc" "src/coal/agas/CMakeFiles/coal_agas.dir/address_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/coal/common/CMakeFiles/coal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/coal/serialization/CMakeFiles/coal_serialization.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
