file(REMOVE_RECURSE
  "libcoal_agas.a"
)
