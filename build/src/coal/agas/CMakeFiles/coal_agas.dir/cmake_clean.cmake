file(REMOVE_RECURSE
  "CMakeFiles/coal_agas.dir/address_space.cpp.o"
  "CMakeFiles/coal_agas.dir/address_space.cpp.o.d"
  "libcoal_agas.a"
  "libcoal_agas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_agas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
