# Empty dependencies file for coal_agas.
# This may be replaced when dependencies are built.
