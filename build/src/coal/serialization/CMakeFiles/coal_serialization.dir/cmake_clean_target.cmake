file(REMOVE_RECURSE
  "libcoal_serialization.a"
)
