# Empty dependencies file for coal_serialization.
# This may be replaced when dependencies are built.
