file(REMOVE_RECURSE
  "CMakeFiles/coal_serialization.dir/archive.cpp.o"
  "CMakeFiles/coal_serialization.dir/archive.cpp.o.d"
  "libcoal_serialization.a"
  "libcoal_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
