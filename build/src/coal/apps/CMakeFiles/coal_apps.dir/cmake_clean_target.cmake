file(REMOVE_RECURSE
  "libcoal_apps.a"
)
