file(REMOVE_RECURSE
  "CMakeFiles/coal_apps.dir/parquet_app.cpp.o"
  "CMakeFiles/coal_apps.dir/parquet_app.cpp.o.d"
  "CMakeFiles/coal_apps.dir/toy_app.cpp.o"
  "CMakeFiles/coal_apps.dir/toy_app.cpp.o.d"
  "libcoal_apps.a"
  "libcoal_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
