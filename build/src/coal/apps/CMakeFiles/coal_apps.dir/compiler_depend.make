# Empty compiler generated dependencies file for coal_apps.
# This may be replaced when dependencies are built.
