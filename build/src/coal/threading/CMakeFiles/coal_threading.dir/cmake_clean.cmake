file(REMOVE_RECURSE
  "CMakeFiles/coal_threading.dir/instrumentation.cpp.o"
  "CMakeFiles/coal_threading.dir/instrumentation.cpp.o.d"
  "CMakeFiles/coal_threading.dir/scheduler.cpp.o"
  "CMakeFiles/coal_threading.dir/scheduler.cpp.o.d"
  "libcoal_threading.a"
  "libcoal_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
