# Empty compiler generated dependencies file for coal_threading.
# This may be replaced when dependencies are built.
