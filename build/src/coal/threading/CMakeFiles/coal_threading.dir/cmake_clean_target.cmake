file(REMOVE_RECURSE
  "libcoal_threading.a"
)
