# Empty dependencies file for coal_perf.
# This may be replaced when dependencies are built.
