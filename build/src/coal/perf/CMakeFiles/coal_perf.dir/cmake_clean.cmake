file(REMOVE_RECURSE
  "CMakeFiles/coal_perf.dir/counter_path.cpp.o"
  "CMakeFiles/coal_perf.dir/counter_path.cpp.o.d"
  "CMakeFiles/coal_perf.dir/registry.cpp.o"
  "CMakeFiles/coal_perf.dir/registry.cpp.o.d"
  "libcoal_perf.a"
  "libcoal_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
