file(REMOVE_RECURSE
  "libcoal_perf.a"
)
