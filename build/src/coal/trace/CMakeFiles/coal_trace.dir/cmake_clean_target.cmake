file(REMOVE_RECURSE
  "libcoal_trace.a"
)
