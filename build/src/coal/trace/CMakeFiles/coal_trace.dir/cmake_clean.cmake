file(REMOVE_RECURSE
  "CMakeFiles/coal_trace.dir/tracer.cpp.o"
  "CMakeFiles/coal_trace.dir/tracer.cpp.o.d"
  "libcoal_trace.a"
  "libcoal_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
