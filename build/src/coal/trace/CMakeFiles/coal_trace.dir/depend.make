# Empty dependencies file for coal_trace.
# This may be replaced when dependencies are built.
