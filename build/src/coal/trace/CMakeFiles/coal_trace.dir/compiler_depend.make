# Empty compiler generated dependencies file for coal_trace.
# This may be replaced when dependencies are built.
