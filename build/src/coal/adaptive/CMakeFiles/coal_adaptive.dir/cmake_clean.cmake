file(REMOVE_RECURSE
  "CMakeFiles/coal_adaptive.dir/adaptive_coalescer.cpp.o"
  "CMakeFiles/coal_adaptive.dir/adaptive_coalescer.cpp.o.d"
  "libcoal_adaptive.a"
  "libcoal_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coal_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
