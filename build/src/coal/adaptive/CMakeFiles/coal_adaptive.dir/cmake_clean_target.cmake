file(REMOVE_RECURSE
  "libcoal_adaptive.a"
)
