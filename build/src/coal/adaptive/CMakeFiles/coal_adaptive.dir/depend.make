# Empty dependencies file for coal_adaptive.
# This may be replaced when dependencies are built.
