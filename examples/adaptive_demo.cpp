/// \file adaptive_demo.cpp
/// The paper's end goal, demonstrated: the adaptive controller watches
/// the network-overhead counter (Eq. 4) while the toy workload runs and
/// tunes `nparcels` online, starting from the worst setting (1 parcel
/// per message).  Compare the phase times before and after convergence.
///
///     ./build/examples/adaptive_demo [parcels=15000] [phases=8]

#include <coal/adaptive/adaptive_coalescer.hpp>
#include <coal/apps/measurement.hpp>
#include <coal/apps/toy_app.hpp>
#include <coal/common/config.hpp>
#include <coal/threading/future.hpp>

#include <complex>
#include <cstdio>
#include <vector>

int main(int argc, char** argv)
{
    coal::config cfg;
    cfg.load_environment();
    cfg.parse_args(argc, argv);

    std::size_t const parcels =
        static_cast<std::size_t>(cfg.get_int("parcels", 15000));
    unsigned const phases = static_cast<unsigned>(cfg.get_int("phases", 8));

    coal::runtime_config rt_cfg;
    rt_cfg.num_localities = 2;
    coal::runtime rt(rt_cfg);

    // Start from the pathological configuration: no batching at all.
    coal::coalescing::coalescing_params initial;
    initial.nparcels = 1;
    initial.interval_us = 2000;
    rt.enable_coalescing(coal::apps::toy_action_name(), initial);

    coal::adaptive::tuner_config tuner_cfg;
    tuner_cfg.action_name = coal::apps::toy_action_name();
    tuner_cfg.max_nparcels = 256;
    coal::adaptive::adaptive_coalescer tuner(rt, tuner_cfg);

    std::printf("%-6s %-10s %-12s %-12s %-12s %s\n", "phase", "nparcels",
        "time [ms]", "overhead", "decisions", "state");

    rt.run_everywhere([&](coal::locality& here) {
        auto const other = here.find_remote_localities().front();
        bool const leader = here.id().value() == 0;
        coal::apps::phase_recorder recorder(rt);

        for (unsigned phase = 0; phase != phases; ++phase)
        {
            rt.barrier();
            if (leader)
                recorder.restart();
            rt.barrier();

            std::vector<coal::threading::future<std::complex<double>>> vec;
            vec.reserve(parcels);
            std::size_t const before = tuner.current_nparcels();
            for (std::size_t i = 0; i != parcels; ++i)
                vec.push_back(here.async<toy_get_cplx_action>(other));
            coal::threading::wait_all(vec);
            rt.barrier();

            if (leader)
            {
                auto const metrics = recorder.finish();
                // One controller decision per phase: sample the counters
                // accumulated during the phase, adjust for the next one.
                tuner.tick();
                std::printf("%-6u %-10zu %-12.2f %-12.4f %-12llu %s\n",
                    phase, before, metrics.duration_s * 1e3,
                    metrics.network_overhead,
                    static_cast<unsigned long long>(tuner.decisions()),
                    tuner.converged() ? "converged" : "exploring");
            }
            rt.barrier();
        }
    });

    std::printf("\nfinal nparcels: %zu after %llu decisions\n",
        tuner.current_nparcels(),
        static_cast<unsigned long long>(tuner.decisions()));

    rt.stop();
    return 0;
}
