/// \file parquet_app.cpp
/// The parquet communication skeleton (§IV-C) as a runnable example:
/// four localities broadcast tensor slabs (8·Nc² parcels of Nc complex
/// doubles per iteration) interleaved with contraction work, with an
/// iteration barrier.  The paper's best parameters were nparcels=4 with
/// a 5000 µs wait time:
///
///     ./build/examples/parquet_app nc=32 iterations=3 nparcels=4
///     ./build/examples/parquet_app nc=32 nparcels=1      # no coalescing

#include <coal/apps/parquet_app.hpp>
#include <coal/common/config.hpp>

#include <cstdio>

int main(int argc, char** argv)
{
    coal::config cfg;
    cfg.load_environment();
    cfg.parse_args(argc, argv);

    coal::runtime_config rt_cfg;
    rt_cfg.num_localities =
        static_cast<std::uint32_t>(cfg.get_int("localities", 4));
    rt_cfg.workers_per_locality =
        static_cast<unsigned>(cfg.get_int("workers", 1));
    coal::runtime rt(rt_cfg);

    coal::apps::parquet_params params;
    params.nc = static_cast<std::uint32_t>(cfg.get_int("nc", 32));
    params.iterations = static_cast<unsigned>(cfg.get_int("iterations", 3));
    params.coalescing.nparcels =
        static_cast<std::size_t>(cfg.get_int("nparcels", 4));
    params.coalescing.interval_us = cfg.get_int("interval", 5000);
    params.enable_coalescing = cfg.get_bool("coalescing", true);

    std::printf("parquet skeleton: Nc=%u (%u parcels/iteration of %u "
                "complex doubles), %u localities, nparcels=%zu, "
                "interval=%lld us\n\n",
        params.nc, 8 * params.nc * params.nc, params.nc,
        rt.num_localities(), params.coalescing.nparcels,
        static_cast<long long>(params.coalescing.interval_us));

    auto const result = coal::apps::run_parquet_app(rt, params);

    std::printf("%-10s %-14s %-16s %-14s\n", "iteration", "time [ms]",
        "cumulative [ms]", "overhead");
    for (auto const& iter : result.iterations)
    {
        std::printf("%-10u %-14.2f %-16.2f %-14.4f\n", iter.iteration,
            iter.metrics.duration_s * 1e3, iter.cumulative_s * 1e3,
            iter.metrics.network_overhead);
    }
    std::printf("\ntotal: %.2f ms, checksum %s (error %.2e)\n",
        result.total_s * 1e3, result.checksum_ok ? "OK" : "FAILED",
        result.checksum_error);

    rt.stop();
    return result.checksum_ok ? 0 : 1;
}
