/// \file counters_tour.cpp
/// Tour of the performance-counter framework: discovery, HPX-style full
/// names with {instance} and @parameters, scalar and histogram counters,
/// and reset-on-read for per-phase measurements.
///
///     ./build/examples/counters_tour

#include <coal/apps/toy_app.hpp>
#include <coal/perf/registry.hpp>

#include <cstdio>
#include <string>
#include <vector>

int main()
{
    coal::runtime_config cfg;
    cfg.num_localities = 2;
    // Flow control on, with a deliberately small credit window and a low
    // soft watermark so the /net/flow/* counters and pressure transitions
    // have something to show.
    cfg.flow.enabled = true;
    cfg.flow.initial_window_bytes = 8 * 1024;
    cfg.flow.window_bytes = 16 * 1024;
    cfg.flow.min_window_bytes = 4 * 1024;
    cfg.flow.pool_soft_bytes = 64 * 1024;
    cfg.flow.pool_critical_bytes = 64u << 20;    // far away: nothing shed
    // Membership on so the /net/health gauges are live (idle-link
    // heartbeats tick while the app runs; nobody dies in this tour).
    cfg.membership.enabled = true;
    // Real socket parcelport so the /net/wire/* counters are non-zero:
    // both localities live in this process but their frames take real
    // TCP connections through the kernel.
    cfg.transport = "tcp";
    coal::runtime rt(cfg);

    std::printf("registered counter types:\n");
    for (auto const& [path, description] : rt.counters().discover())
        std::printf("  %-48s %s\n", path.c_str(), description.c_str());

    // Generate some traffic so the counters have something to show.
    coal::apps::toy_params params;
    params.parcels_per_phase = 5000;
    params.phases = 2;
    params.coalescing.nparcels = 32;
    params.coalescing.interval_us = 2000;
    coal::apps::run_toy_app(rt, params);

    std::string const action = coal::apps::toy_action_name();
    auto& counters = rt.counters();

    std::printf("\nfull-name queries:\n");
    for (std::string const& name : std::vector<std::string>{
             "/threads{locality#0}/count/cumulative",
             "/threads{locality#1}/count/cumulative",
             "/threads/count/cumulative",
             "/threads/background-work",
             "/threads/background-overhead",
             "/threads/time/average-overhead",
             "/threads/receive-pipeline/frames-per-drain",
             "/threads/receive-pipeline/chunk-occupancy",
             "/threads/receive-pipeline/time/offloaded-decode",
             "/parcels/count/sent",
             "/messages/count/sent",
             "/data/count/sent",
             "/coalescing{locality#0}/count/parcels@" + action,
             "/coalescing/count/average-parcels-per-message@" + action,
             "/coalescing/time/average-parcel-arrival@" + action,
             "/timers/count/fired",
             "/timers/time/average-lateness",
             "/coal/pool/count/hits",
             "/coal/pool/count/misses",
             "/coal/pool/count/heap-fallbacks",
             "/coal/pool/count/flattens",
             "/coal/pool/count/outstanding",
             "/coal/pool/count/fallback-cap-hits",
             "/coal/pool/data/copied",
             "/coal/pool/data/referenced",
             "/coal/pool/resident-bytes",
             "/coal/pool/resident-bytes-peak",
             "/coal/pool/fallback-bytes",
             "/coal/pool/fallback-bytes-peak",
             "/net/flow/count/shed",
             "/net/flow/count/deferrals",
             "/net/flow/count/releases",
             "/net/flow/count/credit-updates",
             "/net/flow/count/link-down",
             "/net/flow/count/pressure-transitions",
             "/net/flow/count/starvation-trips",
             "/net/flow/pressure",
             "/net/health/count/heartbeats",
             "/net/health/count/suspected",
             "/net/health/count/deaths",
             "/net/health/count/rejoins",
             "/net/health/count/stale-epoch-frames",
             "/net/health/count/refutes",
             "/net/health/count/confirmed-parcels",
             "/net/health/known-peers",
             "/net/health/suspected-peers",
             "/net/health/dead-peers",
             "/net/count/delivery-errors/shed-overload",
             "/net/count/delivery-errors/link-down",
             "/net/count/delivery-errors/peer-failed",
             "/net/wire/count/bytes-sent",
             "/net/wire/count/bytes-received",
             "/net/wire/count/frames-sent",
             "/net/wire/count/frames-received",
             "/net/wire/count/connects",
             "/net/wire/count/accepts",
             "/net/wire/count/reconnects",
             "/net/wire/count/partial-write-resumptions",
             "/net/wire/count/partial-read-resumptions",
             "/net/wire/count/crc-drops",
             "/net/wire/count/desync-drops",
             "/net/wire/count/oversized-drops",
             "/net/wire/count/truncated-drops",
             "/net/wire/count/connect-failures",
             "/net/wire/count/accept-failures",
             "/net/wire/count/handshake-failures",
             "/net/wire/count/backlog-drops",
         })
    {
        auto const v = counters.query(name);
        std::printf("  %-64s = %.3f%s\n", name.c_str(), v.value,
            v.valid ? "" : "  (INVALID)");
    }

    // The arrival histogram is an array counter in HPX's wire layout.
    auto const histogram = counters.query(
        "/coalescing/time/parcel-arrival-histogram@" + action);
    std::printf("\narrival histogram (min=%lld us, max=%lld us, "
                "width=%lld us):\n  ",
        static_cast<long long>(histogram.values[0]),
        static_cast<long long>(histogram.values[1]),
        static_cast<long long>(histogram.values[2]));
    for (std::size_t i = 3; i < histogram.values.size(); ++i)
        std::printf("%lld ", static_cast<long long>(histogram.values[i]));
    std::printf("\n");

    // Reset-on-read: second read reports only what happened in between.
    double const first =
        counters.query("/parcels/count/sent", /*reset=*/true).value;
    double const second = counters.query("/parcels/count/sent").value;
    std::printf("\nreset-on-read: before=%.0f, after=%.0f\n", first, second);

    rt.stop();
    return 0;
}
