/// \file quickstart.cpp
/// Minimal tour of the coal runtime: boot two localities, register an
/// action, opt it into message coalescing with one macro line (the
/// paper's Listing 1 idiom), fire a burst of remote calls, and read the
/// coalescing performance counters back.
///
/// Build & run:
///     cmake -B build -G Ninja && cmake --build build
///     ./build/examples/quickstart [parcels=5000]

#include <coal/apps/measurement.hpp>
#include <coal/core/coalescing_defaults.hpp>
#include <coal/parcel/action.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/future.hpp>

#include <complex>
#include <cstdio>
#include <string>
#include <vector>

// --- the remote function and its action (Listing 1 idiom) -----------------

std::complex<double> get_cplx()
{
    return std::complex<double>(13.3, -23.8);
}

COAL_PLAIN_ACTION(get_cplx, get_cplx_action);

// One macro line opts the action into coalescing: up to 64 parcels per
// message, flushed after at most 2000 µs.
COAL_ACTION_USES_MESSAGE_COALESCING_PARAMS(get_cplx_action, 64, 2000);

int main(int argc, char** argv)
{
    std::size_t const parcels =
        argc > 1 ? std::stoull(argv[1]) : std::size_t{5000};

    coal::runtime_config cfg;
    cfg.num_localities = 2;
    cfg.workers_per_locality = 1;
    coal::runtime rt(cfg);

    // SPMD: this function body runs as a task on every locality.
    rt.run_everywhere([&](coal::locality& here) {
        auto const remotes = here.find_remote_localities();
        auto const other = remotes.front();

        std::vector<coal::threading::future<std::complex<double>>> results;
        results.reserve(parcels);
        for (std::size_t i = 0; i != parcels; ++i)
            results.push_back(here.async<get_cplx_action>(other));

        coal::threading::wait_all(results);

        if (here.id().value() == 0)
        {
            auto const value = results.front().get();
            std::printf("locality 0 received %zu results, first = "
                        "(%.1f, %.1f)\n",
                parcels, value.real(), value.imag());
        }
    });

    // Read the paper's coalescing counters back through the performance
    // counter framework (full HPX-style names).
    auto& counters = rt.counters();
    std::string const action = "get_cplx_action";

    double const sent =
        counters.query("/coalescing/count/parcels@" + action).value;
    double const messages =
        counters.query("/coalescing/count/messages@" + action).value;
    double const ppm = counters
                           .query("/coalescing/count/"
                                  "average-parcels-per-message@" +
                               action)
                           .value;
    double const arrival =
        counters
            .query("/coalescing/time/average-parcel-arrival@" + action)
            .value;
    double const overhead =
        counters.query("/threads/background-overhead").value;

    std::printf("\nperformance counters:\n");
    std::printf("  /coalescing/count/parcels@%s          = %.0f\n",
        action.c_str(), sent);
    std::printf("  /coalescing/count/messages@%s         = %.0f\n",
        action.c_str(), messages);
    std::printf("  /coalescing/count/average-parcels-per-message = %.2f\n",
        ppm);
    std::printf("  /coalescing/time/average-parcel-arrival       = %.2f us\n",
        arrival);
    std::printf("  /threads/background-overhead (Eq. 4)          = %.4f\n",
        overhead);

    rt.stop();
    return 0;
}
