/// \file toy_app.cpp
/// The paper's toy application (Listing 1) as a runnable example: two
/// localities exchange bursts of single-complex-double messages for four
/// phases.  Run it twice — with and without coalescing — to see the
/// per-message overhead amortization the paper measures:
///
///     ./build/examples/toy_app parcels=20000 nparcels=128 interval=4000
///     ./build/examples/toy_app parcels=20000 coalescing=off
///
/// The interconnect can be made lossy (reliable delivery turns on
/// automatically):
///
///     ./build/examples/toy_app parcels=5000 fault.drop=0.01

#include <coal/apps/toy_app.hpp>
#include <coal/common/config.hpp>
#include <coal/net/faulty_transport.hpp>

#include <cstdio>

int main(int argc, char** argv)
{
    coal::config cfg;
    cfg.load_environment();
    cfg.parse_args(argc, argv);

    coal::runtime_config rt_cfg;
    rt_cfg.num_localities = 2;
    rt_cfg.workers_per_locality =
        static_cast<unsigned>(cfg.get_int("workers", 1));
    rt_cfg.faults = coal::net::fault_plan::from_config(cfg);
    coal::runtime rt(rt_cfg);

    coal::apps::toy_params params;
    params.parcels_per_phase =
        static_cast<std::size_t>(cfg.get_int("parcels", 20000));
    params.phases = static_cast<unsigned>(cfg.get_int("phases", 4));
    params.coalescing.nparcels =
        static_cast<std::size_t>(cfg.get_int("nparcels", 128));
    params.coalescing.interval_us = cfg.get_int("interval", 4000);
    params.enable_coalescing = cfg.get_bool("coalescing", true);

    std::printf("toy application: %zu parcels/phase, %u phases, "
                "nparcels=%zu, interval=%lld us, coalescing=%s\n\n",
        params.parcels_per_phase, params.phases, params.coalescing.nparcels,
        static_cast<long long>(params.coalescing.interval_us),
        params.enable_coalescing ? "on" : "off");

    auto const result = coal::apps::run_toy_app(rt, params);

    std::printf("%-6s %-12s %-14s %-16s %-10s\n", "phase", "time [ms]",
        "overhead", "messages sent", "tasks");
    for (auto const& phase : result.phases)
    {
        std::printf("%-6u %-12.2f %-14.4f %-16llu %-10llu\n", phase.phase,
            phase.metrics.duration_s * 1e3, phase.metrics.network_overhead,
            static_cast<unsigned long long>(phase.metrics.messages_sent),
            static_cast<unsigned long long>(phase.metrics.tasks));
    }
    std::printf("\ntotal: %.2f ms\n", result.total_s * 1e3);

    rt.stop();
    return 0;
}
