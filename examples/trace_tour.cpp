/// \file trace_tour.cpp
/// Parcel-flow tracing: watch Algorithm 1 make its decisions.  Runs a
/// burst (size-triggered flushes), a trickle (timeout flushes and sparse
/// bypasses), and prints the event log plus a flush-reason summary.
///
///     ./build/examples/trace_tour

#include <coal/parcel/action.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/future.hpp>
#include <coal/trace/tracer.hpp>

#include <cstdio>
#include <thread>

namespace {

int traced_echo(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(traced_echo, traced_echo_action);

int main()
{
    auto& tracer = coal::trace::tracer::global();
    tracer.enable(1 << 12);

    coal::runtime_config cfg;
    cfg.num_localities = 2;
    coal::runtime rt(cfg);
    rt.enable_coalescing("traced_echo_action", {8, 1500});

    rt.run_on(0, [](coal::locality& here) {
        auto const other = here.find_remote_localities().front();

        // Dense burst: queues fill, size-triggered flushes.
        std::vector<coal::threading::future<int>> futures;
        for (int i = 0; i != 20; ++i)
            futures.push_back(here.async<traced_echo_action>(other, i));
        coal::threading::wait_all(futures);

        // Sparse trickle: gaps exceed the wait time, so parcels either
        // ride the flush timer or take the bypass.
        for (int i = 0; i != 4; ++i)
        {
            here.async<traced_echo_action>(other, i).get();
            std::this_thread::sleep_for(std::chrono::milliseconds(4));
        }
    });
    rt.stop();
    tracer.disable();

    std::uint64_t by_kind[16] = {};
    auto const events = tracer.snapshot();
    std::printf("captured %zu events (%llu dropped)\n\n", events.size(),
        static_cast<unsigned long long>(tracer.dropped()));

    // Show the first 40 events verbatim...
    std::size_t shown = 0;
    for (auto const& e : events)
    {
        if (shown++ < 40)
            std::printf("%s\n", coal::trace::format_event(e).c_str());
        by_kind[static_cast<int>(e.kind)]++;
    }
    if (events.size() > 40)
        std::printf("... (%zu more)\n", events.size() - 40);

    // ...and the decision summary.
    std::printf("\nflush decisions:\n");
    for (auto kind : {coal::trace::event_kind::flush_size,
             coal::trace::event_kind::flush_timeout,
             coal::trace::event_kind::flush_forced,
             coal::trace::event_kind::coalescing_bypass})
    {
        std::printf("  %-20s %llu\n", coal::trace::to_string(kind),
            static_cast<unsigned long long>(
                by_kind[static_cast<int>(kind)]));
    }
    return 0;
}
