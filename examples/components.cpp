/// \file components.cpp
/// Component actions on gid-addressed objects: a distributed histogram
/// service.  Each locality hosts one `histogram_shard` component; every
/// locality streams samples to every shard by gid (migration-transparent
/// AGAS routing), with the sample action opted into coalescing — the
/// "many tiny messages to a stateful service" pattern the paper's
/// introduction motivates.
///
///     ./build/examples/components [samples=20000]

#include <coal/core/coalescing_defaults.hpp>
#include <coal/parcel/component_action.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/future.hpp>

#include <cstdio>
#include <mutex>
#include <random>
#include <vector>

namespace {

/// One shard of a distributed histogram (samples in [0, 1000)).
struct histogram_shard
{
    void record(std::int64_t value)
    {
        std::lock_guard lock(mutex);
        ++buckets[static_cast<std::size_t>(value / 100) % buckets.size()];
        ++total;
    }

    std::vector<std::uint64_t> snapshot()
    {
        std::lock_guard lock(mutex);
        return buckets;
    }

    std::uint64_t count()
    {
        std::lock_guard lock(mutex);
        return total;
    }

    std::mutex mutex;
    std::vector<std::uint64_t> buckets = std::vector<std::uint64_t>(10, 0);
    std::uint64_t total = 0;
};

}    // namespace

COAL_COMPONENT_ACTION(&histogram_shard::record, shard_record_action);
COAL_COMPONENT_ACTION(&histogram_shard::snapshot, shard_snapshot_action);
COAL_COMPONENT_ACTION(&histogram_shard::count, shard_count_action);

// Batch the per-sample traffic: 64 samples per wire message.
COAL_ACTION_USES_MESSAGE_COALESCING_PARAMS(shard_record_action, 64, 2000);

int main(int argc, char** argv)
{
    std::size_t const samples =
        argc > 1 ? std::stoull(argv[1]) : std::size_t{20000};

    coal::runtime_config cfg;
    cfg.num_localities = 2;
    coal::runtime rt(cfg);

    // One shard per locality, registered under symbolic names.
    std::vector<coal::agas::gid> shards;
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
    {
        auto const gid =
            rt.new_component<histogram_shard>(coal::agas::locality_id{i});
        rt.agas().register_name("shards/" + std::to_string(i), gid);
        shards.push_back(gid);
    }

    rt.run_everywhere([&](coal::locality& here) {
        std::mt19937 rng(here.id().value() + 1);
        std::uniform_int_distribution<std::int64_t> sample(0, 999);

        // Stream samples round-robin to all shards, fire-and-forget.
        for (std::size_t i = 0; i != samples; ++i)
            here.apply<shard_record_action>(
                shards[i % shards.size()], sample(rng));
    });
    rt.quiesce();

    // Gather results (component round trips, resolved by name).
    std::uint64_t total = 0;
    rt.run_on(0, [&](coal::locality& here) {
        for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        {
            auto const gid =
                rt.agas().resolve_name("shards/" + std::to_string(i));
            auto const counts =
                here.async<shard_snapshot_action>(*gid).get();
            auto const n = here.async<shard_count_action>(*gid).get();
            total += n;

            std::printf("shard %u (%llu samples): ", i,
                static_cast<unsigned long long>(n));
            for (auto c : counts)
                std::printf("%llu ", static_cast<unsigned long long>(c));
            std::printf("\n");
        }
    });

    std::printf("\ntotal samples recorded: %llu (expected %llu)\n",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(
            samples * rt.num_localities()));
    std::printf("wire messages: %llu (coalesced, 64 samples/message)\n",
        static_cast<unsigned long long>(
            rt.network().stats().messages_sent));

    rt.stop();
    return total == samples * rt.num_localities() ? 0 : 1;
}
