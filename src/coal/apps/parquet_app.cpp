#include <coal/apps/parquet_app.hpp>

#include <coal/common/assert.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>
#include <coal/timing/busy_work.hpp>

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

namespace coal::apps {

namespace {

/// Per-locality tensor blocks.  Keyed by locality index because all
/// localities share this process — the seam where a real distributed
/// build would use per-node storage resolved through AGAS.
class parquet_storage
{
public:
    static parquet_storage& instance()
    {
        static parquet_storage storage;
        return storage;
    }

    void configure(std::uint32_t localities, std::size_t elements)
    {
        std::lock_guard lock(mutex_);
        tensors_.clear();
        tensors_.reserve(localities);
        for (std::uint32_t i = 0; i != localities; ++i)
        {
            auto t = std::make_unique<tensor>();
            t->data.assign(elements, std::complex<double>(0.0, 0.0));
            tensors_.push_back(std::move(t));
        }
    }

    void accumulate(std::uint32_t locality, std::uint64_t row_offset,
        std::vector<std::complex<double>> const& chunk)
    {
        tensor* t = nullptr;
        {
            std::lock_guard lock(mutex_);
            COAL_ASSERT(locality < tensors_.size());
            t = tensors_[locality].get();
        }
        std::lock_guard lock(t->mutex);
        std::size_t const n = t->data.size();
        COAL_ASSERT(n > 0);
        for (std::size_t i = 0; i != chunk.size(); ++i)
            t->data[(row_offset + i) % n] += chunk[i];
    }

    [[nodiscard]] std::complex<double> total_sum() const
    {
        std::lock_guard lock(mutex_);
        std::complex<double> sum{0.0, 0.0};
        for (auto const& t : tensors_)
        {
            std::lock_guard tl(t->mutex);
            for (auto const& v : t->data)
                sum += v;
        }
        return sum;
    }

private:
    struct tensor
    {
        mutable std::mutex mutex;
        std::vector<std::complex<double>> data;
    };

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<tensor>> tensors_;
};

}    // namespace

/// Rotation-phase action: accumulate a slab of Nc elements into the
/// destination tensor.  `dest` names the executing locality's storage
/// block (plain actions do not see their host; the caller knows it).
void parquet_accumulate(std::uint32_t dest, std::uint64_t row_offset,
    std::vector<std::complex<double>> chunk)
{
    parquet_storage::instance().accumulate(dest, row_offset, chunk);
}

}    // namespace coal::apps

COAL_PLAIN_ACTION(coal::apps::parquet_accumulate, parquet_accumulate_action);

namespace coal::apps {

char const* parquet_action_name()
{
    return parquet_accumulate_action::action_name;
}

parquet_result run_parquet_app(runtime& rt, parquet_params const& params)
{
    std::uint32_t const localities = rt.num_localities();
    COAL_ASSERT_MSG(localities >= 2, "parquet needs >= 2 localities");

    std::size_t const parcels_each = params.parcels_per_locality != 0 ?
        params.parcels_per_locality :
        static_cast<std::size_t>(8) * params.nc * params.nc / localities;

    std::size_t const tensor_elements = static_cast<std::size_t>(params.nc) *
        params.nc * params.nc / localities;
    parquet_storage::instance().configure(
        localities, std::max<std::size_t>(tensor_elements, params.nc));

    if (params.enable_coalescing)
        rt.enable_coalescing(parquet_action_name(), params.coalescing);

    // The slab every parcel carries: Nc complex doubles.
    std::vector<std::complex<double>> const chunk(
        params.nc, std::complex<double>(0.5, -0.25));

    parquet_result result;
    result.iterations.reserve(params.iterations);
    stopwatch total;

    rt.run_everywhere([&](locality& here) {
        bool const leader = here.id().value() == 0;
        auto const remotes = here.find_remote_localities();

        phase_recorder recorder(rt);

        for (unsigned iter = 0; iter != params.iterations; ++iter)
        {
            rt.barrier();
            if (leader)
                recorder.restart();
            rt.barrier();

            std::vector<threading::future<void>> vec;
            vec.reserve(parcels_each);

            for (std::size_t i = 0; i != parcels_each; ++i)
            {
                // Contraction work producing this slab (creates the
                // inter-parcel gaps of a real solver).
                timing::spin_flops(params.compute_flops_per_parcel);

                auto const dest = remotes[i % remotes.size()];
                std::uint64_t const row_offset =
                    (static_cast<std::uint64_t>(i) * params.nc) %
                    std::max<std::uint64_t>(tensor_elements, 1);
                vec.push_back(here.async<parquet_accumulate_action>(
                    dest, dest.value(), row_offset, chunk));
            }

            threading::wait_all(vec);
            rt.barrier();

            if (leader)
            {
                parquet_iteration_result ir;
                ir.iteration = iter;
                ir.metrics = recorder.finish();
                ir.cumulative_s = total.elapsed_s();
                result.iterations.push_back(ir);
            }
            rt.barrier();
        }
    });

    result.total_s = total.elapsed_s();

    // Conservation check: every element of every parcel must have been
    // accumulated exactly once.
    std::complex<double> const expected =
        std::complex<double>(0.5, -0.25) *
        static_cast<double>(static_cast<std::size_t>(localities) *
            parcels_each * params.iterations * params.nc);
    std::complex<double> const actual =
        parquet_storage::instance().total_sum();
    double const denom = std::max(1.0, std::abs(expected));
    result.checksum_error = std::abs(actual - expected) / denom;
    result.checksum_ok = result.checksum_error < 1e-9;

    return result;
}

}    // namespace coal::apps
