#pragma once

/// \file measurement.hpp
/// Per-phase measurement helper used by both evaluation applications.
///
/// The paper's figures plot *per-phase* (toy app) or *per-iteration*
/// (parquet) quantities of cumulative counters, so each phase takes a
/// snapshot delta: wall time, Eq. 1 task duration, Eq. 2 task overhead,
/// Eq. 3 background duration and Eq. 4 network overhead, plus message and
/// parcel volumes.

#include <coal/common/stopwatch.hpp>
#include <coal/net/transport.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/instrumentation.hpp>

#include <cstdint>

namespace coal::apps {

struct phase_metrics
{
    // NOTE: network_overhead uses Eq. 4 with idle background polls
    // excluded (see threading/instrumentation.hpp).
    double duration_s = 0.0;            ///< wall time of the phase
    double network_overhead = 0.0;      ///< Eq. 4 over the phase
    double background_s = 0.0;          ///< Eq. 3 delta, seconds
    double task_duration_s = 0.0;       ///< Eq. 1 delta, seconds
    double avg_task_overhead_ns = 0.0;  ///< Eq. 2 over the phase
    /// Scheduler tasks executed.  With the batched receive pipeline a
    /// task is a *chunk* of remote parcels, so this undercounts parcel
    /// volume — use `parcels_executed` for that.
    std::uint64_t tasks = 0;
    std::uint64_t parcels_executed = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
};

/// Brackets a phase: construct (or restart()) at the start, finish() at
/// the end.  Aggregates over all localities of the runtime.
class phase_recorder
{
public:
    explicit phase_recorder(runtime& rt)
      : runtime_(rt)
    {
        restart();
    }

    void restart()
    {
        base_ = runtime_.aggregate_snapshot();
        base_net_ = runtime_.network().stats();
        base_parcels_ = total_parcels_executed();
        watch_.restart();
    }

    [[nodiscard]] phase_metrics finish() const
    {
        auto const snap = runtime_.aggregate_snapshot().since(base_);
        auto const net = runtime_.network().stats();

        phase_metrics m;
        m.duration_s = watch_.elapsed_s();
        m.network_overhead = snap.network_overhead();
        m.background_s =
            static_cast<double>(snap.background_duration_ns()) / 1e9;
        m.task_duration_s =
            static_cast<double>(snap.task_duration_ns()) / 1e9;
        m.avg_task_overhead_ns = snap.average_task_overhead_ns();
        m.tasks = snap.tasks_executed;
        m.parcels_executed = total_parcels_executed() - base_parcels_;
        m.messages_sent = net.messages_sent - base_net_.messages_sent;
        m.bytes_sent = net.bytes_sent - base_net_.bytes_sent;
        return m;
    }

private:
    [[nodiscard]] std::uint64_t total_parcels_executed() const
    {
        std::uint64_t total = 0;
        for (std::uint32_t i = 0; i != runtime_.num_localities(); ++i)
        {
            total += runtime_.get_locality(i)
                         .parcels()
                         .counters()
                         .parcels_executed.load(std::memory_order_relaxed);
        }
        return total;
    }

    runtime& runtime_;
    threading::scheduler_snapshot base_{};
    net::transport_stats base_net_{};
    std::uint64_t base_parcels_ = 0;
    stopwatch watch_;
};

}    // namespace coal::apps
