#pragma once

/// \file toy_app.hpp
/// The paper's toy application (Listing 1): two localities bombard each
/// other with fire-and-return messages carrying a single complex double,
/// repeated for a number of *phases*.  There are no dependencies between
/// messages, so network overhead dominates — the ideal coalescing victim.
///
/// Extensions over the listing, used by the evaluation harness:
///  - a per-phase schedule of `nparcels` values (Fig. 9 changes the
///    coalescing parameter between phases of one run);
///  - per-phase metric capture via phase_recorder.

#include <coal/apps/measurement.hpp>
#include <coal/core/coalescing_params.hpp>
#include <coal/parcel/action.hpp>
#include <coal/runtime/runtime.hpp>

#include <complex>
#include <cstdint>
#include <vector>

namespace coal::apps {

/// The remotely executed function of Listing 1.
std::complex<double> toy_get_cplx();

/// Name under which the toy action is registered (for counter queries).
char const* toy_action_name();

}    // namespace coal::apps

/// The action type itself (usable with locality::async from user code).
COAL_PLAIN_ACTION(coal::apps::toy_get_cplx, toy_get_cplx_action);

namespace coal::apps {

struct toy_params
{
    /// Messages each locality sends per phase ("numparcels"; the paper
    /// uses one million — scale to the host).
    std::size_t parcels_per_phase = 20000;

    /// Number of phases ("num_repeats", 4 in Listing 1).
    unsigned phases = 4;

    /// Coalescing parameters for the action (and its responses).
    coalescing::coalescing_params coalescing{128, 4000};

    /// Enable coalescing at all (false = baseline, one parcel/message).
    bool enable_coalescing = true;

    /// Optional per-phase nparcels schedule (Fig. 9); when shorter than
    /// `phases`, the last entry sticks.  Empty = constant parameters.
    std::vector<std::size_t> nparcels_schedule;
};

struct toy_phase_result
{
    unsigned phase = 0;
    std::size_t nparcels = 0;    ///< value in effect during the phase
    phase_metrics metrics;
};

struct toy_result
{
    std::vector<toy_phase_result> phases;
    double total_s = 0.0;
};

/// Run the toy application SPMD on the runtime's (>= 2) localities.
/// Each locality sends to its partner: locality i exchanges with
/// locality i^1, matching the two-node setup of the paper.
toy_result run_toy_app(runtime& rt, toy_params const& params);

}    // namespace coal::apps
