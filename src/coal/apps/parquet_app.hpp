#pragma once

/// \file parquet_app.hpp
/// Scaled-down stand-in for the Parquet application (§IV-C).
///
/// The real self-consistent parquet solver is a quantum many-body code
/// whose distributed structure — the part that matters for coalescing —
/// is: rank-3 tensors of complex doubles of linear dimension Nc spread
/// over L localities; each iteration runs local contraction work and a
/// *rotation phase* in which `8·Nc²` parcels of `Nc` complex doubles are
/// broadcast between localities with no inter-message dependencies, then
/// an iteration barrier.  This module reproduces that communication
/// skeleton with real payloads (receivers accumulate into their tensor
/// block, and a global checksum verifies no parcel was lost or
/// duplicated) and calibrated busy-flops for the contraction work.
/// The physics is replaced; DESIGN.md §2 records the substitution.

#include <coal/apps/measurement.hpp>
#include <coal/core/coalescing_params.hpp>
#include <coal/runtime/runtime.hpp>

#include <complex>
#include <cstdint>
#include <vector>

namespace coal::apps {

struct parquet_params
{
    /// Linear tensor dimension (paper: 512; scaled default fits a laptop:
    /// total parcels per iteration = 8·Nc²).
    std::uint32_t nc = 32;

    unsigned iterations = 3;

    /// Coalescing parameters; the paper's §IV-C trial uses (4, 5000 µs).
    coalescing::coalescing_params coalescing{4, 5000};

    bool enable_coalescing = true;

    /// Modeled contraction work interleaved with sends, per parcel
    /// (dependent FLOPs; ~0.5 µs per 1000 on a modern core).  This is
    /// what creates realistic inter-parcel gaps, making the wait-time
    /// parameter matter (Fig. 8's second axis).
    std::uint64_t compute_flops_per_parcel = 1200;

    /// Optional override of parcels per locality per iteration
    /// (default 8·Nc²/L); tests use small values.
    std::size_t parcels_per_locality = 0;
};

struct parquet_iteration_result
{
    unsigned iteration = 0;
    phase_metrics metrics;
    double cumulative_s = 0.0;    ///< time to *reach completion of* this
                                  ///< iteration (Fig. 6's y-axis)
};

struct parquet_result
{
    std::vector<parquet_iteration_result> iterations;
    double total_s = 0.0;

    /// Checksum validation: true iff every sent element arrived exactly
    /// once (catches lost/duplicated parcels under coalescing).
    bool checksum_ok = false;
    double checksum_error = 0.0;
};

/// Name under which the rotation action is registered.
char const* parquet_action_name();

/// Run the parquet communication skeleton SPMD on all localities
/// (the paper uses 4).
parquet_result run_parquet_app(runtime& rt, parquet_params const& params);

}    // namespace coal::apps
