#include <coal/apps/toy_app.hpp>

#include <coal/common/assert.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/future.hpp>

namespace coal::apps {

std::complex<double> toy_get_cplx()
{
    return std::complex<double>(13.3, -23.8);
}

}    // namespace coal::apps

namespace coal::apps {

char const* toy_action_name()
{
    return toy_get_cplx_action::action_name;
}

toy_result run_toy_app(runtime& rt, toy_params const& params)
{
    COAL_ASSERT_MSG(rt.num_localities() >= 2 &&
            rt.num_localities() % 2 == 0,
        "toy app pairs localities; need an even count >= 2");

    if (params.enable_coalescing)
        rt.enable_coalescing(toy_action_name(), params.coalescing);

    auto nparcels_for_phase = [&params](unsigned phase) -> std::size_t {
        if (params.nparcels_schedule.empty())
            return params.coalescing.nparcels;
        auto const idx = std::min<std::size_t>(
            phase, params.nparcels_schedule.size() - 1);
        return params.nparcels_schedule[idx];
    };

    toy_result result;
    result.phases.reserve(params.phases);
    stopwatch total;

    rt.run_everywhere([&](locality& here) {
        // Pair up: locality i talks to locality i^1.
        agas::locality_id const other{here.id().value() ^ 1u};
        bool const leader = here.id().value() == 0;

        phase_recorder recorder(rt);

        // num_repeats phases of numparcels asyncs each (Listing 1).
        for (unsigned phase = 0; phase != params.phases; ++phase)
        {
            if (leader && params.enable_coalescing)
            {
                coalescing::coalescing_params p = params.coalescing;
                p.nparcels = nparcels_for_phase(phase);
                rt.set_coalescing_params(toy_action_name(), p);
            }
            rt.barrier();
            if (leader)
                recorder.restart();
            rt.barrier();

            std::vector<threading::future<std::complex<double>>> vec;
            vec.reserve(params.parcels_per_phase);
            for (std::size_t i = 0; i != params.parcels_per_phase; ++i)
                vec.push_back(here.async<toy_get_cplx_action>(other));

            threading::wait_all(vec);
            rt.barrier();

            if (leader)
            {
                toy_phase_result pr;
                pr.phase = phase;
                pr.nparcels = params.enable_coalescing ?
                    nparcels_for_phase(phase) :
                    1;
                pr.metrics = recorder.finish();
                result.phases.push_back(pr);
            }
            rt.barrier();
        }
    });

    result.total_s = total.elapsed_s();
    return result;
}

}    // namespace coal::apps
