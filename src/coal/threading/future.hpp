#pragma once

/// \file future.hpp
/// Futures and promises — the coal analogue of HPX's LCOs (local control
/// objects).  Every remote action invocation returns one of these.
///
/// The key property for a task-based runtime: `wait()` on a worker thread
/// does not block the OS thread.  It calls back into the owning
/// scheduler's `run_pending_task()` (help-while-wait), so a one-worker
/// locality can wait for results whose delivery requires more local
/// progress (receiving the response parcel is itself background work).
///
/// Continuations attached with `then()` run inline on the thread that
/// fulfils the promise (the parcel-processing task), matching HPX's
/// `hpx::launch::sync` continuation policy.

#include <coal/common/assert.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/unique_function.hpp>
#include <coal/threading/scheduler.hpp>

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

namespace coal::threading {

class future_error : public std::logic_error
{
public:
    using std::logic_error::logic_error;
};

namespace detail {

/// Maps void to a storable unit type.
struct void_result
{
};

template <typename T>
using storage_t = std::conditional_t<std::is_void_v<T>, void_result, T>;

template <typename T>
class shared_state
{
public:
    using value_type = storage_t<T>;

    bool is_ready() const noexcept
    {
        return ready_.load(std::memory_order_acquire);
    }

    template <typename... Args>
    void set_value(Args&&... args)
    {
        std::vector<unique_function<void()>> continuations;
        {
            std::lock_guard lock(mutex_);
            COAL_ASSERT_MSG(!ready_flagged_, "promise already satisfied");
            result_.template emplace<1>(std::forward<Args>(args)...);
            ready_flagged_ = true;
            ready_.store(true, std::memory_order_release);
            continuations.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : continuations)
            c();
    }

    void set_exception(std::exception_ptr ep)
    {
        std::vector<unique_function<void()>> continuations;
        {
            std::lock_guard lock(mutex_);
            COAL_ASSERT_MSG(!ready_flagged_, "promise already satisfied");
            result_.template emplace<2>(std::move(ep));
            ready_flagged_ = true;
            ready_.store(true, std::memory_order_release);
            continuations.swap(continuations_);
        }
        cv_.notify_all();
        for (auto& c : continuations)
            c();
    }

    /// Wait until ready.  Worker threads help; others block on the cv.
    void wait()
    {
        if (is_ready())
            return;

        if (scheduler* sched = scheduler::current())
        {
            // Help-while-wait: keep the worker productive and, more
            // importantly, keep background (network) progress alive.
            // When there is nothing to help with, back off to a yield so
            // the network/timer threads get CPU on small machines.
            unsigned idle = 0;
            while (!is_ready())
            {
                if (sched->run_pending_task())
                {
                    idle = 0;
                }
                else if (++idle < 64)
                {
                    cpu_relax();
                }
                else
                {
                    std::this_thread::yield();
                }
            }
            return;
        }

        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return ready_flagged_; });
    }

    /// Wait with timeout; returns readiness.
    bool wait_for_us(std::int64_t timeout_us)
    {
        if (is_ready())
            return true;
        auto const deadline = std::chrono::steady_clock::now() +
            std::chrono::microseconds(timeout_us);

        if (scheduler* sched = scheduler::current())
        {
            unsigned idle = 0;
            while (!is_ready())
            {
                if (std::chrono::steady_clock::now() >= deadline)
                    return is_ready();
                if (sched->run_pending_task())
                    idle = 0;
                else if (++idle < 64)
                    cpu_relax();
                else
                    std::this_thread::yield();
            }
            return true;
        }

        std::unique_lock lock(mutex_);
        return cv_.wait_until(lock, deadline, [&] { return ready_flagged_; });
    }

    value_type& get()
    {
        wait();
        std::lock_guard lock(mutex_);
        if (result_.index() == 2)
            std::rethrow_exception(std::get<2>(result_));
        return std::get<1>(result_);
    }

    bool has_exception()
    {
        std::lock_guard lock(mutex_);
        return result_.index() == 2;
    }

    /// Attach a continuation; runs immediately if already ready.
    void add_continuation(unique_function<void()> fn)
    {
        {
            std::lock_guard lock(mutex_);
            if (!ready_flagged_)
            {
                continuations_.push_back(std::move(fn));
                return;
            }
        }
        fn();
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::variant<std::monostate, value_type, std::exception_ptr> result_;
    std::vector<unique_function<void()>> continuations_;
    bool ready_flagged_ = false;
    std::atomic<bool> ready_{false};
};

}    // namespace detail

template <typename T>
class promise;

template <typename T>
class future
{
public:
    future() noexcept = default;

    explicit future(std::shared_ptr<detail::shared_state<T>> state) noexcept
      : state_(std::move(state))
    {
    }

    [[nodiscard]] bool valid() const noexcept
    {
        return state_ != nullptr;
    }

    [[nodiscard]] bool is_ready() const noexcept
    {
        return state_ && state_->is_ready();
    }

    void wait() const
    {
        COAL_ASSERT_MSG(valid(), "wait() on invalid future");
        state_->wait();
    }

    bool wait_for_us(std::int64_t timeout_us) const
    {
        COAL_ASSERT_MSG(valid(), "wait_for_us() on invalid future");
        return state_->wait_for_us(timeout_us);
    }

    /// Retrieve the value (moves it out; single retrieval like std).
    T get()
    {
        COAL_ASSERT_MSG(valid(), "get() on invalid future");
        auto state = std::move(state_);
        if constexpr (std::is_void_v<T>)
        {
            state->get();
            return;
        }
        else
        {
            return std::move(state->get());
        }
    }

    /// Attach a continuation receiving this future (ready) and yielding a
    /// new future of the callback's result.
    template <typename F>
    auto then(F&& f) -> future<std::invoke_result_t<F, future<T>&&>>;

private:
    std::shared_ptr<detail::shared_state<T>> state_;
};

template <typename T>
class promise
{
public:
    promise()
      : state_(std::make_shared<detail::shared_state<T>>())
    {
    }

    promise(promise&&) noexcept = default;
    promise& operator=(promise&&) noexcept = default;
    promise(promise const&) = delete;
    promise& operator=(promise const&) = delete;

    [[nodiscard]] future<T> get_future()
    {
        COAL_ASSERT_MSG(!future_retrieved_, "future already retrieved");
        future_retrieved_ = true;
        return future<T>(state_);
    }

    template <typename U = T>
        requires(!std::is_void_v<U>)
    void set_value(U value)
    {
        state_->set_value(std::move(value));
    }

    template <typename U = T>
        requires(std::is_void_v<U>)
    void set_value()
    {
        state_->set_value();
    }

    void set_exception(std::exception_ptr ep)
    {
        state_->set_exception(std::move(ep));
    }

    [[nodiscard]] std::shared_ptr<detail::shared_state<T>> state() const
    {
        return state_;
    }

private:
    std::shared_ptr<detail::shared_state<T>> state_;
    bool future_retrieved_ = false;
};

template <typename T>
template <typename F>
auto future<T>::then(F&& f) -> future<std::invoke_result_t<F, future<T>&&>>
{
    using R = std::invoke_result_t<F, future<T>&&>;
    COAL_ASSERT_MSG(valid(), "then() on invalid future");

    promise<R> next;
    auto next_future = next.get_future();
    auto state = state_;

    state->add_continuation(
        [state, p = std::move(next), fn = std::forward<F>(f)]() mutable {
            try
            {
                if constexpr (std::is_void_v<R>)
                {
                    fn(future<T>(state));
                    p.set_value();
                }
                else
                {
                    p.set_value(fn(future<T>(state)));
                }
            }
            catch (...)
            {
                p.set_exception(std::current_exception());
            }
        });

    state_.reset();
    return next_future;
}

/// Create an already-satisfied future.
template <typename T>
[[nodiscard]] future<std::decay_t<T>> make_ready_future(T&& value)
{
    promise<std::decay_t<T>> p;
    auto f = p.get_future();
    p.set_value(std::forward<T>(value));
    return f;
}

[[nodiscard]] inline future<void> make_ready_future()
{
    promise<void> p;
    auto f = p.get_future();
    p.set_value();
    return f;
}

/// Wait for every future in the range (HPX's hpx::wait_all).
template <typename T>
void wait_all(std::vector<future<T>>& futures)
{
    for (auto& f : futures)
        f.wait();
}

/// Combine a vector of futures into one future that becomes ready when
/// all inputs are ready (values/exceptions stay in the inputs).
template <typename T>
[[nodiscard]] future<void> when_all(std::vector<future<T>>& futures)
{
    struct all_state
    {
        explicit all_state(std::size_t n)
          : remaining(n)
        {
        }
        std::atomic<std::size_t> remaining;
        promise<void> done;
    };

    auto shared = std::make_shared<all_state>(futures.size());
    auto result = shared->done.get_future();

    if (futures.empty())
    {
        shared->done.set_value();
        return result;
    }

    for (auto& f : futures)
    {
        f.then([shared](future<T>&&) {
            if (shared->remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1)
            {
                shared->done.set_value();
            }
        });
    }
    return result;
}

}    // namespace coal::threading
