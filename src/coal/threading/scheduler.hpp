#pragma once

/// \file scheduler.hpp
/// Lightweight-task scheduler: the coal analogue of HPX's threading
/// subsystem.
///
/// Each locality owns one scheduler with N OS worker threads.  Workers
/// run queued tasks (the analogue of HPX threads), stealing from each
/// other when their own deque is empty, and — crucially for this paper —
/// execute registered *background work* between tasks: parcelport send
/// and receive progress, exactly where HPX performs network protocol
/// work.  The time spent in each activity is accounted separately
/// (instrumentation.hpp), which is what makes the paper's
/// `/threads/background-overhead` metric observable from inside the
/// runtime.
///
/// Waiting inside a task must not block the worker: future::wait calls
/// back into `run_pending_task()` (help-while-wait), so a single-worker
/// locality can wait for remote results that require further local
/// progress.

#include <coal/common/mpmc_queue.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/unique_function.hpp>
#include <coal/threading/instrumentation.hpp>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace coal::threading {

using task_type = unique_function<void()>;

/// Background work hook.  Returns true when it made progress; the idle
/// loop uses that to decide whether to back off.  May be invoked
/// concurrently from several workers and must be thread-safe.
using background_fn = std::function<bool()>;

struct scheduler_config
{
    unsigned num_workers = 1;
    bool enable_stealing = true;
    /// How long an idle worker sleeps between background polls (µs).
    /// Short enough that receive progress stays responsive.
    std::int64_t idle_sleep_us = 100;
    std::string name = "worker";
};

class scheduler
{
public:
    explicit scheduler(scheduler_config config);
    ~scheduler();

    scheduler(scheduler const&) = delete;
    scheduler& operator=(scheduler const&) = delete;

    /// Enqueue a task.  Called from workers (goes to the local deque) or
    /// any external thread (round-robin across workers).
    void post(task_type task);

    /// Enqueue a batch of tasks: contiguous slices land on successive
    /// worker deques under ONE lock acquisition per deque, and at most
    /// min(n, num_workers) sleeping workers are woken — the bulk-spawn
    /// primitive of the batched receive pipeline.  From a worker thread
    /// the whole batch goes to the local deque, preserving FIFO order
    /// with respect to each other and to prior posts from that worker.
    void post_n(std::vector<task_type>&& tasks);

    /// Execute one pending task or one round of background work.
    /// Returns true if anything ran.  Safe from worker threads (the
    /// help-while-wait path) and from external threads.
    bool run_pending_task();

    /// Register a background work hook.  Thread-safe; takes effect for
    /// subsequent polls.
    void register_background_work(background_fn fn);

    /// Tasks posted but not yet finished executing.
    [[nodiscard]] std::uint64_t pending_tasks() const noexcept
    {
        return pending_.load(std::memory_order_acquire);
    }

    /// Block the calling (non-worker) thread until no task is pending.
    /// Background work keeps running; new posts restart the wait.
    void wait_idle();

    /// Stop all workers.  Remaining queued tasks are executed first
    /// (drain), then workers join.
    void stop();

    [[nodiscard]] bool stopped() const noexcept
    {
        return stopped_.load(std::memory_order_acquire);
    }

    [[nodiscard]] scheduler_snapshot snapshot() const noexcept
    {
        return instrumentation_.snapshot();
    }

    /// Credit externally performed background (network) time, e.g. a
    /// coalescing flush executed on the timer thread.
    void add_external_background_ns(std::int64_t ns) noexcept
    {
        instrumentation_.add_external_background_ns(ns);
    }

    [[nodiscard]] unsigned num_workers() const noexcept
    {
        return static_cast<unsigned>(workers_.size());
    }

    /// True when the calling thread is one of *this* scheduler's workers.
    [[nodiscard]] bool on_worker_thread() const noexcept;

    /// The scheduler owning the calling worker thread, or nullptr when
    /// called from a non-worker thread.  Used by future::wait to find the
    /// help-while-wait target.
    static scheduler* current();

private:
    struct worker_queue
    {
        spinlock lock;
        std::deque<task_type> tasks;
    };

    void worker_loop(std::size_t index);
    bool try_pop(std::size_t index, task_type& out);
    bool try_steal(std::size_t index, task_type& out);
    void execute(task_type task, worker_counters& counters);
    bool do_background_work(worker_counters* counters);

    scheduler_config config_;
    std::uint64_t const uid_;    ///< process-unique (cache invalidation)
    instrumentation instrumentation_;

    std::vector<std::unique_ptr<worker_queue>> queues_;
    std::atomic<std::size_t> next_queue_{0};

    std::vector<background_fn> background_;
    std::atomic<std::uint64_t> background_version_{0};
    mutable spinlock background_lock_;

    std::atomic<std::uint64_t> pending_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> stopped_{false};

    std::mutex idle_mutex_;
    std::condition_variable idle_cv_;

    std::mutex wake_mutex_;
    std::condition_variable wake_cv_;

    std::vector<std::thread> workers_;
};

}    // namespace coal::threading
