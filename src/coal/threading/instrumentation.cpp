#include <coal/threading/instrumentation.hpp>

namespace coal::threading {

scheduler_snapshot scheduler_snapshot::since(
    scheduler_snapshot const& earlier) const noexcept
{
    scheduler_snapshot delta;
    delta.tasks_executed = tasks_executed - earlier.tasks_executed;
    delta.func_time_ns = func_time_ns - earlier.func_time_ns;
    delta.exec_time_ns = exec_time_ns - earlier.exec_time_ns;
    delta.background_time_ns =
        background_time_ns - earlier.background_time_ns;
    delta.background_calls = background_calls - earlier.background_calls;
    delta.idle_poll_time_ns =
        idle_poll_time_ns - earlier.idle_poll_time_ns;
    delta.tasks_stolen = tasks_stolen - earlier.tasks_stolen;
    delta.idle_loops = idle_loops - earlier.idle_loops;
    delta.bulk_posts = bulk_posts - earlier.bulk_posts;
    delta.bulk_posted_tasks = bulk_posted_tasks - earlier.bulk_posted_tasks;
    return delta;
}

instrumentation::instrumentation(std::size_t workers)
  : counters_(workers)
{
}

scheduler_snapshot instrumentation::snapshot() const noexcept
{
    scheduler_snapshot s;
    for (auto const& block : counters_)
    {
        auto const& c = *block;
        s.tasks_executed += c.tasks_executed.load(std::memory_order_relaxed);
        s.func_time_ns += c.func_time_ns.load(std::memory_order_relaxed);
        s.exec_time_ns += c.exec_time_ns.load(std::memory_order_relaxed);
        s.background_time_ns +=
            c.background_time_ns.load(std::memory_order_relaxed);
        s.background_calls +=
            c.background_calls.load(std::memory_order_relaxed);
        s.idle_poll_time_ns +=
            c.idle_poll_time_ns.load(std::memory_order_relaxed);
        s.tasks_stolen += c.tasks_stolen.load(std::memory_order_relaxed);
        s.idle_loops += c.idle_loops.load(std::memory_order_relaxed);
    }
    s.background_time_ns +=
        external_background_ns_.load(std::memory_order_relaxed);
    s.bulk_posts = bulk_posts_.load(std::memory_order_relaxed);
    s.bulk_posted_tasks = bulk_posted_tasks_.load(std::memory_order_relaxed);
    return s;
}

}    // namespace coal::threading
