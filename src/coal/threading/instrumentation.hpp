#pragma once

/// \file instrumentation.hpp
/// Scheduler instrumentation backing the paper's metrics (§III):
///
///   Eq. 1  task duration        t_d  = Σ t_func
///   Eq. 2  task overhead        t_o  = (Σ t_func − Σ t_exec) / n_t
///   Eq. 3  background duration  t_bd = Σ t_background
///   Eq. 4  network overhead     n_oh = Σ t_background / Σ t_func
///
/// Each worker owns a cache-line-padded block updated with relaxed
/// atomics at task granularity; snapshots aggregate across workers.
/// `external_background_ns` collects network work done off the worker
/// threads (e.g. a flush performed on the timer thread) so Eq. 3/4 see
/// all of it.

#include <coal/common/cacheline.hpp>

#include <atomic>
#include <cstdint>
#include <vector>

namespace coal::threading {

/// Per-worker hot counters; single writer (the worker), racy readers.
struct worker_counters
{
    std::atomic<std::uint64_t> tasks_executed{0};
    std::atomic<std::int64_t> func_time_ns{0};    ///< Σ t_func
    std::atomic<std::int64_t> exec_time_ns{0};    ///< Σ t_exec
    std::atomic<std::int64_t> background_time_ns{0};
    std::atomic<std::uint64_t> background_calls{0};
    /// Time in background polls that found nothing to do.  Kept OUT of
    /// Eq. 3/4: an idle worker polling the (empty) parcelport while a
    /// task waits is not "processing information to be communicated",
    /// and folding it in would make the network-overhead metric track
    /// wait time instead of per-message cost.
    std::atomic<std::int64_t> idle_poll_time_ns{0};
    std::atomic<std::uint64_t> tasks_stolen{0};
    std::atomic<std::uint64_t> idle_loops{0};
};

/// Point-in-time aggregate over all workers of one scheduler.
struct scheduler_snapshot
{
    std::uint64_t tasks_executed = 0;
    std::int64_t func_time_ns = 0;
    std::int64_t exec_time_ns = 0;
    std::int64_t background_time_ns = 0;
    std::uint64_t background_calls = 0;
    std::int64_t idle_poll_time_ns = 0;
    std::uint64_t tasks_stolen = 0;
    std::uint64_t idle_loops = 0;
    /// Bulk-spawn (post_n) activity: batches and tasks enqueued through
    /// the batched receive pipeline's one-lock-per-deque path.
    std::uint64_t bulk_posts = 0;
    std::uint64_t bulk_posted_tasks = 0;

    /// Eq. 1: cumulative task duration (ns).
    [[nodiscard]] std::int64_t task_duration_ns() const noexcept
    {
        return func_time_ns;
    }

    /// Eq. 2: average per-task management overhead (ns/task).
    [[nodiscard]] double average_task_overhead_ns() const noexcept
    {
        if (tasks_executed == 0)
            return 0.0;
        return static_cast<double>(func_time_ns - exec_time_ns) /
            static_cast<double>(tasks_executed);
    }

    /// Eq. 3: cumulative background-work duration (ns).
    [[nodiscard]] std::int64_t background_duration_ns() const noexcept
    {
        return background_time_ns;
    }

    /// Eq. 4: the paper's network-overhead metric (dimensionless ratio in
    /// [0,1)).  In HPX, background work executes *as* HPX threads, so the
    /// paper's Σt_func denominator includes the background time; this
    /// scheduler accounts the two separately, hence the explicit sum.
    [[nodiscard]] double network_overhead() const noexcept
    {
        double const denominator =
            static_cast<double>(func_time_ns + background_time_ns);
        if (denominator <= 0.0)
            return 0.0;
        return static_cast<double>(background_time_ns) / denominator;
    }

    /// Difference of two snapshots — per-phase deltas for Fig. 9.
    [[nodiscard]] scheduler_snapshot since(
        scheduler_snapshot const& earlier) const noexcept;
};

/// Owns the per-worker counter blocks plus an external-contribution slot.
class instrumentation
{
public:
    explicit instrumentation(std::size_t workers);

    [[nodiscard]] worker_counters& worker(std::size_t index) noexcept
    {
        return *counters_[index];
    }

    /// Credit background time performed outside worker threads.
    void add_external_background_ns(std::int64_t ns) noexcept
    {
        external_background_ns_.fetch_add(ns, std::memory_order_relaxed);
    }

    /// Record one post_n batch of `tasks` tasks.
    void add_bulk_post(std::uint64_t tasks) noexcept
    {
        bulk_posts_.fetch_add(1, std::memory_order_relaxed);
        bulk_posted_tasks_.fetch_add(tasks, std::memory_order_relaxed);
    }

    [[nodiscard]] scheduler_snapshot snapshot() const noexcept;

    [[nodiscard]] std::size_t worker_count() const noexcept
    {
        return counters_.size();
    }

private:
    std::vector<cache_aligned<worker_counters>> counters_;
    std::atomic<std::int64_t> external_background_ns_{0};
    std::atomic<std::uint64_t> bulk_posts_{0};
    std::atomic<std::uint64_t> bulk_posted_tasks_{0};
};

}    // namespace coal::threading
