#include <coal/threading/scheduler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>

#include <chrono>

namespace coal::threading {

namespace {

// Identifies the worker context of the calling thread, if any.
struct worker_context
{
    scheduler* owner = nullptr;
    std::size_t index = 0;
};

thread_local worker_context t_worker;

std::atomic<std::uint64_t> g_scheduler_uid{1};

}    // namespace

scheduler::scheduler(scheduler_config config)
  : config_(config)
  , uid_(g_scheduler_uid.fetch_add(1, std::memory_order_relaxed))
  , instrumentation_(config.num_workers == 0 ? 1 : config.num_workers)
{
    COAL_ASSERT_MSG(config_.num_workers > 0, "scheduler needs >= 1 worker");

    queues_.reserve(config_.num_workers);
    for (unsigned i = 0; i != config_.num_workers; ++i)
        queues_.push_back(std::make_unique<worker_queue>());

    workers_.reserve(config_.num_workers);
    for (unsigned i = 0; i != config_.num_workers; ++i)
        workers_.emplace_back([this, i] { worker_loop(i); });
}

scheduler::~scheduler()
{
    stop();
}

void scheduler::post(task_type task)
{
    COAL_ASSERT_MSG(
        !stopped_.load(std::memory_order_acquire), "post after stop()");
    pending_.fetch_add(1, std::memory_order_acq_rel);

    std::size_t index;
    if (t_worker.owner == this)
    {
        index = t_worker.index;
    }
    else
    {
        index = next_queue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
    }

    {
        std::lock_guard lock(queues_[index]->lock);
        queues_[index]->tasks.push_back(std::move(task));
    }
    wake_cv_.notify_one();
}

void scheduler::post_n(std::vector<task_type>&& tasks)
{
    if (tasks.empty())
        return;
    COAL_ASSERT_MSG(
        !stopped_.load(std::memory_order_acquire), "post_n after stop()");

    std::size_t const n = tasks.size();
    pending_.fetch_add(n, std::memory_order_acq_rel);
    instrumentation_.add_bulk_post(n);

    if (t_worker.owner == this)
    {
        // Whole batch onto the local deque: keeps the batch FIFO with
        // respect to itself and to earlier posts from this worker (the
        // receive pipeline relies on this for per-source order on a
        // single-worker locality).
        auto& q = *queues_[t_worker.index];
        std::lock_guard lock(q.lock);
        for (auto& task : tasks)
            q.tasks.push_back(std::move(task));
    }
    else
    {
        // Contiguous slices round-robin across deques: one lock
        // acquisition per deque, and each worker receives a run of
        // adjacent chunks (adjacent chunks share the frame slab, so
        // slice placement preserves cache locality).
        std::size_t const nq = queues_.size();
        std::size_t const slices = n < nq ? n : nq;
        std::size_t const start =
            next_queue_.fetch_add(slices, std::memory_order_relaxed);
        std::size_t const per = n / slices;
        std::size_t extra = n % slices;
        std::size_t taken = 0;
        for (std::size_t s = 0; s != slices; ++s)
        {
            std::size_t const take = per + (extra != 0 ? 1 : 0);
            if (extra != 0)
                --extra;
            auto& q = *queues_[(start + s) % nq];
            std::lock_guard lock(q.lock);
            for (std::size_t i = 0; i != take; ++i)
                q.tasks.push_back(std::move(tasks[taken + i]));
            taken += take;
        }
    }
    tasks.clear();

    // Wake only as many sleeping workers as there are tasks to run; a
    // full notify_all for a two-task batch would stampede every idle
    // worker through its steal loop for nothing.
    if (n >= workers_.size())
    {
        wake_cv_.notify_all();
    }
    else
    {
        for (std::size_t i = 0; i != n; ++i)
            wake_cv_.notify_one();
    }
}

bool scheduler::try_pop(std::size_t index, task_type& out)
{
    auto& q = *queues_[index];
    std::lock_guard lock(q.lock);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
}

bool scheduler::try_steal(std::size_t thief, task_type& out)
{
    if (!config_.enable_stealing)
        return false;
    std::size_t const n = queues_.size();
    for (std::size_t offset = 1; offset < n; ++offset)
    {
        auto& victim = *queues_[(thief + offset) % n];
        std::lock_guard lock(victim.lock);
        if (!victim.tasks.empty())
        {
            // Steal from the opposite end to reduce contention with the
            // owner and preserve the owner's locality.
            out = std::move(victim.tasks.back());
            victim.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void scheduler::execute(task_type task, worker_counters& counters)
{
    std::int64_t const t_start = now_ns();
    task();
    std::int64_t const t_exec_end = now_ns();

    // Bookkeeping below (counter updates) is the task-management overhead
    // of Eq. 2.
    counters.exec_time_ns.fetch_add(
        t_exec_end - t_start, std::memory_order_relaxed);
    counters.tasks_executed.fetch_add(1, std::memory_order_relaxed);

    std::int64_t const t_end = now_ns();
    counters.func_time_ns.fetch_add(
        t_end - t_start, std::memory_order_relaxed);

    // Decrement pending_ only after all accounting: a wait_idle() caller
    // woken by this notification must observe a consistent snapshot
    // (func >= exec, all 100 of 100 tasks counted).
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        idle_cv_.notify_all();
}

bool scheduler::do_background_work(worker_counters* counters)
{
    // Hooks are registered once at startup but polled once per task, so
    // each thread keeps a cached snapshot refreshed on version change.
    thread_local std::vector<background_fn> hooks;
    thread_local std::uint64_t hooks_version = ~std::uint64_t{0};
    thread_local std::uint64_t hooks_owner = 0;

    std::uint64_t const version =
        background_version_.load(std::memory_order_acquire);
    if (hooks_version != version || hooks_owner != uid_)
    {
        std::lock_guard lock(background_lock_);
        hooks = background_;
        hooks_version = version;
        hooks_owner = uid_;
    }
    if (hooks.empty())
        return false;

    std::int64_t const t_start = now_ns();
    bool made_progress = false;
    for (auto const& hook : hooks)
    {
        if (hook())
            made_progress = true;
    }
    std::int64_t const elapsed = now_ns() - t_start;

    if (counters != nullptr)
    {
        // Only polls that performed work count toward Σt_bg (Eq. 3/4);
        // empty polls from help-while-wait loops would otherwise inflate
        // the network-overhead metric with plain waiting time.
        if (made_progress)
        {
            counters->background_time_ns.fetch_add(
                elapsed, std::memory_order_relaxed);
        }
        else
        {
            counters->idle_poll_time_ns.fetch_add(
                elapsed, std::memory_order_relaxed);
        }
        counters->background_calls.fetch_add(1, std::memory_order_relaxed);
    }
    else if (made_progress)
    {
        instrumentation_.add_external_background_ns(elapsed);
    }
    return made_progress;
}

void scheduler::worker_loop(std::size_t index)
{
    t_worker.owner = this;
    t_worker.index = index;

    auto& counters = instrumentation_.worker(index);

    while (!stopping_.load(std::memory_order_acquire))
    {
        task_type task;
        if (try_pop(index, task))
        {
            execute(std::move(task), counters);
            // Poll the network once per task so send queues drain even
            // under a task flood.
            do_background_work(&counters);
            continue;
        }
        if (try_steal(index, task))
        {
            counters.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
            execute(std::move(task), counters);
            do_background_work(&counters);
            continue;
        }

        // No tasks: make background progress; if even that was idle,
        // sleep briefly (woken early by post()).
        bool const progressed = do_background_work(&counters);
        if (!progressed)
        {
            counters.idle_loops.fetch_add(1, std::memory_order_relaxed);
            std::unique_lock lock(wake_mutex_);
            wake_cv_.wait_for(
                lock, std::chrono::microseconds(config_.idle_sleep_us));
        }
    }

    // Drain phase: finish whatever is still queued (stop() guarantees no
    // new posts race with this).
    task_type task;
    while (try_pop(index, task) || try_steal(index, task))
    {
        execute(std::move(task), counters);
        do_background_work(&counters);
    }

    t_worker.owner = nullptr;
}

bool scheduler::run_pending_task()
{
    worker_counters* counters = nullptr;
    std::size_t start = 0;
    if (t_worker.owner == this)
    {
        counters = &instrumentation_.worker(t_worker.index);
        start = t_worker.index;
    }

    task_type task;
    std::size_t const n = queues_.size();
    for (std::size_t offset = 0; offset < n; ++offset)
    {
        if (try_pop((start + offset) % n, task))
        {
            if (counters != nullptr)
            {
                execute(std::move(task), *counters);
            }
            else
            {
                // External helper thread: account the run but do not
                // attribute it to a worker block.
                task();
                if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1)
                    idle_cv_.notify_all();
            }
            return true;
        }
    }
    return do_background_work(counters);
}

void scheduler::register_background_work(background_fn fn)
{
    {
        std::lock_guard lock(background_lock_);
        background_.push_back(std::move(fn));
    }
    background_version_.fetch_add(1, std::memory_order_release);
}

void scheduler::wait_idle()
{
    // Timed re-check avoids a lost wakeup: the decrement in execute() and
    // this wait do not share a lock, so a notify can land between the
    // predicate check and the sleep.
    std::unique_lock lock(idle_mutex_);
    while (pending_.load(std::memory_order_acquire) != 0)
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
}

void scheduler::stop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
    {
        // Another stop() already ran (or is running): just make sure the
        // workers are joined before returning.
        for (auto& w : workers_)
        {
            if (w.joinable())
                w.join();
        }
        return;
    }

    wake_cv_.notify_all();
    for (auto& w : workers_)
    {
        if (w.joinable())
            w.join();
    }
    stopped_.store(true, std::memory_order_release);
    idle_cv_.notify_all();
}

bool scheduler::on_worker_thread() const noexcept
{
    return t_worker.owner == this;
}

scheduler* scheduler::current()
{
    return t_worker.owner;
}

}    // namespace coal::threading
