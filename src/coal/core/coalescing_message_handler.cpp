#include <coal/core/coalescing_message_handler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/trace/tracer.hpp>

#include <utility>

namespace coal::coalescing {

coalescing_message_handler::coalescing_message_handler(std::string name,
    parcel::parcelhandler& parcels, timing::deadline_timer_service& timers,
    shared_params_ptr params, std::shared_ptr<coalescing_counters> counters)
  : name_(std::move(name))
  , parcels_(parcels)
  , timers_(timers)
  , params_(std::move(params))
  , counters_(std::move(counters))
{
    COAL_ASSERT(params_ != nullptr);
    COAL_ASSERT(counters_ != nullptr);
}

coalescing_message_handler::~coalescing_message_handler()
{
    // Disarm: no new timers after this, and flush() below cancels the
    // pending ones (detach_batch).
    {
        std::lock_guard lock(mutex_);
        stopped_ = true;
    }
    flush();
    // A timer callback that already popped its entry cannot be
    // cancelled; wait until the timer thread is out of callbacks so none
    // can touch this handler post-destruction.  (Safe: mutex_ is not
    // held here, so an in-flight on_timer can complete.)
    timers_.synchronize();
}

void coalescing_message_handler::send_batch(
    std::uint32_t dst, std::vector<parcel::parcel>&& batch)
{
    // Callers hold mutex_.  Handing the batch to the parcelhandler under
    // the lock is what guarantees per-destination FIFO: a timer flush and
    // a size-triggered flush would otherwise race between detaching a
    // batch and queueing it for transmission.  send_message only moves
    // the batch into the outbound queue (no network work, no locks that
    // can call back into this handler), so holding mutex_ is safe.
    counters_->record_message(batch.size());
    parcels_.send_message(dst, std::move(batch));
}

void coalescing_message_handler::enqueue(parcel::parcel&& p)
{
    coalescing_params const params = params_->get();
    std::int64_t const gap_ns = counters_->record_parcel();

    // Disabled: pass through, one parcel per message.
    if (!params.coalescing_enabled())
    {
        std::uint32_t const dst = p.dest;
        std::vector<parcel::parcel> single;
        single.push_back(std::move(p));
        std::lock_guard lock(mutex_);
        send_batch(dst, std::move(single));
        return;
    }

    std::uint32_t const dst = p.dest;

    // Per-link circuit breaker: while the reliability layer reports this
    // destination as degraded, batching only stacks coalescing delay on
    // top of retransmission timeouts.  Flush whatever is queued for the
    // link and send this parcel along immediately (effectively
    // nparcels = 1 until the link heals).
    if (parcels_.link_degraded(dst))
    {
        breaker_bypasses_.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::coalescing_bypass, p.action);
        std::lock_guard lock(mutex_);
        std::vector<parcel::parcel> batch;
        if (auto it = queues_.find(dst); it != queues_.end())
            batch = detach_batch(it->second);
        batch.push_back(std::move(p));
        send_batch(dst, std::move(batch));
        return;
    }

    std::unique_lock lock(mutex_);

    if (stopped_)
    {
        // Tear-down path: do not arm new timers, send directly.
        std::vector<parcel::parcel> single;
        single.push_back(std::move(p));
        send_batch(dst, std::move(single));
        return;
    }

    auto& queue = queues_[dst];

    // Sparse-traffic bypass: if parcels arrive further apart than the
    // wait time and nothing is queued, coalescing would only add latency
    // — send directly (this is what "effectively disables" coalescing
    // for sparse phases, §II-B).
    bool const sparse = params.sparse_bypass && gap_ns >= 0 &&
        gap_ns > params.interval_us * 1000;
    if (sparse && queue.parcels.empty())
    {
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::coalescing_bypass, p.action);
        std::vector<parcel::parcel> single;
        single.push_back(std::move(p));
        send_batch(dst, std::move(single));
        return;
    }

    std::uint64_t const action = p.action;
    queue.queued_bytes += p.wire_size();
    queue.parcels.push_back(std::move(p));
    trace::tracer::global().record(parcels_.here(),
        trace::event_kind::coalescing_queued, action,
        queue.parcels.size());

    if (queue.parcels.size() == 1)
    {
        // First parcel: arm the flush timer for this epoch.
        std::uint64_t const epoch = queue.epoch;
        queue.timer = timers_.schedule_after(
            params.interval_us, [this, dst, epoch] { on_timer(dst, epoch); });
    }

    if (queue.parcels.size() >= params.nparcels ||
        queue.queued_bytes >= params.max_buffer_bytes)
    {
        // Queue full: stop the flush timer, flush.
        size_flushes_.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::flush_size, action, queue.parcels.size());
        send_batch(dst, detach_batch(queue));
    }
}

std::vector<parcel::parcel> coalescing_message_handler::detach_batch(
    destination_queue& queue)
{
    if (queue.timer.valid())
    {
        timers_.cancel(queue.timer);
        queue.timer = {};
    }
    ++queue.epoch;    // a late timer for the old epoch becomes a no-op
    queue.queued_bytes = 0;
    return std::exchange(queue.parcels, {});
}

void coalescing_message_handler::on_timer(
    std::uint32_t dst, std::uint64_t epoch)
{
    std::lock_guard lock(mutex_);
    auto it = queues_.find(dst);
    if (it == queues_.end())
        return;
    auto& queue = it->second;
    // The epoch check resolves the race with a size-triggered flush that
    // won the lock before this callback ran.
    if (queue.epoch != epoch || queue.parcels.empty())
        return;
    timer_flushes_.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(parcels_.here(),
        trace::event_kind::flush_timeout, queue.parcels.front().action,
        queue.parcels.size());
    queue.timer = {};    // it just fired; nothing to cancel
    ++queue.epoch;
    queue.queued_bytes = 0;
    send_batch(dst, std::exchange(queue.parcels, {}));
}

void coalescing_message_handler::flush()
{
    std::lock_guard lock(mutex_);
    for (auto& [dst, queue] : queues_)
    {
        if (queue.parcels.empty())
            continue;
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::flush_forced, queue.parcels.front().action,
            queue.parcels.size());
        send_batch(dst, detach_batch(queue));
    }
}

std::size_t coalescing_message_handler::queued_parcels() const
{
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (auto const& [dst, queue] : queues_)
        total += queue.parcels.size();
    return total;
}

}    // namespace coal::coalescing
