#include <coal/core/coalescing_message_handler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/trace/tracer.hpp>

#include <algorithm>
#include <optional>
#include <utility>

namespace coal::coalescing {

coalescing_message_handler::coalescing_message_handler(std::string name,
    parcel::parcelhandler& parcels, timing::deadline_timer_service& timers,
    shared_params_ptr params, std::shared_ptr<coalescing_counters> counters)
  : name_(std::move(name))
  , parcels_(parcels)
  , timers_(timers)
  , params_(std::move(params))
  , counters_(std::move(counters))
{
    COAL_ASSERT(params_ != nullptr);
    COAL_ASSERT(counters_ != nullptr);
}

coalescing_message_handler::~coalescing_message_handler()
{
    // Disarm: enqueues that acquire a shard lock after flush() released
    // it observe stopped_ (the store below happens-before flush()'s
    // critical sections) and send directly without arming timers.
    stopped_.store(true, std::memory_order_release);
    flush();
    // A timer callback that already popped its entry cannot be
    // cancelled; wait until the timer thread is out of callbacks so none
    // can touch this handler post-destruction.  (Safe: no shard lock is
    // held here, so an in-flight on_timer can complete.)
    timers_.synchronize();
}

coalescing_message_handler::destination_queue&
coalescing_message_handler::queue_for_locked(
    queue_shard& shard, std::uint32_t dst)
{
    auto& queue = shard.queues[dst];
    if (queue.stream == 0)
        queue.stream = parcels_.allocate_send_stream();
    return queue;
}

coalescing_message_handler::detached_batch
coalescing_message_handler::detach_batch_locked(destination_queue& queue)
{
    if (queue.timer.valid())
    {
        timers_.cancel(queue.timer);
        queue.timer = {};
    }
    ++queue.epoch;    // a late timer for the old epoch becomes a no-op
    queue.queued_bytes = 0;
    detached_batch batch;
    batch.parcels = std::exchange(queue.parcels, {});
    batch.ticket = {queue.stream, queue.next_ticket++};
    return batch;
}

std::uint32_t coalescing_message_handler::route_of(
    std::uint32_t dst) const noexcept
{
    if (!parcels_.relay_routing())
        return dst;
    net::topology const& topo = parcels_.topo();
    if (topo.same_node(parcels_.here(), dst))
        return dst;
    return node_route_flag | topo.node_of(dst);
}

std::uint32_t coalescing_message_handler::resolve_target(
    std::uint32_t route) const
{
    if ((route & node_route_flag) == 0)
        return route;
    net::topology const& topo = parcels_.topo();
    std::uint32_t const node = route & ~node_route_flag;
    std::uint32_t const first = topo.node_first(node);
    std::uint32_t const size = topo.node_end(node) - first;
    if (size == 0)
        return first;    // malformed topology; let the send fail normally
    // Designated relay: deterministic per source, so this locality's
    // whole node-pair stream funnels through one relay (that
    // concentration is the aggregation win) — but *spread by source*
    // across the node's members, so a node's inbound fan-out work is
    // shared by all of its localities instead of serializing on member
    // 0.  Healthy-cluster fast path: nobody is suspected or dead
    // anywhere, so the preferred member is live by definition — no
    // per-peer locks on the enqueue path.
    std::uint32_t const preferred = parcels_.here() % size;
    if (parcels_.all_peers_live())
        return first + preferred;
    // Self-healing rotation: when the relay dies the failure detector
    // flips its status and the next resolution (flush, retimer, or the
    // death-path flush_message_handlers) lands on the next live member.
    for (std::uint32_t i = 0; i != size; ++i)
    {
        std::uint32_t const cand = first + (preferred + i) % size;
        if (parcels_.peer_liveness(cand) == parcel::peer_status::alive)
            return cand;
    }
    return first + preferred;
}

void coalescing_message_handler::send_batch(
    std::uint32_t route, detached_batch&& batch)
{
    // Runs WITHOUT the shard lock.  Per-route FIFO is preserved by the
    // ticket: sequence numbers were allocated in shard-lock order and
    // the parcelhandler's sequencer releases batches in ticket order, so
    // dropping the lock before this hand-off cannot reorder the wire.
    // A node-pair route resolves to its relay only now, at hand-off —
    // batches queued before a relay death ship to the successor.
    std::size_t const queued = batch.parcels.size();
    counters_->record_message(queued);
    parcels_.send_message(
        resolve_target(route), std::move(batch.parcels), batch.ticket);
    // Only now drop the parcels from the shard's queued gauge:
    // send_message has made them visible in pending_sends(), so a
    // quiescence poll always sees them in at least one count.
    if (batch.gauge != 0)
        shard_for(route).gauge.fetch_sub(
            batch.gauge, std::memory_order_release);
}

void coalescing_message_handler::enqueue(parcel::parcel&& p)
{
    coalescing_params params = params_->get();
    std::int64_t const gap_ns = counters_->record_parcel();
    std::uint32_t const dst = p.dest;

    // Disabled: pass through, one parcel per message (and no relay
    // detour — hierarchy without aggregation would only add a hop).  The
    // parcel still takes a ticket from the destination's stream so it
    // cannot overtake (or be overtaken by) batches detached moments
    // earlier.
    if (!params.coalescing_enabled())
    {
        detached_batch single;
        {
            std::lock_guard lock(shard_for(dst).lock);
            auto& queue = queue_for_locked(shard_for(dst), dst);
            single.ticket = {queue.stream, queue.next_ticket++};
        }
        single.parcels.push_back(std::move(p));
        send_batch(dst, std::move(single));
        return;
    }

    // Hierarchical routing: a cross-node parcel joins its node-pair
    // buffer under the patient inter-node knobs; everything downstream
    // of here keys on `route`, and the wire destination (the node's
    // relay) is resolved only at hand-off.
    std::uint32_t const route = route_of(dst);
    bool const relayed = route != dst;
    if (relayed)
    {
        node_routed_.fetch_add(1, std::memory_order_relaxed);
        params.nparcels = params.effective_inter_nparcels();
        params.interval_us = params.effective_inter_interval_us();
    }
    std::uint32_t const wire_dst = relayed ? resolve_target(route) : dst;

    // Per-link circuit breaker: while the reliability layer reports the
    // wire link (the relay's, for a node route) as degraded, batching
    // only stacks coalescing delay on top of retransmission timeouts.
    // Flush whatever is queued for the route and send this parcel along
    // immediately (effectively nparcels = 1 until the link heals).
    if (parcels_.link_degraded(wire_dst))
    {
        breaker_bypasses_.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::coalescing_bypass, p.action);
        detached_batch batch;
        {
            auto& shard = shard_for(route);
            std::lock_guard lock(shard.lock);
            batch = detach_batch_locked(queue_for_locked(shard, route));
            batch.gauge = batch.parcels.size();
        }
        batch.parcels.push_back(std::move(p));
        send_batch(route, std::move(batch));
        return;
    }

    // Overload protection: under soft (or worse) pressure toward this
    // destination the flow-control layer wants *earlier* flushes, not
    // bigger batches — shrink the batch targets for this enqueue so the
    // queue drains at a quarter of its configured depth.  The configured
    // params are untouched; pressure subsiding restores full batching on
    // the next enqueue.
    if (parcels_.flow_pressure(wire_dst) != pressure_state::ok)
    {
        pressure_shrinks_.fetch_add(1, std::memory_order_relaxed);
        params.nparcels = std::max<std::size_t>(2, params.nparcels / 4);
        params.max_buffer_bytes =
            std::max<std::size_t>(1024, params.max_buffer_bytes / 4);
    }

    auto& shard = shard_for(route);
    std::optional<detached_batch> flush_now;
    {
        std::unique_lock lock(shard.lock);
        auto& queue = queue_for_locked(shard, route);

        if (stopped_.load(std::memory_order_acquire))
        {
            // Tear-down path: do not arm new timers, send directly.
            detached_batch single;
            single.ticket = {queue.stream, queue.next_ticket++};
            lock.unlock();
            single.parcels.push_back(std::move(p));
            send_batch(route, std::move(single));
            return;
        }

        // Sparse-traffic bypass: if parcels arrive further apart than the
        // wait time and nothing is queued, coalescing would only add
        // latency — send directly (this is what "effectively disables"
        // coalescing for sparse phases, §II-B).
        bool const sparse = params.sparse_bypass && gap_ns >= 0 &&
            gap_ns > params.interval_us * 1000;
        if (sparse && queue.parcels.empty())
        {
            detached_batch single;
            single.ticket = {queue.stream, queue.next_ticket++};
            lock.unlock();
            trace::tracer::global().record(parcels_.here(),
                trace::event_kind::coalescing_bypass, p.action);
            single.parcels.push_back(std::move(p));
            send_batch(route, std::move(single));
            return;
        }

        std::uint64_t const action = p.action;
        queue.queued_bytes += p.wire_size();
        queue.parcels.push_back(std::move(p));
        shard.gauge.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::coalescing_queued, action,
            queue.parcels.size());

        if (queue.parcels.size() == 1)
        {
            // First parcel: arm the flush timer for this epoch.
            std::uint64_t const epoch = queue.epoch;
            queue.timer = timers_.schedule_after(params.interval_us,
                [this, route, epoch] { on_timer(route, epoch); });
        }

        if (queue.parcels.size() >= params.nparcels ||
            queue.queued_bytes >= params.max_buffer_bytes)
        {
            // Queue full: stop the flush timer, detach; the hand-off to
            // the parcelhandler happens after the lock is dropped.
            size_flushes_.fetch_add(1, std::memory_order_relaxed);
            trace::tracer::global().record(parcels_.here(),
                trace::event_kind::flush_size, action, queue.parcels.size());
            flush_now = detach_batch_locked(queue);
            flush_now->gauge = flush_now->parcels.size();
        }
    }

    if (flush_now)
        send_batch(route, std::move(*flush_now));
}

void coalescing_message_handler::on_timer(
    std::uint32_t route, std::uint64_t epoch)
{
    auto& shard = shard_for(route);
    detached_batch batch;
    {
        std::lock_guard lock(shard.lock);
        auto it = shard.queues.find(route);
        if (it == shard.queues.end())
            return;
        auto& queue = it->second;
        // The epoch check resolves the race with a size-triggered flush
        // that won the lock before this callback ran.
        if (queue.epoch != epoch || queue.parcels.empty())
            return;
        timer_flushes_.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(parcels_.here(),
            trace::event_kind::flush_timeout, queue.parcels.front().action,
            queue.parcels.size());
        queue.timer = {};    // it just fired; nothing to cancel
        batch = detach_batch_locked(queue);
        batch.gauge = batch.parcels.size();
    }
    send_batch(route, std::move(batch));
}

void coalescing_message_handler::flush()
{
    for (auto& shard : shards_)
    {
        // Detach every non-empty queue in one critical section, then send
        // the batches lock-free; tickets keep each route in order.  Node
        // routes re-resolve their relay here — this is how the death
        // path's flush_message_handlers() moves a node-pair stream to the
        // successor relay.
        std::vector<std::pair<std::uint32_t, detached_batch>> batches;
        {
            std::lock_guard lock(shard.lock);
            for (auto& [route, queue] : shard.queues)
            {
                if (queue.parcels.empty())
                    continue;
                trace::tracer::global().record(parcels_.here(),
                    trace::event_kind::flush_forced,
                    queue.parcels.front().action, queue.parcels.size());
                auto batch = detach_batch_locked(queue);
                batch.gauge = batch.parcels.size();
                batches.emplace_back(route, std::move(batch));
            }
        }
        for (auto& [route, batch] : batches)
            send_batch(route, std::move(batch));
    }
}

std::vector<parcel::parcel> coalescing_message_handler::purge()
{
    std::vector<parcel::parcel> purged;
    for (auto& shard : shards_)
    {
        std::lock_guard lock(shard.lock);
        for (auto& [dst, queue] : shard.queues)
        {
            if (queue.parcels.empty())
                continue;
            if (queue.timer.valid())
            {
                timers_.cancel(queue.timer);
                queue.timer = {};
            }
            ++queue.epoch;    // a pending timer for the old epoch no-ops
            queue.queued_bytes = 0;
            shard.gauge.fetch_sub(
                queue.parcels.size(), std::memory_order_release);
            for (auto& p : queue.parcels)
                purged.push_back(std::move(p));
            queue.parcels.clear();
        }
    }
    return purged;
}

std::size_t coalescing_message_handler::queued_parcels() const
{
    std::size_t total = 0;
    for (auto const& shard : shards_)
        total += shard.gauge.load(std::memory_order_acquire);
    return total;
}

}    // namespace coal::coalescing
