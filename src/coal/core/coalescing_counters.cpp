#include <coal/core/coalescing_counters.hpp>

#include <coal/common/stopwatch.hpp>

namespace coal::coalescing {

coalescing_counters::coalescing_counters(histogram_params arrival_histogram)
  : arrival_histogram_(arrival_histogram, stripe_count)
{
}

std::int64_t coalescing_counters::record_parcel() noexcept
{
    std::int64_t const now = now_ns();
    // The exchange serializes concurrent arrivals into a total order;
    // each arrival measures its gap against the true predecessor in that
    // order, so N parcels always produce exactly N-1 gaps.  It is the
    // only shared cacheline this function writes — everything else lands
    // in the caller's stripe.
    std::int64_t const prev =
        last_arrival_ns_.exchange(now, std::memory_order_acq_rel);

    auto const stripe_idx = current_thread_stripe() & (stripe_count - 1);
    auto& stripe = stripes_[stripe_idx];
    stripe.parcel_count.fetch_add(1, std::memory_order_relaxed);
    if (prev < 0)
        return -1;

    // Two threads can apply their exchanges in the opposite order of
    // their timestamp reads; the resulting gap would be negative by a few
    // ns.  Clamp — a sub-reorder-window gap is indistinguishable from 0.
    std::int64_t const gap_ns = now > prev ? now - prev : 0;

    stripe.gap_sum_ns.fetch_add(gap_ns, std::memory_order_relaxed);
    arrival_histogram_.add(gap_ns / 1000, stripe_idx);
    return gap_ns;
}

void coalescing_counters::record_message(std::size_t parcels) noexcept
{
    messages_.fetch_add(1, std::memory_order_relaxed);
    parcels_in_messages_.fetch_add(parcels, std::memory_order_relaxed);
}

std::uint64_t coalescing_counters::parcels() const noexcept
{
    std::uint64_t total = 0;
    for (auto const& s : stripes_)
        total += s.parcel_count.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t coalescing_counters::gap_count() const noexcept
{
    // The exchange serializes arrivals into a total order in which every
    // parcel but the first measures exactly one gap.
    auto const p = parcels();
    return p > 0 ? p - 1 : 0;
}

double coalescing_counters::average_parcels_per_message() const noexcept
{
    auto const msgs = messages_.load(std::memory_order_relaxed);
    if (msgs == 0)
        return 0.0;
    return static_cast<double>(
               parcels_in_messages_.load(std::memory_order_relaxed)) /
        static_cast<double>(msgs);
}

double coalescing_counters::average_arrival_us() const noexcept
{
    std::uint64_t count = 0;
    std::int64_t sum_ns = 0;
    for (auto const& s : stripes_)
    {
        count += s.parcel_count.load(std::memory_order_relaxed);
        sum_ns += s.gap_sum_ns.load(std::memory_order_relaxed);
    }
    if (count < 2)
        return 0.0;
    return static_cast<double>(sum_ns) / 1000.0 /
        static_cast<double>(count - 1);
}

std::vector<std::int64_t> coalescing_counters::arrival_histogram() const
{
    return arrival_histogram_.serialize();
}

void coalescing_counters::reset() noexcept
{
    messages_.store(0, std::memory_order_relaxed);
    parcels_in_messages_.store(0, std::memory_order_relaxed);
    last_arrival_ns_.store(-1, std::memory_order_release);
    for (auto& s : stripes_)
    {
        s.parcel_count.store(0, std::memory_order_relaxed);
        s.gap_sum_ns.store(0, std::memory_order_relaxed);
    }
    arrival_histogram_.reset();
}

void coalescing_counters::reset_arrival_histogram() noexcept
{
    arrival_histogram_.reset();
}

}    // namespace coal::coalescing
