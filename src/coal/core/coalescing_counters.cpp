#include <coal/core/coalescing_counters.hpp>

#include <coal/common/stopwatch.hpp>

namespace coal::coalescing {

coalescing_counters::coalescing_counters(histogram_params arrival_histogram)
  : arrival_histogram_(arrival_histogram)
{
}

std::int64_t coalescing_counters::record_parcel() noexcept
{
    parcels_.fetch_add(1, std::memory_order_relaxed);

    std::int64_t const now = now_ns();
    std::int64_t gap_ns = -1;
    {
        std::lock_guard lock(arrival_lock_);
        if (last_arrival_ns_ >= 0)
        {
            gap_ns = now - last_arrival_ns_;
            ++gap_count_;
            gap_sum_us_ += static_cast<double>(gap_ns) / 1000.0;
        }
        last_arrival_ns_ = now;
    }
    if (gap_ns >= 0)
        arrival_histogram_.add(gap_ns / 1000);
    return gap_ns;
}

void coalescing_counters::record_message(std::size_t parcels) noexcept
{
    messages_.fetch_add(1, std::memory_order_relaxed);
    parcels_in_messages_.fetch_add(parcels, std::memory_order_relaxed);
}

double coalescing_counters::average_parcels_per_message() const noexcept
{
    auto const msgs = messages_.load(std::memory_order_relaxed);
    if (msgs == 0)
        return 0.0;
    return static_cast<double>(
               parcels_in_messages_.load(std::memory_order_relaxed)) /
        static_cast<double>(msgs);
}

double coalescing_counters::average_arrival_us() const noexcept
{
    std::lock_guard lock(arrival_lock_);
    if (gap_count_ == 0)
        return 0.0;
    return gap_sum_us_ / static_cast<double>(gap_count_);
}

std::vector<std::int64_t> coalescing_counters::arrival_histogram() const
{
    return arrival_histogram_.serialize();
}

void coalescing_counters::reset() noexcept
{
    parcels_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
    parcels_in_messages_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard lock(arrival_lock_);
        last_arrival_ns_ = -1;
        gap_count_ = 0;
        gap_sum_us_ = 0.0;
    }
    arrival_histogram_.reset();
}

void coalescing_counters::reset_arrival_histogram() noexcept
{
    arrival_histogram_.reset();
}

}    // namespace coal::coalescing
