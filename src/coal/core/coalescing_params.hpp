#pragma once

/// \file coalescing_params.hpp
/// The two knobs of the paper's coalescing design (§II-B) plus the
/// memory-safety cap:
///
///  - `nparcels`: how many parcels to coalesce into one message — the
///    paper's primary control (unlike Active Pebbles/AM++/Charm++, which
///    control buffer *size*);
///  - `interval_us`: how long to wait for the queue to fill before the
///    flush timer sends a partial batch;
///  - `max_buffer_bytes`: upper bound on queued payload to avoid memory
///    overflow on large-argument actions.
///
/// A `shared_params` holder allows the adaptive controller (and Fig. 9's
/// mid-run schedule changes) to mutate parameters while traffic flows;
/// readers take a consistent snapshot.

#include <coal/common/cacheline.hpp>
#include <coal/common/spinlock.hpp>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace coal::coalescing {

struct coalescing_params
{
    /// Parcels per message.  <= 1 disables coalescing for the action.
    std::size_t nparcels = 128;

    /// Flush-timer wait time in microseconds.  <= 0 disables coalescing
    /// (every parcel goes out immediately), matching the paper's
    /// "1 µs effectively disables" boundary behaviour.
    std::int64_t interval_us = 4000;

    /// Flush early once queued payload reaches this many bytes.
    std::size_t max_buffer_bytes = 1 << 20;

    /// Algorithm 1's tslp test: send directly when traffic is sparse
    /// (time since last parcel > interval and queue empty).  Exposed so
    /// the ablation bench can quantify the design choice; leave on.
    bool sparse_bypass = true;

    /// Inter-node tier overrides for hierarchical (two-level) routing:
    /// parcels crossing a node boundary aggregate per node *pair* under
    /// these targets instead of the base ones — large and patient, since
    /// the expensive per-message overhead they amortize is the cross-node
    /// one, while the base knobs stay small and latency-sensitive for the
    /// cheap intra-node tier.  0 = derive from the base knobs: nparcels
    /// ×8 (a node-pair buffer drains node_size destination streams at
    /// once, so it fills correspondingly faster) and interval ×1 — the
    /// inter tier grows batches by *size*, never by added flush latency,
    /// so sparse cross-node traffic keeps the application's chosen
    /// latency bound.  Ignored while hierarchical routing is off.
    std::size_t inter_nparcels = 0;
    std::int64_t inter_interval_us = 0;

    [[nodiscard]] bool coalescing_enabled() const noexcept
    {
        return nparcels > 1 && interval_us > 0;
    }

    [[nodiscard]] std::size_t effective_inter_nparcels() const noexcept
    {
        return inter_nparcels != 0 ? inter_nparcels : nparcels * 8;
    }

    [[nodiscard]] std::int64_t effective_inter_interval_us() const noexcept
    {
        return inter_interval_us != 0 ? inter_interval_us : interval_us;
    }

    friend bool operator==(
        coalescing_params const&, coalescing_params const&) = default;
};

/// Mutable parameter cell shared between a request handler, its response
/// handler, and the adaptive controller.
///
/// `get()` sits on every enqueue, so it is a seqlock over atomic fields:
/// readers take a consistent snapshot with two version loads and four
/// relaxed field loads — no shared write, no lock — and retry in the
/// (rare) window where the controller is mid-`set()`.  Writers serialize
/// on a spinlock and bump the version to odd around the field stores.
/// All field accesses are on std::atomic objects, so the retry loop is
/// data-race-free (ThreadSanitizer-clean), unlike a classic memcpy
/// seqlock.
class shared_params
{
public:
    explicit shared_params(coalescing_params initial)
    {
        store_fields(initial);
    }

    [[nodiscard]] coalescing_params get() const
    {
        for (;;)
        {
            std::uint64_t const v1 = version_.load(std::memory_order_acquire);
            if (v1 & 1)
            {
                cpu_relax();    // writer in progress
                continue;
            }
            coalescing_params p;
            p.nparcels = nparcels_.load(std::memory_order_relaxed);
            p.interval_us = interval_us_.load(std::memory_order_relaxed);
            p.max_buffer_bytes =
                max_buffer_bytes_.load(std::memory_order_relaxed);
            p.sparse_bypass = sparse_bypass_.load(std::memory_order_relaxed);
            p.inter_nparcels =
                inter_nparcels_.load(std::memory_order_relaxed);
            p.inter_interval_us =
                inter_interval_us_.load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (version_.load(std::memory_order_relaxed) == v1)
                return p;
        }
    }

    void set(coalescing_params p)
    {
        std::lock_guard lock(write_lock_);
        version_.fetch_add(1, std::memory_order_relaxed);    // odd: in flux
        // The release fence keeps the field stores below from becoming
        // visible before the odd version; the release increment after
        // them keeps them from becoming visible after the even version.
        std::atomic_thread_fence(std::memory_order_release);
        store_fields(p);
        version_.fetch_add(1, std::memory_order_release);    // even: stable
    }

private:
    void store_fields(coalescing_params const& p) noexcept
    {
        nparcels_.store(p.nparcels, std::memory_order_relaxed);
        interval_us_.store(p.interval_us, std::memory_order_relaxed);
        max_buffer_bytes_.store(p.max_buffer_bytes, std::memory_order_relaxed);
        sparse_bypass_.store(p.sparse_bypass, std::memory_order_relaxed);
        inter_nparcels_.store(p.inter_nparcels, std::memory_order_relaxed);
        inter_interval_us_.store(
            p.inter_interval_us, std::memory_order_relaxed);
    }

    spinlock write_lock_;
    std::atomic<std::uint64_t> version_{0};
    std::atomic<std::size_t> nparcels_{128};
    std::atomic<std::int64_t> interval_us_{4000};
    std::atomic<std::size_t> max_buffer_bytes_{1 << 20};
    std::atomic<bool> sparse_bypass_{true};
    std::atomic<std::size_t> inter_nparcels_{0};
    std::atomic<std::int64_t> inter_interval_us_{0};
};

using shared_params_ptr = std::shared_ptr<shared_params>;

}    // namespace coal::coalescing
