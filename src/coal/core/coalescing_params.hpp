#pragma once

/// \file coalescing_params.hpp
/// The two knobs of the paper's coalescing design (§II-B) plus the
/// memory-safety cap:
///
///  - `nparcels`: how many parcels to coalesce into one message — the
///    paper's primary control (unlike Active Pebbles/AM++/Charm++, which
///    control buffer *size*);
///  - `interval_us`: how long to wait for the queue to fill before the
///    flush timer sends a partial batch;
///  - `max_buffer_bytes`: upper bound on queued payload to avoid memory
///    overflow on large-argument actions.
///
/// A `shared_params` holder allows the adaptive controller (and Fig. 9's
/// mid-run schedule changes) to mutate parameters while traffic flows;
/// readers take a consistent snapshot.

#include <coal/common/spinlock.hpp>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace coal::coalescing {

struct coalescing_params
{
    /// Parcels per message.  <= 1 disables coalescing for the action.
    std::size_t nparcels = 128;

    /// Flush-timer wait time in microseconds.  <= 0 disables coalescing
    /// (every parcel goes out immediately), matching the paper's
    /// "1 µs effectively disables" boundary behaviour.
    std::int64_t interval_us = 4000;

    /// Flush early once queued payload reaches this many bytes.
    std::size_t max_buffer_bytes = 1 << 20;

    /// Algorithm 1's tslp test: send directly when traffic is sparse
    /// (time since last parcel > interval and queue empty).  Exposed so
    /// the ablation bench can quantify the design choice; leave on.
    bool sparse_bypass = true;

    [[nodiscard]] bool coalescing_enabled() const noexcept
    {
        return nparcels > 1 && interval_us > 0;
    }

    friend bool operator==(
        coalescing_params const&, coalescing_params const&) = default;
};

/// Mutable parameter cell shared between a request handler, its response
/// handler, and the adaptive controller.
class shared_params
{
public:
    explicit shared_params(coalescing_params initial)
      : params_(initial)
    {
    }

    [[nodiscard]] coalescing_params get() const
    {
        std::lock_guard lock(lock_);
        return params_;
    }

    void set(coalescing_params p)
    {
        std::lock_guard lock(lock_);
        params_ = p;
    }

private:
    mutable spinlock lock_;
    coalescing_params params_;
};

using shared_params_ptr = std::shared_ptr<shared_params>;

}    // namespace coal::coalescing
