#include <coal/core/coalescing_registry.hpp>

#include <coal/common/logging.hpp>
#include <coal/parcel/action_registry.hpp>

namespace coal::coalescing {

coalescing_registry::coalescing_registry(
    parcel::parcelhandler& parcels, timing::deadline_timer_service& timers)
  : parcels_(parcels)
  , timers_(timers)
{
}

bool coalescing_registry::enable(std::string const& action_name,
    coalescing_params params, bool include_responses)
{
    auto const* action =
        parcel::action_registry::instance().find_by_name(action_name);
    if (action == nullptr)
    {
        COAL_LOG_WARN("coalescing",
            "cannot enable coalescing: unknown action '%s'",
            action_name.c_str());
        return false;
    }

    std::lock_guard lock(mutex_);
    auto& entry = entries_[action_name];

    if (entry.params == nullptr)
    {
        entry.params = std::make_shared<shared_params>(params);
        entry.counters = std::make_shared<coalescing_counters>();
    }
    else
    {
        entry.params->set(params);
    }

    if (entry.request_handler == nullptr)
    {
        entry.request_handler = std::make_shared<coalescing_message_handler>(
            action_name, parcels_, timers_, entry.params, entry.counters);
        parcels_.set_message_handler(action->id, entry.request_handler);
    }

    if (include_responses && entry.response_handler == nullptr)
    {
        entry.response_handler = std::make_shared<coalescing_message_handler>(
            action_name + "::response", parcels_, timers_, entry.params,
            entry.counters);
        parcels_.set_message_handler(
            parcel::make_response_id(action->id), entry.response_handler);
    }
    return true;
}

bool coalescing_registry::disable(std::string const& action_name)
{
    auto const* action =
        parcel::action_registry::instance().find_by_name(action_name);

    std::lock_guard lock(mutex_);
    auto it = entries_.find(action_name);
    if (it == entries_.end())
        return false;

    auto& entry = it->second;
    if (entry.request_handler)
    {
        entry.request_handler->flush();
        if (action != nullptr)
            parcels_.set_message_handler(action->id, nullptr);
        entry.request_handler.reset();
    }
    if (entry.response_handler)
    {
        entry.response_handler->flush();
        if (action != nullptr)
            parcels_.set_message_handler(
                parcel::make_response_id(action->id), nullptr);
        entry.response_handler.reset();
    }
    // Keep params + counters so post-run analysis can still read them.
    return true;
}

bool coalescing_registry::set_params(
    std::string const& action_name, coalescing_params params)
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(action_name);
    if (it == entries_.end() || it->second.params == nullptr)
        return false;
    it->second.params->set(params);
    return true;
}

std::optional<coalescing_params> coalescing_registry::params(
    std::string const& action_name) const
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(action_name);
    if (it == entries_.end() || it->second.params == nullptr)
        return std::nullopt;
    return it->second.params->get();
}

std::shared_ptr<coalescing_counters> coalescing_registry::counters(
    std::string const& action_name) const
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(action_name);
    if (it == entries_.end())
        return nullptr;
    return it->second.counters;
}

std::shared_ptr<coalescing_message_handler> coalescing_registry::handler(
    std::string const& action_name) const
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(action_name);
    if (it == entries_.end())
        return nullptr;
    return it->second.request_handler;
}

void coalescing_registry::flush_all()
{
    std::vector<std::shared_ptr<coalescing_message_handler>> handlers;
    {
        std::lock_guard lock(mutex_);
        for (auto const& [name, entry] : entries_)
        {
            if (entry.request_handler)
                handlers.push_back(entry.request_handler);
            if (entry.response_handler)
                handlers.push_back(entry.response_handler);
        }
    }
    for (auto const& h : handlers)
        h->flush();
}

std::vector<parcel::parcel> coalescing_registry::purge_all()
{
    std::vector<std::shared_ptr<coalescing_message_handler>> handlers;
    {
        std::lock_guard lock(mutex_);
        for (auto const& [name, entry] : entries_)
        {
            if (entry.request_handler)
                handlers.push_back(entry.request_handler);
            if (entry.response_handler)
                handlers.push_back(entry.response_handler);
        }
    }
    std::vector<parcel::parcel> purged;
    for (auto const& h : handlers)
    {
        auto batch = h->purge();
        for (auto& p : batch)
            purged.push_back(std::move(p));
    }
    return purged;
}

std::size_t coalescing_registry::queued_parcels() const
{
    std::vector<std::shared_ptr<coalescing_message_handler>> handlers;
    {
        std::lock_guard lock(mutex_);
        for (auto const& [name, entry] : entries_)
        {
            if (entry.request_handler)
                handlers.push_back(entry.request_handler);
            if (entry.response_handler)
                handlers.push_back(entry.response_handler);
        }
    }
    std::size_t total = 0;
    for (auto const& h : handlers)
        total += h->queued_parcels();
    return total;
}

std::vector<std::string> coalescing_registry::coalesced_actions() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (auto const& [name, entry] : entries_)
    {
        if (entry.request_handler != nullptr)
            names.push_back(name);
    }
    return names;
}

}    // namespace coal::coalescing
