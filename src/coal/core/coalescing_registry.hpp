#pragma once

/// \file coalescing_registry.hpp
/// Per-locality registry of coalescing handlers.
///
/// Enabling coalescing for an action installs a handler for the action's
/// request id and, by default, a *sibling* handler for its response id —
/// both share one parameter cell, so tuning `nparcels` tunes the whole
/// round trip (see DESIGN.md §2 on why responses must coalesce for the
/// toy app's gains to match the paper's shape).  Parameters can be
/// changed live (Fig. 9 and the adaptive controller rely on this).

#include <coal/core/coalescing_message_handler.hpp>
#include <coal/core/coalescing_params.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace coal::coalescing {

class coalescing_registry
{
public:
    coalescing_registry(parcel::parcelhandler& parcels,
        timing::deadline_timer_service& timers);

    /// Enable coalescing for a registered action (by name).
    /// \param include_responses install a sibling handler on the response
    ///        id, sharing parameters, so result parcels coalesce too.
    /// \returns false if the action name is unknown.
    bool enable(std::string const& action_name, coalescing_params params,
        bool include_responses = true);

    /// Remove the handlers; queued parcels are flushed first.
    bool disable(std::string const& action_name);

    /// Live-update parameters; false if coalescing is not enabled.
    bool set_params(std::string const& action_name, coalescing_params params);

    [[nodiscard]] std::optional<coalescing_params> params(
        std::string const& action_name) const;

    /// Counters for an action (valid as long as the registry lives, even
    /// after disable()).  nullptr when never enabled.
    [[nodiscard]] std::shared_ptr<coalescing_counters> counters(
        std::string const& action_name) const;

    [[nodiscard]] std::shared_ptr<coalescing_message_handler> handler(
        std::string const& action_name) const;

    /// Flush every handler's queues (phase boundaries, quiesce).
    void flush_all();

    /// Chaos hook: drop every queued parcel across all handlers without
    /// sending, returning them for delivery-error accounting.  Used by
    /// runtime::kill_locality to model coalescing queues dying with a
    /// crashed incarnation.
    [[nodiscard]] std::vector<parcel::parcel> purge_all();

    /// Total parcels currently held back across all handlers.
    [[nodiscard]] std::size_t queued_parcels() const;

    [[nodiscard]] std::vector<std::string> coalesced_actions() const;

private:
    struct action_entry
    {
        shared_params_ptr params;
        std::shared_ptr<coalescing_counters> counters;
        std::shared_ptr<coalescing_message_handler> request_handler;
        std::shared_ptr<coalescing_message_handler> response_handler;
    };

    parcel::parcelhandler& parcels_;
    timing::deadline_timer_service& timers_;

    mutable std::mutex mutex_;
    std::unordered_map<std::string, action_entry> entries_;
};

}    // namespace coal::coalescing
