#pragma once

/// \file coalescing_defaults.hpp
/// Static opt-in table fed by COAL_ACTION_USES_MESSAGE_COALESCING — the
/// analogue of the paper's HPX_ACTION_USES_MESSAGE_COALESCING (Listing 1,
/// annotation 1).  At startup every runtime walks this table and enables
/// coalescing for the listed actions on all its localities; applications
/// therefore opt an action in with one macro line and no other changes.

#include <coal/core/coalescing_params.hpp>

#include <mutex>
#include <string>
#include <vector>

namespace coal::coalescing {

class coalescing_defaults
{
public:
    struct entry
    {
        std::string action_name;
        coalescing_params params;
        bool include_responses = true;
    };

    static coalescing_defaults& instance();

    /// Record (or update) the default for an action.
    void add(std::string action_name, coalescing_params params,
        bool include_responses = true);

    [[nodiscard]] std::vector<entry> entries() const;

private:
    coalescing_defaults() = default;

    mutable std::mutex mutex_;
    std::vector<entry> entries_;
};

/// Static-init helper used by the macros below.
struct defaults_registrar
{
    defaults_registrar(char const* action_name, coalescing_params params,
        bool include_responses = true)
    {
        coalescing_defaults::instance().add(
            action_name, params, include_responses);
    }
};

}    // namespace coal::coalescing

/// Opt an action into message coalescing with default parameters.
/// Use at namespace scope, after COAL_PLAIN_ACTION.
#define COAL_ACTION_USES_MESSAGE_COALESCING(action_type)                       \
    inline ::coal::coalescing::defaults_registrar const                        \
        coal_coalescing_defaults_##action_type                                 \
    {                                                                          \
        #action_type, ::coal::coalescing::coalescing_params {}                \
    }

/// Opt an action in with explicit nparcels / wait-time (µs).
#define COAL_ACTION_USES_MESSAGE_COALESCING_PARAMS(                            \
    action_type, nparcels_, interval_us_)                                      \
    inline ::coal::coalescing::defaults_registrar const                        \
        coal_coalescing_defaults_##action_type                                 \
    {                                                                          \
        #action_type,                                                          \
            ::coal::coalescing::coalescing_params                              \
        {                                                                      \
            nparcels_, interval_us_                                            \
        }                                                                      \
    }
