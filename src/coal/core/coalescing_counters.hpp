#pragma once

/// \file coalescing_counters.hpp
/// Per-action statistics backing the five /coalescing counters the paper
/// adds to HPX (§II-B):
///
///   /coalescing/count/parcels
///   /coalescing/count/messages
///   /coalescing/count/average-parcels-per-message
///   /coalescing/time/average-parcel-arrival
///   /coalescing/time/parcel-arrival-histogram
///
/// Arrival gaps are measured between successive enqueues of the same
/// action (any destination), in microseconds.
///
/// record_parcel sits on the parcel enqueue fast path of every worker
/// thread, so there is no lock anywhere on it: the previous-arrival
/// timestamp is a single atomic exchange (which serializes arrivals into
/// a total order, so each gap is measured against the true predecessor —
/// exactly the semantics the old global spinlock provided), and the gap
/// sum/count plus the histogram land in cacheline-padded per-thread
/// stripes that are only aggregated when a counter is read.  Aggregated
/// totals are exact: every gap is recorded in exactly one stripe.

#include <coal/common/cacheline.hpp>
#include <coal/common/histogram.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace coal::coalescing {

class coalescing_counters
{
public:
    static constexpr std::size_t stripe_count = 16;

    explicit coalescing_counters(
        histogram_params arrival_histogram = {0, 100000, 20});

    /// Record one parcel entering the handler; measures the gap to the
    /// previous arrival.  Returns the gap in ns (-1 for the first parcel
    /// after a reset) so the handler can reuse it for the tslp test.
    std::int64_t record_parcel() noexcept;

    /// Record a message leaving the handler carrying `parcels` parcels.
    void record_message(std::size_t parcels) noexcept;

    /// Total parcels recorded, summed across stripes (aggregation
    /// helper — the count is striped so record_parcel touches no shared
    /// counter cacheline besides the arrival timestamp).
    [[nodiscard]] std::uint64_t parcels() const noexcept;

    [[nodiscard]] std::uint64_t messages() const noexcept
    {
        return messages_.load(std::memory_order_relaxed);
    }

    /// Sum of batch sizes over all sent messages (aggregation helper for
    /// the "total" counter instance).
    [[nodiscard]] std::uint64_t parcels_in_messages() const noexcept
    {
        return parcels_in_messages_.load(std::memory_order_relaxed);
    }

    /// Number of measured arrival gaps.  The arrival-order exchange
    /// guarantees exactly one gap per parcel except the first, so this is
    /// derived (parcels() - 1) rather than counted on the hot path.
    [[nodiscard]] std::uint64_t gap_count() const noexcept;

    [[nodiscard]] double average_parcels_per_message() const noexcept;

    /// Mean gap between parcel arrivals, µs (aggregated across stripes).
    [[nodiscard]] double average_arrival_us() const noexcept;

    /// Histogram snapshot in HPX wire layout (min, max, width, counts…),
    /// gap values in µs.
    [[nodiscard]] std::vector<std::int64_t> arrival_histogram() const;

    void reset() noexcept;

    /// Reset only the arrival histogram (the histogram counter's
    /// reset-on-read semantics must not clear the scalar counters).
    void reset_arrival_histogram() noexcept;

private:
    struct alignas(cache_line_size) arrival_stripe
    {
        std::atomic<std::uint64_t> parcel_count{0};
        std::atomic<std::int64_t> gap_sum_ns{0};
    };

    std::atomic<std::uint64_t> messages_{0};
    std::atomic<std::uint64_t> parcels_in_messages_{0};

    /// Timestamp of the most recent arrival (-1 = none since reset).
    /// Written with a single exchange per parcel — the only shared write
    /// on the arrival path.
    std::atomic<std::int64_t> last_arrival_ns_{-1};

    std::array<arrival_stripe, stripe_count> stripes_;
    striped_histogram arrival_histogram_;
};

}    // namespace coal::coalescing
