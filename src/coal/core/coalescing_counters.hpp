#pragma once

/// \file coalescing_counters.hpp
/// Per-action statistics backing the five /coalescing counters the paper
/// adds to HPX (§II-B):
///
///   /coalescing/count/parcels
///   /coalescing/count/messages
///   /coalescing/count/average-parcels-per-message
///   /coalescing/time/average-parcel-arrival
///   /coalescing/time/parcel-arrival-histogram
///
/// Arrival gaps are measured between successive enqueues of the same
/// action (any destination), in microseconds.

#include <coal/common/histogram.hpp>
#include <coal/common/spinlock.hpp>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace coal::coalescing {

class coalescing_counters
{
public:
    explicit coalescing_counters(
        histogram_params arrival_histogram = {0, 100000, 20});

    /// Record one parcel entering the handler; measures the gap to the
    /// previous arrival.  Returns the gap in ns (-1 for the first parcel
    /// after a reset) so the handler can reuse it for the tslp test.
    std::int64_t record_parcel() noexcept;

    /// Record a message leaving the handler carrying `parcels` parcels.
    void record_message(std::size_t parcels) noexcept;

    [[nodiscard]] std::uint64_t parcels() const noexcept
    {
        return parcels_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t messages() const noexcept
    {
        return messages_.load(std::memory_order_relaxed);
    }

    /// Sum of batch sizes over all sent messages (aggregation helper for
    /// the "total" counter instance).
    [[nodiscard]] std::uint64_t parcels_in_messages() const noexcept
    {
        return parcels_in_messages_.load(std::memory_order_relaxed);
    }

    /// Number of measured arrival gaps (aggregation helper).
    [[nodiscard]] std::uint64_t gap_count() const noexcept
    {
        std::lock_guard lock(arrival_lock_);
        return gap_count_;
    }

    [[nodiscard]] double average_parcels_per_message() const noexcept;

    /// Mean gap between parcel arrivals, µs.
    [[nodiscard]] double average_arrival_us() const noexcept;

    /// Histogram snapshot in HPX wire layout (min, max, width, counts…),
    /// gap values in µs.
    [[nodiscard]] std::vector<std::int64_t> arrival_histogram() const;

    void reset() noexcept;

    /// Reset only the arrival histogram (the histogram counter's
    /// reset-on-read semantics must not clear the scalar counters).
    void reset_arrival_histogram() noexcept;

private:
    std::atomic<std::uint64_t> parcels_{0};
    std::atomic<std::uint64_t> messages_{0};
    std::atomic<std::uint64_t> parcels_in_messages_{0};

    mutable spinlock arrival_lock_;
    std::int64_t last_arrival_ns_ = -1;
    std::uint64_t gap_count_ = 0;
    double gap_sum_us_ = 0.0;

    concurrent_histogram arrival_histogram_;
};

}    // namespace coal::coalescing
