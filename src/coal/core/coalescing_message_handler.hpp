#pragma once

/// \file coalescing_message_handler.hpp
/// The paper's Algorithm 1 — the parcel coalescing message handler.
///
/// One handler serves one action id at one locality and keeps a parcel
/// queue per destination locality.  For each arriving parcel:
///
///   tslp := time since the last parcel of this action
///   if coalescing is disabled (nparcels <= 1 or interval <= 0):
///       send immediately (one parcel per message)
///   if tslp > interval and the queue is empty:
///       send immediately              // sparse-traffic bypass (§II-B):
///                                     // waiting out the timer would only
///                                     // add latency when traffic is sparse
///   queue the parcel
///   if it is the first in the queue:  start the flush timer (interval)
///   if the queue reached nparcels, or the queued payload reached
///   max_buffer_bytes:                 stop the timer, flush
///
/// The flush timer runs on the shared deadline_timer_service (dedicated
/// thread, µs resolution — §II-B's accuracy discussion).  The race
/// between a size-triggered flush and the timer firing is resolved with
/// a per-queue epoch: a timer only flushes the epoch it was armed for.
///
/// Flushing hands the batch to parcelhandler::send_message, which queues
/// it for transmission by background work — so the modeled per-message
/// cost lands in the Eq. 3/4 accounting regardless of which thread
/// triggered the flush.

#include <coal/core/coalescing_counters.hpp>
#include <coal/core/coalescing_params.hpp>
#include <coal/parcel/message_handler.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace coal::coalescing {

class coalescing_message_handler final : public parcel::message_handler
{
public:
    coalescing_message_handler(std::string name,
        parcel::parcelhandler& parcels,
        timing::deadline_timer_service& timers, shared_params_ptr params,
        std::shared_ptr<coalescing_counters> counters);

    ~coalescing_message_handler() override;

    void enqueue(parcel::parcel&& p) override;
    void flush() override;
    [[nodiscard]] std::size_t queued_parcels() const override;

    [[nodiscard]] coalescing_params params() const
    {
        return params_->get();
    }

    void set_params(coalescing_params p)
    {
        params_->set(p);
    }

    [[nodiscard]] coalescing_counters const& counters() const noexcept
    {
        return *counters_;
    }

    [[nodiscard]] std::string const& name() const noexcept
    {
        return name_;
    }

    /// Number of timer-triggered flushes (vs size-triggered); useful for
    /// tests and the ablation benches.
    [[nodiscard]] std::uint64_t timer_flushes() const noexcept
    {
        return timer_flushes_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t size_flushes() const noexcept
    {
        return size_flushes_.load(std::memory_order_relaxed);
    }

    /// Parcels that skipped batching because the destination link's
    /// circuit breaker was open (reliability layer degradation).
    [[nodiscard]] std::uint64_t breaker_bypasses() const noexcept
    {
        return breaker_bypasses_.load(std::memory_order_relaxed);
    }

private:
    struct destination_queue
    {
        std::vector<parcel::parcel> parcels;
        std::size_t queued_bytes = 0;
        std::uint64_t epoch = 0;    ///< bumped on every flush
        timing::timer_id timer{};
    };

    /// Record and queue a batch for transmission.  Caller holds mutex_ —
    /// required for per-destination FIFO (see the .cpp comment).
    void send_batch(std::uint32_t dst, std::vector<parcel::parcel>&& batch);

    /// Detach a destination queue's contents (caller holds mutex_).
    std::vector<parcel::parcel> detach_batch(destination_queue& queue);

    void on_timer(std::uint32_t dst, std::uint64_t epoch);

    std::string name_;
    parcel::parcelhandler& parcels_;
    timing::deadline_timer_service& timers_;
    shared_params_ptr params_;
    std::shared_ptr<coalescing_counters> counters_;

    mutable std::mutex mutex_;
    std::unordered_map<std::uint32_t, destination_queue> queues_;
    bool stopped_ = false;

    std::atomic<std::uint64_t> timer_flushes_{0};
    std::atomic<std::uint64_t> size_flushes_{0};
    std::atomic<std::uint64_t> breaker_bypasses_{0};
};

}    // namespace coal::coalescing
