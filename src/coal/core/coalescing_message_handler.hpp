#pragma once

/// \file coalescing_message_handler.hpp
/// The paper's Algorithm 1 — the parcel coalescing message handler.
///
/// One handler serves one action id at one locality and keeps a parcel
/// queue per destination locality.  For each arriving parcel:
///
///   tslp := time since the last parcel of this action
///   if coalescing is disabled (nparcels <= 1 or interval <= 0):
///       send immediately (one parcel per message)
///   if tslp > interval and the queue is empty:
///       send immediately              // sparse-traffic bypass (§II-B):
///                                     // waiting out the timer would only
///                                     // add latency when traffic is sparse
///   queue the parcel
///   if it is the first in the queue:  start the flush timer (interval)
///   if the queue reached nparcels, or the queued payload reached
///   max_buffer_bytes:                 stop the timer, flush
///
/// The flush timer runs on the shared deadline_timer_service (dedicated
/// thread, µs resolution — §II-B's accuracy discussion).  The race
/// between a size-triggered flush and the timer firing is resolved with
/// a per-queue epoch: a timer only flushes the epoch it was armed for.
///
/// Concurrency: destination queues live in cacheline-aligned shards
/// (destination id & mask), each under its own spinlock, so producers
/// aiming at different destinations never serialize against each other.
/// Batch hand-off happens *outside* the shard lock: detaching a batch
/// allocates a consecutive sequence ticket on the destination's
/// parcelhandler stream while the lock is held, and
/// parcelhandler::send_message's sequencer restores ticket order before
/// the batch reaches the outbound queue — per-destination FIFO without
/// lock-coupled hand-off.  See DESIGN.md §8.
///
/// Flushing hands the batch to parcelhandler::send_message, which queues
/// it for transmission by background work — so the modeled per-message
/// cost lands in the Eq. 3/4 accounting regardless of which thread
/// triggered the flush.
///
/// Hierarchical (two-level) aggregation: when the parcelhandler has a
/// topology with relay routing enabled, parcels whose destination lives
/// on a *different node* do not get a per-destination queue.  They share
/// one queue per destination NODE (a node-pair buffer: this locality ×
/// that node), keyed by `node_route_flag | node`, batched under the
/// patient inter-node knobs (effective_inter_nparcels/interval).  At
/// flush time the batch ships to a designated relay locality on that
/// node — chosen deterministically per *source* so each sender's stream
/// stays concentrated on one relay while different senders spread across
/// the node's members, sharing the fan-out work — and the relay's
/// receive path fans the bundle out over cheap intra-node links
/// (parcelhandler::forward_parcel).  This turns O(localities²) cross-node
/// streams into O(nodes²) and packs far more parcels per expensive
/// inter-node message.  Relay death reroutes naturally: liveness flips,
/// resolve_target picks the next member, and the failure machinery
/// (fencing + flush_message_handlers) re-drives queued batches.

#include <coal/common/cacheline.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/core/coalescing_counters.hpp>
#include <coal/core/coalescing_params.hpp>
#include <coal/parcel/message_handler.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace coal::coalescing {

class coalescing_message_handler final : public parcel::message_handler
{
public:
    /// Shard fan-out for the per-destination queue map.  Power of two;
    /// destinations are folded with a mask, so up to 16 producer threads
    /// hitting distinct destinations proceed without sharing a lock.
    static constexpr std::size_t shard_count = 16;

    coalescing_message_handler(std::string name,
        parcel::parcelhandler& parcels,
        timing::deadline_timer_service& timers, shared_params_ptr params,
        std::shared_ptr<coalescing_counters> counters);

    ~coalescing_message_handler() override;

    void enqueue(parcel::parcel&& p) override;
    void flush() override;
    [[nodiscard]] std::size_t queued_parcels() const override;

    /// Chaos hook: drop every queued parcel without sending it (a crashed
    /// locality's coalescing queues die with the incarnation).  Returns
    /// the parcels so the caller can surface them through the
    /// delivery-error path.  Ordering tickets are NOT consumed — the
    /// sequencer streams stay contiguous across the purge.
    [[nodiscard]] std::vector<parcel::parcel> purge();

    [[nodiscard]] coalescing_params params() const
    {
        return params_->get();
    }

    void set_params(coalescing_params p)
    {
        params_->set(p);
    }

    [[nodiscard]] coalescing_counters const& counters() const noexcept
    {
        return *counters_;
    }

    [[nodiscard]] std::string const& name() const noexcept
    {
        return name_;
    }

    /// Number of timer-triggered flushes (vs size-triggered); useful for
    /// tests and the ablation benches.
    [[nodiscard]] std::uint64_t timer_flushes() const noexcept
    {
        return timer_flushes_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t size_flushes() const noexcept
    {
        return size_flushes_.load(std::memory_order_relaxed);
    }

    /// Parcels that skipped batching because the destination link's
    /// circuit breaker was open (reliability layer degradation).
    [[nodiscard]] std::uint64_t breaker_bypasses() const noexcept
    {
        return breaker_bypasses_.load(std::memory_order_relaxed);
    }

    /// Enqueues that ran with shrunken batch targets because the
    /// flow-control layer reported memory/link pressure toward the
    /// destination (early-flush overload degradation).
    [[nodiscard]] std::uint64_t pressure_shrinks() const noexcept
    {
        return pressure_shrinks_.load(std::memory_order_relaxed);
    }

    /// Parcels that entered a node-pair (inter-node relay) queue instead
    /// of a per-destination one.
    [[nodiscard]] std::uint64_t node_routed() const noexcept
    {
        return node_routed_.load(std::memory_order_relaxed);
    }

    /// Queue-map key of a node-pair buffer.  Locality ids are dense and
    /// small, so the high bit cleanly separates the two key spaces.
    static constexpr std::uint32_t node_route_flag = 0x80000000u;

private:
    struct destination_queue
    {
        std::vector<parcel::parcel> parcels;
        std::size_t queued_bytes = 0;
        std::uint64_t epoch = 0;     ///< bumped on every flush
        std::uint64_t stream = 0;    ///< parcelhandler sequencer stream id
        std::uint64_t next_ticket = 0;    ///< seq of the next detached batch
        timing::timer_id timer{};
    };

    struct alignas(cache_line_size) queue_shard
    {
        mutable spinlock lock;
        std::unordered_map<std::uint32_t, destination_queue> queues;

        /// Parcels currently queued in this shard, maintained as a gauge
        /// so queued_parcels() (polled by quiescence) never takes a lock
        /// — and so the enqueue fast path touches no cacheline shared
        /// with other shards.  Incremented under the shard lock at
        /// enqueue; decremented only after the detached batch has been
        /// handed to the parcelhandler, so a parcel is always visible in
        /// at least one of queued_parcels() / pending_sends() while in
        /// flight.
        std::atomic<std::size_t> gauge{0};
    };

    [[nodiscard]] queue_shard& shard_for(std::uint32_t dst) noexcept
    {
        return shards_[dst & (shard_count - 1)];
    }

    /// Get-or-create the destination queue inside its shard (caller holds
    /// the shard lock); allocates the sequencer stream on first use.
    destination_queue& queue_for_locked(
        queue_shard& shard, std::uint32_t dst);

    /// Detach a destination queue's contents and stamp them with the next
    /// ordering ticket (caller holds the shard lock).  The batch is sent
    /// by the caller *after* dropping the lock.
    struct detached_batch
    {
        std::vector<parcel::parcel> parcels;
        parcel::send_ticket ticket;
        /// How many of `parcels` are counted in the shard gauge (bypass
        /// paths append a never-queued parcel after detaching).
        std::size_t gauge = 0;
    };
    detached_batch detach_batch_locked(destination_queue& queue);

    /// Hand a detached batch to the parcelhandler.  Called without any
    /// shard lock held; the ticket preserves per-route FIFO.  `route` is
    /// the queue key: a plain destination, or a node-pair key that
    /// resolve_target() maps to the node's current relay at send time.
    void send_batch(std::uint32_t route, detached_batch&& batch);

    /// Queue key for a destination: the destination itself, or — with
    /// relay routing on and `dst` on another node — that node's
    /// node-pair key.
    [[nodiscard]] std::uint32_t route_of(std::uint32_t dst) const noexcept;

    /// Wire target for a route key: plain destinations map to
    /// themselves; a node-pair key maps to this source's designated
    /// relay on the node — the member at offset (here % node size),
    /// rotating to the next live member when the preferred one is down,
    /// falling back to the preferred member when the failure detector
    /// trusts nobody (the send then fails through the normal dead-peer
    /// machinery, which keeps accounting intact).
    [[nodiscard]] std::uint32_t resolve_target(std::uint32_t route) const;

    void on_timer(std::uint32_t route, std::uint64_t epoch);

    std::string name_;
    parcel::parcelhandler& parcels_;
    timing::deadline_timer_service& timers_;
    shared_params_ptr params_;
    std::shared_ptr<coalescing_counters> counters_;

    std::array<queue_shard, shard_count> shards_;
    std::atomic<bool> stopped_{false};

    std::atomic<std::uint64_t> timer_flushes_{0};
    std::atomic<std::uint64_t> size_flushes_{0};
    std::atomic<std::uint64_t> breaker_bypasses_{0};
    std::atomic<std::uint64_t> pressure_shrinks_{0};
    std::atomic<std::uint64_t> node_routed_{0};
};

}    // namespace coal::coalescing
