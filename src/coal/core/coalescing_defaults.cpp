#include <coal/core/coalescing_defaults.hpp>

#include <algorithm>

namespace coal::coalescing {

coalescing_defaults& coalescing_defaults::instance()
{
    static coalescing_defaults defaults;
    return defaults;
}

void coalescing_defaults::add(std::string action_name,
    coalescing_params params, bool include_responses)
{
    std::lock_guard lock(mutex_);
    auto it = std::find_if(entries_.begin(), entries_.end(),
        [&](entry const& e) { return e.action_name == action_name; });
    if (it != entries_.end())
    {
        it->params = params;
        it->include_responses = include_responses;
        return;
    }
    entries_.push_back(
        entry{std::move(action_name), params, include_responses});
}

std::vector<coalescing_defaults::entry> coalescing_defaults::entries() const
{
    std::lock_guard lock(mutex_);
    return entries_;
}

}    // namespace coal::coalescing
