#pragma once

/// \file counter_path.hpp
/// Parser for HPX-style performance counter names:
///
///     /object{instance}/name@parameters
///
/// e.g. `/coalescing{locality#0/total}/count/parcels@my_action`
///  - object:     "coalescing"
///  - instance:   "locality#0/total"   (optional; empty means "total")
///  - name:       "count/parcels"      (may contain '/')
///  - parameters: "my_action"          (optional)
///
/// The *type path* used for registration is `/object/name`.

#include <cstdint>
#include <optional>
#include <string>

namespace coal::perf {

struct counter_path
{
    std::string object;
    std::string instance;
    std::string name;
    std::string parameters;

    /// Parse a full counter name; nullopt on malformed input.
    static std::optional<counter_path> parse(std::string const& full_name);

    /// Type path `/object/name` (registration key).
    [[nodiscard]] std::string type_path() const;

    /// Reassembled canonical full name.
    [[nodiscard]] std::string str() const;

    /// Locality index embedded in the instance ("locality#3" -> 3);
    /// nullopt for "total", empty, or other instances.
    [[nodiscard]] std::optional<std::uint32_t> locality() const;

    friend bool operator==(counter_path const&, counter_path const&) = default;
};

}    // namespace coal::perf
