#include <coal/perf/counter_path.hpp>

#include <cctype>

namespace coal::perf {

std::optional<counter_path> counter_path::parse(std::string const& full_name)
{
    if (full_name.empty() || full_name[0] != '/')
        return std::nullopt;

    counter_path out;
    std::size_t pos = 1;

    // object: up to '{' or '/'
    std::size_t const object_end = full_name.find_first_of("{/", pos);
    if (object_end == std::string::npos || object_end == pos)
        return std::nullopt;
    out.object = full_name.substr(pos, object_end - pos);
    pos = object_end;

    // optional {instance}
    if (full_name[pos] == '{')
    {
        std::size_t const close = full_name.find('}', pos);
        if (close == std::string::npos)
            return std::nullopt;
        out.instance = full_name.substr(pos + 1, close - pos - 1);
        pos = close + 1;
        if (pos >= full_name.size() || full_name[pos] != '/')
            return std::nullopt;
    }

    ++pos;    // skip '/'

    // name runs to '@' (or end); may itself contain '/'
    std::size_t const at = full_name.find('@', pos);
    if (at == std::string::npos)
    {
        out.name = full_name.substr(pos);
    }
    else
    {
        out.name = full_name.substr(pos, at - pos);
        out.parameters = full_name.substr(at + 1);
    }

    if (out.name.empty())
        return std::nullopt;
    return out;
}

std::string counter_path::type_path() const
{
    return "/" + object + "/" + name;
}

std::string counter_path::str() const
{
    std::string s = "/" + object;
    if (!instance.empty())
        s += "{" + instance + "}";
    s += "/" + name;
    if (!parameters.empty())
        s += "@" + parameters;
    return s;
}

std::optional<std::uint32_t> counter_path::locality() const
{
    static constexpr char const prefix[] = "locality#";
    if (instance.rfind(prefix, 0) != 0)
        return std::nullopt;

    std::size_t idx = sizeof(prefix) - 1;
    if (idx >= instance.size() ||
        !std::isdigit(static_cast<unsigned char>(instance[idx])))
        return std::nullopt;

    std::uint32_t value = 0;
    while (idx < instance.size() &&
        std::isdigit(static_cast<unsigned char>(instance[idx])))
    {
        value = value * 10 + static_cast<std::uint32_t>(instance[idx] - '0');
        ++idx;
    }
    // Anything after the digits (e.g. "/total") is part of the instance
    // but does not change the locality.
    return value;
}

}    // namespace coal::perf
