#pragma once

/// \file registry.hpp
/// Counter-type registry and query front end.
///
/// Subsystems register counter *types* (a path template plus a factory);
/// users query *full names*.  Instances are created lazily on first query
/// and cached, so repeated sampling of the same counter is cheap — that
/// matters for the adaptive controller, which polls
/// `/threads/background-overhead` continuously.

#include <coal/perf/counter.hpp>
#include <coal/perf/counter_path.hpp>

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace coal::perf {

/// Creates a counter instance for a parsed path, or nullptr when the
/// instance/parameters cannot be resolved (unknown action, bad locality).
using counter_factory = std::function<counter_ptr(counter_path const&)>;

class counter_registry
{
public:
    /// Register a counter type under `/object/name`.
    /// \throws std::invalid_argument on duplicate registration.
    void register_counter_type(std::string type_path, std::string description,
        counter_factory factory);

    /// Instantiate (or fetch the cached instance of) a full counter name.
    /// Returns nullptr for unknown types or unresolvable instances.
    counter_ptr get(std::string const& full_name);

    /// One-shot query; invalid counter_value for unresolvable names.
    counter_value query(std::string const& full_name, bool reset = false);

    /// All registered counter types with their descriptions, sorted.
    [[nodiscard]] std::vector<std::pair<std::string, std::string>>
    discover() const;

    /// Reset every instantiated counter (per-phase measurement prologue).
    void reset_all();

    /// Drop cached instances (used on shutdown so factories' captured
    /// subsystem references cannot dangle).
    void clear_instances();

private:
    struct type_entry
    {
        std::string description;
        counter_factory factory;
    };

    mutable std::mutex mutex_;
    std::map<std::string, type_entry> types_;
    std::map<std::string, counter_ptr> instances_;
};

/// Convenience for per-phase deltas of monotonically increasing scalar
/// counters: `delta()` returns the change since the previous call.
class delta_sampler
{
public:
    delta_sampler(counter_registry& registry, std::string full_name);

    /// Current cumulative value minus the value at the last call (or at
    /// construction for the first call).
    double delta();

    /// Read without advancing the baseline.
    double peek();

private:
    counter_registry* registry_;
    std::string name_;
    double last_ = 0.0;
};

}    // namespace coal::perf
