#include <coal/perf/registry.hpp>

#include <stdexcept>

namespace coal::perf {

void counter_registry::register_counter_type(
    std::string type_path, std::string description, counter_factory factory)
{
    std::lock_guard lock(mutex_);
    auto [it, inserted] = types_.emplace(std::move(type_path),
        type_entry{std::move(description), std::move(factory)});
    if (!inserted)
        throw std::invalid_argument(
            "duplicate counter type registration: " + it->first);
}

counter_ptr counter_registry::get(std::string const& full_name)
{
    auto const parsed = counter_path::parse(full_name);
    if (!parsed)
        return nullptr;

    std::string const canonical = parsed->str();

    counter_factory factory;
    {
        std::lock_guard lock(mutex_);
        if (auto cached = instances_.find(canonical);
            cached != instances_.end())
        {
            return cached->second;
        }
        auto type = types_.find(parsed->type_path());
        if (type == types_.end())
            return nullptr;
        factory = type->second.factory;
    }

    // Instantiate outside the lock: factories may consult subsystems.
    counter_ptr instance = factory(*parsed);
    if (instance == nullptr)
        return nullptr;

    std::lock_guard lock(mutex_);
    auto [it, inserted] = instances_.emplace(canonical, std::move(instance));
    return it->second;
}

counter_value counter_registry::query(std::string const& full_name, bool reset)
{
    counter_ptr c = get(full_name);
    if (c == nullptr)
        return {};
    return c->value(reset);
}

std::vector<std::pair<std::string, std::string>>
counter_registry::discover() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(types_.size());
    for (auto const& [path, entry] : types_)
        out.emplace_back(path, entry.description);
    return out;
}

void counter_registry::reset_all()
{
    std::vector<counter_ptr> instances;
    {
        std::lock_guard lock(mutex_);
        instances.reserve(instances_.size());
        for (auto const& [name, instance] : instances_)
            instances.push_back(instance);
    }
    for (auto const& instance : instances)
        instance->reset();
}

void counter_registry::clear_instances()
{
    std::lock_guard lock(mutex_);
    instances_.clear();
}

delta_sampler::delta_sampler(counter_registry& registry, std::string full_name)
  : registry_(&registry)
  , name_(std::move(full_name))
{
    last_ = registry_->query(name_).value;
}

double delta_sampler::delta()
{
    double const current = registry_->query(name_).value;
    double const d = current - last_;
    last_ = current;
    return d;
}

double delta_sampler::peek()
{
    return registry_->query(name_).value - last_;
}

}    // namespace coal::perf
