#pragma once

/// \file counter.hpp
/// Performance-counter interfaces — the coal analogue of HPX's
/// Performance Counter Framework (§II-A of the paper).
///
/// A counter is an object that produces a value on demand; counter
/// *types* are registered under path templates like
/// `/coalescing/count/parcels` and instantiated for a particular
/// instance (locality) and parameter string (action name) when queried
/// with a full name such as
///
///     /coalescing{locality#0/total}/count/parcels@my_action
///
/// Scalar counters return a double; array counters (the parcel-arrival
/// histogram) return a vector of int64 in HPX's wire layout.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace coal::perf {

/// Result of a counter query.
struct counter_value
{
    double value = 0.0;
    std::vector<std::int64_t> values;    ///< array counters only
    bool valid = false;

    [[nodiscard]] bool is_array() const noexcept
    {
        return !values.empty();
    }
};

/// A live counter instance.
class counter
{
public:
    virtual ~counter() = default;

    /// Read the counter; when `reset` is true the counter restarts its
    /// accumulation afterwards (HPX's reset-on-read semantics, used for
    /// per-phase measurements such as Fig. 9).
    virtual counter_value value(bool reset) = 0;

    /// Reset without reading.
    virtual void reset() = 0;
};

using counter_ptr = std::shared_ptr<counter>;

/// Adapts a pair of callables to the counter interface.
class function_counter final : public counter
{
public:
    using read_fn = std::function<double()>;
    using reset_fn = std::function<void()>;

    explicit function_counter(read_fn read, reset_fn reset = {})
      : read_(std::move(read))
      , reset_(std::move(reset))
    {
    }

    counter_value value(bool reset) override
    {
        counter_value v;
        v.value = read_();
        v.valid = true;
        if (reset)
            this->reset();
        return v;
    }

    void reset() override
    {
        if (reset_)
            reset_();
    }

private:
    read_fn read_;
    reset_fn reset_;
};

/// Adapts callables producing an int64 array (histogram counters).
class array_function_counter final : public counter
{
public:
    using read_fn = std::function<std::vector<std::int64_t>()>;
    using reset_fn = std::function<void()>;

    explicit array_function_counter(read_fn read, reset_fn reset = {})
      : read_(std::move(read))
      , reset_(std::move(reset))
    {
    }

    counter_value value(bool reset) override
    {
        counter_value v;
        v.values = read_();
        v.valid = true;
        if (reset)
            this->reset();
        return v;
    }

    void reset() override
    {
        if (reset_)
            reset_();
    }

private:
    read_fn read_;
    reset_fn reset_;
};

}    // namespace coal::perf
