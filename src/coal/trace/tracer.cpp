#include <coal/trace/tracer.hpp>

#include <coal/common/stopwatch.hpp>

#include <algorithm>
#include <bit>
#include <cstdio>

namespace coal::trace {

tracer& tracer::global()
{
    static tracer instance;
    return instance;
}

void tracer::enable(std::size_t capacity)
{
    disable();
    capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 16));
    ring_ = std::make_unique<event[]>(capacity_);
    next_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
}

void tracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

void tracer::record(std::uint32_t locality, event_kind kind, std::uint64_t a,
    std::uint64_t b) noexcept
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;

    std::uint64_t const index =
        next_.fetch_add(1, std::memory_order_relaxed);
    event& slot = ring_[index & (capacity_ - 1)];
    slot.timestamp_ns = now_ns();
    slot.locality = locality;
    slot.kind = kind;
    slot.a = a;
    slot.b = b;
}

std::vector<event> tracer::snapshot() const
{
    std::vector<event> out;
    if (ring_ == nullptr)
        return out;

    std::uint64_t const end = next_.load(std::memory_order_acquire);
    std::uint64_t const begin =
        end > capacity_ ? end - capacity_ : 0;
    out.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i != end; ++i)
        out.push_back(ring_[i & (capacity_ - 1)]);

    // Concurrent writers may have raced the copy near the tail; keep the
    // timestamp order coherent for consumers.
    std::stable_sort(out.begin(), out.end(),
        [](event const& x, event const& y) {
            return x.timestamp_ns < y.timestamp_ns;
        });
    return out;
}

std::uint64_t tracer::dropped() const noexcept
{
    std::uint64_t const total = next_.load(std::memory_order_relaxed);
    return total > capacity_ ? total - capacity_ : 0;
}

char const* to_string(event_kind kind) noexcept
{
    switch (kind)
    {
    case event_kind::parcel_put:
        return "parcel-put";
    case event_kind::parcel_local:
        return "parcel-local";
    case event_kind::parcel_executed:
        return "parcel-executed";
    case event_kind::coalescing_queued:
        return "coalescing-queued";
    case event_kind::coalescing_bypass:
        return "coalescing-bypass";
    case event_kind::flush_size:
        return "flush-size";
    case event_kind::flush_timeout:
        return "flush-timeout";
    case event_kind::flush_forced:
        return "flush-forced";
    case event_kind::message_sent:
        return "message-sent";
    case event_kind::message_received:
        return "message-received";
    case event_kind::pressure_changed:
        return "pressure-changed";
    case event_kind::parcel_shed:
        return "parcel-shed";
    case event_kind::send_deferred:
        return "send-deferred";
    case event_kind::link_down:
        return "link-down";
    case event_kind::peer_suspected:
        return "peer-suspected";
    case event_kind::peer_failed:
        return "peer-failed";
    case event_kind::peer_rejoined:
        return "peer-rejoined";
    }
    return "?";
}

std::string format_event(event const& e)
{
    char buffer[128];
    std::snprintf(buffer, sizeof(buffer),
        "[%12lld ns] L%u %-18s a=%llx b=%llu",
        static_cast<long long>(e.timestamp_ns), e.locality,
        to_string(e.kind), static_cast<unsigned long long>(e.a),
        static_cast<unsigned long long>(e.b));
    return buffer;
}

}    // namespace coal::trace
