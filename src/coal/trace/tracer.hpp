#pragma once

/// \file tracer.hpp
/// Lightweight parcel-flow event tracer.
///
/// The paper's counters aggregate; debugging coalescing behaviour often
/// needs the *sequence* — which parcels entered which queue, what
/// triggered each flush, when messages hit the wire.  This tracer
/// records fixed-size events into a per-process ring buffer with relaxed
/// atomics; tracing is off by default and costs one branch when
/// disabled, so instrumentation points stay in release builds.
///
///     coal::trace::tracer::global().enable(1 << 16);
///     ... run traffic ...
///     for (auto const& e : coal::trace::tracer::global().snapshot())
///         std::puts(coal::trace::format_event(e).c_str());
///
/// The ring overwrites the oldest events when full (dropped count is
/// reported), so it is safe to leave enabled during long runs.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace coal::trace {

enum class event_kind : std::uint8_t
{
    parcel_put,          ///< put_parcel accepted a parcel (a=action, b=dest)
    parcel_local,        ///< delivered locally, no wire (a=action)
    parcel_executed,     ///< action invocation finished (a=action)
    coalescing_queued,   ///< parcel entered a coalescing queue (a=action, b=queue depth after)
    coalescing_bypass,   ///< sparse-traffic bypass sent directly (a=action)
    flush_size,          ///< queue-full flush (a=action, b=batch size)
    flush_timeout,       ///< timer flush (a=action, b=batch size)
    flush_forced,        ///< explicit flush (a=action, b=batch size)
    message_sent,        ///< frame handed to the transport (a=parcel count, b=bytes)
    message_received,    ///< frame decoded at receiver (a=parcel count, b=bytes)
    // Flow control / overload protection (DESIGN.md "Flow control"):
    pressure_changed,    ///< memory-pressure state transition (a=old, b=new)
    parcel_shed,         ///< admission control shed a parcel (a=action, b=dest)
    send_deferred,       ///< send deferred on an exhausted credit window (a=dest, b=deferred bytes after)
    link_down,           ///< sends failed on a capped dark link (a=dest, b=parcels failed)
    // Membership / failure detection (DESIGN.md "Failure model"):
    peer_suspected,      ///< suspicion crossed suspect_phi (a=peer, b=phi x1000)
    peer_failed,         ///< peer declared dead, state fenced (a=peer, b=parcels failed)
    peer_rejoined,       ///< peer came back under a new epoch (a=peer, b=new epoch)
};

struct event
{
    std::int64_t timestamp_ns = 0;
    std::uint32_t locality = 0;
    event_kind kind = event_kind::parcel_put;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

class tracer
{
public:
    /// The process-wide tracer used by the runtime's instrumentation
    /// points.  Additional private instances can be created for tests.
    static tracer& global();

    tracer() = default;

    /// Start recording into a fresh ring of `capacity` events
    /// (rounded up to a power of two).  Discards previous contents.
    void enable(std::size_t capacity);

    /// Stop recording (buffer stays readable).
    void disable();

    [[nodiscard]] bool enabled() const noexcept
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Record an event (no-op when disabled).
    void record(std::uint32_t locality, event_kind kind, std::uint64_t a = 0,
        std::uint64_t b = 0) noexcept;

    /// Events currently retained, oldest first.
    [[nodiscard]] std::vector<event> snapshot() const;

    /// Total events recorded since enable().
    [[nodiscard]] std::uint64_t recorded() const noexcept
    {
        return next_.load(std::memory_order_relaxed);
    }

    /// Events lost to ring overwrite.
    [[nodiscard]] std::uint64_t dropped() const noexcept;

private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> next_{0};
    std::size_t capacity_ = 0;    // power of two
    std::unique_ptr<event[]> ring_;
};

/// Human-readable one-liner for an event.
[[nodiscard]] std::string format_event(event const& e);

[[nodiscard]] char const* to_string(event_kind kind) noexcept;

}    // namespace coal::trace
