#include <coal/collectives/collectives.hpp>

#include <coal/common/spinlock.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/scheduler.hpp>

#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

namespace coal::collectives {

namespace detail {

namespace {

/// Process-global mailbox store.  Keys include the destination locality
/// because all localities share the process; in a real distributed build
/// each node would hold only its own slots (the deposit action already
/// executes at the destination, so the seam is preserved).
class mailbox_store
{
public:
    static mailbox_store& instance()
    {
        static mailbox_store store;
        return store;
    }

    void deposit(std::uint32_t dest, std::uint64_t tag, std::uint32_t src,
        serialization::shared_buffer&& bytes)
    {
        {
            std::lock_guard lock(mutex_);
            slots_[key_type{dest, tag, src}] = std::move(bytes);
        }
        cv_.notify_all();
    }

    std::optional<serialization::shared_buffer> try_take(
        std::uint32_t dest, std::uint64_t tag, std::uint32_t src)
    {
        std::lock_guard lock(mutex_);
        auto it = slots_.find(key_type{dest, tag, src});
        if (it == slots_.end())
            return std::nullopt;
        auto bytes = std::move(it->second);
        slots_.erase(it);
        return bytes;
    }

    std::size_t size() const
    {
        std::lock_guard lock(mutex_);
        return slots_.size();
    }

private:
    using key_type = std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<key_type, serialization::shared_buffer> slots_;
};

}    // namespace

void deposit(std::uint32_t dest, std::uint64_t tag, std::uint32_t src,
    serialization::shared_buffer bytes)
{
    mailbox_store::instance().deposit(dest, tag, src, std::move(bytes));
}

}    // namespace detail
}    // namespace coal::collectives

// The deposit action: a plain action like any other, so it participates
// in coalescing when enabled.
COAL_PLAIN_ACTION(
    coal::collectives::detail::deposit, coal_collectives_deposit_action);

namespace coal::collectives {

char const* deposit_action_name()
{
    return coal_collectives_deposit_action::action_name;
}

namespace detail {

serialization::shared_buffer retrieve(
    std::uint32_t dest, std::uint64_t tag, std::uint32_t src)
{
    auto& store = mailbox_store::instance();
    unsigned idle = 0;
    for (;;)
    {
        if (auto bytes = store.try_take(dest, tag, src))
            return std::move(*bytes);

        // Help-while-wait: the deposit we need may be a task queued on
        // this very worker (or require network progress it performs).
        if (auto* sched = threading::scheduler::current();
            sched != nullptr && sched->run_pending_task())
        {
            idle = 0;
        }
        else if (++idle < 64)
        {
            cpu_relax();
        }
        else
        {
            std::this_thread::yield();
        }
    }
}

void send_to(locality& here, agas::locality_id dest, std::uint64_t tag,
    serialization::shared_buffer&& bytes)
{
    here.apply<coal_collectives_deposit_action>(
        dest, dest.value(), tag, here.id().value(), std::move(bytes));
}

std::size_t pending_slots()
{
    return mailbox_store::instance().size();
}

}    // namespace detail

}    // namespace coal::collectives
