#pragma once

/// \file collectives.hpp
/// SPMD collectives over the parcel layer: broadcast, gather, reduce and
/// all_to_all.  These are the communication idioms the coalescing
/// literature benchmarks against (the paper's §I cites Charm++/TRAM and
/// PICS converging on an *all-to-all* benchmark), provided here as a
/// library so applications and benches can use them directly.
///
/// Usage is SPMD: every locality calls the same collective with the same
/// `tag` (a caller-chosen round identifier, e.g. the iteration number —
/// it is what matches deposits to retrievals across localities):
///
///     rt.run_everywhere([&](coal::locality& here) {
///         auto got = coal::collectives::all_to_all<double>(
///             rt, here, my_chunks, /*tag=*/round);
///     });
///
/// Internally every collective moves serialized values through a
/// process-global mailbox keyed by (destination, tag, source) and a
/// dedicated deposit action.  The deposit action is a regular parcel
/// action, so *collective traffic coalesces* like any other when enabled
/// (`collectives::deposit_action_name()`).
///
/// Retrieval is help-while-wait: a locality waiting for a missing
/// deposit keeps executing tasks (including the deposits themselves), so
/// single-worker localities cannot deadlock.

#include <coal/runtime/locality.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/serialization/archive.hpp>

#include <cstdint>
#include <optional>
#include <vector>

namespace coal::collectives {

namespace detail {

/// Deposit `bytes` into (dest, tag, src)'s mailbox slot.  Exposed only
/// for the action registration below.  The payload is a shared_buffer so
/// the deposit rides the pipeline without per-hop copies: decoding
/// borrows a view into the inbound frame slab.
void deposit(std::uint32_t dest, std::uint64_t tag, std::uint32_t src,
    serialization::shared_buffer bytes);

/// Blocking (help-while-wait) retrieval; consumes the slot.
serialization::shared_buffer retrieve(
    std::uint32_t dest, std::uint64_t tag, std::uint32_t src);

/// Send one serialized value to (dest, tag) from `here`.
void send_to(locality& here, agas::locality_id dest, std::uint64_t tag,
    serialization::shared_buffer&& bytes);

/// Number of mailbox slots currently occupied (tests/leak checks).
std::size_t pending_slots();

}    // namespace detail

/// Name of the internal deposit action — enable coalescing on it to
/// batch collective traffic:
///     rt.enable_coalescing(coal::collectives::deposit_action_name(), {...});
char const* deposit_action_name();

/// Broadcast `value` from `root` to every locality; every rank returns
/// the broadcast value.  Only the root's `value` is examined.
template <typename T>
T broadcast(runtime& rt, locality& here, agas::locality_id root,
    std::optional<T> value, std::uint64_t tag)
{
    if (here.id() == root)
    {
        COAL_ASSERT_MSG(value.has_value(), "broadcast root needs a value");
        // Serialize once; every destination shares the same sealed slab
        // by refcount instead of re-serializing per fan-out edge.
        serialization::shared_buffer const bytes =
            serialization::to_bytes(*value);
        for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
        {
            if (i == here.id().value())
                continue;
            detail::send_to(here, agas::locality_id{i}, tag,
                serialization::shared_buffer(bytes));
        }
        return std::move(*value);
    }
    auto const bytes =
        detail::retrieve(here.id().value(), tag, root.value());
    return serialization::from_bytes<T>(bytes);
}

/// Gather one value per locality at `root`; the root returns them
/// indexed by locality, every other rank returns an empty vector.
template <typename T>
std::vector<T> gather(runtime& rt, locality& here, agas::locality_id root,
    T value, std::uint64_t tag)
{
    if (here.id() != root)
    {
        detail::send_to(here, root, tag, serialization::to_bytes(value));
        return {};
    }

    std::vector<T> out;
    out.reserve(rt.num_localities());
    for (std::uint32_t i = 0; i != rt.num_localities(); ++i)
    {
        if (i == here.id().value())
        {
            out.push_back(value);
            continue;
        }
        out.push_back(serialization::from_bytes<T>(
            detail::retrieve(here.id().value(), tag, i)));
    }
    return out;
}

/// Reduce one value per locality at `root` with `op`; the root returns
/// the fold, other ranks return a default-constructed T.
template <typename T, typename Op>
T reduce(runtime& rt, locality& here, agas::locality_id root, T value,
    Op op, std::uint64_t tag)
{
    auto values = gather(rt, here, root, std::move(value), tag);
    if (here.id() != root)
        return T{};
    T acc = std::move(values.front());
    for (std::size_t i = 1; i < values.size(); ++i)
        acc = op(std::move(acc), std::move(values[i]));
    return acc;
}

/// All-to-all personalized exchange: `to_send[i]` goes to locality i
/// (the slot addressed to self is returned unchanged); the result's
/// element i is what locality i sent to this rank.
template <typename T>
std::vector<T> all_to_all(runtime& rt, locality& here,
    std::vector<T> const& to_send, std::uint64_t tag)
{
    std::uint32_t const n = rt.num_localities();
    COAL_ASSERT_MSG(to_send.size() == n,
        "all_to_all needs exactly one element per locality");

    for (std::uint32_t i = 0; i != n; ++i)
    {
        if (i == here.id().value())
            continue;
        detail::send_to(here, agas::locality_id{i}, tag,
            serialization::to_bytes(to_send[i]));
    }

    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i != n; ++i)
    {
        if (i == here.id().value())
        {
            out.push_back(to_send[i]);
            continue;
        }
        out.push_back(serialization::from_bytes<T>(
            detail::retrieve(here.id().value(), tag, i)));
    }
    return out;
}

/// Chunked all-to-all: every locality sends `chunks[j]` — a *vector* of
/// chunks — to each locality j, all deposits up front (a coalescable
/// burst, the shape of the all-to-all benchmark PICS tunes on), then
/// retrieves.  Returns received chunks grouped by source locality.
/// Consumes tags [base_tag, base_tag + max_chunks) — space successive
/// rounds accordingly.
///
/// `staggered` rotates each rank's destination order by its own rank
/// (the default; see Phase 1 below).  Pass false to reproduce the
/// synchronized burst order — only useful for measuring what the
/// stagger buys.
template <typename T>
std::vector<std::vector<T>> all_to_all_chunked(runtime& rt, locality& here,
    std::vector<std::vector<T>> const& chunks, std::uint64_t base_tag,
    bool staggered = true)
{
    std::uint32_t const n = rt.num_localities();
    COAL_ASSERT_MSG(chunks.size() == n,
        "all_to_all_chunked needs one chunk list per locality");

    // Phase 1: burst out every chunk to every destination, starting from
    // a destination offset rotated by our own rank.  With every rank
    // bursting in the same 0..n-1 order, all n-1 streams toward locality
    // 0 fill (and flush) in lockstep, then all streams toward 1, and so
    // on — synchronized flush storms that serialize on each receiver in
    // turn.  The rotation staggers the load so at any instant each
    // receiver is fed by roughly one sender, the classic all-to-all
    // schedule.
    std::uint32_t const me = here.id().value();
    for (std::uint32_t r = 1; r != n; ++r)
    {
        std::uint32_t const j = staggered ? (me + r) % n : (r - 1 < me ? r - 1 : r);
        for (std::size_t k = 0; k != chunks[j].size(); ++k)
        {
            detail::send_to(here, agas::locality_id{j}, base_tag + k,
                serialization::to_bytes(chunks[j][k]));
        }
    }

    // Phase 2: all chunk counts must match symmetric usage; a locality
    // expects from source i as many chunks as it addressed to i.
    std::vector<std::vector<T>> received(n);
    for (std::uint32_t i = 0; i != n; ++i)
    {
        if (i == here.id().value())
        {
            received[i] = chunks[i];
            continue;
        }
        received[i].reserve(chunks[i].size());
        for (std::size_t k = 0; k != chunks[i].size(); ++k)
        {
            received[i].push_back(serialization::from_bytes<T>(
                detail::retrieve(here.id().value(), base_tag + k, i)));
        }
    }
    return received;
}

}    // namespace coal::collectives
