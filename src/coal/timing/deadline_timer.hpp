#pragma once

/// \file deadline_timer.hpp
/// Deadline timer service with microsecond-scale resolution.
///
/// The paper's flush timer is built on Boost's deadline_timer "running in
/// its own dedicated hardware thread", giving µs-order resolution instead
/// of the millisecond granularity of OS time slicing.  This service
/// replicates that design: one dedicated thread owns the pending-timer
/// store and sleeps with `wait_until`; near the deadline it spins briefly
/// to shave off wake-up latency.  Callbacks run on the timer thread and
/// must be short — the coalescing handler uses them only to trigger a
/// queue flush.
///
/// The store is a hierarchical timer wheel (timer_wheel.hpp): schedule is
/// an O(1) bucket push under a short spinlock, and cancel is O(1) and
/// touches no shared queue at all — it flips the entry's state with a CAS
/// and the tombstone is swept when the wheel cursor passes its slot.
/// That matters because the coalescing workload is cancel-heavy (every
/// first parcel of a batch arms a timer, most are cancelled by size
/// flushes), and under the previous multimap design every cancel
/// serialized against every schedule *and* the timer thread on one mutex.
/// Statistics live in their own atomics so observation (stats(),
/// pending()) never stalls the hot path either.
///
/// Timers are one-shot and cancellable; `cancel` returns whether the
/// callback was prevented from running (the coalescing handler relies on
/// that to resolve the race between "queue filled up" and "timeout").
/// The exactness survives the lock-free design because the pending→fired
/// and pending→cancelled transitions are a single CAS on the entry: the
/// loser learns the winner's verdict.

#include <coal/common/cacheline.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/stats.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/common/unique_function.hpp>
#include <coal/timing/timer_wheel.hpp>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace coal::timing {

/// Opaque handle identifying a scheduled timer.
struct timer_id
{
    std::uint64_t value = 0;

    [[nodiscard]] bool valid() const noexcept
    {
        return value != 0;
    }

    friend bool operator==(timer_id, timer_id) = default;
};

/// Aggregate statistics about timer behaviour (drives the paper's
/// timer-accuracy experiment and the /timers/* performance counters).
struct timer_service_stats
{
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    double mean_lateness_us = 0.0;    ///< mean (fire - deadline), µs
    double max_lateness_us = 0.0;
};

class deadline_timer_service
{
public:
    /// Starts the dedicated timer thread.
    /// \param spin_threshold_us  when the next deadline is closer than
    ///        this, the thread busy-polls instead of sleeping; higher
    ///        values trade CPU for accuracy.  The default absorbs the
    ///        ~200 µs wakeup latency of pthread_cond_timedwait on a
    ///        loaded/virtualized host (measured; on bare metal the
    ///        oversleep is smaller and the spin window simply shrinks
    ///        because the thread wakes closer to the deadline).
    explicit deadline_timer_service(std::int64_t spin_threshold_us = 500);
    ~deadline_timer_service();

    deadline_timer_service(deadline_timer_service const&) = delete;
    deadline_timer_service& operator=(deadline_timer_service const&) = delete;

    /// Schedule `cb` to fire once at `deadline`.
    timer_id schedule_at(time_point deadline, timer_callback cb);

    /// Schedule `cb` to fire once `delay_us` microseconds from now.
    timer_id schedule_after(std::int64_t delay_us, timer_callback cb);

    /// Cancel a pending timer.  Returns true iff the callback had not run
    /// and is now guaranteed never to run.  Returns false if it already
    /// ran, is currently running, or the id is unknown.
    bool cancel(timer_id id);

    /// Block until the timer thread is not executing any callback.  Used
    /// by owners of callback-captured state before destroying it: after
    /// cancel() + synchronize(), no callback can still be touching it.
    /// Must not be called from a timer callback, nor while holding a
    /// lock a callback may take.
    void synchronize();

    /// Number of timers currently pending (scheduled, not yet fired or
    /// cancelled).  Lock-free; safe to poll from quiescence checks.
    [[nodiscard]] std::size_t pending() const
    {
        return pending_count_.load(std::memory_order_acquire);
    }

    [[nodiscard]] timer_service_stats stats() const;

    /// Stop the service; pending timers are dropped without firing.
    void shutdown();

private:
    static constexpr std::size_t id_shard_count = 16;

    struct alignas(cache_line_size) id_shard
    {
        mutable spinlock lock;
        std::unordered_map<std::uint64_t, timer_entry_ptr> map;
    };

    [[nodiscard]] id_shard& shard_for(std::uint64_t id) noexcept
    {
        return id_shards_[id & (id_shard_count - 1)];
    }

    void run();
    void fire(timer_entry_ptr const& entry);
    void wake_timer_thread();

    // Pending-timer store: the wheel under one short spinlock.
    mutable spinlock wheel_lock_;
    timer_wheel wheel_;

    // id → entry lookup for cancel(), sharded so concurrent cancellers
    // (and the firing thread's erase) rarely collide.
    std::array<id_shard, id_shard_count> id_shards_;

    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> pending_count_{0};

    // Sleep coordination.  The mutex guards only the condvar sleep; the
    // wheel is never touched under it.  sleep_target_ns_ publishes what
    // the thread is currently sleeping toward (INT64_MAX while it is
    // recomputing or idle) so schedulers only pay a notify when their
    // deadline actually moves the wake-up earlier.
    std::mutex sleep_mutex_;
    std::condition_variable cv_;
    std::atomic<std::uint64_t> wake_generation_{0};
    std::atomic<std::int64_t> sleep_target_ns_{
        std::numeric_limits<std::int64_t>::max()};
    std::atomic<bool> callback_running_{false};

    // Stats, deliberately outside every lock: a counter query must never
    // stall a schedule, a cancel, or the firing loop.
    std::atomic<std::uint64_t> scheduled_{0};
    std::atomic<std::uint64_t> fired_{0};
    std::atomic<std::uint64_t> cancelled_{0};
    std::atomic<std::int64_t> lateness_sum_ns_{0};
    std::atomic<std::int64_t> lateness_max_ns_{0};

    std::int64_t spin_threshold_us_;

    std::thread thread_;
};

}    // namespace coal::timing
