#pragma once

/// \file deadline_timer.hpp
/// Deadline timer service with microsecond-scale resolution.
///
/// The paper's flush timer is built on Boost's deadline_timer "running in
/// its own dedicated hardware thread", giving µs-order resolution instead
/// of the millisecond granularity of OS time slicing.  This service
/// replicates that design: one dedicated thread owns a min-heap of
/// deadlines and sleeps with `wait_until`; near the deadline it spins
/// briefly to shave off wake-up latency.  Callbacks run on the timer
/// thread and must be short — the coalescing handler uses them only to
/// trigger a queue flush.
///
/// Timers are one-shot and cancellable; `cancel` returns whether the
/// callback was prevented from running (the coalescing handler relies on
/// that to resolve the race between "queue filled up" and "timeout").

#include <coal/common/stats.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/common/unique_function.hpp>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>

namespace coal::timing {

using timer_callback = unique_function<void()>;

/// Opaque handle identifying a scheduled timer.
struct timer_id
{
    std::uint64_t value = 0;

    [[nodiscard]] bool valid() const noexcept
    {
        return value != 0;
    }

    friend bool operator==(timer_id, timer_id) = default;
};

/// Aggregate statistics about timer behaviour (drives the paper's
/// timer-accuracy experiment and the /timers/* performance counters).
struct timer_service_stats
{
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    double mean_lateness_us = 0.0;    ///< mean (fire - deadline), µs
    double max_lateness_us = 0.0;
};

class deadline_timer_service
{
public:
    /// Starts the dedicated timer thread.
    /// \param spin_threshold_us  when the next deadline is closer than
    ///        this, the thread busy-polls instead of sleeping; higher
    ///        values trade CPU for accuracy.  The default absorbs the
    ///        ~200 µs wakeup latency of pthread_cond_timedwait on a
    ///        loaded/virtualized host (measured; on bare metal the
    ///        oversleep is smaller and the spin window simply shrinks
    ///        because the thread wakes closer to the deadline).
    explicit deadline_timer_service(std::int64_t spin_threshold_us = 500);
    ~deadline_timer_service();

    deadline_timer_service(deadline_timer_service const&) = delete;
    deadline_timer_service& operator=(deadline_timer_service const&) = delete;

    /// Schedule `cb` to fire once at `deadline`.
    timer_id schedule_at(time_point deadline, timer_callback cb);

    /// Schedule `cb` to fire once `delay_us` microseconds from now.
    timer_id schedule_after(std::int64_t delay_us, timer_callback cb);

    /// Cancel a pending timer.  Returns true iff the callback had not run
    /// and is now guaranteed never to run.  Returns false if it already
    /// ran, is currently running, or the id is unknown.
    bool cancel(timer_id id);

    /// Block until the timer thread is not executing any callback.  Used
    /// by owners of callback-captured state before destroying it: after
    /// cancel() + synchronize(), no callback can still be touching it.
    /// Must not be called from a timer callback, nor while holding a
    /// lock a callback may take.
    void synchronize();

    /// Number of timers currently pending.
    [[nodiscard]] std::size_t pending() const;

    [[nodiscard]] timer_service_stats stats() const;

    /// Stop the service; pending timers are dropped without firing.
    void shutdown();

private:
    struct entry
    {
        time_point deadline;
        timer_callback callback;
    };

    void run();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    // Key: (deadline, id) so equal deadlines fire in schedule order and
    // cancellation is O(log n) by id lookup through the side index.
    std::multimap<time_point, std::pair<std::uint64_t, timer_callback>>
        queue_;
    std::map<std::uint64_t, std::multimap<time_point,
        std::pair<std::uint64_t, timer_callback>>::iterator>
        index_;
    std::uint64_t next_id_ = 1;
    bool stopping_ = false;
    bool callback_running_ = false;

    std::int64_t spin_threshold_us_;

    // Stats (guarded by mutex_).
    std::uint64_t scheduled_ = 0;
    std::uint64_t fired_ = 0;
    std::uint64_t cancelled_ = 0;
    double lateness_sum_us_ = 0.0;
    double lateness_max_us_ = 0.0;

    std::thread thread_;
};

}    // namespace coal::timing
