#pragma once

/// \file busy_work.hpp
/// Calibrated CPU busy-work.
///
/// The simulated interconnect charges per-message CPU costs (protocol
/// processing, handshaking, NIC doorbells) as *real CPU time* rather than
/// sleeps, so the time lands in the runtime's background-work accounting
/// exactly the way HPX's network progress work does.  `spin_for_us` polls
/// the steady clock; `spin_flops` burns a deterministic number of
/// floating-point operations (used by the parquet kernel's compute phase).

#include <cstdint>

namespace coal::timing {

/// Busy-wait for approximately `us` microseconds of wall time.
/// Accuracy is bounded by clock read latency (tens of ns).
void spin_for_us(double us) noexcept;

/// Busy-wait for approximately `ns` nanoseconds of wall time.
void spin_for_ns(std::int64_t ns) noexcept;

/// Execute `n` dependent floating-point multiply-adds and return the
/// result so the optimizer cannot elide the loop.  Deterministic work,
/// independent of clock resolution; used for modeled compute.
double spin_flops(std::uint64_t n) noexcept;

}    // namespace coal::timing
