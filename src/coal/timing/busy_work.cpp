#include <coal/timing/busy_work.hpp>

#include <coal/common/spinlock.hpp>
#include <coal/common/stopwatch.hpp>

namespace coal::timing {

void spin_for_us(double us) noexcept
{
    spin_for_ns(static_cast<std::int64_t>(us * 1000.0));
}

void spin_for_ns(std::int64_t ns) noexcept
{
    if (ns <= 0)
        return;
    std::int64_t const deadline = now_ns() + ns;
    while (now_ns() < deadline)
        cpu_relax();
}

double spin_flops(std::uint64_t n) noexcept
{
    double acc = 1.000000001;
    for (std::uint64_t i = 0; i != n; ++i)
    {
        // Dependent FMA chain: one mul + one add per iteration, not
        // vectorizable because each step feeds the next.
        acc = acc * 1.0000001 + 1e-12;
    }
    return acc;
}

}    // namespace coal::timing
