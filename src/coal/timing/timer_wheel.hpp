#pragma once

/// \file timer_wheel.hpp
/// Hierarchical timer wheel — the O(1) bucketed store behind
/// deadline_timer_service.
///
/// The coalescing workload is cancel-heavy: every first parcel of a batch
/// arms a flush timer and most of those are cancelled moments later by a
/// size-triggered flush.  A sorted multimap makes both ends O(log n) and
/// forces the canceller to mutate the shared structure.  The wheel makes
/// schedule O(1) (bucket push) and cancel O(1) *without touching the
/// wheel at all*: the canceller flips the entry's state atomically and the
/// tombstone is reclaimed when the cursor sweeps its slot — which happens
/// within the timer's original delay, so garbage is bounded.
///
/// Two levels of 512 slots each.  Level 0 buckets one tick (128 µs)
/// per slot (~65 ms horizon); level 1 buckets one level-0 lap per slot
/// (~33 s horizon); anything further sits in an overflow list that is
/// re-bucketed as the cursor approaches.  Non-empty slots are tracked in
/// per-level bitmaps so advancing across idle time is a word scan, not a
/// slot-by-slot walk.
///
/// Firing accuracy does not degrade to tick granularity: entries keep
/// their exact deadlines, `collect_due` only returns entries that are
/// actually due, and `next_deadline` reports the exact earliest live
/// deadline — the service thread spins down to it exactly as before.
///
/// The wheel is a plain data structure: the owning service serializes all
/// calls (one short spinlock).  Entry *state*, however, is an atomic so
/// cancellation can race the firing thread and be decided by a single CAS
/// (see timer_entry_state).

#include <coal/common/unique_function.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace coal::timing {

using timer_callback = unique_function<void()>;

/// Lifecycle of a scheduled entry.  Exactly one of the two CAS
/// transitions pending→fired (timer thread) or pending→cancelled
/// (canceller) wins; the loser observes the winner's state.  This is what
/// keeps cancel()'s exact ran/never-ran answer without a queue lock.
enum class timer_entry_state : std::uint8_t
{
    pending = 0,
    fired = 1,
    cancelled = 2,
};

struct timer_entry
{
    std::int64_t deadline_ns = 0;
    std::uint64_t id = 0;
    std::atomic<timer_entry_state> state{timer_entry_state::pending};
    timer_callback callback;
};

using timer_entry_ptr = std::shared_ptr<timer_entry>;

class timer_wheel
{
public:
    static constexpr std::size_t slot_bits = 9;
    static constexpr std::size_t slot_count = std::size_t(1) << slot_bits;
    static constexpr std::size_t slot_mask = slot_count - 1;

    /// \param start_ns  current time; slots before it are considered swept
    /// \param tick_ns   level-0 slot width
    explicit timer_wheel(std::int64_t start_ns, std::int64_t tick_ns = 128000);

    /// Bucket an entry by its deadline (past deadlines land in the
    /// current slot and are returned by the next collect_due).
    void insert(timer_entry_ptr entry);

    /// Advance the cursor to `now`, appending every live entry whose
    /// deadline has passed to `out` (cancelled tombstones are dropped).
    /// Entries sharing the current tick but not yet due stay put.
    void collect_due(std::int64_t now, std::vector<timer_entry_ptr>& out);

    /// Exact earliest live deadline across both levels and the overflow
    /// list, or -1 when nothing is pending.  Reaps the tombstones it
    /// scans past.
    [[nodiscard]] std::int64_t next_deadline();

    /// Live + tombstoned entries still bucketed (sizing/tests only).
    [[nodiscard]] std::size_t stored() const noexcept
    {
        return stored_;
    }

private:
    struct level
    {
        std::array<std::vector<timer_entry_ptr>, slot_count> slots;
        std::array<std::uint64_t, slot_count / 64> bitmap{};
    };

    [[nodiscard]] std::int64_t tick_of(std::int64_t ns) const noexcept
    {
        return ns / tick_ns_;
    }

    void place(timer_entry_ptr entry);
    void cascade(std::size_t l1_slot, std::int64_t now);
    void rebucket_overflow();
    /// Min live deadline in one slot (reaping tombstones); -1 if none.
    std::int64_t scan_slot(level& lvl, std::size_t slot);

    static void set_bit(level& lvl, std::size_t slot) noexcept
    {
        lvl.bitmap[slot >> 6] |= std::uint64_t(1) << (slot & 63);
    }

    static void clear_bit(level& lvl, std::size_t slot) noexcept
    {
        lvl.bitmap[slot >> 6] &= ~(std::uint64_t(1) << (slot & 63));
    }

    /// First set bit in [from, to] (slot indices), or npos.
    static std::size_t scan_bits(
        level const& lvl, std::size_t from, std::size_t to) noexcept;

    static constexpr std::size_t npos = ~std::size_t(0);

    std::int64_t tick_ns_;
    std::int64_t cur_tick_;    ///< slots strictly before it are swept
    level levels_[2];
    std::vector<timer_entry_ptr> overflow_;
    std::size_t stored_ = 0;
};

}    // namespace coal::timing
