#include <coal/timing/deadline_timer.hpp>

#include <coal/common/assert.hpp>

#include <algorithm>
#include <utility>
#include <vector>

namespace coal::timing {

namespace {

constexpr std::int64_t k_no_deadline =
    std::numeric_limits<std::int64_t>::max();

std::int64_t to_ns(time_point tp) noexcept
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        tp.time_since_epoch())
        .count();
}

}    // namespace

deadline_timer_service::deadline_timer_service(std::int64_t spin_threshold_us)
  : wheel_(now_ns())
  , spin_threshold_us_(spin_threshold_us)
{
    thread_ = std::thread([this] { run(); });
}

deadline_timer_service::~deadline_timer_service()
{
    shutdown();
}

timer_id deadline_timer_service::schedule_at(
    time_point deadline, timer_callback cb)
{
    if (stopping_.load(std::memory_order_acquire))
        return {};

    auto entry = std::make_shared<timer_entry>();
    entry->deadline_ns = to_ns(deadline);
    entry->id = next_id_.fetch_add(1, std::memory_order_relaxed);
    entry->callback = std::move(cb);

    timer_id const id{entry->id};
    {
        auto& shard = shard_for(entry->id);
        std::lock_guard lock(shard.lock);
        shard.map.emplace(entry->id, entry);
    }
    {
        std::lock_guard lock(wheel_lock_);
        wheel_.insert(std::move(entry));
    }
    scheduled_.fetch_add(1, std::memory_order_relaxed);
    pending_count_.fetch_add(1, std::memory_order_acq_rel);

    // Wake the timer thread only if this deadline is earlier than what it
    // is sleeping toward.  sleep_target_ns_ is INT64_MAX while the thread
    // is between computations, so the race degrades to a spurious notify,
    // never a missed one (see run() for the ordering argument).
    if (to_ns(deadline) < sleep_target_ns_.load(std::memory_order_acquire))
        wake_timer_thread();
    return id;
}

timer_id deadline_timer_service::schedule_after(
    std::int64_t delay_us, timer_callback cb)
{
    return schedule_at(
        steady_clock::now() + std::chrono::microseconds(delay_us),
        std::move(cb));
}

bool deadline_timer_service::cancel(timer_id id)
{
    if (!id.valid())
        return false;

    timer_entry_ptr entry;
    {
        auto& shard = shard_for(id.value);
        std::lock_guard lock(shard.lock);
        auto it = shard.map.find(id.value);
        if (it == shard.map.end())
            return false;    // already fired (or never existed)
        entry = it->second;
        auto expected = timer_entry_state::pending;
        if (!entry->state.compare_exchange_strong(expected,
                timer_entry_state::cancelled, std::memory_order_seq_cst))
            return false;    // firing thread claimed it first
        shard.map.erase(it);
    }
    // We won the CAS: the firing thread will see `cancelled` and never
    // touch the callback again, so releasing its captures here is safe.
    timer_callback dead = std::move(entry->callback);
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    pending_count_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
}

timer_service_stats deadline_timer_service::stats() const
{
    timer_service_stats s;
    s.scheduled = scheduled_.load(std::memory_order_relaxed);
    s.fired = fired_.load(std::memory_order_relaxed);
    s.cancelled = cancelled_.load(std::memory_order_relaxed);
    auto const sum_ns = lateness_sum_ns_.load(std::memory_order_relaxed);
    s.mean_lateness_us = s.fired != 0 ?
        static_cast<double>(sum_ns) / 1000.0 / static_cast<double>(s.fired) :
        0.0;
    s.max_lateness_us =
        static_cast<double>(lateness_max_ns_.load(std::memory_order_relaxed)) /
        1000.0;
    return s;
}

void deadline_timer_service::shutdown()
{
    stopping_.store(true, std::memory_order_release);
    wake_timer_thread();
    if (thread_.joinable())
        thread_.join();
}

void deadline_timer_service::wake_timer_thread()
{
    wake_generation_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::lock_guard lock(sleep_mutex_);
    }
    cv_.notify_all();
}

void deadline_timer_service::fire(timer_entry_ptr const& entry)
{
    auto expected = timer_entry_state::pending;
    if (!entry->state.compare_exchange_strong(expected,
            timer_entry_state::fired, std::memory_order_seq_cst))
        return;    // cancelled between collection and firing

    {
        auto& shard = shard_for(entry->id);
        std::lock_guard lock(shard.lock);
        shard.map.erase(entry->id);
    }
    pending_count_.fetch_sub(1, std::memory_order_acq_rel);

    std::int64_t const lateness_ns =
        std::max<std::int64_t>(0, now_ns() - entry->deadline_ns);
    fired_.fetch_add(1, std::memory_order_relaxed);
    lateness_sum_ns_.fetch_add(lateness_ns, std::memory_order_relaxed);
    std::int64_t prev = lateness_max_ns_.load(std::memory_order_relaxed);
    while (prev < lateness_ns &&
        !lateness_max_ns_.compare_exchange_weak(
            prev, lateness_ns, std::memory_order_relaxed))
    {
    }

    // No lock is held here: callbacks may schedule or cancel timers.
    timer_callback cb = std::move(entry->callback);
    cb();
}

void deadline_timer_service::run()
{
    std::vector<timer_entry_ptr> due;
    for (;;)
    {
        if (stopping_.load(std::memory_order_acquire))
            return;

        // Publish "recomputing" before touching the wheel and read the
        // wake generation before collecting.  A scheduler inserts under
        // the wheel lock, then compares its deadline against
        // sleep_target_ns_: if its insert missed this collection pass, the
        // lock hand-off guarantees it reads either the INT64_MAX sentinel
        // (notifies unconditionally) or the target published below
        // (notifies iff earlier) — a stale target from a previous loop
        // iteration is impossible, so no wake-up can be lost.
        sleep_target_ns_.store(k_no_deadline, std::memory_order_seq_cst);
        std::uint64_t const gen =
            wake_generation_.load(std::memory_order_seq_cst);

        due.clear();
        std::int64_t next = -1;
        {
            std::lock_guard lock(wheel_lock_);
            wheel_.collect_due(now_ns(), due);
            if (due.empty())
                next = wheel_.next_deadline();
        }

        if (!due.empty())
        {
            // Equal deadlines fire in schedule order (ids are monotonic).
            std::sort(due.begin(), due.end(),
                [](timer_entry_ptr const& a, timer_entry_ptr const& b) {
                    return a->deadline_ns != b->deadline_ns ?
                        a->deadline_ns < b->deadline_ns :
                        a->id < b->id;
                });
            // The running flag must be raised *before* the claiming CAS
            // inside fire(): a canceller that loses the CAS may call
            // synchronize(), which must then observe the flag until the
            // callback has completed.
            callback_running_.store(true, std::memory_order_seq_cst);
            for (auto const& entry : due)
                fire(entry);
            callback_running_.store(false, std::memory_order_seq_cst);
            wake_timer_thread();    // releases synchronize() waiters
            continue;
        }

        if (next < 0)
        {
            // Nothing pending: sleep until a schedule bumps the
            // generation (sleep_target_ns_ is already the MAX sentinel,
            // so every new timer notifies).
            std::unique_lock lock(sleep_mutex_);
            cv_.wait(lock, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                    wake_generation_.load(std::memory_order_seq_cst) != gen;
            });
            continue;
        }

        sleep_target_ns_.store(next, std::memory_order_seq_cst);
        std::int64_t const remaining_us = (next - now_ns()) / 1000;
        if (remaining_us > spin_threshold_us_)
        {
            // Sleep until shortly before the deadline; an earlier timer
            // or shutdown wakes us via the condvar.
            auto const wake = time_point(
                std::chrono::duration_cast<steady_clock::duration>(
                    std::chrono::nanoseconds(
                        next - spin_threshold_us_ * 1000)));
            std::unique_lock lock(sleep_mutex_);
            cv_.wait_until(lock, wake, [&] {
                return stopping_.load(std::memory_order_acquire) ||
                    wake_generation_.load(std::memory_order_seq_cst) != gen;
            });
        }
        else
        {
            // Close to the deadline: busy-poll (no lock is held, so
            // schedule/cancel stay responsive); bail out early if a new
            // earlier timer arrives.
            while (now_ns() < next &&
                wake_generation_.load(std::memory_order_relaxed) == gen &&
                !stopping_.load(std::memory_order_relaxed))
            {
                cpu_relax();
            }
        }
    }
}

void deadline_timer_service::synchronize()
{
    std::unique_lock lock(sleep_mutex_);
    cv_.wait(lock, [&] {
        return !callback_running_.load(std::memory_order_seq_cst);
    });
}

}    // namespace coal::timing
