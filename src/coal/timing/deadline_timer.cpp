#include <coal/timing/deadline_timer.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/spinlock.hpp>

#include <utility>
#include <vector>

namespace coal::timing {

deadline_timer_service::deadline_timer_service(std::int64_t spin_threshold_us)
  : spin_threshold_us_(spin_threshold_us)
{
    thread_ = std::thread([this] { run(); });
}

deadline_timer_service::~deadline_timer_service()
{
    shutdown();
}

timer_id deadline_timer_service::schedule_at(
    time_point deadline, timer_callback cb)
{
    std::uint64_t id = 0;
    {
        std::lock_guard lock(mutex_);
        if (stopping_)
            return {};
        id = next_id_++;
        auto it = queue_.emplace(deadline, std::pair{id, std::move(cb)});
        index_.emplace(id, it);
        ++scheduled_;
    }
    cv_.notify_one();
    return {id};
}

timer_id deadline_timer_service::schedule_after(
    std::int64_t delay_us, timer_callback cb)
{
    return schedule_at(
        steady_clock::now() + std::chrono::microseconds(delay_us),
        std::move(cb));
}

bool deadline_timer_service::cancel(timer_id id)
{
    if (!id.valid())
        return false;
    std::lock_guard lock(mutex_);
    auto it = index_.find(id.value);
    if (it == index_.end())
        return false;    // already fired (or never existed)
    queue_.erase(it->second);
    index_.erase(it);
    ++cancelled_;
    return true;
}

std::size_t deadline_timer_service::pending() const
{
    std::lock_guard lock(mutex_);
    return queue_.size();
}

timer_service_stats deadline_timer_service::stats() const
{
    std::lock_guard lock(mutex_);
    timer_service_stats s;
    s.scheduled = scheduled_;
    s.fired = fired_;
    s.cancelled = cancelled_;
    s.mean_lateness_us =
        fired_ ? lateness_sum_us_ / static_cast<double>(fired_) : 0.0;
    s.max_lateness_us = lateness_max_us_;
    return s;
}

void deadline_timer_service::shutdown()
{
    {
        std::lock_guard lock(mutex_);
        if (stopping_)
        {
            // Second call: thread may already be joined.
            if (thread_.joinable())
            {
                // fallthrough to join below
            }
        }
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void deadline_timer_service::run()
{
    std::unique_lock lock(mutex_);
    for (;;)
    {
        if (stopping_)
            return;

        if (queue_.empty())
        {
            cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
            continue;
        }

        auto const next_deadline = queue_.begin()->first;
        auto const now = steady_clock::now();

        if (next_deadline > now)
        {
            auto const remaining_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    next_deadline - now)
                    .count();
            if (remaining_us > spin_threshold_us_)
            {
                // Sleep until shortly before the deadline; a new earlier
                // timer or shutdown wakes us via the condvar.
                cv_.wait_until(lock,
                    next_deadline -
                        std::chrono::microseconds(spin_threshold_us_));
                continue;
            }

            // Close to the deadline: spin with the lock *released* so
            // schedule/cancel stay responsive, then re-evaluate.
            lock.unlock();
            while (steady_clock::now() < next_deadline)
                cpu_relax();
            lock.lock();
            continue;
        }

        // Deadline reached: detach the entry and run the callback
        // unlocked so callbacks may schedule/cancel timers.
        auto it = queue_.begin();
        std::uint64_t const id = it->second.first;
        timer_callback cb = std::move(it->second.second);
        index_.erase(id);
        queue_.erase(it);

        auto const lateness_us =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    steady_clock::now() - next_deadline)
                    .count()) /
            1000.0;
        ++fired_;
        lateness_sum_us_ += lateness_us;
        if (lateness_us > lateness_max_us_)
            lateness_max_us_ = lateness_us;

        callback_running_ = true;
        lock.unlock();
        cb();
        lock.lock();
        callback_running_ = false;
        cv_.notify_all();    // wake synchronize() waiters
    }
}

void deadline_timer_service::synchronize()
{
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !callback_running_; });
}

}    // namespace coal::timing
