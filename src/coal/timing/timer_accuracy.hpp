#pragma once

/// \file timer_accuracy.hpp
/// The paper's §II-B timer-accuracy experiment: schedule timers for known
/// deadlines and measure how late they actually fire.  The paper reports
/// an average error of ~33 µs for its dedicated-thread deadline timer and
/// argues a software-thread (sleep-based) timer would be limited by OS
/// time slicing (milliseconds).  `measure_sleep_timer_accuracy` provides
/// that baseline for comparison.

#include <coal/common/stats.hpp>

#include <cstdint>

namespace coal::timing {

struct accuracy_result
{
    std::int64_t requested_delay_us = 0;
    std::uint64_t samples = 0;
    double mean_error_us = 0.0;    ///< mean |fire time - deadline|
    double max_error_us = 0.0;
    double stddev_error_us = 0.0;
};

/// Fire `samples` one-shot timers with the given delay through a
/// deadline_timer_service and collect the firing-error distribution.
/// \param spin_threshold_us  the service's sleep/spin crossover; -1 uses
///        the service default.  Larger values absorb more OS wakeup
///        jitter at the cost of CPU on the timer thread.
accuracy_result measure_deadline_timer_accuracy(
    std::int64_t delay_us, std::uint64_t samples,
    std::int64_t spin_threshold_us = -1);

/// Same measurement using a plain sleeping thread per timer (the strategy
/// the paper rejects), for the comparison row in the bench output.
accuracy_result measure_sleep_timer_accuracy(
    std::int64_t delay_us, std::uint64_t samples);

}    // namespace coal::timing
