#include <coal/timing/timer_accuracy.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace coal::timing {

namespace {

accuracy_result summarize(
    std::int64_t delay_us, running_stats const& errors)
{
    accuracy_result r;
    r.requested_delay_us = delay_us;
    r.samples = errors.count();
    r.mean_error_us = errors.mean();
    r.max_error_us = errors.max();
    r.stddev_error_us = errors.stddev();
    return r;
}

}    // namespace

accuracy_result measure_deadline_timer_accuracy(
    std::int64_t delay_us, std::uint64_t samples,
    std::int64_t spin_threshold_us)
{
    deadline_timer_service service(
        spin_threshold_us < 0 ? 500 : spin_threshold_us);
    running_stats errors;

    std::mutex m;
    std::condition_variable cv;
    bool fired = false;

    for (std::uint64_t i = 0; i != samples; ++i)
    {
        auto const deadline =
            steady_clock::now() + std::chrono::microseconds(delay_us);
        fired = false;

        service.schedule_at(deadline, [&] {
            auto const err_ns =
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    steady_clock::now() - deadline)
                    .count();
            {
                std::lock_guard lock(m);
                errors.add(std::abs(static_cast<double>(err_ns)) / 1000.0);
                fired = true;
            }
            cv.notify_one();
        });

        std::unique_lock lock(m);
        cv.wait(lock, [&] { return fired; });
    }

    return summarize(delay_us, errors);
}

accuracy_result measure_sleep_timer_accuracy(
    std::int64_t delay_us, std::uint64_t samples)
{
    running_stats errors;

    for (std::uint64_t i = 0; i != samples; ++i)
    {
        auto const deadline =
            steady_clock::now() + std::chrono::microseconds(delay_us);

        // One OS thread per timer, sleeping until the deadline — the
        // design the paper rejects because wake-up is at the mercy of the
        // scheduler's time slicing.
        std::int64_t err_ns = 0;
        std::thread t([&] {
            std::this_thread::sleep_until(deadline);
            err_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                steady_clock::now() - deadline)
                         .count();
        });
        t.join();
        errors.add(std::abs(static_cast<double>(err_ns)) / 1000.0);
    }

    return summarize(delay_us, errors);
}

}    // namespace coal::timing
