#include <coal/timing/timer_wheel.hpp>

#include <coal/common/assert.hpp>

#include <algorithm>
#include <utility>

namespace coal::timing {

timer_wheel::timer_wheel(std::int64_t start_ns, std::int64_t tick_ns)
  : tick_ns_(tick_ns)
  , cur_tick_(start_ns / tick_ns)
{
    COAL_ASSERT(tick_ns > 0);
}

void timer_wheel::insert(timer_entry_ptr entry)
{
    ++stored_;
    place(std::move(entry));
}

void timer_wheel::place(timer_entry_ptr entry)
{
    std::int64_t const t = std::max(tick_of(entry->deadline_ns), cur_tick_);
    std::int64_t const dt = t - cur_tick_;
    if (dt < static_cast<std::int64_t>(slot_count))
    {
        auto const slot = static_cast<std::size_t>(t) & slot_mask;
        levels_[0].slots[slot].push_back(std::move(entry));
        set_bit(levels_[0], slot);
    }
    else if (dt < static_cast<std::int64_t>(slot_count * slot_count))
    {
        auto const slot =
            (static_cast<std::size_t>(t) >> slot_bits) & slot_mask;
        levels_[1].slots[slot].push_back(std::move(entry));
        set_bit(levels_[1], slot);
    }
    else
    {
        overflow_.push_back(std::move(entry));
    }
}

void timer_wheel::cascade(std::size_t l1_slot, std::int64_t /*now*/)
{
    auto& slot = levels_[1].slots[l1_slot];
    if (slot.empty())
        return;
    clear_bit(levels_[1], l1_slot);
    std::vector<timer_entry_ptr> pending;
    pending.swap(slot);
    for (auto& e : pending)
    {
        if (e->state.load(std::memory_order_acquire) ==
            timer_entry_state::cancelled)
        {
            --stored_;
            continue;
        }
        place(std::move(e));
    }
}

void timer_wheel::rebucket_overflow()
{
    if (overflow_.empty())
        return;
    std::vector<timer_entry_ptr> keep;
    keep.reserve(overflow_.size());
    for (auto& e : overflow_)
    {
        if (e->state.load(std::memory_order_acquire) ==
            timer_entry_state::cancelled)
        {
            --stored_;
            continue;
        }
        std::int64_t const dt = tick_of(e->deadline_ns) - cur_tick_;
        if (dt < static_cast<std::int64_t>(slot_count * slot_count))
            place(std::move(e));
        else
            keep.push_back(std::move(e));
    }
    overflow_.swap(keep);
}

void timer_wheel::collect_due(
    std::int64_t now, std::vector<timer_entry_ptr>& out)
{
    std::int64_t const target = std::max(tick_of(now), cur_tick_);
    auto const mask = static_cast<std::int64_t>(slot_mask);

    for (;;)
    {
        // Sweep the slot under the cursor.  Everything in a slot strictly
        // before the target tick is due by construction; in the target
        // slot itself entries may still be up to one tick in the future.
        auto const idx = static_cast<std::size_t>(cur_tick_) & slot_mask;
        auto& slot = levels_[0].slots[idx];
        if (!slot.empty())
        {
            std::size_t kept = 0;
            for (auto& e : slot)
            {
                if (e->state.load(std::memory_order_acquire) ==
                    timer_entry_state::cancelled)
                {
                    --stored_;
                }
                else if (e->deadline_ns <= now)
                {
                    --stored_;
                    out.push_back(std::move(e));
                }
                else
                {
                    slot[kept++] = std::move(e);
                }
            }
            slot.resize(kept);
            if (slot.empty())
                clear_bit(levels_[0], idx);
        }

        if (cur_tick_ >= target)
            return;

        std::int64_t const next_tick = cur_tick_ + 1;
        if ((next_tick & mask) == 0)
        {
            // Level-0 lap boundary: pull the matching level-1 slot down
            // and give far-future entries a chance to enter the wheel.
            cur_tick_ = next_tick;
            cascade((static_cast<std::size_t>(next_tick) >> slot_bits) &
                    slot_mask,
                now);
            rebucket_overflow();
            continue;
        }

        // Skip empty slots inside the current lap segment via the bitmap.
        std::int64_t const seg_end = cur_tick_ | mask;
        std::int64_t const limit = std::min(target, seg_end);
        std::size_t const s = scan_bits(levels_[0],
            static_cast<std::size_t>(next_tick) & slot_mask,
            static_cast<std::size_t>(limit) & slot_mask);
        cur_tick_ = s == npos ?
            limit :
            (cur_tick_ - (cur_tick_ & mask)) + static_cast<std::int64_t>(s);
    }
}

std::int64_t timer_wheel::scan_slot(level& lvl, std::size_t slot)
{
    auto& entries = lvl.slots[slot];
    std::int64_t best = -1;
    std::size_t kept = 0;
    for (auto& e : entries)
    {
        if (e->state.load(std::memory_order_acquire) ==
            timer_entry_state::cancelled)
        {
            --stored_;
            continue;
        }
        if (best < 0 || e->deadline_ns < best)
            best = e->deadline_ns;
        entries[kept++] = std::move(e);
    }
    entries.resize(kept);
    if (entries.empty())
        clear_bit(lvl, slot);
    return best;
}

std::int64_t timer_wheel::next_deadline()
{
    // Within a level, slots ordered by absolute tick start at the cursor
    // and wrap once around; the first slot holding a live entry bounds
    // every later slot's deadlines from below, so its minimum is the
    // level's minimum — and level 0 bounds level 1 bounds the overflow
    // list.  Level-0 entries sit within one lap of the cursor, so cursor
    // order is base, base+1, …  Level-1 entries are at least one level-0
    // lap out: the base slot itself can only hold entries a full level-1
    // lap ahead, so it is scanned *last*.
    for (int l = 0; l != 2; ++l)
    {
        auto& lvl = levels_[l];
        std::size_t const base = l == 0 ?
            (static_cast<std::size_t>(cur_tick_) & slot_mask) :
            ((static_cast<std::size_t>(cur_tick_) >> slot_bits) & slot_mask);
        std::size_t const first_offset = l == 0 ? 0 : 1;
        for (std::size_t off = first_offset; off <= slot_count; ++off)
        {
            if (off == slot_count && first_offset == 0)
                break;    // level 0: base already covered at off == 0
            std::size_t const s = (base + off) & slot_mask;
            if ((lvl.bitmap[s >> 6] & (std::uint64_t(1) << (s & 63))) == 0)
                continue;
            std::int64_t const best = scan_slot(lvl, s);
            if (best >= 0)
                return best;
        }
    }

    std::int64_t best = -1;
    std::size_t kept = 0;
    for (auto& e : overflow_)
    {
        if (e->state.load(std::memory_order_acquire) ==
            timer_entry_state::cancelled)
        {
            --stored_;
            continue;
        }
        if (best < 0 || e->deadline_ns < best)
            best = e->deadline_ns;
        overflow_[kept++] = std::move(e);
    }
    overflow_.resize(kept);
    return best;
}

std::size_t timer_wheel::scan_bits(
    level const& lvl, std::size_t from, std::size_t to) noexcept
{
    if (from > to)
        return npos;
    for (std::size_t w = from >> 6; w <= (to >> 6); ++w)
    {
        std::uint64_t bits = lvl.bitmap[w];
        if (w == (from >> 6))
            bits &= ~std::uint64_t(0) << (from & 63);
        if (w == (to >> 6) && (to & 63) != 63)
            bits &= (std::uint64_t(1) << ((to & 63) + 1)) - 1;
        if (bits != 0)
            return (w << 6) +
                static_cast<std::size_t>(__builtin_ctzll(bits));
    }
    return npos;
}

}    // namespace coal::timing
