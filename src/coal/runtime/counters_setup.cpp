/// \file counters_setup.cpp
/// Registers all built-in performance counter types with the runtime's
/// registry — including the counters the paper adds to HPX:
///
///   /threads/time/average-overhead      (Eq. 2)
///   /threads/background-work            (Eq. 3, added by the paper)
///   /threads/background-overhead        (Eq. 4, added by the paper)
///   /coalescing/count/parcels@action
///   /coalescing/count/messages@action
///   /coalescing/count/average-parcels-per-message@action
///   /coalescing/time/average-parcel-arrival@action
///   /coalescing/time/parcel-arrival-histogram@action
///
/// plus supporting counters for parcels, messages, data volume, task
/// counts and the flush-timer service.  Instance selection follows HPX:
/// `{locality#N}` reads one locality, empty or `{locality#*/total}`
/// aggregates over all of them.

#include <coal/runtime/runtime.hpp>

#include <coal/core/coalescing_counters.hpp>
#include <coal/perf/counter.hpp>
#include <coal/perf/counter_path.hpp>
#include <coal/serialization/buffer_pool.hpp>

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

namespace coal {

namespace {

using perf::array_function_counter;
using perf::counter_path;
using perf::counter_ptr;
using perf::counter_value;

/// Scalar counter with reset-by-baseline semantics: reading with reset
/// (or reset()) re-zeroes the reported value without disturbing the
/// underlying monotonic source.
class baseline_counter final : public perf::counter
{
public:
    explicit baseline_counter(std::function<double()> read)
      : read_(std::move(read))
    {
    }

    counter_value value(bool reset) override
    {
        counter_value v;
        v.value = read_() - baseline_;
        v.valid = true;
        if (reset)
            baseline_ += v.value;
        return v;
    }

    void reset() override
    {
        baseline_ = read_();
    }

private:
    std::function<double()> read_;
    double baseline_ = 0.0;
};

/// Ratio counter whose reset re-baselines numerator and denominator, so a
/// post-reset read yields the ratio *for the interval since the reset* —
/// exactly what per-phase network-overhead measurements need (Fig. 9).
class ratio_counter final : public perf::counter
{
public:
    ratio_counter(
        std::function<double()> numerator, std::function<double()> denominator)
      : num_(std::move(numerator))
      , den_(std::move(denominator))
    {
    }

    counter_value value(bool reset) override
    {
        double const n = num_() - num_base_;
        double const d = den_() - den_base_;
        counter_value v;
        v.value = d > 0.0 ? n / d : 0.0;
        v.valid = true;
        if (reset)
            this->reset();
        return v;
    }

    void reset() override
    {
        num_base_ = num_();
        den_base_ = den_();
    }

private:
    std::function<double()> num_;
    std::function<double()> den_;
    double num_base_ = 0.0;
    double den_base_ = 0.0;
};

}    // namespace

void runtime::register_counters()
{
    using threading::scheduler_snapshot;

    // Resolve a counter instance to a snapshot source: one locality or
    // the aggregate.  Returns nullopt for an out-of-range locality.
    auto snapshot_source = [this](counter_path const& path)
        -> std::optional<std::function<scheduler_snapshot()>> {
        if (auto loc = path.locality())
        {
            if (!hosts(*loc))
                return std::nullopt;
            locality* l = localities_[*loc - first_rank_].get();
            return [l] { return l->scheduler().snapshot(); };
        }
        return [this] { return aggregate_snapshot(); };
    };

    auto make_scalar = [snapshot_source](
                           double (*extract)(scheduler_snapshot const&)) {
        return [snapshot_source, extract](counter_path const& path)
                   -> counter_ptr {
            auto source = snapshot_source(path);
            if (!source)
                return nullptr;
            return std::make_shared<baseline_counter>(
                [src = *source, extract] { return extract(src()); });
        };
    };

    counters_.register_counter_type("/threads/count/cumulative",
        "number of executed tasks (HPX threads)",
        make_scalar([](scheduler_snapshot const& s) {
            return static_cast<double>(s.tasks_executed);
        }));

    counters_.register_counter_type("/threads/time/func",
        "cumulative task duration Σt_func (Eq. 1), ns",
        make_scalar([](scheduler_snapshot const& s) {
            return static_cast<double>(s.func_time_ns);
        }));

    counters_.register_counter_type("/threads/time/exec",
        "cumulative useful execution time Σt_exec, ns",
        make_scalar([](scheduler_snapshot const& s) {
            return static_cast<double>(s.exec_time_ns);
        }));

    counters_.register_counter_type("/threads/background-work",
        "cumulative background-work duration (Eq. 3), ns",
        make_scalar([](scheduler_snapshot const& s) {
            return static_cast<double>(s.background_time_ns);
        }));

    counters_.register_counter_type("/threads/time/idle-polls",
        "time spent in background polls that found no work, ns "
        "(excluded from Eq. 3/4)",
        make_scalar([](scheduler_snapshot const& s) {
            return static_cast<double>(s.idle_poll_time_ns);
        }));

    // Average overhead needs joint reset of two sources; a ratio counter
    // over (func - exec) and task count gives Eq. 2 with per-interval
    // semantics.
    counters_.register_counter_type("/threads/time/average-overhead",
        "average per-task management overhead (Eq. 2), ns/task",
        [snapshot_source](counter_path const& path) -> counter_ptr {
            auto source = snapshot_source(path);
            if (!source)
                return nullptr;
            auto src = *source;
            return std::make_shared<ratio_counter>(
                [src] {
                    auto const s = src();
                    return static_cast<double>(
                        s.func_time_ns - s.exec_time_ns);
                },
                [src] {
                    auto const s = src();
                    return static_cast<double>(s.tasks_executed);
                });
        });

    counters_.register_counter_type("/threads/background-overhead",
        "network overhead n_oh = Σt_bg / Σt_func (Eq. 4), ratio",
        [snapshot_source](counter_path const& path) -> counter_ptr {
            auto source = snapshot_source(path);
            if (!source)
                return nullptr;
            auto src = *source;
            // Denominator includes background time: HPX runs background
            // work as HPX threads, so Σt_func subsumes it there (see
            // scheduler_snapshot::network_overhead()).
            return std::make_shared<ratio_counter>(
                [src] {
                    return static_cast<double>(src().background_time_ns);
                },
                [src] {
                    auto const s = src();
                    return static_cast<double>(
                        s.func_time_ns + s.background_time_ns);
                });
        });

    // ---- parcel / message / data volume --------------------------------

    auto parcel_scalar = [this](std::function<double(
                                    parcel::parcelhandler_counters const&)>
                                    extract) {
        return [this, extract](counter_path const& path) -> counter_ptr {
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                locality* l = localities_[*loc - first_rank_].get();
                return std::make_shared<baseline_counter>(
                    [l, extract] { return extract(l->parcels().counters()); });
            }
            return std::make_shared<baseline_counter>([this, extract] {
                double total = 0.0;
                for (auto const& l : localities_)
                    total += extract(l->parcels().counters());
                return total;
            });
        };
    };

    using ph_counters = parcel::parcelhandler_counters;
    counters_.register_counter_type("/parcels/count/sent",
        "parcels handed to the parcel layer for remote delivery",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_sent.load());
        }));
    counters_.register_counter_type("/parcels/count/received",
        "parcels decoded from incoming messages",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_received.load());
        }));
    counters_.register_counter_type("/parcels/count/routed-local",
        "parcels short-circuited to the local scheduler",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_local.load());
        }));
    counters_.register_counter_type("/messages/count/sent",
        "wire messages transmitted",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.messages_sent.load());
        }));
    counters_.register_counter_type("/messages/count/received",
        "wire messages received",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.messages_received.load());
        }));
    counters_.register_counter_type("/data/count/sent",
        "bytes transmitted (message frames)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.bytes_sent.load());
        }));
    counters_.register_counter_type("/data/count/received",
        "bytes received (message frames)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.bytes_received.load());
        }));

    // ---- hierarchical (two-level) aggregation --------------------------

    counters_.register_counter_type("/coal/hierarchy/relayed",
        "parcels received as a node relay and re-routed to their final "
        "destination",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_relayed.load());
        }));
    counters_.register_counter_type("/coal/hierarchy/fanned-out",
        "relayed parcels forwarded over intra-node links (the fan-out leg)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_fanned_out.load());
        }));
    counters_.register_counter_type("/coal/hierarchy/relay-confirmed",
        "forwarded parcels acknowledged by their final destination (the "
        "completion half of the relay custody ledger)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_relay_confirmed.load());
        }));
    counters_.register_counter_type("/coal/hierarchy/relay-failed",
        "forwarded parcels lost from relay custody (destination death, "
        "link down, or relay crash after confirming the origin)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_relay_failed.load());
        }));
    counters_.register_counter_type("/coal/hierarchy/inter-node-messages",
        "wire messages sent across a node boundary (topology-classified)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.messages_inter_node.load());
        }));
    counters_.register_counter_type("/coal/hierarchy/intra-node-messages",
        "wire messages sent within a node (topology-classified)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.messages_intra_node.load());
        }));

    // ---- reliability & fault injection (/net) --------------------------

    counters_.register_counter_type("/net/count/drops",
        "messages lost by the transport (shutdown races, missing handlers, "
        "injected faults)",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(
                    transport_->stats().messages_dropped);
            });
        });
    counters_.register_counter_type("/net/count/drops-injected",
        "messages dropped by the fault plan",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(transport_->stats().drops_injected);
            });
        });
    counters_.register_counter_type("/net/count/duplicates-injected",
        "duplicate messages forged by the fault plan",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(
                    transport_->stats().duplicates_injected);
            });
        });
    counters_.register_counter_type("/net/count/retransmits",
        "frames retransmitted by the reliability layer",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.retransmits.load());
        }));
    counters_.register_counter_type("/net/count/duplicates-suppressed",
        "received frames discarded as duplicates by the reliability layer",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.duplicates_suppressed.load());
        }));
    counters_.register_counter_type("/net/count/acks",
        "standalone ack frames emitted",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.acks_sent.load());
        }));
    counters_.register_counter_type("/net/count/circuit-breaker-trips",
        "times a per-link circuit breaker opened (coalescing bypassed)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.circuit_breaker_trips.load());
        }));
    counters_.register_counter_type("/net/time/average-ack-latency",
        "mean time from first transmission to acknowledgement, µs",
        [this](counter_path const& path) -> counter_ptr {
            std::vector<locality*> selected;
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                selected.push_back(localities_[*loc - first_rank_].get());
            }
            else
            {
                for (auto const& l : localities_)
                    selected.push_back(l.get());
            }
            return std::make_shared<ratio_counter>(
                [selected] {
                    double ns = 0.0;
                    for (auto* l : selected)
                        ns += static_cast<double>(
                            l->parcels().counters().ack_latency_ns.load());
                    return ns / 1000.0;    // report µs
                },
                [selected] {
                    double n = 0.0;
                    for (auto* l : selected)
                        n += static_cast<double>(
                            l->parcels().counters().acked_messages.load());
                    return n;
                });
        });

    // ---- batched receive pipeline --------------------------------------

    // Ratio of two parcelhandler counters over the selected localities.
    auto parcel_ratio = [this](std::function<double(ph_counters const&)> num,
                            std::function<double(ph_counters const&)> den) {
        return [this, num, den](counter_path const& path) -> counter_ptr {
            std::vector<locality*> selected;
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                selected.push_back(localities_[*loc - first_rank_].get());
            }
            else
            {
                for (auto const& l : localities_)
                    selected.push_back(l.get());
            }
            return std::make_shared<ratio_counter>(
                [selected, num] {
                    double total = 0.0;
                    for (auto* l : selected)
                        total += num(l->parcels().counters());
                    return total;
                },
                [selected, den] {
                    double total = 0.0;
                    for (auto* l : selected)
                        total += den(l->parcels().counters());
                    return total;
                });
        };
    };

    counters_.register_counter_type("/threads/receive-pipeline/count/drains",
        "progress_receive calls that drained at least one frame",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.receive_drains.load());
        }));
    counters_.register_counter_type("/threads/receive-pipeline/count/frames",
        "inbox frames consumed by budgeted receive drains",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.frames_drained.load());
        }));
    counters_.register_counter_type("/threads/receive-pipeline/count/chunks",
        "chunk tasks bulk-spawned by the receive pipeline",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.chunk_tasks.load());
        }));
    counters_.register_counter_type(
        "/threads/receive-pipeline/frames-per-drain",
        "average inbox frames consumed per draining progress_receive call",
        parcel_ratio(
            [](ph_counters const& c) {
                return static_cast<double>(c.frames_drained.load());
            },
            [](ph_counters const& c) {
                return static_cast<double>(c.receive_drains.load());
            }));
    counters_.register_counter_type(
        "/threads/receive-pipeline/chunk-occupancy",
        "average parcels carried per chunk task",
        parcel_ratio(
            [](ph_counters const& c) {
                return static_cast<double>(c.chunk_parcels.load());
            },
            [](ph_counters const& c) {
                return static_cast<double>(c.chunk_tasks.load());
            }));
    counters_.register_counter_type(
        "/threads/receive-pipeline/time/offloaded-decode",
        "argument-decode time moved off the background critical path onto "
        "executing workers, ns",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.decode_offload_ns.load());
        }));
    counters_.register_counter_type("/net/count/duplicate-overhead-avoided",
        "duplicate frames recognized from the frame prefix before the "
        "per-message receive overhead was paid",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.duplicate_overhead_avoided.load());
        }));

    // ---- socket parcelport (/net/wire) ---------------------------------
    //
    // Registered unconditionally; on a sim/loopback runtime (no socket
    // transport) every wire counter reads 0, so counters_tour and the
    // counter tests enumerate a stable catalogue regardless of transport.

    auto wire_scalar = [this](std::uint64_t net::socket_wire_stats::*member) {
        return [this, member](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this, member] {
                if (socket_transport_ == nullptr)
                    return 0.0;
                return static_cast<double>(
                    socket_transport_->wire_stats().*member);
            });
        };
    };

    counters_.register_counter_type("/net/wire/count/bytes-sent",
        "bytes written to sockets, frame headers included",
        wire_scalar(&net::socket_wire_stats::bytes_sent));
    counters_.register_counter_type("/net/wire/count/bytes-received",
        "bytes read from sockets, frame headers included",
        wire_scalar(&net::socket_wire_stats::bytes_received));
    counters_.register_counter_type("/net/wire/count/frames-sent",
        "complete frames (data + control) written to sockets",
        wire_scalar(&net::socket_wire_stats::frames_sent));
    counters_.register_counter_type("/net/wire/count/frames-received",
        "complete frames received and CRC-verified",
        wire_scalar(&net::socket_wire_stats::frames_received));
    counters_.register_counter_type("/net/wire/count/reconnects",
        "established connections lost and scheduled for reconnect",
        wire_scalar(&net::socket_wire_stats::reconnects));
    counters_.register_counter_type("/net/wire/count/connects",
        "successful outbound connects (incl. reconnects)",
        wire_scalar(&net::socket_wire_stats::connects));
    counters_.register_counter_type("/net/wire/count/accepts",
        "inbound connections accepted",
        wire_scalar(&net::socket_wire_stats::accepts));
    counters_.register_counter_type(
        "/net/wire/count/partial-write-resumptions",
        "frame writes resumed after a short write (socket buffer full)",
        wire_scalar(&net::socket_wire_stats::partial_write_resumptions));
    counters_.register_counter_type(
        "/net/wire/count/partial-read-resumptions",
        "frame reads resumed after a partial frame arrived",
        wire_scalar(&net::socket_wire_stats::partial_read_resumptions));
    counters_.register_counter_type("/net/wire/count/crc-drops",
        "frames discarded for a payload CRC mismatch (never executed; "
        "recovered by retransmission)",
        wire_scalar(&net::socket_wire_stats::crc_drops));
    counters_.register_counter_type("/net/wire/count/desync-drops",
        "fatal stream decode errors (bad magic/version/header CRC) that "
        "cut the connection",
        wire_scalar(&net::socket_wire_stats::desync_drops));
    counters_.register_counter_type("/net/wire/count/oversized-drops",
        "frames rejected for a length prefix above the frame cap",
        wire_scalar(&net::socket_wire_stats::oversized_drops));
    counters_.register_counter_type("/net/wire/count/truncated-drops",
        "partial frames discarded at connection end",
        wire_scalar(&net::socket_wire_stats::truncated_drops));
    counters_.register_counter_type("/net/wire/count/connect-failures",
        "outbound connect attempts that failed (retried with backoff)",
        wire_scalar(&net::socket_wire_stats::connect_failures));
    counters_.register_counter_type("/net/wire/count/accept-failures",
        "accept() failures on listening sockets",
        wire_scalar(&net::socket_wire_stats::accept_failures));
    counters_.register_counter_type("/net/wire/count/handshake-failures",
        "HELLO exchanges rejected (geometry or action-registry digest "
        "mismatch)",
        wire_scalar(&net::socket_wire_stats::handshake_failures));
    counters_.register_counter_type("/net/wire/count/backlog-drops",
        "frames shed at the per-connection outbound backlog cap",
        wire_scalar(&net::socket_wire_stats::backlog_drops));

    // ---- flow control / overload protection (/net/flow) ----------------

    counters_.register_counter_type("/net/flow/count/shed",
        "best-effort parcels shed by admission control under critical "
        "pressure",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_shed.load());
        }));
    counters_.register_counter_type("/net/flow/count/deferrals",
        "send jobs deferred on an exhausted credit window",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.sends_deferred.load());
        }));
    counters_.register_counter_type("/net/flow/count/releases",
        "deferred send jobs re-queued after the window opened",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.sends_released.load());
        }));
    counters_.register_counter_type("/net/flow/count/credit-updates",
        "credit window grants applied from peer advertisements",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.credit_updates.load());
        }));
    counters_.register_counter_type("/net/flow/count/link-down",
        "parcels failed with link_down (breaker open, in-flight cap "
        "exhausted)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.link_down_failures.load());
        }));
    counters_.register_counter_type("/net/flow/count/pressure-transitions",
        "process-level pressure state changes (ok/soft/critical)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.pressure_transitions.load());
        }));
    counters_.register_counter_type("/net/flow/count/starvation-trips",
        "circuit breakers opened by the credit-starvation slow-peer "
        "detector",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.starvation_trips.load());
        }));
    counters_.register_counter_type("/net/flow/pressure",
        "current pressure state toward the worst peer "
        "(gauge: 0=ok, 1=soft, 2=critical)",
        [this](counter_path const& path) -> counter_ptr {
            std::vector<locality*> selected;
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                selected.push_back(localities_[*loc - first_rank_].get());
            }
            else
            {
                for (auto const& l : localities_)
                    selected.push_back(l.get());
            }
            return std::make_shared<perf::function_counter>([selected] {
                pressure_state worst = pressure_state::ok;
                for (auto* l : selected)
                    worst = max_pressure(
                        worst, l->parcels().current_pressure());
                return static_cast<double>(worst);
            });
        });

    // ---- membership / failure detection (/net/health) -------------------

    counters_.register_counter_type("/net/health/count/heartbeats",
        "standalone liveness frames emitted on idle links (and dead-peer "
        "rejoin probes)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.heartbeats_sent.load());
        }));
    counters_.register_counter_type("/net/health/count/suspected",
        "suspicion escalations (phi crossed suspect_phi)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.peers_suspected.load());
        }));
    counters_.register_counter_type("/net/health/count/deaths",
        "peers declared dead by the phi-accrual failure detector",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.peers_declared_dead.load());
        }));
    counters_.register_counter_type("/net/health/count/rejoins",
        "peers readmitted under a fresh incarnation epoch",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.peer_rejoins.load());
        }));
    counters_.register_counter_type("/net/health/count/stale-epoch-frames",
        "frames discarded because they belonged to a fenced incarnation "
        "(wrong src or dst epoch)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.stale_epoch_frames.load());
        }));
    counters_.register_counter_type("/net/health/count/refutes",
        "false-positive deaths healed by epoch refutation (this locality "
        "adopted the higher epoch an accuser's dead-peer probe demanded)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.epoch_refutes.load());
        }));
    counters_.register_counter_type("/net/health/count/confirmed-parcels",
        "parcels whose frame the peer acknowledged (sender-side confirmed "
        "delivery)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_confirmed.load());
        }));

    // Membership gauges: sum the selected localities' health snapshots.
    auto health_gauge = [this](auto field) {
        return [this, field](counter_path const& path) -> counter_ptr {
            std::vector<locality*> selected;
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                selected.push_back(localities_[*loc - first_rank_].get());
            }
            else
            {
                for (auto const& l : localities_)
                    selected.push_back(l.get());
            }
            return std::make_shared<perf::function_counter>(
                [selected, field] {
                    double total = 0.0;
                    for (auto* l : selected)
                        total += static_cast<double>(
                            field(l->parcels().health()));
                    return total;
                });
        };
    };
    counters_.register_counter_type("/net/health/known-peers",
        "peers with membership state at this locality (gauge)",
        health_gauge([](parcel::parcelhandler::health_snapshot const& s) {
            return s.known_peers;
        }));
    counters_.register_counter_type("/net/health/suspected-peers",
        "peers currently under suspicion (gauge)",
        health_gauge([](parcel::parcelhandler::health_snapshot const& s) {
            return s.suspected_peers;
        }));
    counters_.register_counter_type("/net/health/dead-peers",
        "peers currently declared dead (gauge; rejoin clears)",
        health_gauge([](parcel::parcelhandler::health_snapshot const& s) {
            return s.dead_peers;
        }));

    // ---- sharded peer store / idle eviction (/net/peers) ----------------
    // Same shape as the health gauges, but read from the store's own
    // lock-free gauges (peer_stats()).  shard_max_occupancy takes the max
    // across localities rather than summing — it is a skew diagnostic.

    auto store_gauge = [this](auto field, bool take_max = false) {
        return [this, field, take_max](counter_path const& path)
                   -> counter_ptr {
            std::vector<locality*> selected;
            if (auto loc = path.locality())
            {
                if (!hosts(*loc))
                    return nullptr;
                selected.push_back(localities_[*loc - first_rank_].get());
            }
            else
            {
                for (auto const& l : localities_)
                    selected.push_back(l.get());
            }
            return std::make_shared<perf::function_counter>(
                [selected, field, take_max] {
                    double total = 0.0;
                    for (auto* l : selected)
                    {
                        double const v = static_cast<double>(
                            field(l->parcels().peer_stats()));
                        total = take_max ? std::max(total, v) : total + v;
                    }
                    return total;
                });
        };
    };
    counters_.register_counter_type("/net/peers/active",
        "hydrated (resident) peer entries in the sharded store (gauge)",
        store_gauge([](parcel::parcelhandler::peer_store_stats const& s) {
            return s.active;
        }));
    counters_.register_counter_type("/net/peers/evicted",
        "idle peers demoted to compact tombstones (gauge)",
        store_gauge([](parcel::parcelhandler::peer_store_stats const& s) {
            return s.evicted;
        }));
    counters_.register_counter_type("/net/peers/shard-max-occupancy",
        "entries in the fullest shard (max across localities; hash-skew "
        "diagnostic)",
        store_gauge(
            [](parcel::parcelhandler::peer_store_stats const& s) {
                return s.shard_max_occupancy;
            },
            true));
    counters_.register_counter_type("/net/peers/count/evictions",
        "idle peers demoted to tombstones by the clock-hand sweeper",
        store_gauge([](parcel::parcelhandler::peer_store_stats const& s) {
            return s.evictions;
        }));
    counters_.register_counter_type("/net/peers/count/rehydrations",
        "tombstoned peers restored to full state on renewed contact",
        store_gauge([](parcel::parcelhandler::peer_store_stats const& s) {
            return s.rehydrations;
        }));

    // ---- unified delivery-failure taxonomy (/net/count/delivery-errors) --
    // One counter per delivery_error cause; every undeliverable parcel is
    // counted in exactly one of them (the fail_parcels funnel).

    counters_.register_counter_type("/net/count/delivery-errors/shed-overload",
        "parcels refused by admission control under critical pressure",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.parcels_shed.load());
        }));
    counters_.register_counter_type("/net/count/delivery-errors/link-down",
        "parcels failed because the link was down (breaker open, byte cap "
        "exhausted)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.link_down_failures.load());
        }));
    counters_.register_counter_type("/net/count/delivery-errors/peer-failed",
        "parcels failed because the destination locality died (delivery "
        "not confirmed)",
        parcel_scalar([](ph_counters const& c) {
            return static_cast<double>(c.peer_failed_failures.load());
        }));

    // ---- coalescing counters (the paper's §II-B additions) -------------

    // Collect the per-action counter blocks selected by a path: one
    // locality's or all localities'.
    auto coalescing_blocks = [this](counter_path const& path)
        -> std::vector<std::shared_ptr<coalescing::coalescing_counters>> {
        std::vector<std::shared_ptr<coalescing::coalescing_counters>> out;
        if (path.parameters.empty())
            return out;
        if (auto loc = path.locality())
        {
            if (!hosts(*loc))
                return out;
            if (auto c = localities_[*loc - first_rank_]->coalescing().counters(
                    path.parameters))
                out.push_back(std::move(c));
            return out;
        }
        for (auto const& l : localities_)
        {
            if (auto c = l->coalescing().counters(path.parameters))
                out.push_back(std::move(c));
        }
        return out;
    };

    using cc = coalescing::coalescing_counters;
    auto coalescing_scalar =
        [coalescing_blocks](std::function<double(
                std::vector<std::shared_ptr<cc>> const&)>
                reduce) {
            return [coalescing_blocks, reduce](
                       counter_path const& path) -> counter_ptr {
                auto blocks = coalescing_blocks(path);
                if (blocks.empty())
                    return nullptr;
                return std::make_shared<baseline_counter>(
                    [blocks, reduce] { return reduce(blocks); });
            };
        };

    counters_.register_counter_type("/coalescing/count/parcels",
        "parcels routed through the coalescing handler of an action",
        coalescing_scalar([](auto const& blocks) {
            double total = 0.0;
            for (auto const& b : blocks)
                total += static_cast<double>(b->parcels());
            return total;
        }));

    counters_.register_counter_type("/coalescing/count/messages",
        "messages generated by the coalescing handler of an action",
        coalescing_scalar([](auto const& blocks) {
            double total = 0.0;
            for (auto const& b : blocks)
                total += static_cast<double>(b->messages());
            return total;
        }));

    counters_.register_counter_type(
        "/coalescing/count/average-parcels-per-message",
        "average number of parcels per coalesced message of an action",
        [coalescing_blocks](counter_path const& path) -> counter_ptr {
            auto blocks = coalescing_blocks(path);
            if (blocks.empty())
                return nullptr;
            return std::make_shared<ratio_counter>(
                [blocks] {
                    double total = 0.0;
                    for (auto const& b : blocks)
                        total += static_cast<double>(b->parcels_in_messages());
                    return total;
                },
                [blocks] {
                    double total = 0.0;
                    for (auto const& b : blocks)
                        total += static_cast<double>(b->messages());
                    return total;
                });
        });

    counters_.register_counter_type("/coalescing/time/average-parcel-arrival",
        "average time between parcel arrivals for an action, µs",
        [coalescing_blocks](counter_path const& path) -> counter_ptr {
            auto blocks = coalescing_blocks(path);
            if (blocks.empty())
                return nullptr;
            return std::make_shared<ratio_counter>(
                [blocks] {
                    double weighted = 0.0;
                    for (auto const& b : blocks)
                        weighted += b->average_arrival_us() *
                            static_cast<double>(b->gap_count());
                    return weighted;
                },
                [blocks] {
                    double gaps = 0.0;
                    for (auto const& b : blocks)
                        gaps += static_cast<double>(b->gap_count());
                    return gaps;
                });
        });

    counters_.register_counter_type("/coalescing/time/parcel-arrival-histogram",
        "histogram of gaps between parcel arrivals for an action "
        "(min, max, bucket-width, counts...), µs",
        [coalescing_blocks](counter_path const& path) -> counter_ptr {
            auto blocks = coalescing_blocks(path);
            if (blocks.empty())
                return nullptr;
            return std::make_shared<array_function_counter>(
                [blocks]() -> std::vector<std::int64_t> {
                    // Element-wise sum; all blocks share the default
                    // bucketing, including the 3-entry header.
                    std::vector<std::int64_t> total =
                        blocks.front()->arrival_histogram();
                    for (std::size_t i = 1; i < blocks.size(); ++i)
                    {
                        auto const h = blocks[i]->arrival_histogram();
                        for (std::size_t j = 3;
                             j < total.size() && j < h.size(); ++j)
                            total[j] += h[j];
                    }
                    return total;
                },
                [blocks] {
                    for (auto const& b : blocks)
                        b->reset_arrival_histogram();
                });
        });

    // ---- buffer pool (zero-copy pipeline) ------------------------------

    // The slab pool is process-global (archives and wire messages on every
    // locality share it), so these counters ignore instance selection.
    auto pool_scalar =
        [](double (*extract)(serialization::buffer_pool_stats const&)) {
            return [extract](counter_path const&) -> counter_ptr {
                return std::make_shared<baseline_counter>([extract] {
                    return extract(
                        serialization::buffer_pool::global().stats());
                });
            };
        };

    counters_.register_counter_type("/coal/pool/count/hits",
        "slab acquires served from a pool free list",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.hits);
        }));
    counters_.register_counter_type("/coal/pool/count/misses",
        "slab acquires that had to allocate",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.misses);
        }));
    counters_.register_counter_type("/coal/pool/count/heap-fallbacks",
        "slab acquires above the top size class (plain heap, still "
        "refcounted)",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.heap_fallbacks);
        }));
    counters_.register_counter_type("/coal/pool/count/flattens",
        "wire-boundary gather copies (scatter-gather frames flattened "
        "for a contiguous transport)",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.flattens);
        }));
    counters_.register_counter_type("/coal/pool/count/outstanding",
        "pooled slabs currently alive (gauge; free-listed slabs excluded)",
        [](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([] {
                return static_cast<double>(
                    serialization::buffer_pool::global().stats().outstanding);
            });
        });
    counters_.register_counter_type("/coal/pool/data/copied",
        "payload bytes moved by memcpy anywhere in the pipeline "
        "(inlined small payloads, archive growth, gathers)",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.bytes_copied + s.bytes_flattened);
        }));
    counters_.register_counter_type("/coal/pool/data/referenced",
        "payload bytes moved by bumping a slab refcount instead of copying",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.bytes_referenced);
        }));
    counters_.register_counter_type("/coal/pool/resident-bytes",
        "payload bytes held by live slabs (gauge; watermark input)",
        [](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([] {
                return static_cast<double>(serialization::buffer_pool::global()
                        .stats()
                        .resident_bytes);
            });
        });
    counters_.register_counter_type("/coal/pool/resident-bytes-peak",
        "high-water mark of live slab payload bytes",
        [](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([] {
                return static_cast<double>(serialization::buffer_pool::global()
                        .stats()
                        .resident_bytes_peak);
            });
        });
    counters_.register_counter_type("/coal/pool/fallback-bytes",
        "live heap-fallback payload bytes (gauge; capped allocation path)",
        [](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([] {
                return static_cast<double>(serialization::buffer_pool::global()
                        .stats()
                        .fallback_bytes);
            });
        });
    counters_.register_counter_type("/coal/pool/fallback-bytes-peak",
        "high-water mark of live heap-fallback payload bytes",
        [](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([] {
                return static_cast<double>(serialization::buffer_pool::global()
                        .stats()
                        .fallback_bytes_peak);
            });
        });
    counters_.register_counter_type("/coal/pool/count/fallback-cap-hits",
        "capped acquires refused because live fallback bytes were at the "
        "configured cap",
        pool_scalar([](serialization::buffer_pool_stats const& s) {
            return static_cast<double>(s.fallback_cap_hits);
        }));

    // ---- flush-timer service -------------------------------------------

    counters_.register_counter_type("/timers/count/scheduled",
        "flush timers scheduled", [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(timers_->stats().scheduled);
            });
        });
    counters_.register_counter_type("/timers/count/fired",
        "flush timers fired", [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(timers_->stats().fired);
            });
        });
    counters_.register_counter_type("/timers/count/cancelled",
        "flush timers cancelled before firing",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<baseline_counter>([this] {
                return static_cast<double>(timers_->stats().cancelled);
            });
        });
    counters_.register_counter_type("/timers/time/average-lateness",
        "mean timer firing lateness, µs",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>(
                [this] { return timers_->stats().mean_lateness_us; });
        });
    counters_.register_counter_type("/timers/time/max-lateness",
        "worst timer firing lateness since start, µs",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>(
                [this] { return timers_->stats().max_lateness_us; });
        });
    counters_.register_counter_type("/timers/count/pending",
        "flush timers currently armed (gauge)",
        [this](counter_path const&) -> counter_ptr {
            return std::make_shared<perf::function_counter>([this] {
                return static_cast<double>(timers_->pending());
            });
        });
}

}    // namespace coal
