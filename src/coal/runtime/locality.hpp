#pragma once

/// \file locality.hpp
/// A locality — the abstraction of one physical node (§II-A).  Each
/// locality owns a scheduler (its "cores"), a parcelhandler (its NIC-side
/// software stack) and a coalescing registry; all localities of a runtime
/// share the AGAS instance, the simulated interconnect, the deadline
/// timer service and the performance-counter registry.
///
/// The user-facing remote-invocation API lives here:
///
///     auto f = here.async<get_cplx_action>(other);   // future<complex>
///     here.apply<ping_action>(other, 42);            // fire-and-forget

#include <coal/agas/address_space.hpp>
#include <coal/agas/gid.hpp>
#include <coal/core/coalescing_registry.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/component_action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/serialization/archive.hpp>
#include <coal/threading/future.hpp>
#include <coal/threading/scheduler.hpp>

#include <cstdint>
#include <memory>
#include <vector>

namespace coal {

class runtime;

class locality
{
public:
    locality(runtime& rt, agas::locality_id id,
        threading::scheduler_config scheduler_config,
        net::transport& transport,
        timing::deadline_timer_service& timers,
        parcel::reliability_params reliability = {},
        parcel::flow_params flow = {},
        parcel::membership_params membership = {},
        parcel::peer_store_params store = {});

    locality(locality const&) = delete;
    locality& operator=(locality const&) = delete;

    [[nodiscard]] agas::locality_id id() const noexcept
    {
        return id_;
    }

    [[nodiscard]] runtime& get_runtime() noexcept
    {
        return runtime_;
    }

    [[nodiscard]] threading::scheduler& scheduler() noexcept
    {
        return *scheduler_;
    }

    [[nodiscard]] parcel::parcelhandler& parcels() noexcept
    {
        return *parcels_;
    }

    [[nodiscard]] coalescing::coalescing_registry& coalescing() noexcept
    {
        return *coalescing_;
    }

    /// All other localities (HPX's find_remote_localities()).
    [[nodiscard]] std::vector<agas::locality_id> find_remote_localities()
        const;

    /// Invoke Action on `dest` and get a future for its result.
    template <typename Action, typename... Args>
    auto async(agas::locality_id dest, Args&&... args)
        -> threading::future<typename Action::result_type>
    {
        using R = typename Action::result_type;
        Action::ensure_registered();

        threading::promise<R> promise;
        auto future = promise.get_future();

        parcel::parcel p;
        p.dest = dest.value();
        p.action = Action::id();
        p.arguments = Action::make_arguments(std::forward<Args>(args)...);
        p.continuation = parcels_->register_response_callback(
            [pr = std::move(promise)](
                serialization::shared_buffer&& payload) mutable {
                if constexpr (std::is_void_v<R>)
                {
                    (void) payload;
                    pr.set_value();
                }
                else
                {
                    pr.set_value(serialization::from_bytes<R>(payload));
                }
            });

        parcels_->put_parcel(std::move(p));
        return future;
    }

    /// Invoke Action on `dest` without waiting for a result.
    template <typename Action, typename... Args>
    void apply(agas::locality_id dest, Args&&... args)
    {
        Action::ensure_registered();

        parcel::parcel p;
        p.dest = dest.value();
        p.action = Action::id();
        p.arguments = Action::make_arguments(std::forward<Args>(args)...);
        parcels_->put_parcel(std::move(p));
    }

    /// Invoke a component Action on the object named by `target`; AGAS
    /// resolves the gid to its current owner (migration-transparent).
    template <typename Action, typename... Args>
        requires(Action::is_component_action)
    auto async(agas::gid target, Args&&... args)
        -> threading::future<typename Action::result_type>
    {
        using R = typename Action::result_type;
        Action::ensure_registered();

        threading::promise<R> promise;
        auto future = promise.get_future();

        parcel::parcel p;
        p.dest = resolve_component_owner(target).value();
        p.action = Action::id();
        p.arguments =
            Action::make_arguments(target, std::forward<Args>(args)...);
        p.continuation = parcels_->register_response_callback(
            [pr = std::move(promise)](
                serialization::shared_buffer&& payload) mutable {
                if constexpr (std::is_void_v<R>)
                {
                    (void) payload;
                    pr.set_value();
                }
                else
                {
                    pr.set_value(serialization::from_bytes<R>(payload));
                }
            });

        parcels_->put_parcel(std::move(p));
        return future;
    }

    /// Fire-and-forget component invocation.
    template <typename Action, typename... Args>
        requires(Action::is_component_action)
    void apply(agas::gid target, Args&&... args)
    {
        Action::ensure_registered();

        parcel::parcel p;
        p.dest = resolve_component_owner(target).value();
        p.action = Action::id();
        p.arguments =
            Action::make_arguments(target, std::forward<Args>(args)...);
        parcels_->put_parcel(std::move(p));
    }

    /// Convenience: spawn a local task.
    void post(threading::task_type task)
    {
        scheduler_->post(std::move(task));
    }

private:
    /// Current owner of a component gid; asserts on unknown gids.
    [[nodiscard]] agas::locality_id resolve_component_owner(
        agas::gid target) const;

    runtime& runtime_;
    agas::locality_id id_;
    std::unique_ptr<threading::scheduler> scheduler_;
    std::unique_ptr<parcel::parcelhandler> parcels_;
    std::unique_ptr<coalescing::coalescing_registry> coalescing_;
};

}    // namespace coal
