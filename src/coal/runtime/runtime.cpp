#include <coal/runtime/runtime.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/core/coalescing_defaults.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action_registry.hpp>
#include <coal/serialization/buffer_pool.hpp>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <latch>
#include <thread>

namespace coal {

runtime::runtime(runtime_config config)
  : config_(config)
{
    COAL_ASSERT_MSG(config_.num_localities > 0, "need at least one locality");
    COAL_ASSERT_MSG(
        config_.workers_per_locality > 0, "need at least one worker");

    // Test/CI knob: force a node topology (and hierarchical routing) onto
    // runtimes that did not ask for one, so existing suites can be
    // re-validated with cross-node relaying engaged.  Configs that set
    // their own topology are left alone.
    if (char const* force = std::getenv("COAL_FORCE_NUM_NODES");
        force != nullptr && config_.num_nodes <= 1)
    {
        auto const n = static_cast<std::uint32_t>(std::atoi(force));
        if (n > 1)
        {
            config_.num_nodes = std::min(n, config_.num_localities);
            config_.hierarchical_routing = true;
        }
    }

    // Test/CI knob: COAL_TRANSPORT=tcp|uds reroutes default-"sim" configs
    // onto the real socket parcelport, so the reliability / flow-control /
    // membership / chaos suites revalidate over real sockets with no test
    // edits.  Loopback runtimes (timing-exact unit tests) and very large
    // locality counts (each auto-mode locality binds a listener) keep
    // their configured transport.
    if (char const* force = std::getenv("COAL_TRANSPORT");
        force != nullptr && config_.transport == "sim" &&
        !config_.pin_transport && !config_.use_loopback &&
        config_.num_localities <= 64)
    {
        std::string const forced(force);
        if (forced == "tcp" || forced == "uds")
            config_.transport = forced;
    }

    first_rank_ = config_.first_local_rank;
    local_count_ = config_.num_local_ranks == 0 ? config_.num_localities :
                                                  config_.num_local_ranks;
    multiproc_ = local_count_ < config_.num_localities;
    COAL_ASSERT_MSG(first_rank_ + local_count_ <= config_.num_localities,
        "local rank range exceeds the locality count");

    agas_ = std::make_unique<agas::address_space>(config_.num_localities);

    net::topology const topo{config_.num_localities, config_.num_nodes};

    std::unique_ptr<net::transport> base;
    if (config_.transport == "tcp" || config_.transport == "uds")
    {
        COAL_ASSERT_MSG(!multiproc_ || !config_.socket.endpoints.empty(),
            "multi-process mode needs explicit per-locality endpoints");
        net::socket_params sp = config_.socket;
        sp.kind = config_.transport == "uds" ?
            net::socket_params::family::uds :
            net::socket_params::family::tcp;
        sp.registry_digest = parcel::action_registry::instance().wire_digest();
        auto socket = std::make_unique<net::socket_transport>(std::move(sp),
            config_.num_localities, first_rank_,
            multiproc_ ? local_count_ : 0);
        socket_transport_ = socket.get();
        base = std::move(socket);
    }
    else if (config_.use_loopback)
    {
        base =
            std::make_unique<net::loopback_transport>(config_.num_localities);
    }
    else
    {
        base = std::make_unique<net::sim_network>(
            topo, config_.network, config_.network_intra);
    }

    if (config_.faults.active())
    {
        // Lossy mode: wrap the transport in the fault injector, and force
        // the reliability layer on — delivery must stay exactly-once.
        transport_ = std::make_unique<net::faulty_transport>(
            std::move(base), config_.faults);
        config_.reliability.enabled = true;
    }
    else
    {
        transport_ = std::move(base);
    }

    if (config_.flow.enabled)
    {
        // Credits ride on the ack fields; watermarks guard the one pool
        // every locality in this process shares.
        config_.reliability.enabled = true;
        serialization::buffer_pool::global().set_watermarks(
            config_.flow.pool_soft_bytes, config_.flow.pool_critical_bytes,
            config_.flow.pool_fallback_cap_bytes);
    }

    // Heartbeats and incarnation epochs ride the reliability prefix.
    if (config_.membership.enabled)
        config_.reliability.enabled = true;

    timers_ = std::make_unique<timing::deadline_timer_service>();
    barrier_ = std::make_unique<help_barrier>(local_count_);

    // One locality object per *hosted* rank: in multi-process mode the
    // other ranks are remote processes reached through the wire.
    localities_.reserve(local_count_);
    for (std::uint32_t i = first_rank_; i != first_rank_ + local_count_; ++i)
    {
        threading::scheduler_config sched;
        sched.num_workers = config_.workers_per_locality;
        sched.idle_sleep_us = config_.idle_sleep_us;
        sched.name = "locality#" + std::to_string(i);
        localities_.push_back(std::make_unique<locality>(*this,
            agas::locality_id{i}, sched, *transport_, *timers_,
            config_.reliability, config_.flow, config_.membership,
            config_.store));
    }

    // Component actions resolve their target objects through AGAS.
    for (auto const& loc : localities_)
    {
        loc->parcels().set_component_resolver(
            [this](agas::gid target, std::type_index expected) {
                return agas_->find_erased(target, expected);
            });
        // Topology + relay routing must be installed before traffic too:
        // both are read without synchronization on every send/receive.
        loc->parcels().set_topology(topo, config_.hierarchical_routing);
    }

    if (config_.apply_coalescing_defaults)
    {
        for (auto const& entry :
            coalescing::coalescing_defaults::instance().entries())
        {
            bool const include_responses =
                entry.include_responses && config_.coalesce_responses;
            for (auto const& loc : localities_)
            {
                loc->coalescing().enable(
                    entry.action_name, entry.params, include_responses);
            }
        }
    }

    register_counters();

    // Multi-process bootstrap: handlers are installed (the localities
    // above exist), so connect to every peer endpoint and verify the
    // HELLO exchange — rank table and action-registry digest — before
    // the first parcel can flow.
    if (multiproc_ && socket_transport_ != nullptr)
    {
        COAL_ASSERT_MSG(socket_transport_->await_ready(),
            "wire bootstrap failed (peer missing or registry digest "
            "mismatch)");
    }
}

runtime::~runtime()
{
    stop();
}

locality& runtime::get_locality(std::uint32_t index)
{
    COAL_ASSERT_MSG(hosts(index), "locality is hosted by another process");
    return *localities_[index - first_rank_];
}

bool runtime::enable_coalescing(
    std::string const& action_name, coalescing::coalescing_params params)
{
    bool ok = true;
    for (auto const& loc : localities_)
    {
        ok = loc->coalescing().enable(
                 action_name, params, config_.coalesce_responses) &&
            ok;
    }
    return ok;
}

bool runtime::set_coalescing_params(
    std::string const& action_name, coalescing::coalescing_params params)
{
    bool ok = true;
    for (auto const& loc : localities_)
        ok = loc->coalescing().set_params(action_name, params) && ok;
    return ok;
}

void runtime::run_everywhere(std::function<void(locality&)> fn)
{
    COAL_ASSERT_MSG(threading::scheduler::current() == nullptr,
        "run_everywhere must be called from a non-worker thread");

    std::latch done(static_cast<std::ptrdiff_t>(localities_.size()));
    for (auto const& loc : localities_)
    {
        locality* l = loc.get();
        l->post([&fn, &done, l] {
            try
            {
                fn(*l);
            }
            catch (std::exception const& e)
            {
                COAL_LOG_ERROR("runtime",
                    "SPMD function threw on locality %u: %s",
                    l->id().value(), e.what());
            }
            catch (...)
            {
                COAL_LOG_ERROR("runtime",
                    "SPMD function threw a non-std exception on "
                    "locality %u",
                    l->id().value());
            }
            done.count_down();
        });
    }
    done.wait();
}

void runtime::run_on(std::uint32_t index, std::function<void(locality&)> fn)
{
    locality& l = get_locality(index);
    std::latch done(1);
    l.post([&fn, &done, &l] {
        try
        {
            fn(l);
        }
        catch (std::exception const& e)
        {
            COAL_LOG_ERROR("runtime", "run_on function threw on "
                                      "locality %u: %s",
                l.id().value(), e.what());
        }
        catch (...)
        {
            COAL_LOG_ERROR("runtime",
                "run_on function threw a non-std exception on locality %u",
                l.id().value());
        }
        done.count_down();
    });
    done.wait();
}

void runtime::help_barrier::arrive_and_wait()
{
    std::uint64_t const gen = generation.load(std::memory_order_acquire);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == participants)
    {
        arrived.store(0, std::memory_order_relaxed);
        generation.fetch_add(1, std::memory_order_acq_rel);
        return;
    }

    auto* sched = threading::scheduler::current();
    unsigned idle = 0;
    while (generation.load(std::memory_order_acquire) == gen)
    {
        // Keep local progress alive while parked at the barrier — other
        // localities may still need our responses to arrive there.
        if (sched != nullptr && sched->run_pending_task())
            idle = 0;
        else if (++idle < 64)
            cpu_relax();
        else
            std::this_thread::yield();
    }
}

void runtime::barrier()
{
    barrier_->arrive_and_wait();
    if (!multiproc_ || socket_transport_ == nullptr)
        return;

    // All hosted ranks have arrived locally; one of them (the round's
    // first ticket) now runs the wire barrier against the other
    // processes while the rest help-run their schedulers — responses the
    // other processes are waiting on must keep flowing while we block.
    std::uint64_t const ticket =
        barrier_ticket_.fetch_add(1, std::memory_order_acq_rel);
    std::uint64_t const round = ticket / local_count_ + 1;
    auto* sched = threading::scheduler::current();

    if (ticket % local_count_ == 0)
    {
        std::uint64_t const token = socket_transport_->enter_barrier();
        while (!socket_transport_->barrier_done(token))
        {
            if (sched == nullptr || !sched->run_pending_task())
                std::this_thread::yield();
        }
        // Publish monotonically: a slow leader of an earlier round must
        // never regress the round stamp.
        std::uint64_t cur =
            wire_barrier_round_.load(std::memory_order_relaxed);
        while (cur < round &&
            !wire_barrier_round_.compare_exchange_weak(cur, round))
        {
        }
    }
    else
    {
        while (wire_barrier_round_.load(std::memory_order_acquire) < round)
        {
            if (sched == nullptr || !sched->run_pending_task())
                std::this_thread::yield();
        }
    }
}

void runtime::kill_locality(std::uint32_t index)
{
    locality& loc = get_locality(index);
    COAL_LOG_WARN("runtime", "chaos: killing locality %u", index);
    // The wire goes dark first so no frame of the dead incarnation
    // escapes mid-crash; then the parcel layer crashes (queued, deferred
    // and retransmit-held parcels fail as peer_failed); coalescing queues
    // die with it and feed the same accounting.
    transport_->kill_locality(index);
    loc.parcels().simulate_crash();
    loc.parcels().fail_parcels(
        parcel::delivery_error::peer_failed, loc.coalescing().purge_all());
}

void runtime::restart_locality(std::uint32_t index)
{
    locality& loc = get_locality(index);
    // New epoch before the wire comes back: the first frame out must
    // already carry the fresh incarnation.
    loc.parcels().restart_incarnation();
    transport_->restart_locality(index);
    COAL_LOG_INFO("runtime", "chaos: locality %u restarted (epoch %u)",
        index, loc.parcels().epoch());
}

void runtime::quiesce()
{
    // Iterate until the whole system is stable: flushing coalescing
    // queues can create sends, sends create receives, receives create
    // tasks, tasks can create parcels...  Crashed localities are frozen —
    // their queues neither drain nor grow — so they are skipped entirely.
    stopwatch stuck;
    double next_report_ms = 5000.0;
    for (;;)
    {
        // Multi-process quiesce is local-only (a peer process may still
        // be producing traffic toward us — distributed quiescence is the
        // application's barrier to coordinate, see DESIGN.md §15); a
        // hard timeout keeps stop() from hanging on a peer that died.
        if (multiproc_ && stuck.elapsed_ms() > 10000.0)
        {
            COAL_LOG_WARN("runtime",
                "multi-process quiesce timed out after %.0f ms; "
                "proceeding to shutdown",
                stuck.elapsed_ms());
            return;
        }
        // A quiesce that cannot converge is a bug somewhere below; dump
        // what is still moving so the report names the stuck subsystem.
        if (stuck.elapsed_ms() >= next_report_ms)
        {
            next_report_ms += 5000.0;
            COAL_LOG_WARN("runtime",
                "quiesce not converging after %.0f ms (transport in-flight "
                "%zu):",
                stuck.elapsed_ms(), transport_->in_flight());
            for (auto const& loc : localities_)
            {
                COAL_LOG_WARN("runtime",
                    "  locality %u%s epoch %u: tasks %zu sends %zu "
                    "receives %zu reliability %zu coalesced %zu",
                    loc->id().value(),
                    loc->parcels().crashed() ? " (crashed)" : "",
                    loc->parcels().epoch(),
                    loc->scheduler().pending_tasks(),
                    loc->parcels().pending_sends(),
                    loc->parcels().pending_receives(),
                    loc->parcels().pending_reliability(),
                    loc->coalescing().queued_parcels());
                // One pass over the hydrated peers (per-shard snapshots)
                // instead of probing every locality pair — with many
                // evicted/unknown peers the dump cost tracks what is
                // actually resident.
                for (auto const& [peer_id, dbg] :
                    loc->parcels().debug_active_peers())
                {
                    if (dbg.evicted ||
                        (dbg.status == parcel::peer_status::alive &&
                            dbg.unacked_frames == 0 && dbg.held_frames == 0 &&
                            dbg.deferred_jobs == 0))
                        continue;
                    COAL_LOG_WARN("runtime",
                        "    -> peer %u %s (epoch %u): unacked %zu held %zu "
                        "deferred %zu | next_seq %llu cum %llu "
                        "low_unacked %llu low_held %llu",
                        peer_id, parcel::to_string(dbg.status),
                        dbg.epoch, dbg.unacked_frames, dbg.held_frames,
                        dbg.deferred_jobs,
                        static_cast<unsigned long long>(dbg.next_seq),
                        static_cast<unsigned long long>(dbg.cum_received),
                        static_cast<unsigned long long>(dbg.lowest_unacked_seq),
                        static_cast<unsigned long long>(dbg.lowest_held_seq));
                }
            }
        }
        for (auto const& loc : localities_)
        {
            if (!loc->parcels().crashed())
                loc->coalescing().flush_all();
        }

        bool busy = false;
        for (auto const& loc : localities_)
        {
            if (loc->parcels().crashed())
                continue;
            if (loc->scheduler().pending_tasks() != 0 ||
                loc->parcels().pending_sends() != 0 ||
                loc->parcels().pending_receives() != 0 ||
                loc->parcels().pending_reliability() != 0 ||
                loc->coalescing().queued_parcels() != 0)
            {
                busy = true;
                break;
            }
        }
        if (!busy && transport_->in_flight() != 0)
        {
            // Handlers are quiet but the transport still holds messages.
            // Some will move on their own (sim wire latency), but a
            // reorder-parked frame has no follow-up traffic left to swap
            // it out — flush instead of waiting forever.
            transport_->drain();
            continue;
        }
        if (!busy && transport_->in_flight() == 0)
        {
            // Re-check once after a short grace period: a message could
            // have been between queues at the instant we looked.
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            bool still_busy = transport_->in_flight() != 0;
            for (auto const& loc : localities_)
            {
                if (loc->parcels().crashed())
                    continue;
                still_busy = still_busy ||
                    loc->scheduler().pending_tasks() != 0 ||
                    loc->parcels().pending_sends() != 0 ||
                    loc->parcels().pending_receives() != 0 ||
                    loc->parcels().pending_reliability() != 0 ||
                    loc->coalescing().queued_parcels() != 0;
            }
            if (!still_busy)
                return;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

void runtime::stop()
{
    bool expected = false;
    if (!stopped_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;

    quiesce();

    // Counter factories capture subsystem references; drop instances
    // before tearing the subsystems down.
    counters_.clear_instances();

    for (auto const& loc : localities_)
        loc->parcels().stop();
    transport_->shutdown();
    for (auto const& loc : localities_)
        loc->scheduler().stop();
    timers_->shutdown();

    // The buffer pool outlives every runtime (it is process-global); do
    // not let this run's watermarks shed traffic of the next one.
    if (config_.flow.enabled)
        serialization::buffer_pool::global().set_watermarks(0, 0, 0);
}

threading::scheduler_snapshot runtime::aggregate_snapshot() const
{
    threading::scheduler_snapshot total;
    for (auto const& loc : localities_)
    {
        auto const s = loc->scheduler().snapshot();
        total.tasks_executed += s.tasks_executed;
        total.func_time_ns += s.func_time_ns;
        total.exec_time_ns += s.exec_time_ns;
        total.background_time_ns += s.background_time_ns;
        total.background_calls += s.background_calls;
        total.tasks_stolen += s.tasks_stolen;
        total.idle_loops += s.idle_loops;
    }
    return total;
}

}    // namespace coal
