#include <coal/runtime/locality.hpp>

#include <coal/common/assert.hpp>
#include <coal/runtime/runtime.hpp>

namespace coal {

locality::locality(runtime& rt, agas::locality_id id,
    threading::scheduler_config scheduler_config, net::transport& transport,
    timing::deadline_timer_service& timers,
    parcel::reliability_params reliability, parcel::flow_params flow,
    parcel::membership_params membership, parcel::peer_store_params store)
  : runtime_(rt)
  , id_(id)
  , scheduler_(std::make_unique<threading::scheduler>(scheduler_config))
  , parcels_(std::make_unique<parcel::parcelhandler>(
        id.value(), transport, *scheduler_, reliability, flow, membership,
        store))
  , coalescing_(std::make_unique<coalescing::coalescing_registry>(
        *parcels_, timers))
{
}

std::vector<agas::locality_id> locality::find_remote_localities() const
{
    return runtime_.agas().remote_localities(id_);
}

agas::locality_id locality::resolve_component_owner(agas::gid target) const
{
    auto const owner = runtime_.agas().resolve(target);
    COAL_ASSERT_MSG(owner.has_value(),
        "component gid does not resolve to any locality");
    return *owner;
}

}    // namespace coal
