#pragma once

/// \file runtime.hpp
/// The distributed runtime: boots L in-process localities connected by
/// the simulated interconnect, applies coalescing defaults, registers
/// performance counters, and provides SPMD execution, barriers, quiesce
/// and clean shutdown.
///
///     coal::runtime_config cfg;
///     cfg.num_localities = 2;
///     coal::runtime rt(cfg);
///     rt.run_everywhere([](coal::locality& here) { ... });
///     rt.stop();

#include <coal/agas/address_space.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/sim_network.hpp>
#include <coal/net/socket_transport.hpp>
#include <coal/net/transport.hpp>
#include <coal/perf/registry.hpp>
#include <coal/runtime/locality.hpp>
#include <coal/threading/instrumentation.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace coal {

struct runtime_config
{
    std::uint32_t num_localities = 2;
    unsigned workers_per_locality = 1;

    /// Interconnect cost model (ignored when use_loopback).  With a
    /// topology (num_nodes > 1) this prices the inter-node tier.
    net::cost_model network{};

    /// Topology: group the localities into this many "nodes" (block
    /// partition).  <= 1 keeps the interconnect flat (single tier).
    std::uint32_t num_nodes = 1;

    /// Cost model for links within a node (only used when num_nodes > 1).
    net::cost_model network_intra = net::cost_model::intra_node_defaults();

    /// Two-level aggregation: with a topology enabled, route cross-node
    /// coalesced traffic through one relay locality per destination node
    /// and fan out over intra-node links there.  No effect while
    /// num_nodes <= 1.
    bool hierarchical_routing = false;

    /// Zero-cost synchronous transport — timing-independent unit tests.
    bool use_loopback = false;

    /// Wire selection: "sim" (default; or loopback per use_loopback),
    /// "tcp" or "uds" for the real socket parcelport.  The env var
    /// COAL_TRANSPORT=tcp|uds overrides a default-"sim" config (ignored
    /// for loopback runtimes and for very large locality counts), which
    /// is how existing suites re-run over real sockets unmodified.
    std::string transport = "sim";

    /// Refuse the COAL_TRANSPORT override: tests that assert simulated
    /// cost-model semantics (or the absence of a wire) set this.
    bool pin_transport = false;

    /// Socket parcelport tunables (endpoints, frame cap, backoff...).
    /// `kind` and `registry_digest` are filled in by the runtime.
    net::socket_params socket{};

    /// Multi-process SPMD: this process hosts localities
    /// [first_local_rank, first_local_rank + num_local_ranks).  The
    /// default num_local_ranks == 0 hosts all of them (single process).
    /// Requires a socket transport with explicit per-locality endpoints.
    std::uint32_t first_local_rank = 0;
    std::uint32_t num_local_ranks = 0;

    /// Apply COAL_ACTION_USES_MESSAGE_COALESCING opt-ins at startup.
    bool apply_coalescing_defaults = true;

    /// Install sibling handlers on response actions (DESIGN.md §2).
    bool coalesce_responses = true;

    /// Idle worker sleep between background polls (µs).
    std::int64_t idle_sleep_us = 100;

    /// Fault injection: when the plan is active the transport is wrapped
    /// in a faulty_transport and the reliability layer is forced on.
    net::fault_plan faults{};

    /// Ack/retransmit protocol tunables.  `enabled` is implied by an
    /// active fault plan but can also be set on its own (e.g. to measure
    /// the reliability overhead on a lossless link).
    parcel::reliability_params reliability{};

    /// Flow control / overload protection tunables.  Enabling forces the
    /// reliability layer on (credits travel in the ack fields) and applies
    /// the pool watermarks to the global buffer pool at startup.
    parcel::flow_params flow{};

    /// Peer-liveness / epoched-membership layer (heartbeats, phi-accrual
    /// failure detection, crash fencing and rejoin).  Enabling forces the
    /// reliability layer on — epochs and heartbeats ride the frame
    /// prefix.  See membership.hpp and DESIGN.md "Failure model".
    parcel::membership_params membership{};

    /// Sharded peer-state store and idle-peer eviction tunables (shard
    /// snapshot publication, clock-hand sweep budget, idle demotion
    /// threshold).  See peer_store.hpp and DESIGN.md "Peer state at
    /// scale".
    parcel::peer_store_params store{};
};

class runtime
{
public:
    explicit runtime(runtime_config config = {});
    ~runtime();

    runtime(runtime const&) = delete;
    runtime& operator=(runtime const&) = delete;

    [[nodiscard]] runtime_config const& config() const noexcept
    {
        return config_;
    }

    [[nodiscard]] std::uint32_t num_localities() const noexcept
    {
        return config_.num_localities;
    }

    /// True when this process hosts locality `id` (always true in the
    /// default single-process mode).
    [[nodiscard]] bool hosts(std::uint32_t id) const noexcept
    {
        return id >= first_rank_ && id < first_rank_ + local_count_;
    }

    [[nodiscard]] std::uint32_t first_local_rank() const noexcept
    {
        return first_rank_;
    }

    [[nodiscard]] std::uint32_t num_local_ranks() const noexcept
    {
        return local_count_;
    }

    /// The socket parcelport when transport is tcp/uds, else nullptr
    /// (counters and tests reach wire stats through this).
    [[nodiscard]] net::socket_transport* wire() noexcept
    {
        return socket_transport_;
    }

    /// A locality hosted by this process (asserts hosts(index)).
    [[nodiscard]] locality& get_locality(std::uint32_t index);
    [[nodiscard]] locality& get_locality(agas::locality_id id)
    {
        return get_locality(id.value());
    }

    [[nodiscard]] agas::address_space& agas() noexcept
    {
        return *agas_;
    }

    [[nodiscard]] net::transport& network() noexcept
    {
        return *transport_;
    }

    [[nodiscard]] timing::deadline_timer_service& timers() noexcept
    {
        return *timers_;
    }

    [[nodiscard]] perf::counter_registry& counters() noexcept
    {
        return counters_;
    }

    /// Create a component instance hosted at `owner` and register it in
    /// AGAS; the returned gid addresses it from any locality (and keeps
    /// working across agas().migrate()).
    template <typename Component, typename... Args>
    agas::gid new_component(agas::locality_id owner, Args&&... args)
    {
        return agas_->bind(owner,
            std::make_shared<Component>(std::forward<Args>(args)...));
    }

    /// Enable coalescing for an action on every locality.
    bool enable_coalescing(std::string const& action_name,
        coalescing::coalescing_params params);

    /// Live-update coalescing parameters on every locality.
    bool set_coalescing_params(std::string const& action_name,
        coalescing::coalescing_params params);

    /// SPMD: run `fn(locality)` as a task on every locality, wait for all
    /// to return.  Must be called from a non-worker thread.
    void run_everywhere(std::function<void(locality&)> fn);

    /// Run `fn(locality)` as a task on one locality and wait.
    void run_on(std::uint32_t index, std::function<void(locality&)> fn);

    /// SPMD barrier callable from inside run_everywhere tasks; waiting
    /// tasks keep their scheduler's background work running.
    void barrier();

    /// Chaos API: hard-kill a locality.  Its transport endpoints go dark
    /// (in-flight frames to/from it are dropped), its parcel layer is
    /// crashed — every queued / deferred / retransmit-held parcel fails
    /// through the delivery-error handler as `peer_failed` — and its
    /// coalescing queues are purged into the same accounting.  Survivors
    /// detect the death via the failure detector and fence their own
    /// state toward it.  Requires `membership.enabled`.
    void kill_locality(std::uint32_t index);

    /// Chaos API: bring a killed locality back under a fresh incarnation
    /// epoch.  Peers readmit it on first contact (or on a dead-peer probe
    /// reply) and coalescing toward it resumes.
    void restart_locality(std::uint32_t index);

    /// Flush all coalescing queues and wait until no parcel, message or
    /// task is in flight anywhere.  Localities currently killed by
    /// kill_locality() are skipped — their queues are frozen until
    /// restart.
    void quiesce();

    /// Quiesce, then shut everything down.  Idempotent.
    void stop();

    /// Sum of all localities' scheduler snapshots (Eq. 1–4 inputs).
    [[nodiscard]] threading::scheduler_snapshot aggregate_snapshot() const;

private:
    void register_counters();

    /// Sense-reversing barrier whose waiters help-run their scheduler.
    struct help_barrier
    {
        explicit help_barrier(std::uint32_t n)
          : participants(n)
        {
        }

        void arrive_and_wait();

        std::uint32_t participants;
        std::atomic<std::uint32_t> arrived{0};
        std::atomic<std::uint64_t> generation{0};
    };

    runtime_config config_;
    std::uint32_t first_rank_ = 0;
    std::uint32_t local_count_ = 0;
    bool multiproc_ = false;
    std::unique_ptr<agas::address_space> agas_;
    std::unique_ptr<net::transport> transport_;
    net::socket_transport* socket_transport_ = nullptr;    ///< borrowed

    /// Multi-process barrier: per-round ticket election (the round's
    /// first local arriver runs the wire barrier, the rest help-run
    /// until it completes).
    std::atomic<std::uint64_t> barrier_ticket_{0};
    std::atomic<std::uint64_t> wire_barrier_round_{0};
    std::unique_ptr<timing::deadline_timer_service> timers_;
    perf::counter_registry counters_;
    std::vector<std::unique_ptr<locality>> localities_;
    std::unique_ptr<help_barrier> barrier_;
    std::atomic<bool> stopped_{false};
};

}    // namespace coal
