#include <coal/common/histogram.hpp>

#include <coal/common/assert.hpp>

#include <algorithm>

namespace coal {

namespace {

std::size_t bucket_index(histogram_params const& p, std::int64_t value) noexcept
{
    if (value < p.min_value)
        return 0;    // underflow folds into the first bucket
    auto const idx =
        static_cast<std::size_t>((value - p.min_value) / p.bucket_width());
    return std::min(idx, p.buckets - 1);    // overflow folds into the last
}

}    // namespace

histogram::histogram(histogram_params params)
  : params_(params)
  , counts_(params.buckets, 0)
{
    COAL_ASSERT(params.buckets > 0);
    COAL_ASSERT(params.max_value > params.min_value);
}

void histogram::add(std::int64_t value) noexcept
{
    ++counts_[bucket_index(params_, value)];
    ++total_;
}

std::vector<std::int64_t> histogram::serialize() const
{
    std::vector<std::int64_t> out;
    out.reserve(3 + counts_.size());
    out.push_back(params_.min_value);
    out.push_back(params_.max_value);
    out.push_back(params_.bucket_width());
    for (auto c : counts_)
        out.push_back(static_cast<std::int64_t>(c));
    return out;
}

void histogram::reset() noexcept
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

concurrent_histogram::concurrent_histogram(histogram_params params)
  : params_(params)
  , counts_(params.buckets)
{
    COAL_ASSERT(params.buckets > 0);
    COAL_ASSERT(params.max_value > params.min_value);
}

void concurrent_histogram::add(std::int64_t value) noexcept
{
    counts_[bucket_index(params_, value)].fetch_add(
        1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::int64_t> concurrent_histogram::serialize() const
{
    std::vector<std::int64_t> out;
    out.reserve(3 + counts_.size());
    out.push_back(params_.min_value);
    out.push_back(params_.max_value);
    out.push_back(params_.bucket_width());
    for (auto const& c : counts_)
        out.push_back(
            static_cast<std::int64_t>(c.load(std::memory_order_relaxed)));
    return out;
}

void concurrent_histogram::reset() noexcept
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
}

}    // namespace coal
