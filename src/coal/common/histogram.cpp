#include <coal/common/histogram.hpp>

#include <coal/common/assert.hpp>

#include <algorithm>

namespace coal {

namespace {

std::size_t bucket_index(histogram_params const& p, std::int64_t value) noexcept
{
    if (value < p.min_value)
        return 0;    // underflow folds into the first bucket
    auto const idx =
        static_cast<std::size_t>((value - p.min_value) / p.bucket_width());
    return std::min(idx, p.buckets - 1);    // overflow folds into the last
}

}    // namespace

histogram::histogram(histogram_params params)
  : params_(params)
  , counts_(params.buckets, 0)
{
    COAL_ASSERT(params.buckets > 0);
    COAL_ASSERT(params.max_value > params.min_value);
}

void histogram::add(std::int64_t value) noexcept
{
    ++counts_[bucket_index(params_, value)];
    ++total_;
}

std::vector<std::int64_t> histogram::serialize() const
{
    std::vector<std::int64_t> out;
    out.reserve(3 + counts_.size());
    out.push_back(params_.min_value);
    out.push_back(params_.max_value);
    out.push_back(params_.bucket_width());
    for (auto c : counts_)
        out.push_back(static_cast<std::int64_t>(c));
    return out;
}

void histogram::reset() noexcept
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

namespace {

std::size_t floor_pow2(std::size_t n) noexcept
{
    std::size_t p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

}    // namespace

striped_histogram::striped_histogram(
    histogram_params params, std::size_t stripes)
  : params_(params)
  , stripe_mask_(floor_pow2(stripes) - 1)
  , stride_((params.buckets + 7) & ~std::size_t(7))    // cacheline multiple
  , counts_(stride_ * (stripe_mask_ + 1))
{
    COAL_ASSERT(params.buckets > 0);
    COAL_ASSERT(params.max_value > params.min_value);
    COAL_ASSERT(stripes > 0);
}

void striped_histogram::add(std::int64_t value, std::size_t stripe) noexcept
{
    auto const base = (stripe & stripe_mask_) * stride_;
    counts_[base + bucket_index(params_, value)].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t striped_histogram::total() const noexcept
{
    std::uint64_t sum = 0;
    for (auto const& c : counts_)
        sum += c.load(std::memory_order_relaxed);
    return sum;
}

std::vector<std::int64_t> striped_histogram::serialize() const
{
    std::vector<std::int64_t> out;
    out.reserve(3 + params_.buckets);
    out.push_back(params_.min_value);
    out.push_back(params_.max_value);
    out.push_back(params_.bucket_width());
    for (std::size_t b = 0; b != params_.buckets; ++b)
    {
        std::uint64_t sum = 0;
        for (std::size_t s = 0; s != stripe_mask_ + 1; ++s)
            sum += counts_[s * stride_ + b].load(std::memory_order_relaxed);
        out.push_back(static_cast<std::int64_t>(sum));
    }
    return out;
}

void striped_histogram::reset() noexcept
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
}

concurrent_histogram::concurrent_histogram(histogram_params params)
  : params_(params)
  , counts_(params.buckets)
{
    COAL_ASSERT(params.buckets > 0);
    COAL_ASSERT(params.max_value > params.min_value);
}

void concurrent_histogram::add(std::int64_t value) noexcept
{
    counts_[bucket_index(params_, value)].fetch_add(
        1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::int64_t> concurrent_histogram::serialize() const
{
    std::vector<std::int64_t> out;
    out.reserve(3 + counts_.size());
    out.push_back(params_.min_value);
    out.push_back(params_.max_value);
    out.push_back(params_.bucket_width());
    for (auto const& c : counts_)
        out.push_back(
            static_cast<std::int64_t>(c.load(std::memory_order_relaxed)));
    return out;
}

void concurrent_histogram::reset() noexcept
{
    for (auto& c : counts_)
        c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
}

}    // namespace coal
