#pragma once

/// \file stats.hpp
/// Streaming and batch statistics used by the evaluation harness:
/// Welford running moments, Pearson correlation (the paper reports r=0.97
/// for the toy app and r=0.92 for Parquet), relative standard deviation
/// (the paper's <5% run-to-run variance claim), and simple aggregation
/// helpers.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace coal {

/// Welford-style single-pass accumulator for mean/variance/min/max.
class running_stats
{
public:
    void add(double x) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept
    {
        return n_;
    }

    [[nodiscard]] double mean() const noexcept
    {
        return n_ ? mean_ : 0.0;
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;

    /// Relative standard deviation (stddev / |mean|), as a fraction.
    [[nodiscard]] double relative_stddev() const noexcept;

    [[nodiscard]] double min() const noexcept
    {
        return n_ ? min_ : 0.0;
    }

    [[nodiscard]] double max() const noexcept
    {
        return n_ ? max_ : 0.0;
    }

    [[nodiscard]] double sum() const noexcept
    {
        return sum_;
    }

    void reset() noexcept;

    /// Merge another accumulator into this one (parallel reduction).
    void merge(running_stats const& other) noexcept;

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Pearson product-moment correlation coefficient of two equal-length
/// series.  Returns 0 when either series is constant or shorter than 2.
[[nodiscard]] double pearson_correlation(
    std::span<double const> x, std::span<double const> y) noexcept;

/// Ordinary least squares slope/intercept of y on x.
struct linear_fit
{
    double slope = 0.0;
    double intercept = 0.0;
};

[[nodiscard]] linear_fit fit_line(
    std::span<double const> x, std::span<double const> y) noexcept;

[[nodiscard]] double mean_of(std::span<double const> xs) noexcept;
[[nodiscard]] double median_of(std::vector<double> xs) noexcept;

}    // namespace coal
