#pragma once

/// \file pressure.hpp
/// Three-state memory/overload pressure signal shared by the buffer pool
/// (byte watermarks) and the parcel pipeline (per-link in-flight caps).
///
///   ok       — everything under the soft watermark; normal operation.
///   soft     — above the soft watermark: stay functional but start
///              degrading throughput for latency/memory (the coalescer
///              shrinks batch targets and flushes early).
///   critical — at the hard ceiling: admission control sheds best-effort
///              traffic; only guaranteed and control traffic proceeds.
///
/// States are ordered so max() composes independent pressure sources.

#include <cstdint>

namespace coal {

enum class pressure_state : std::uint8_t
{
    ok = 0,
    soft = 1,
    critical = 2,
};

[[nodiscard]] constexpr pressure_state max_pressure(
    pressure_state a, pressure_state b) noexcept
{
    return a < b ? b : a;
}

[[nodiscard]] constexpr char const* to_string(pressure_state s) noexcept
{
    switch (s)
    {
    case pressure_state::ok:
        return "ok";
    case pressure_state::soft:
        return "soft";
    case pressure_state::critical:
        return "critical";
    }
    return "?";
}

}    // namespace coal
