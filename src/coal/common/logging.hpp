#pragma once

/// \file logging.hpp
/// Minimal leveled logger.  Output goes to stderr; the level is read once
/// from COAL_LOG (error|warn|info|debug|trace) at first use.  The macros
/// compile to a level check plus printf-style formatting, which keeps the
/// hot path branch-only when the level is disabled.

#include <cstdarg>

namespace coal {

enum class log_level : int
{
    none = 0,
    error = 1,
    warn = 2,
    info = 3,
    debug = 4,
    trace = 5,
};

namespace detail {

/// Current log level, resolved lazily from the environment.
log_level current_log_level() noexcept;

void vlog(log_level level, char const* component, char const* fmt,
    std::va_list args) noexcept;

}    // namespace detail

inline bool log_enabled(log_level level) noexcept
{
    return static_cast<int>(level) <=
        static_cast<int>(detail::current_log_level());
}

/// printf-style log statement; `component` labels the subsystem.
#if defined(__GNUC__)
__attribute__((format(printf, 3, 4)))
#endif
void log(log_level level, char const* component, char const* fmt,
    ...) noexcept;

/// Override the level programmatically (tests use this).
void set_log_level(log_level level) noexcept;

}    // namespace coal

#define COAL_LOG_ERROR(component, ...)                                        \
    ::coal::log(::coal::log_level::error, component, __VA_ARGS__)
#define COAL_LOG_WARN(component, ...)                                         \
    ::coal::log(::coal::log_level::warn, component, __VA_ARGS__)
#define COAL_LOG_INFO(component, ...)                                         \
    ::coal::log(::coal::log_level::info, component, __VA_ARGS__)
#define COAL_LOG_DEBUG(component, ...)                                        \
    ::coal::log(::coal::log_level::debug, component, __VA_ARGS__)
