#pragma once

/// \file mpmc_queue.hpp
/// Blocking multi-producer/multi-consumer queue used for locality inboxes
/// and the network delivery channel.
///
/// A mutex+condvar design is deliberate: the queues sit on the *message*
/// path (already paying modeled per-message costs in the microsecond
/// range), not the per-task fast path, and correctness under shutdown is
/// the priority.  The queue supports cooperative close() so background
/// pollers and blocking consumers terminate cleanly.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace coal {

template <typename T>
class mpmc_queue
{
public:
    /// Push an element; returns false if the queue is already closed
    /// (element is dropped — callers treat that as shutdown).
    bool push(T&& value)
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_)
                return false;
            items_.push_back(std::move(value));
        }
        cv_.notify_one();
        return true;
    }

    /// Non-blocking pop; empty optional when nothing is queued.
    std::optional<T> try_pop()
    {
        std::lock_guard lock(mutex_);
        if (items_.empty())
            return std::nullopt;
        std::optional<T> out(std::move(items_.front()));
        items_.pop_front();
        return out;
    }

    /// Blocking pop; empty optional only after close() with a drained queue.
    std::optional<T> pop()
    {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        std::optional<T> out(std::move(items_.front()));
        items_.pop_front();
        return out;
    }

    /// Close the queue: producers start failing, consumers drain then stop.
    void close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] bool closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const
    {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] bool empty() const
    {
        return size() == 0;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<T> items_;
    bool closed_ = false;
};

}    // namespace coal
