#pragma once

/// \file spinlock.hpp
/// Test-and-test-and-set spinlock with exponential backoff.
///
/// Used for short critical sections on the parcel fast path (coalescing
/// queue mutation, counter registration) where a futex round trip would
/// dominate the protected work.  Satisfies the Lockable named requirement
/// so it composes with std::lock_guard / std::unique_lock.

#include <atomic>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace coal {

/// Pause the CPU briefly inside a spin loop (no-op fallback elsewhere).
inline void cpu_relax() noexcept
{
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class spinlock
{
public:
    spinlock() = default;
    spinlock(spinlock const&) = delete;
    spinlock& operator=(spinlock const&) = delete;

    void lock() noexcept
    {
        // Fast path: uncontended acquire.
        if (!locked_.exchange(true, std::memory_order_acquire))
            return;

        // Contended: spin on a plain load (TTAS) with growing backoff and
        // eventually yield to the OS so two-core machines make progress.
        unsigned spins = 0;
        for (;;)
        {
            while (locked_.load(std::memory_order_relaxed))
            {
                if (++spins < 64)
                {
                    cpu_relax();
                }
                else
                {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
        }
    }

    bool try_lock() noexcept
    {
        return !locked_.load(std::memory_order_relaxed) &&
            !locked_.exchange(true, std::memory_order_acquire);
    }

    void unlock() noexcept
    {
        locked_.store(false, std::memory_order_release);
    }

private:
    std::atomic<bool> locked_{false};
};

}    // namespace coal
