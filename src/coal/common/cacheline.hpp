#pragma once

/// \file cacheline.hpp
/// Cache-line geometry and a padding wrapper that keeps per-worker hot
/// counters on distinct cache lines, avoiding false sharing between
/// scheduler workers.

#include <atomic>
#include <cstddef>
#include <new>

namespace coal {

/// Small dense per-thread index for striped hot-path counters: threads
/// get consecutive values in first-use order, so a handful of workers
/// spread across stripes instead of hashing onto the same one.  Callers
/// fold the value with their own stripe mask.
inline std::size_t current_thread_stripe() noexcept
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned const idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

// Fixed rather than std::hardware_destructive_interference_size: that
// value can differ between TUs compiled with different -mtune flags (GCC
// warns about exactly this), and 64 is correct for every x86-64 and most
// AArch64 parts this library targets.
inline constexpr std::size_t cache_line_size = 64;

/// Wraps a value and pads it to a full cache line.
///
/// Used for per-worker instrumentation blocks (executed-task counters,
/// accumulated durations) that are written at task granularity by one
/// worker and read rarely by counter queries.
template <typename T>
struct alignas(cache_line_size) cache_aligned
{
    T value{};

    T* operator->() noexcept { return &value; }
    T const* operator->() const noexcept { return &value; }
    T& operator*() noexcept { return value; }
    T const& operator*() const noexcept { return value; }
};

}    // namespace coal
