#pragma once

/// \file assert.hpp
/// Lightweight assertion macro used across the coal runtime.
///
/// COAL_ASSERT is active in all build types (unlike <cassert>) because the
/// runtime's invariants guard against silent message loss, which would
/// corrupt experiments rather than crash them.  The cost of the checks is
/// negligible compared to per-message work.

#include <cstdio>
#include <cstdlib>

namespace coal::detail {

[[noreturn]] inline void assertion_failure(char const* expr, char const* file,
                                           int line, char const* msg)
{
    std::fprintf(stderr, "coal: assertion '%s' failed at %s:%d%s%s\n", expr,
                 file, line, msg ? ": " : "", msg ? msg : "");
    std::abort();
}

}    // namespace coal::detail

#define COAL_ASSERT(expr)                                                      \
    (static_cast<bool>(expr) ?                                                 \
            void(0) :                                                          \
            ::coal::detail::assertion_failure(#expr, __FILE__, __LINE__,       \
                nullptr))

#define COAL_ASSERT_MSG(expr, msg)                                             \
    (static_cast<bool>(expr) ?                                                 \
            void(0) :                                                          \
            ::coal::detail::assertion_failure(#expr, __FILE__, __LINE__, msg))
