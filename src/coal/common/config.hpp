#pragma once

/// \file config.hpp
/// Small key=value configuration store used by the runtime front end,
/// examples, and the bench harnesses.  Mirrors HPX's `--hpx:ini`-style
/// overrides: values come from defaults, then environment variables
/// (prefix COAL_, dots become underscores), then command-line
/// `key=value` arguments — later sources win.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace coal {

class config
{
public:
    config() = default;

    /// Set (or override) an entry.
    void set(std::string key, std::string value);

    [[nodiscard]] bool contains(std::string const& key) const;

    [[nodiscard]] std::optional<std::string> get(std::string const& key) const;

    [[nodiscard]] std::string get_string(
        std::string const& key, std::string const& dflt) const;
    [[nodiscard]] std::int64_t get_int(
        std::string const& key, std::int64_t dflt) const;
    [[nodiscard]] double get_double(std::string const& key, double dflt) const;
    [[nodiscard]] bool get_bool(std::string const& key, bool dflt) const;

    /// Parse `key=value` tokens; unrecognized tokens are returned so the
    /// caller can treat them as positional arguments.
    std::vector<std::string> parse_args(int argc, char const* const* argv);

    /// Import COAL_FOO_BAR=v environment entries as foo.bar=v.
    void load_environment();

    /// All entries in key order (for --help / dumping).
    [[nodiscard]] std::vector<std::pair<std::string, std::string>>
    entries() const;

private:
    std::map<std::string, std::string> values_;
};

/// Parse a boolean spelled 1/0/true/false/yes/no/on/off (case-insensitive).
[[nodiscard]] std::optional<bool> parse_bool(std::string const& text);

}    // namespace coal
