#pragma once

/// \file histogram.hpp
/// Fixed-bucket histogram matching the layout HPX's
/// /coalescing/time/parcel-arrival-histogram counter reports:
/// [min, max, bucket_width, count_0 .. count_{n-1}], with one underflow
/// and one overflow bucket folded into the first/last bucket.
///
/// The concurrent variant is updated from the parcel enqueue path, so the
/// buckets are relaxed atomics; totals are exact, per-bucket ordering is
/// not needed.

#include <atomic>
#include <cstdint>
#include <vector>

namespace coal {

/// Parameters describing a histogram's bucketing.
struct histogram_params
{
    std::int64_t min_value = 0;         ///< inclusive lower bound of bucket 0
    std::int64_t max_value = 1000000;   ///< exclusive upper bound of last bucket
    std::size_t buckets = 20;           ///< number of buckets

    [[nodiscard]] std::int64_t bucket_width() const noexcept
    {
        auto const span = max_value - min_value;
        auto const n = static_cast<std::int64_t>(buckets);
        return (span + n - 1) / n;    // ceil so the range is covered
    }
};

/// Single-threaded histogram (used in analysis/bench post-processing).
class histogram
{
public:
    explicit histogram(histogram_params params);

    void add(std::int64_t value) noexcept;

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return total_;
    }

    [[nodiscard]] histogram_params const& params() const noexcept
    {
        return params_;
    }

    [[nodiscard]] std::vector<std::uint64_t> const& buckets() const noexcept
    {
        return counts_;
    }

    /// HPX counter wire format: min, max, bucket_width, then counts.
    [[nodiscard]] std::vector<std::int64_t> serialize() const;

    void reset() noexcept;

private:
    histogram_params params_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Thread-safe histogram whose buckets are striped across cache lines.
///
/// concurrent_histogram keeps one shared bucket array plus a shared total
/// counter — every recording thread bounces the same cache lines.  The
/// striped variant gives each stripe (callers pass a per-thread stripe
/// index) its own cacheline-padded bucket block and aggregates only on
/// reads, so concurrent writers never share a line.  Totals are exact:
/// every add lands in exactly one stripe bucket and serialization sums
/// across stripes.
class striped_histogram
{
public:
    explicit striped_histogram(
        histogram_params params, std::size_t stripes = 8);

    /// Record into the caller's stripe (any value; callers usually pass
    /// current_thread_stripe()).  Stripe indices are folded internally.
    void add(std::int64_t value, std::size_t stripe) noexcept;

    [[nodiscard]] std::uint64_t total() const noexcept;

    [[nodiscard]] histogram_params const& params() const noexcept
    {
        return params_;
    }

    /// Snapshot in HPX counter wire format (min, max, width, counts...),
    /// aggregated across stripes.
    [[nodiscard]] std::vector<std::int64_t> serialize() const;

    void reset() noexcept;

private:
    histogram_params params_;
    std::size_t stripe_mask_;
    std::size_t stride_;    ///< padded bucket count per stripe
    std::vector<std::atomic<std::uint64_t>> counts_;
};

/// Thread-safe histogram for hot-path instrumentation.
class concurrent_histogram
{
public:
    explicit concurrent_histogram(histogram_params params);

    void add(std::int64_t value) noexcept;

    [[nodiscard]] std::uint64_t total() const noexcept
    {
        return total_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] histogram_params const& params() const noexcept
    {
        return params_;
    }

    /// Snapshot in HPX counter wire format (min, max, width, counts...).
    [[nodiscard]] std::vector<std::int64_t> serialize() const;

    void reset() noexcept;

private:
    histogram_params params_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> total_{0};
};

}    // namespace coal
