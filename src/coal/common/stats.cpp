#include <coal/common/stats.hpp>

#include <algorithm>
#include <cmath>

namespace coal {

void running_stats::add(double x) noexcept
{
    ++n_;
    sum_ += x;
    double const delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double running_stats::variance() const noexcept
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double running_stats::stddev() const noexcept
{
    return std::sqrt(variance());
}

double running_stats::relative_stddev() const noexcept
{
    double const m = mean();
    if (m == 0.0)
        return 0.0;
    return stddev() / std::abs(m);
}

void running_stats::reset() noexcept
{
    *this = running_stats{};
}

void running_stats::merge(running_stats const& other) noexcept
{
    if (other.n_ == 0)
        return;
    if (n_ == 0)
    {
        *this = other;
        return;
    }
    // Chan et al. parallel moment combination.
    double const delta = other.mean_ - mean_;
    auto const na = static_cast<double>(n_);
    auto const nb = static_cast<double>(other.n_);
    double const n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double pearson_correlation(
    std::span<double const> x, std::span<double const> y) noexcept
{
    std::size_t const n = std::min(x.size(), y.size());
    if (n < 2)
        return 0.0;

    double const mx = mean_of(x.first(n));
    double const my = mean_of(y.first(n));

    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i != n; ++i)
    {
        double const dx = x[i] - mx;
        double const dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

linear_fit fit_line(
    std::span<double const> x, std::span<double const> y) noexcept
{
    std::size_t const n = std::min(x.size(), y.size());
    if (n < 2)
        return {};

    double const mx = mean_of(x.first(n));
    double const my = mean_of(y.first(n));

    double sxy = 0.0, sxx = 0.0;
    for (std::size_t i = 0; i != n; ++i)
    {
        sxy += (x[i] - mx) * (y[i] - my);
        sxx += (x[i] - mx) * (x[i] - mx);
    }
    if (sxx == 0.0)
        return {};
    linear_fit fit;
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
    return fit;
}

double mean_of(std::span<double const> xs) noexcept
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double median_of(std::vector<double> xs) noexcept
{
    if (xs.empty())
        return 0.0;
    std::size_t const mid = xs.size() / 2;
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
        xs.end());
    double const hi = xs[mid];
    if (xs.size() % 2 == 1)
        return hi;
    std::nth_element(xs.begin(),
        xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1, xs.end());
    return (hi + xs[mid - 1]) / 2.0;
}

}    // namespace coal
