#include <coal/common/logging.hpp>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace coal {

namespace {

std::atomic<int> g_level{-1};    // -1: not yet resolved
std::mutex g_io_mutex;

log_level level_from_env() noexcept
{
    char const* env = std::getenv("COAL_LOG");
    if (env == nullptr)
        return log_level::warn;
    if (std::strcmp(env, "error") == 0)
        return log_level::error;
    if (std::strcmp(env, "warn") == 0)
        return log_level::warn;
    if (std::strcmp(env, "info") == 0)
        return log_level::info;
    if (std::strcmp(env, "debug") == 0)
        return log_level::debug;
    if (std::strcmp(env, "trace") == 0)
        return log_level::trace;
    if (std::strcmp(env, "none") == 0)
        return log_level::none;
    return log_level::warn;
}

char const* level_name(log_level level) noexcept
{
    switch (level)
    {
    case log_level::error:
        return "ERROR";
    case log_level::warn:
        return "WARN";
    case log_level::info:
        return "INFO";
    case log_level::debug:
        return "DEBUG";
    case log_level::trace:
        return "TRACE";
    default:
        return "?";
    }
}

}    // namespace

namespace detail {

log_level current_log_level() noexcept
{
    int lvl = g_level.load(std::memory_order_relaxed);
    if (lvl < 0)
    {
        lvl = static_cast<int>(level_from_env());
        g_level.store(lvl, std::memory_order_relaxed);
    }
    return static_cast<log_level>(lvl);
}

void vlog(log_level level, char const* component, char const* fmt,
    std::va_list args) noexcept
{
    char message[512];
    std::vsnprintf(message, sizeof(message), fmt, args);

    std::lock_guard lock(g_io_mutex);
    std::fprintf(
        stderr, "[coal:%s] %s: %s\n", component, level_name(level), message);
}

}    // namespace detail

void log(log_level level, char const* component, char const* fmt, ...) noexcept
{
    if (!log_enabled(level))
        return;
    std::va_list args;
    va_start(args, fmt);
    detail::vlog(level, component, fmt, args);
    va_end(args);
}

void set_log_level(log_level level) noexcept
{
    g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}    // namespace coal
