#include <coal/common/config.hpp>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <stdexcept>

extern char** environ;

namespace coal {

namespace {

std::string to_lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
        [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

}    // namespace

void config::set(std::string key, std::string value)
{
    values_[std::move(key)] = std::move(value);
}

bool config::contains(std::string const& key) const
{
    return values_.count(key) != 0;
}

std::optional<std::string> config::get(std::string const& key) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::string config::get_string(
    std::string const& key, std::string const& dflt) const
{
    return get(key).value_or(dflt);
}

std::int64_t config::get_int(std::string const& key, std::int64_t dflt) const
{
    auto v = get(key);
    if (!v)
        return dflt;
    try
    {
        return std::stoll(*v);
    }
    catch (std::exception const&)
    {
        return dflt;
    }
}

double config::get_double(std::string const& key, double dflt) const
{
    auto v = get(key);
    if (!v)
        return dflt;
    try
    {
        return std::stod(*v);
    }
    catch (std::exception const&)
    {
        return dflt;
    }
}

bool config::get_bool(std::string const& key, bool dflt) const
{
    auto v = get(key);
    if (!v)
        return dflt;
    return parse_bool(*v).value_or(dflt);
}

std::vector<std::string> config::parse_args(
    int argc, char const* const* argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i)
    {
        std::string arg(argv[i]);
        auto const eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
        {
            positional.push_back(std::move(arg));
            continue;
        }
        set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return positional;
}

void config::load_environment()
{
    for (char** env = environ; env != nullptr && *env != nullptr; ++env)
    {
        std::string entry(*env);
        if (entry.rfind("COAL_", 0) != 0)
            continue;
        auto const eq = entry.find('=');
        if (eq == std::string::npos)
            continue;
        std::string key = to_lower(entry.substr(5, eq - 5));
        std::replace(key.begin(), key.end(), '_', '.');
        set(std::move(key), entry.substr(eq + 1));
    }
}

std::vector<std::pair<std::string, std::string>> config::entries() const
{
    return {values_.begin(), values_.end()};
}

std::optional<bool> parse_bool(std::string const& text)
{
    std::string const t = to_lower(text);
    if (t == "1" || t == "true" || t == "yes" || t == "on")
        return true;
    if (t == "0" || t == "false" || t == "no" || t == "off")
        return false;
    return std::nullopt;
}

}    // namespace coal
