#pragma once

/// \file unique_function.hpp
/// Move-only type-erased callable with small-buffer optimization.
///
/// The scheduler's task type must own move-only state (promises, parcels,
/// serialized buffers); std::function requires copyability and
/// std::move_only_function is C++23, so the runtime carries its own.
/// Callables up to `sbo_size` bytes are stored inline; larger ones are
/// heap-allocated.

#include <coal/common/assert.hpp>

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace coal {

template <typename Signature>
class unique_function;

template <typename R, typename... Args>
class unique_function<R(Args...)>
{
    static constexpr std::size_t sbo_size = 48;
    static constexpr std::size_t sbo_align = alignof(std::max_align_t);

    struct vtable
    {
        R (*invoke)(void* obj, Args&&... args);
        void (*move_to)(void* from, void* to) noexcept;
        void (*destroy)(void* obj) noexcept;
        bool inline_storage;
    };

    template <typename F>
    static constexpr bool stores_inline =
        sizeof(F) <= sbo_size && alignof(F) <= sbo_align &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    static vtable const* vtable_for()
    {
        if constexpr (stores_inline<F>)
        {
            static constexpr vtable vt{
                +[](void* obj, Args&&... args) -> R {
                    return (*static_cast<F*>(obj))(
                        std::forward<Args>(args)...);
                },
                +[](void* from, void* to) noexcept {
                    ::new (to) F(std::move(*static_cast<F*>(from)));
                    static_cast<F*>(from)->~F();
                },
                +[](void* obj) noexcept { static_cast<F*>(obj)->~F(); },
                true};
            return &vt;
        }
        else
        {
            // Heap storage: the buffer holds an F*.
            static constexpr vtable vt{
                +[](void* obj, Args&&... args) -> R {
                    return (**static_cast<F**>(obj))(
                        std::forward<Args>(args)...);
                },
                +[](void* from, void* to) noexcept {
                    *static_cast<F**>(to) = *static_cast<F**>(from);
                    *static_cast<F**>(from) = nullptr;
                },
                +[](void* obj) noexcept { delete *static_cast<F**>(obj); },
                false};
            return &vt;
        }
    }

public:
    unique_function() noexcept = default;
    unique_function(std::nullptr_t) noexcept {}

    template <typename F,
        typename = std::enable_if_t<
            !std::is_same_v<std::decay_t<F>, unique_function> &&
            std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
    unique_function(F&& f)
    {
        using D = std::decay_t<F>;
        if constexpr (stores_inline<D>)
        {
            ::new (storage()) D(std::forward<F>(f));
        }
        else
        {
            *static_cast<D**>(storage()) = new D(std::forward<F>(f));
        }
        vt_ = vtable_for<D>();
    }

    unique_function(unique_function&& other) noexcept
    {
        move_from(other);
    }

    unique_function& operator=(unique_function&& other) noexcept
    {
        if (this != &other)
        {
            reset();
            move_from(other);
        }
        return *this;
    }

    unique_function(unique_function const&) = delete;
    unique_function& operator=(unique_function const&) = delete;

    ~unique_function()
    {
        reset();
    }

    void reset() noexcept
    {
        if (vt_ != nullptr)
        {
            vt_->destroy(storage());
            vt_ = nullptr;
        }
    }

    explicit operator bool() const noexcept
    {
        return vt_ != nullptr;
    }

    R operator()(Args... args)
    {
        COAL_ASSERT_MSG(vt_ != nullptr, "calling empty unique_function");
        return vt_->invoke(storage(), std::forward<Args>(args)...);
    }

private:
    void* storage() noexcept
    {
        return static_cast<void*>(&buffer_);
    }

    void move_from(unique_function& other) noexcept
    {
        if (other.vt_ != nullptr)
        {
            other.vt_->move_to(other.storage(), storage());
            vt_ = other.vt_;
            other.vt_ = nullptr;
        }
    }

    alignas(sbo_align) std::byte buffer_[sbo_size];
    vtable const* vt_ = nullptr;
};

}    // namespace coal
