#pragma once

/// \file stopwatch.hpp
/// Steady-clock helpers shared by instrumentation, the cost model, and the
/// deadline timer.  All runtime-internal durations are nanoseconds stored
/// in signed 64-bit integers; user-facing coalescing parameters are
/// microseconds (matching the paper).

#include <chrono>
#include <cstdint>

namespace coal {

using steady_clock = std::chrono::steady_clock;
using time_point = steady_clock::time_point;

/// Monotonic timestamp in nanoseconds since an arbitrary epoch.
inline std::int64_t now_ns() noexcept
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        steady_clock::now().time_since_epoch())
        .count();
}

/// Monotonic timestamp in microseconds since an arbitrary epoch.
inline std::int64_t now_us() noexcept
{
    return now_ns() / 1000;
}

/// Simple scoped stopwatch; read with elapsed_*() at any time.
class stopwatch
{
public:
    stopwatch() noexcept
      : start_(steady_clock::now())
    {
    }

    void restart() noexcept
    {
        start_ = steady_clock::now();
    }

    [[nodiscard]] std::int64_t elapsed_ns() const noexcept
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
            steady_clock::now() - start_)
            .count();
    }

    [[nodiscard]] std::int64_t elapsed_us() const noexcept
    {
        return elapsed_ns() / 1000;
    }

    [[nodiscard]] double elapsed_ms() const noexcept
    {
        return static_cast<double>(elapsed_ns()) / 1e6;
    }

    [[nodiscard]] double elapsed_s() const noexcept
    {
        return static_cast<double>(elapsed_ns()) / 1e9;
    }

private:
    time_point start_;
};

/// Accumulates time from paired resume()/suspend() calls; used by the
/// scheduler to separate exec time from bookkeeping without allocating.
class interval_accumulator
{
public:
    void resume() noexcept
    {
        mark_ = now_ns();
    }

    void suspend() noexcept
    {
        total_ns_ += now_ns() - mark_;
    }

    [[nodiscard]] std::int64_t total_ns() const noexcept
    {
        return total_ns_;
    }

    void reset() noexcept
    {
        total_ns_ = 0;
    }

private:
    std::int64_t mark_ = 0;
    std::int64_t total_ns_ = 0;
};

}    // namespace coal
