#pragma once

/// \file archive.hpp
/// Byte-stream archives used to serialize action arguments and parcels.
///
/// Usage mirrors the classic boost/HPX serialization idiom:
///
///     output_archive oa(buf);
///     oa & x & y & z;
///
///     input_archive ia(buf);
///     ia & x & y & z;
///
/// Built-in support: arithmetic types, enums, bool, std::string,
/// std::vector, std::array, std::pair, std::tuple, std::optional,
/// std::complex, std::chrono::duration.  User types participate by
/// providing either a member `serialize(Archive&)` or a free function
/// `serialize(Archive&, T&)` found by ADL; one function serves both
/// directions (`Archive::is_saving` discriminates when needed).
///
/// Contiguous ranges of trivially copyable element types are written with
/// a single memcpy — the fast path the parquet workload's
/// vector<complex<double>> payloads take.

#include <coal/common/assert.hpp>
#include <coal/serialization/buffer.hpp>

#include <array>
#include <complex>
#include <chrono>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace coal::serialization {

/// Thrown when an input archive runs out of bytes or decodes an
/// impossible value (corrupt or truncated message).
class serialization_error : public std::runtime_error
{
public:
    using std::runtime_error::runtime_error;
};

class output_archive;
class input_archive;

namespace detail {

template <typename T, typename Archive>
concept has_member_serialize = requires(T& t, Archive& ar) {
    t.serialize(ar);
};

template <typename T, typename Archive>
concept has_adl_serialize = requires(T& t, Archive& ar) {
    serialize(ar, t);
};

template <typename T>
concept trivially_serializable =
    std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>;

}    // namespace detail

/// Serializes directly into a pooled slab: no intermediate vector, no
/// final copy — `detach()` seals the slab into a `shared_buffer` that the
/// parcel keeps as its argument image and the wire frame references.
class output_archive
{
public:
    static constexpr bool is_saving = true;
    static constexpr bool is_loading = false;

    output_archive() = default;

    output_archive(output_archive const&) = delete;
    output_archive& operator=(output_archive const&) = delete;

    ~output_archive()
    {
        detail::slab_release(slab_);
    }

    void write_bytes(void const* data, std::size_t size)
    {
        if (size == 0)
            return;
        // Sanity bound (also lets the optimizer prove `old + size` and
        // `count * sizeof(T)` in callers cannot wrap, which otherwise
        // trips GCC's -Wrestrict/-Wstringop-overflow false positives
        // under deep inlining).
        COAL_ASSERT_MSG(size < (std::size_t{1} << 48),
            "implausible serialization size");
        if (slab_ == nullptr || size_ + size > slab_->capacity)
            grow(size);
        std::memcpy(slab_->data() + size_, data, size);
        size_ += size;
    }

    [[nodiscard]] std::size_t bytes_written() const noexcept
    {
        return size_;
    }

    /// Seal the slab and hand it over; the archive resets to empty.
    [[nodiscard]] shared_buffer detach() noexcept
    {
        if (slab_ == nullptr)
            return {};
        shared_buffer out =
            shared_buffer::adopt(slab_, slab_->data(), size_, false);
        slab_ = nullptr;
        size_ = 0;
        return out;
    }

    template <typename T>
    output_archive& operator&(T const& value)
    {
        save_value(*this, value);
        return *this;
    }

    template <typename T>
    output_archive& operator<<(T const& value)
    {
        return *this & value;
    }

private:
    void grow(std::size_t need)
    {
        std::size_t const want =
            size_ + need > 2 * capacity() ? size_ + need : 2 * capacity();
        detail::slab* bigger = buffer_pool::global().acquire(want);
        if (size_ != 0)
        {
            std::memcpy(bigger->data(), slab_->data(), size_);
            buffer_pool::global().count_copied(size_);
        }
        detail::slab_release(slab_);
        slab_ = bigger;
    }

    [[nodiscard]] std::size_t capacity() const noexcept
    {
        return slab_ != nullptr ? slab_->capacity : 128;
    }

    detail::slab* slab_ = nullptr;
    std::size_t size_ = 0;
};

class input_archive
{
public:
    static constexpr bool is_saving = false;
    static constexpr bool is_loading = true;

    input_archive(std::uint8_t const* data, std::size_t size) noexcept
      : data_(data)
      , size_(size)
    {
    }

    explicit input_archive(byte_buffer const& buffer) noexcept
      : input_archive(buffer.data(), buffer.size())
    {
    }

    /// Slab-backed archive: `borrow_view` then yields zero-copy sub-views
    /// into the underlying frame slab (the receive path's fast path).
    explicit input_archive(shared_buffer const& buffer) noexcept
      : data_(buffer.data())
      , size_(buffer.size())
      , slab_(buffer.slab())
    {
    }

    void read_bytes(void* out, std::size_t size)
    {
        if (pos_ + size > size_)
            throw serialization_error(
                "input archive exhausted (truncated message?)");
        std::memcpy(out, data_ + pos_, size);
        pos_ += size;
    }

    /// Advance past `size` bytes without reading them.  The receive
    /// pipeline's boundary scan uses this to hop from parcel to parcel
    /// touching only the length fields.
    void skip(std::size_t size)
    {
        if (pos_ + size > size_)
            throw serialization_error(
                "input archive exhausted (truncated message?)");
        pos_ += size;
    }

    /// Borrow `size` bytes in place without copying (bulk fast path).
    std::uint8_t const* borrow_bytes(std::size_t size)
    {
        if (pos_ + size > size_)
            throw serialization_error(
                "input archive exhausted (truncated message?)");
        std::uint8_t const* p = data_ + pos_;
        pos_ += size;
        return p;
    }

    /// Take `size` bytes as a shared_buffer.  Zero copy for slab-backed
    /// archives (the view keeps the frame slab alive by refcount); other
    /// archives fall back to a pooled copy.  Both paths are accounted.
    [[nodiscard]] shared_buffer borrow_view(std::size_t size)
    {
        std::uint8_t const* p = borrow_bytes(size);
        if (slab_ != nullptr)
        {
            buffer_pool::global().count_referenced(size);
            return shared_buffer::adopt(
                slab_, const_cast<std::uint8_t*>(p), size, true);
        }
        buffer_pool::global().count_copied(size);
        return shared_buffer(p, size);
    }

    [[nodiscard]] std::size_t remaining() const noexcept
    {
        return size_ - pos_;
    }

    [[nodiscard]] std::size_t position() const noexcept
    {
        return pos_;
    }

    template <typename T>
    input_archive& operator&(T& value)
    {
        load_value(*this, value);
        return *this;
    }

    template <typename T>
    input_archive& operator>>(T& value)
    {
        return *this & value;
    }

private:
    std::uint8_t const* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    detail::slab* slab_ = nullptr;    // non-owning; set for slab archives
};

// --- scalar overloads ------------------------------------------------------

template <typename T>
    requires std::is_arithmetic_v<T>
void save_value(output_archive& ar, T const& value)
{
    ar.write_bytes(&value, sizeof(T));
}

template <typename T>
    requires std::is_arithmetic_v<T>
void load_value(input_archive& ar, T& value)
{
    ar.read_bytes(&value, sizeof(T));
}

template <typename T>
    requires std::is_enum_v<T>
void save_value(output_archive& ar, T const& value)
{
    auto u = static_cast<std::underlying_type_t<T>>(value);
    ar.write_bytes(&u, sizeof(u));
}

template <typename T>
    requires std::is_enum_v<T>
void load_value(input_archive& ar, T& value)
{
    std::underlying_type_t<T> u{};
    ar.read_bytes(&u, sizeof(u));
    value = static_cast<T>(u);
}

template <typename T>
void save_value(output_archive& ar, std::complex<T> const& value)
{
    ar & value.real() & value.imag();
}

template <typename T>
void load_value(input_archive& ar, std::complex<T>& value)
{
    T re{}, im{};
    ar & re & im;
    value = std::complex<T>(re, im);
}

template <typename Rep, typename Period>
void save_value(
    output_archive& ar, std::chrono::duration<Rep, Period> const& value)
{
    ar & value.count();
}

template <typename Rep, typename Period>
void load_value(input_archive& ar, std::chrono::duration<Rep, Period>& value)
{
    Rep count{};
    ar & count;
    value = std::chrono::duration<Rep, Period>(count);
}

// --- strings and sequences -------------------------------------------------

inline void save_value(output_archive& ar, std::string const& value)
{
    auto const size = static_cast<std::uint64_t>(value.size());
    ar & size;
    ar.write_bytes(value.data(), value.size());
}

inline void load_value(input_archive& ar, std::string& value)
{
    std::uint64_t size{};
    ar & size;
    if (size > ar.remaining())
        throw serialization_error("string length exceeds archive size");
    value.assign(reinterpret_cast<char const*>(
                     ar.borrow_bytes(static_cast<std::size_t>(size))),
        static_cast<std::size_t>(size));
}

template <typename T>
void save_value(output_archive& ar, std::vector<T> const& value)
{
    auto const size = static_cast<std::uint64_t>(value.size());
    ar & size;
    if constexpr (detail::trivially_serializable<T>)
    {
        ar.write_bytes(value.data(), value.size() * sizeof(T));
    }
    else
    {
        for (auto const& element : value)
            ar & element;
    }
}

template <typename T>
void load_value(input_archive& ar, std::vector<T>& value)
{
    std::uint64_t size{};
    ar & size;
    if constexpr (detail::trivially_serializable<T>)
    {
        // Divide instead of multiplying: size * sizeof(T) can overflow
        // for an adversarial length and sneak past the bound.
        if (size > ar.remaining() / sizeof(T))
            throw serialization_error("vector length exceeds archive size");
        auto const bytes = static_cast<std::size_t>(size) * sizeof(T);
        value.resize(static_cast<std::size_t>(size));
        std::memcpy(value.data(), ar.borrow_bytes(bytes), bytes);
    }
    else
    {
        if (size > ar.remaining())    // each element needs >= 1 byte
            throw serialization_error("vector length exceeds archive size");
        value.clear();
        value.reserve(static_cast<std::size_t>(size));
        for (std::uint64_t i = 0; i != size; ++i)
        {
            T element{};
            ar & element;
            value.push_back(std::move(element));
        }
    }
}

template <typename T, std::size_t N>
void save_value(output_archive& ar, std::array<T, N> const& value)
{
    if constexpr (detail::trivially_serializable<T>)
    {
        ar.write_bytes(value.data(), N * sizeof(T));
    }
    else
    {
        for (auto const& element : value)
            ar & element;
    }
}

template <typename T, std::size_t N>
void load_value(input_archive& ar, std::array<T, N>& value)
{
    if constexpr (detail::trivially_serializable<T>)
    {
        ar.read_bytes(value.data(), N * sizeof(T));
    }
    else
    {
        for (auto& element : value)
            ar & element;
    }
}

// --- associative containers --------------------------------------------------

namespace detail {

/// Shared save for any sized range of (de)serializable elements.
template <typename Range>
void save_sized_range(output_archive& ar, Range const& range)
{
    ar & static_cast<std::uint64_t>(range.size());
    for (auto const& element : range)
        ar & element;
}

/// Shared load for set-like containers (insert of value_type).
template <typename Container, typename Element>
void load_into_set(input_archive& ar, Container& out)
{
    std::uint64_t size{};
    ar & size;
    if (size > ar.remaining())
        throw serialization_error("container size exceeds archive size");
    out.clear();
    for (std::uint64_t i = 0; i != size; ++i)
    {
        Element element{};
        ar & element;
        out.insert(std::move(element));
    }
}

/// Shared load for map-like containers (emplace of key/value pair).
template <typename Container, typename K, typename V>
void load_into_map(input_archive& ar, Container& out)
{
    std::uint64_t size{};
    ar & size;
    if (size > ar.remaining())
        throw serialization_error("container size exceeds archive size");
    out.clear();
    for (std::uint64_t i = 0; i != size; ++i)
    {
        K key{};
        V value{};
        ar & key & value;
        out.emplace(std::move(key), std::move(value));
    }
}

}    // namespace detail

template <typename K, typename V, typename C, typename A>
void save_value(output_archive& ar, std::map<K, V, C, A> const& value)
{
    detail::save_sized_range(ar, value);
}

template <typename K, typename V, typename C, typename A>
void load_value(input_archive& ar, std::map<K, V, C, A>& value)
{
    detail::load_into_map<std::map<K, V, C, A>, K, V>(ar, value);
}

template <typename K, typename V, typename H, typename E, typename A>
void save_value(
    output_archive& ar, std::unordered_map<K, V, H, E, A> const& value)
{
    detail::save_sized_range(ar, value);
}

template <typename K, typename V, typename H, typename E, typename A>
void load_value(input_archive& ar, std::unordered_map<K, V, H, E, A>& value)
{
    detail::load_into_map<std::unordered_map<K, V, H, E, A>, K, V>(
        ar, value);
}

template <typename T, typename C, typename A>
void save_value(output_archive& ar, std::set<T, C, A> const& value)
{
    detail::save_sized_range(ar, value);
}

template <typename T, typename C, typename A>
void load_value(input_archive& ar, std::set<T, C, A>& value)
{
    detail::load_into_set<std::set<T, C, A>, T>(ar, value);
}

template <typename T, typename H, typename E, typename A>
void save_value(output_archive& ar, std::unordered_set<T, H, E, A> const& value)
{
    detail::save_sized_range(ar, value);
}

template <typename T, typename H, typename E, typename A>
void load_value(input_archive& ar, std::unordered_set<T, H, E, A>& value)
{
    detail::load_into_set<std::unordered_set<T, H, E, A>, T>(ar, value);
}

// --- shared buffers ----------------------------------------------------------

/// A shared_buffer serializes as (u64 size, bytes); loading borrows a
/// zero-copy view into the enclosing frame slab when possible.  This is
/// what lets byte payloads (e.g. collective deposits) ride through the
/// pipeline without per-hop copies.
inline void save_value(output_archive& ar, shared_buffer const& value)
{
    auto const size = static_cast<std::uint64_t>(value.size());
    ar & size;
    ar.write_bytes(value.data(), value.size());
}

inline void load_value(input_archive& ar, shared_buffer& value)
{
    std::uint64_t size{};
    ar & size;
    if (size > ar.remaining())
        throw serialization_error("buffer length exceeds archive size");
    value = ar.borrow_view(static_cast<std::size_t>(size));
}

// --- product types ----------------------------------------------------------

template <typename A, typename B>
void save_value(output_archive& ar, std::pair<A, B> const& value)
{
    ar & value.first & value.second;
}

template <typename A, typename B>
void load_value(input_archive& ar, std::pair<A, B>& value)
{
    ar & value.first & value.second;
}

template <typename... Ts>
void save_value(output_archive& ar, std::tuple<Ts...> const& value)
{
    std::apply([&](auto const&... element) { (void) ((ar & element), ...); },
        value);
}

template <typename... Ts>
void load_value(input_archive& ar, std::tuple<Ts...>& value)
{
    std::apply([&](auto&... element) { (void) ((ar & element), ...); }, value);
}

template <typename T>
void save_value(output_archive& ar, std::optional<T> const& value)
{
    ar & static_cast<std::uint8_t>(value.has_value() ? 1 : 0);
    if (value)
        ar & *value;
}

template <typename T>
void load_value(input_archive& ar, std::optional<T>& value)
{
    std::uint8_t has{};
    ar & has;
    if (has != 0 && has != 1)
        throw serialization_error("corrupt optional flag");
    if (has)
    {
        T element{};
        ar & element;
        value = std::move(element);
    }
    else
    {
        value.reset();
    }
}

// --- user-defined types ------------------------------------------------------

template <typename T>
    requires(!std::is_arithmetic_v<T> && !std::is_enum_v<T> &&
        (detail::has_member_serialize<T, output_archive> ||
            detail::has_adl_serialize<T, output_archive>))
void save_value(output_archive& ar, T const& value)
{
    // One serialize() serves both directions, so it takes T& — safe here
    // because saving never mutates.
    auto& mutable_value = const_cast<T&>(value);
    if constexpr (detail::has_member_serialize<T, output_archive>)
        mutable_value.serialize(ar);
    else
        serialize(ar, mutable_value);
}

template <typename T>
    requires(!std::is_arithmetic_v<T> && !std::is_enum_v<T> &&
        (detail::has_member_serialize<T, input_archive> ||
            detail::has_adl_serialize<T, input_archive>))
void load_value(input_archive& ar, T& value)
{
    if constexpr (detail::has_member_serialize<T, input_archive>)
        value.serialize(ar);
    else
        serialize(ar, value);
}

// --- convenience entry points ------------------------------------------------

/// Serialize a value into a fresh pooled buffer.
template <typename T>
[[nodiscard]] shared_buffer to_bytes(T const& value)
{
    output_archive ar;
    ar & value;
    return ar.detach();
}

/// Deserialize a value of type T from a buffer (whole-buffer convenience).
template <typename T>
[[nodiscard]] T from_bytes(shared_buffer const& buffer)
{
    input_archive ar(buffer);
    T value{};
    ar & value;
    return value;
}

template <typename T>
[[nodiscard]] T from_bytes(byte_buffer const& buffer)
{
    input_archive ar(buffer);
    T value{};
    ar & value;
    return value;
}

}    // namespace coal::serialization
