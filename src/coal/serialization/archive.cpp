#include <coal/serialization/archive.hpp>

// The archives are header-only templates; this translation unit anchors the
// library and provides a home for the error type's vtable.

namespace coal::serialization {

namespace {

// Force the exception's key function into this TU.
[[maybe_unused]] void anchor()
{
    serialization_error err("anchor");
    (void) err;
}

}    // namespace

}    // namespace coal::serialization
