#pragma once

/// \file buffer.hpp
/// Wire buffer types shared by serialization, parcels and the network.
///
/// `byte_buffer` remains the plain contiguous vector used for scratch
/// storage and test fixtures.  The pipeline itself carries bytes in a
/// `shared_buffer`: a reference-counted view over a slab from the global
/// `buffer_pool`.  Copying a shared_buffer bumps a refcount; sub-views
/// (`view()`) share the same slab, which is how received parcel arguments
/// alias the inbound frame without a copy.
///
/// Ownership contract: a slab is *mutable while uniquely owned* (the
/// archive building it, or `wire_message` extending its head fragment) and
/// *immutable after seal* — the moment a second reference exists (retained
/// retransmit frame, parcel argument view, pool-bypassing duplicate) no
/// byte may change, with one audited exception: `patch_frame_acks`
/// rewrites the ack/sack words of a retained frame under the sender's
/// peers lock before the flattened copy is taken (see wire_message::patch).
///
/// Endianness is native — all localities live in one process, and the
/// transport interface is the seam where a real wire would add conversion.

#include <coal/serialization/buffer_pool.hpp>

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <utility>
#include <vector>

namespace coal::serialization {

using byte_buffer = std::vector<std::uint8_t>;

class shared_buffer
{
public:
    shared_buffer() noexcept = default;

    /// Pooled slab of `size` zero-initialized bytes.
    explicit shared_buffer(std::size_t size)
      : shared_buffer(size, std::uint8_t(0))
    {
    }

    shared_buffer(std::size_t size, std::uint8_t fill)
    {
        if (size == 0)
            return;
        slab_ = buffer_pool::global().acquire(size);
        data_ = slab_->data();
        size_ = size;
        std::memset(data_, fill, size);
    }

    shared_buffer(void const* bytes, std::size_t size)
    {
        if (size == 0)
            return;
        slab_ = buffer_pool::global().acquire(size);
        data_ = slab_->data();
        size_ = size;
        std::memcpy(data_, bytes, size);
    }

    shared_buffer(std::initializer_list<std::uint8_t> init)
      : shared_buffer(init.size() == 0 ? nullptr : init.begin(), init.size())
    {
    }

    /// Implicit on purpose: the tests and examples build payloads as
    /// byte_buffer literals and hand them straight to the pipeline.
    shared_buffer(byte_buffer const& bytes)
      : shared_buffer(bytes.empty() ? nullptr : bytes.data(), bytes.size())
    {
    }

    shared_buffer(shared_buffer const& other) noexcept
      : slab_(other.slab_)
      , data_(other.data_)
      , size_(other.size_)
    {
        detail::slab_add_ref(slab_);
    }

    shared_buffer(shared_buffer&& other) noexcept
      : slab_(std::exchange(other.slab_, nullptr))
      , data_(std::exchange(other.data_, nullptr))
      , size_(std::exchange(other.size_, 0))
    {
    }

    shared_buffer& operator=(shared_buffer const& other) noexcept
    {
        if (this != &other)
        {
            detail::slab_add_ref(other.slab_);
            detail::slab_release(slab_);
            slab_ = other.slab_;
            data_ = other.data_;
            size_ = other.size_;
        }
        return *this;
    }

    shared_buffer& operator=(shared_buffer&& other) noexcept
    {
        if (this != &other)
        {
            detail::slab_release(slab_);
            slab_ = std::exchange(other.slab_, nullptr);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~shared_buffer()
    {
        detail::slab_release(slab_);
    }

    /// Adopt a slab reference (internal: archives / wire_message).  Takes
    /// ownership of one reference when add_ref is false.
    static shared_buffer adopt(detail::slab* slab, std::uint8_t* data,
        std::size_t size, bool add_ref) noexcept
    {
        if (add_ref)
            detail::slab_add_ref(slab);
        shared_buffer out;
        out.slab_ = slab;
        out.data_ = data;
        out.size_ = size;
        return out;
    }

    [[nodiscard]] std::uint8_t const* data() const noexcept
    {
        return data_;
    }

    /// Mutation seam: legal only while this view is the unique owner (a
    /// builder filling a fresh slab) or under the audited ack-patch path.
    [[nodiscard]] std::uint8_t* mutable_data() noexcept
    {
        return data_;
    }

    [[nodiscard]] std::size_t size() const noexcept
    {
        return size_;
    }

    [[nodiscard]] bool empty() const noexcept
    {
        return size_ == 0;
    }

    [[nodiscard]] std::uint8_t operator[](std::size_t i) const noexcept
    {
        return data_[i];
    }

    [[nodiscard]] std::uint8_t const* begin() const noexcept
    {
        return data_;
    }

    [[nodiscard]] std::uint8_t const* end() const noexcept
    {
        return data_ + size_;
    }

    /// True when this is the only reference to the slab (or empty).
    [[nodiscard]] bool unique() const noexcept
    {
        return slab_ == nullptr ||
            slab_->refs.load(std::memory_order_acquire) == 1;
    }

    [[nodiscard]] detail::slab* slab() const noexcept
    {
        return slab_;
    }

    /// Zero-copy sub-view sharing the same slab.
    [[nodiscard]] shared_buffer view(
        std::size_t offset, std::size_t count) const noexcept
    {
        return adopt(slab_, data_ + offset, count, true);
    }

    [[nodiscard]] byte_buffer to_vector() const
    {
        return byte_buffer(data_, data_ + size_);
    }

    friend bool operator==(
        shared_buffer const& a, shared_buffer const& b) noexcept
    {
        return a.size_ == b.size_ &&
            (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
    }

    friend bool operator==(shared_buffer const& a, byte_buffer const& b)
    {
        return a.size_ == b.size() &&
            (b.empty() || std::memcmp(a.data_, b.data(), b.size()) == 0);
    }

    friend bool operator==(byte_buffer const& a, shared_buffer const& b)
    {
        return b == a;
    }

private:
    friend class wire_message;    // extends its unique head fragment in place

    detail::slab* slab_ = nullptr;
    std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
};

}    // namespace coal::serialization
