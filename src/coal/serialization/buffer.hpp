#pragma once

/// \file buffer.hpp
/// Wire buffer type shared by serialization, parcels and the network.
///
/// A plain contiguous byte vector: parcels serialize into it, messages
/// frame several parcel images inside one, and the simulated network
/// moves it between localities by value (move).  Endianness is native —
/// all localities live in one process, and the parcelport interface is
/// the seam where a real transport would add conversion.

#include <cstdint>
#include <vector>

namespace coal::serialization {

using byte_buffer = std::vector<std::uint8_t>;

}    // namespace coal::serialization
