#pragma once

/// \file wire_message.hpp
/// Iovec-style scatter-gather frame: an ordered chain of `shared_buffer`
/// fragments that together form one wire frame.
///
/// `encode_message` builds frames with it: the 32-byte reliability prefix
/// and the per-parcel headers are *written fresh* into a pooled head slab,
/// while already-serialized parcel argument images are *appended by
/// reference* (refcount bump, no memcpy) — small payloads below
/// `inline_copy_threshold` are inlined into the head slab instead, since
/// for tiny arguments a memcpy is cheaper than carrying a fragment.
///
/// Contiguity is produced exactly once, at the true wire boundary:
///   - `flatten() &&` — destructive; a single-fragment message moves its
///     buffer out with zero copies (the common case: coalesced small
///     parcels all inline into one fragment), a multi-fragment message
///     gather-copies into one pooled slab (counted by the pool);
///   - `flatten_copy()` — non-destructive; always gathers, used for
///     retained retransmit frames whose prefix may be patched again later
///     (the retained fragments must never be shared with the transport).
///
/// Copying a wire_message shares its fragments by refcount (cheap); it is
/// how the retransmission table retains frames and how fault injection
/// duplicates them.  Building (write/append) must finish before a message
/// is copied or sent — fragments are immutable once shared, except for
/// `patch()`, which rewrites bytes inside fragment 0 (the ack/sack seam)
/// and must be externally serialized with any reader (the parcelhandler
/// patches only under its peers lock, before taking the flattened copy).

#include <coal/serialization/buffer.hpp>

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coal::serialization {

class wire_message
{
public:
    /// Payloads at or below this many bytes are memcpy'd into the head
    /// slab by append(); larger ones are carried as fragments.
    static constexpr std::size_t inline_copy_threshold = 512;

    wire_message() = default;

    /// Implicit: a single-fragment message around an existing buffer.
    wire_message(shared_buffer buffer);

    /// Implicit: copies the bytes into one pooled fragment.  Convenience
    /// for tests and examples handing byte_buffer literals to send().
    wire_message(byte_buffer const& bytes);

    wire_message(wire_message const&) = default;
    wire_message(wire_message&&) noexcept = default;
    wire_message& operator=(wire_message const&) = default;
    wire_message& operator=(wire_message&&) noexcept = default;

    /// Append fresh bytes (headers) into the writable head slab.  Opens a
    /// new fragment when the current head is full — never copies existing
    /// fragments.
    void write(void const* bytes, std::size_t count);

    template <typename T>
    void write_value(T const& value)
    {
        write(&value, sizeof(T));
    }

    /// Append an already-serialized image.  Small images are inlined into
    /// the head slab (counted as copied); larger ones become reference
    /// fragments (counted as referenced, zero copy).
    void append(shared_buffer fragment);

    /// Force-append by reference regardless of size (no inlining).
    void append_fragment(shared_buffer fragment);

    [[nodiscard]] std::size_t size() const noexcept
    {
        return size_;
    }

    [[nodiscard]] bool empty() const noexcept
    {
        return size_ == 0;
    }

    [[nodiscard]] std::size_t fragment_count() const noexcept
    {
        return frags_.size();
    }

    [[nodiscard]] shared_buffer const& fragment(std::size_t i) const noexcept
    {
        return frags_[i];
    }

    /// Rewrite bytes at `offset`; the span must lie inside fragment 0
    /// (the frame prefix seam used by patch_frame_acks).  Callers must
    /// serialize patches against concurrent readers of the fragment.
    void patch(std::size_t offset, void const* bytes, std::size_t count);

    /// Contiguous wire image, destructively.  Single-fragment messages
    /// move the buffer out (zero copy); multi-fragment messages gather
    /// into one pooled slab (counted as a flatten by the pool).
    [[nodiscard]] shared_buffer flatten() &&;

    /// Contiguous wire image, non-destructively: always gathers into a
    /// fresh pooled slab (counted), so the result never aliases retained
    /// fragments that may later be patched.
    [[nodiscard]] shared_buffer flatten_copy() const;

    /// Plain gather for tests/diagnostics; bypasses the pool accounting.
    [[nodiscard]] byte_buffer to_vector() const;

private:
    [[nodiscard]] shared_buffer gather() const;
    void open_head(std::size_t at_least);

    std::vector<shared_buffer> frags_;
    std::size_t size_ = 0;
    // Writable head: the slab backing frags_.back() while this message is
    // still being built by write()/inline append().  Null once an append
    // closed it or nothing was written yet.
    detail::slab* head_slab_ = nullptr;
};

}    // namespace coal::serialization
