#include <coal/serialization/wire_message.hpp>

#include <cassert>
#include <cstring>

namespace coal::serialization {

wire_message::wire_message(shared_buffer buffer)
{
    if (!buffer.empty())
    {
        size_ = buffer.size();
        frags_.push_back(std::move(buffer));
    }
}

wire_message::wire_message(byte_buffer const& bytes)
  : wire_message(shared_buffer(bytes))
{
}

void wire_message::open_head(std::size_t at_least)
{
    // Fresh slab, sized for a typical coalesced frame so header writes
    // and small inlined payloads rarely spill into a second fragment.
    std::size_t const want = at_least < 4096 ? 4096 : at_least;
    detail::slab* s = buffer_pool::global().acquire(want);
    frags_.push_back(shared_buffer::adopt(s, s->data(), 0, false));
    head_slab_ = s;
}

void wire_message::write(void const* bytes, std::size_t count)
{
    if (count == 0)
        return;

    if (head_slab_ == nullptr ||
        frags_.back().size() + count > head_slab_->capacity)
    {
        // Close the current head (if any) and open a new one; existing
        // fragments are never copied to grow the frame.
        open_head(count);
    }

    shared_buffer& head = frags_.back();
    std::memcpy(head.data_ + head.size_, bytes, count);
    head.size_ += count;
    size_ += count;
}

void wire_message::append(shared_buffer fragment)
{
    if (fragment.empty())
        return;

    if (fragment.size() <= inline_copy_threshold)
    {
        buffer_pool::global().count_copied(fragment.size());
        std::size_t const n = fragment.size();
        // write() below must not double-count; the copy is accounted here.
        write(fragment.data(), n);
        return;
    }

    append_fragment(std::move(fragment));
}

void wire_message::append_fragment(shared_buffer fragment)
{
    if (fragment.empty())
        return;

    buffer_pool::global().count_referenced(fragment.size());
    size_ += fragment.size();
    frags_.push_back(std::move(fragment));
    head_slab_ = nullptr;    // the head is closed; later writes reopen
}

void wire_message::patch(
    std::size_t offset, void const* bytes, std::size_t count)
{
    assert(!frags_.empty() && offset + count <= frags_[0].size());
    std::memcpy(frags_[0].mutable_data() + offset, bytes, count);
}

shared_buffer wire_message::gather() const
{
    if (size_ == 0)
        return {};

    detail::slab* s = buffer_pool::global().acquire(size_);
    std::uint8_t* out = s->data();
    for (shared_buffer const& frag : frags_)
    {
        std::memcpy(out, frag.data(), frag.size());
        out += frag.size();
    }
    buffer_pool::global().count_flatten(size_);
    return shared_buffer::adopt(s, s->data(), size_, false);
}

shared_buffer wire_message::flatten() &&
{
    if (frags_.size() == 1)
    {
        // The whole frame already lives in one buffer: hand it over by
        // reference.  Zero bytes move — this is the common case (either a
        // coalesced frame whose small parcels all inlined into the head
        // slab, or a standalone buffer wrapped by the implicit ctor).
        shared_buffer out = std::move(frags_[0]);
        frags_.clear();
        size_ = 0;
        head_slab_ = nullptr;
        return out;
    }

    shared_buffer out = gather();
    frags_.clear();
    size_ = 0;
    head_slab_ = nullptr;
    return out;
}

shared_buffer wire_message::flatten_copy() const
{
    return gather();
}

byte_buffer wire_message::to_vector() const
{
    byte_buffer out;
    out.reserve(size_);
    for (shared_buffer const& frag : frags_)
        out.insert(out.end(), frag.begin(), frag.end());
    return out;
}

}    // namespace coal::serialization
