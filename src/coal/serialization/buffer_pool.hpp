#pragma once

/// \file buffer_pool.hpp
/// Thread-safe size-classed slab pool backing `shared_buffer`.
///
/// Every byte that travels through the parcel pipeline lives in a *slab*:
/// a single heap block holding an intrusive atomic reference count followed
/// by the payload storage.  Slabs are acquired from a small set of size
/// classes (256 B .. 1 MiB, geometric); when the last reference to a slab
/// drops, the slab returns to its class's capped free list instead of the
/// heap, so steady-state communication performs no allocations at all.
/// Requests larger than the top class fall back to plain heap slabs (the
/// pool never fails); the fallback is counted so benchmarks can see it.
///
/// The pool also owns the pipeline-wide copy accounting: layers report
/// payload bytes *copied* (memcpy into a frame or out of the wire) versus
/// *referenced* (moved by bumping a refcount), and the one permitted
/// gather-copy at the wire boundary (`wire_message::flatten`) is counted
/// separately.  The `/coal/pool/*` performance counters read these stats.
///
/// Memory-pressure watermarks: the pool tracks the bytes held by *live*
/// slabs (resident_bytes, free-listed slabs excluded) and the subset that
/// came from the counted heap-fallback path, and reports a three-state
/// `pressure()` signal against configurable soft/critical byte watermarks.
/// Admission control in the parcel layer consumes that signal, so the
/// pool itself never fails an `acquire()` — but it reports `critical`
/// slightly *below* the configured ceiling (one headroom's worth, default
/// critical/8) so upstream shedding stops growth before resident bytes
/// ever cross the watermark itself.  The heap-fallback path is capped the
/// same way: crossing `fallback_cap_bytes` forces `critical`, and
/// `try_acquire()` refuses (returns nullptr) instead of allocating an
/// over-cap fallback slab, for callers that can degrade.

#include <coal/common/pressure.hpp>
#include <coal/common/spinlock.hpp>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace coal::serialization {

class buffer_pool;

namespace detail {

/// Header of a pooled (or heap-fallback) allocation.  The payload bytes
/// live immediately after the header in the same allocation.
struct alignas(alignof(std::max_align_t)) slab
{
    std::atomic<std::uint64_t> refs{1};
    std::uint32_t size_class = 0;    ///< index into the pool's classes,
                                     ///< or buffer_pool::heap_class
    std::size_t capacity = 0;        ///< usable payload bytes
    buffer_pool* pool = nullptr;     ///< owner; null for heap fallback

    [[nodiscard]] std::uint8_t* data() noexcept
    {
        return reinterpret_cast<std::uint8_t*>(this) + sizeof(slab);
    }

    [[nodiscard]] std::uint8_t const* data() const noexcept
    {
        return reinterpret_cast<std::uint8_t const*>(this) + sizeof(slab);
    }
};

void slab_add_ref(slab* s) noexcept;

/// Drops one reference; at zero the slab is recycled into its pool's free
/// list (or freed, for heap-fallback slabs / full free lists).
void slab_release(slab* s) noexcept;

}    // namespace detail

/// Snapshot of the pool's monotonic counters plus the outstanding gauge.
struct buffer_pool_stats
{
    std::uint64_t hits = 0;              ///< acquires served from a free list
    std::uint64_t misses = 0;            ///< acquires that had to allocate
    std::uint64_t heap_fallbacks = 0;    ///< acquires above the top class
    std::uint64_t outstanding = 0;       ///< slabs currently alive (gauge)
    std::uint64_t bytes_copied = 0;      ///< payload bytes memcpy'd
    std::uint64_t bytes_referenced = 0;  ///< payload bytes shared by refcount
    std::uint64_t flattens = 0;          ///< wire-boundary gather copies
    std::uint64_t bytes_flattened = 0;   ///< bytes moved by those gathers
    // Memory-pressure watermarks (flow control):
    std::uint64_t resident_bytes = 0;    ///< bytes held by live slabs (gauge)
    std::uint64_t resident_bytes_peak = 0;    ///< high-water mark of the above
    std::uint64_t fallback_bytes = 0;    ///< live heap-fallback bytes (gauge)
    std::uint64_t fallback_bytes_peak = 0;    ///< high-water mark of the above
    std::uint64_t fallback_cap_hits = 0;      ///< try_acquire over-cap refusals
};

class buffer_pool
{
public:
    /// Size classes: 256 B, 1 KiB, 4 KiB, ... 1 MiB (×4 geometric).
    static constexpr std::size_t num_classes = 7;
    static constexpr std::uint32_t heap_class = 0xffffffffu;

    explicit buffer_pool(std::size_t max_free_per_class = 64);
    ~buffer_pool();

    buffer_pool(buffer_pool const&) = delete;
    buffer_pool& operator=(buffer_pool const&) = delete;

    /// The process-wide pool used by archives and wire messages.  Leaked
    /// on purpose: slabs may outlive every static destructor.
    static buffer_pool& global();

    [[nodiscard]] static constexpr std::size_t class_capacity(
        std::size_t cls) noexcept
    {
        return std::size_t(256) << (2 * cls);
    }

    /// A slab with capacity >= min_bytes and refcount 1.  Never fails:
    /// oversized requests come from the heap (counted as a fallback).
    [[nodiscard]] detail::slab* acquire(std::size_t min_bytes);

    /// Like acquire(), but refuses (nullptr) when serving the request
    /// would need a heap-fallback slab that pushes live fallback bytes
    /// past the configured cap.  Pooled size classes always succeed.
    [[nodiscard]] detail::slab* try_acquire(std::size_t min_bytes);

    /// Configure the memory-pressure watermarks (bytes of *live* slab
    /// payload; 0 disables the respective threshold).  pressure() reports
    /// `soft` at soft_bytes, and `critical` one headroom (critical/8)
    /// *below* critical_bytes — so admission control that sheds on
    /// `critical` keeps resident bytes under the configured ceiling —
    /// or whenever live heap-fallback bytes reach fallback_cap_bytes.
    void set_watermarks(std::uint64_t soft_bytes, std::uint64_t critical_bytes,
        std::uint64_t fallback_cap_bytes) noexcept
    {
        soft_watermark_.store(soft_bytes, std::memory_order_relaxed);
        critical_watermark_.store(critical_bytes, std::memory_order_relaxed);
        fallback_cap_.store(fallback_cap_bytes, std::memory_order_relaxed);
    }

    /// Current memory-pressure state against the configured watermarks.
    /// A handful of relaxed atomic loads — cheap enough for per-parcel
    /// admission checks.
    [[nodiscard]] pressure_state pressure() const noexcept
    {
        std::uint64_t const critical =
            critical_watermark_.load(std::memory_order_relaxed);
        std::uint64_t const resident =
            resident_bytes_.load(std::memory_order_relaxed);
        if (critical != 0 && resident + critical / 8 >= critical)
            return pressure_state::critical;
        std::uint64_t const cap = fallback_cap_.load(std::memory_order_relaxed);
        if (cap != 0 &&
            fallback_bytes_.load(std::memory_order_relaxed) >= cap)
            return pressure_state::critical;
        std::uint64_t const soft =
            soft_watermark_.load(std::memory_order_relaxed);
        if (soft != 0 && resident >= soft)
            return pressure_state::soft;
        return pressure_state::ok;
    }

    [[nodiscard]] buffer_pool_stats stats() const;

    /// Slabs currently parked on free lists (test/introspection aid).
    [[nodiscard]] std::size_t cached() const;

    // -- pipeline copy accounting (layers call these at their seams) ------
    void count_copied(std::size_t bytes) noexcept
    {
        bytes_copied_.fetch_add(bytes, std::memory_order_relaxed);
    }

    void count_referenced(std::size_t bytes) noexcept
    {
        bytes_referenced_.fetch_add(bytes, std::memory_order_relaxed);
    }

    void count_flatten(std::size_t bytes) noexcept
    {
        flattens_.fetch_add(1, std::memory_order_relaxed);
        bytes_flattened_.fetch_add(bytes, std::memory_order_relaxed);
    }

private:
    friend void detail::slab_release(detail::slab*) noexcept;

    /// Called by slab_release when the refcount hits zero.
    void recycle(detail::slab* s) noexcept;

    struct size_class_state
    {
        mutable spinlock lock;
        std::vector<detail::slab*> free;
    };

    /// Shared body of acquire()/try_acquire(); `capped` refuses over-cap
    /// heap fallbacks instead of allocating them.
    [[nodiscard]] detail::slab* acquire_impl(std::size_t min_bytes, bool capped);

    /// Bump a relaxed high-water-mark atomic to at least `observed`.
    static void raise_peak(
        std::atomic<std::uint64_t>& peak, std::uint64_t observed) noexcept
    {
        std::uint64_t prev = peak.load(std::memory_order_relaxed);
        while (prev < observed &&
            !peak.compare_exchange_weak(
                prev, observed, std::memory_order_relaxed))
        {
        }
    }

    std::size_t max_free_per_class_;
    size_class_state classes_[num_classes];

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> heap_fallbacks_{0};
    std::atomic<std::int64_t> outstanding_{0};
    std::atomic<std::uint64_t> bytes_copied_{0};
    std::atomic<std::uint64_t> bytes_referenced_{0};
    std::atomic<std::uint64_t> flattens_{0};
    std::atomic<std::uint64_t> bytes_flattened_{0};
    // Watermark state (all byte figures cover *live* slabs only).
    std::atomic<std::uint64_t> resident_bytes_{0};
    std::atomic<std::uint64_t> resident_bytes_peak_{0};
    std::atomic<std::uint64_t> fallback_bytes_{0};
    std::atomic<std::uint64_t> fallback_bytes_peak_{0};
    std::atomic<std::uint64_t> fallback_cap_hits_{0};
    std::atomic<std::uint64_t> soft_watermark_{0};
    std::atomic<std::uint64_t> critical_watermark_{0};
    std::atomic<std::uint64_t> fallback_cap_{0};
};

}    // namespace coal::serialization
