#include <coal/serialization/buffer_pool.hpp>

#include <algorithm>
#include <mutex>
#include <new>

namespace coal::serialization {

namespace detail {

void slab_add_ref(slab* s) noexcept
{
    if (s != nullptr)
        s->refs.fetch_add(1, std::memory_order_relaxed);
}

void slab_release(slab* s) noexcept
{
    if (s == nullptr)
        return;
    if (s->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
        s->pool->recycle(s);
}

namespace {

slab* allocate_slab(
    buffer_pool* pool, std::size_t capacity, std::uint32_t cls)
{
    void* raw = ::operator new(sizeof(slab) + capacity);
    auto* s = new (raw) slab;
    s->size_class = cls;
    s->capacity = capacity;
    s->pool = pool;
    return s;
}

void free_slab(slab* s) noexcept
{
    s->~slab();
    ::operator delete(static_cast<void*>(s));
}

}    // namespace

}    // namespace detail

buffer_pool::buffer_pool(std::size_t max_free_per_class)
  : max_free_per_class_(max_free_per_class)
{
}

buffer_pool::~buffer_pool()
{
    // Only cached (refcount 0) slabs belong to the pool here; any slab
    // still referenced by a live shared_buffer must not outlive the pool.
    // The global() instance is leaked so that can never happen for it.
    for (auto& cls : classes_)
    {
        for (detail::slab* s : cls.free)
            detail::free_slab(s);
    }
}

buffer_pool& buffer_pool::global()
{
    static buffer_pool* pool = new buffer_pool();
    return *pool;
}

detail::slab* buffer_pool::acquire(std::size_t min_bytes)
{
    return acquire_impl(min_bytes, /*capped=*/false);
}

detail::slab* buffer_pool::try_acquire(std::size_t min_bytes)
{
    return acquire_impl(min_bytes, /*capped=*/true);
}

detail::slab* buffer_pool::acquire_impl(std::size_t min_bytes, bool capped)
{
    for (std::size_t cls = 0; cls < num_classes; ++cls)
    {
        if (class_capacity(cls) < min_bytes)
            continue;

        outstanding_.fetch_add(1, std::memory_order_relaxed);
        raise_peak(resident_bytes_peak_,
            resident_bytes_.fetch_add(
                class_capacity(cls), std::memory_order_relaxed) +
                class_capacity(cls));

        {
            std::lock_guard<spinlock> guard(classes_[cls].lock);
            if (!classes_[cls].free.empty())
            {
                detail::slab* s = classes_[cls].free.back();
                classes_[cls].free.pop_back();
                hits_.fetch_add(1, std::memory_order_relaxed);
                s->refs.store(1, std::memory_order_relaxed);
                return s;
            }
        }

        misses_.fetch_add(1, std::memory_order_relaxed);
        return detail::allocate_slab(
            this, class_capacity(cls), static_cast<std::uint32_t>(cls));
    }

    // Larger than the top class: plain heap slab, recycled straight to
    // the heap on release.  `acquire` never fails; `try_acquire` enforces
    // the fallback byte cap here (the only unpooled, otherwise-unbounded
    // allocation path) and reports the refusal instead.
    std::uint64_t const fallback_after =
        fallback_bytes_.fetch_add(min_bytes, std::memory_order_relaxed) +
        min_bytes;
    if (capped)
    {
        std::uint64_t const cap = fallback_cap_.load(std::memory_order_relaxed);
        if (cap != 0 && fallback_after > cap)
        {
            fallback_bytes_.fetch_sub(min_bytes, std::memory_order_relaxed);
            fallback_cap_hits_.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
    }
    raise_peak(fallback_bytes_peak_, fallback_after);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    raise_peak(resident_bytes_peak_,
        resident_bytes_.fetch_add(min_bytes, std::memory_order_relaxed) +
            min_bytes);
    misses_.fetch_add(1, std::memory_order_relaxed);
    heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return detail::allocate_slab(this, min_bytes, heap_class);
}

void buffer_pool::recycle(detail::slab* s) noexcept
{
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    resident_bytes_.fetch_sub(s->capacity, std::memory_order_relaxed);

    if (s->size_class != heap_class)
    {
        size_class_state& cls = classes_[s->size_class];
        std::lock_guard<spinlock> guard(cls.lock);
        if (cls.free.size() < max_free_per_class_)
        {
            cls.free.push_back(s);
            return;
        }
    }
    else
    {
        fallback_bytes_.fetch_sub(s->capacity, std::memory_order_relaxed);
    }
    detail::free_slab(s);
}

buffer_pool_stats buffer_pool::stats() const
{
    buffer_pool_stats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.heap_fallbacks = heap_fallbacks_.load(std::memory_order_relaxed);
    std::int64_t const live = outstanding_.load(std::memory_order_relaxed);
    out.outstanding = live > 0 ? static_cast<std::uint64_t>(live) : 0;
    out.bytes_copied = bytes_copied_.load(std::memory_order_relaxed);
    out.bytes_referenced = bytes_referenced_.load(std::memory_order_relaxed);
    out.flattens = flattens_.load(std::memory_order_relaxed);
    out.bytes_flattened = bytes_flattened_.load(std::memory_order_relaxed);
    out.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
    out.resident_bytes_peak =
        resident_bytes_peak_.load(std::memory_order_relaxed);
    out.fallback_bytes = fallback_bytes_.load(std::memory_order_relaxed);
    out.fallback_bytes_peak =
        fallback_bytes_peak_.load(std::memory_order_relaxed);
    out.fallback_cap_hits = fallback_cap_hits_.load(std::memory_order_relaxed);
    return out;
}

std::size_t buffer_pool::cached() const
{
    std::size_t total = 0;
    for (auto const& cls : classes_)
    {
        std::lock_guard<spinlock> guard(cls.lock);
        total += cls.free.size();
    }
    return total;
}

}    // namespace coal::serialization
