#include <coal/adaptive/adaptive_coalescer.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>

#include <algorithm>
#include <chrono>

namespace coal::adaptive {

adaptive_coalescer::adaptive_coalescer(runtime& rt, tuner_config config)
  : runtime_(rt)
  , config_(std::move(config))
{
    COAL_ASSERT_MSG(!config_.action_name.empty(), "tuner needs an action");
    COAL_ASSERT(config_.min_nparcels >= 1);
    COAL_ASSERT(config_.max_nparcels >= config_.min_nparcels);
    COAL_ASSERT(config_.min_interval_us >= 1);
    COAL_ASSERT(config_.max_interval_us >= config_.min_interval_us);

    auto params =
        rt.get_locality(0u).coalescing().params(config_.action_name);
    COAL_ASSERT_MSG(params.has_value(),
        "coalescing must be enabled for the tuned action before "
        "constructing the adaptive controller");
    base_params_ = *params;
    current_ = std::clamp(
        base_params_.nparcels, config_.min_nparcels, config_.max_nparcels);
    current_interval_ = std::clamp(base_params_.interval_us,
        config_.min_interval_us, config_.max_interval_us);

    overhead_counter_ = rt.counters().get("/threads/background-overhead");
    parcels_counter_ =
        rt.counters().get("/coalescing/count/parcels@" + config_.action_name);
    COAL_ASSERT(overhead_counter_ != nullptr);
    COAL_ASSERT(parcels_counter_ != nullptr);

    // Establish reset baselines so the first tick sees only its window.
    overhead_counter_->reset();
    parcels_counter_->reset();
    last_sample_ns_ = now_ns();
}

adaptive_coalescer::~adaptive_coalescer()
{
    stop();
}

std::size_t adaptive_coalescer::step_nparcels(
    std::size_t n, int direction) const
{
    std::size_t const next = direction > 0 ? n * 2 : n / 2;
    return std::clamp(next, config_.min_nparcels, config_.max_nparcels);
}

std::int64_t adaptive_coalescer::step_interval(
    std::int64_t interval_us, int direction) const
{
    std::int64_t const next =
        direction > 0 ? interval_us * 2 : interval_us / 2;
    return std::clamp(
        next, config_.min_interval_us, config_.max_interval_us);
}

std::pair<std::size_t, std::int64_t> adaptive_coalescer::stepped(
    int direction) const
{
    if (dimension_ == dimension::nparcels)
        return {step_nparcels(current_, direction), current_interval_};
    return {current_, step_interval(current_interval_, direction)};
}

bool adaptive_coalescer::at_bound(int direction) const
{
    auto const [n, interval] = stepped(direction);
    return n == current_ && interval == current_interval_;
}

void adaptive_coalescer::apply(std::size_t n, std::int64_t interval_us)
{
    if (n == current_ && interval_us == current_interval_)
        return;
    coalescing::coalescing_params p = base_params_;
    p.nparcels = n;
    p.interval_us = interval_us;
    // The inter-node tier tracks the tuned base knobs at fixed ratios so
    // hierarchical routing and the hill-climb compose without a second
    // search dimension.
    p.inter_nparcels = std::max<std::size_t>(n,
        static_cast<std::size_t>(
            static_cast<double>(n) * config_.inter_nparcels_factor));
    p.inter_interval_us = std::max<std::int64_t>(interval_us,
        static_cast<std::int64_t>(static_cast<double>(interval_us) *
            config_.inter_interval_factor));
    runtime_.set_coalescing_params(config_.action_name, p);
    current_ = n;
    current_interval_ = interval_us;
    ++decisions_;
}

bool adaptive_coalescer::tick()
{
    std::lock_guard lock(mutex_);
    ++tick_count_;

    std::int64_t const now = now_ns();
    double const window_s =
        static_cast<double>(now - last_sample_ns_) / 1e9;
    last_sample_ns_ = now;

    // Per-window readings (reset-on-read).
    double const overhead = overhead_counter_->value(true).value;
    double const parcels = parcels_counter_->value(true).value;
    double const rate = window_s > 0.0 ? parcels / window_s : 0.0;

    decision_record rec;
    rec.tick = tick_count_;
    rec.nparcels = current_;
    rec.interval_us = current_interval_;
    rec.overhead = overhead;
    rec.parcel_rate = rate;
    rec.next_nparcels = current_;
    rec.next_interval_us = current_interval_;

    // Idle window: no traffic, no decision.  The sparse-traffic bypass in
    // the handler already disables coalescing for us.
    if (parcels < static_cast<double>(config_.min_parcels_per_sample))
    {
        rec.event = "idle";
        history_.push_back(rec);
        return false;
    }

    // Phase-change detection: a large shift in arrival rate means the
    // application entered a different communication regime; previous
    // conclusions no longer apply.
    if (previous_rate_ > 0.0)
    {
        double const ratio = rate > previous_rate_ ?
            rate / previous_rate_ :
            previous_rate_ / rate;
        if (ratio > config_.phase_change_factor && state_ == state::settled)
        {
            state_ = state::warmup;
            dimension_ = dimension::nparcels;
            interval_pass_done_ = false;
            reversed_once_ = false;
            pending_confirmation_ = false;
            direction_ = +1;
            rec.event = "phase-change";
            previous_rate_ = rate;
            history_.push_back(rec);
            return false;
        }
    }
    previous_rate_ = rate;

    bool decided = false;
    switch (state_)
    {
    case state::warmup:
    {
        // Baseline established; start exploring upward (coalescing more
        // is the a-priori promising direction for a busy phase).
        previous_overhead_ = overhead;
        best_overhead_ = overhead;
        best_nparcels_ = current_;
        best_interval_ = current_interval_;
        state_ = state::exploring;
        auto const [n, interval] = stepped(direction_);
        rec.event = "warmup";
        rec.next_nparcels = n;
        rec.next_interval_us = interval;
        decided = n != current_ || interval != current_interval_;
        apply(n, interval);
        break;
    }
    case state::exploring:
    {
        if (overhead < best_overhead_)
        {
            best_overhead_ = overhead;
            best_nparcels_ = current_;
            best_interval_ = current_interval_;
        }

        bool const worsened = overhead >
            previous_overhead_ * (1.0 + config_.improvement_threshold);

        // Noise guard: a single bad window does not justify a reversal.
        // Hold the settings and re-measure; act only if the regression
        // repeats (the paper's counters are per-window samples on a live
        // system — one-off spikes are routine).
        if (worsened && !pending_confirmation_)
        {
            pending_confirmation_ = true;
            rec.event = "confirm";
            history_.push_back(rec);
            return false;    // previous_overhead_ stays as the baseline
        }
        pending_confirmation_ = false;
        previous_overhead_ = overhead;

        auto settle = [&](char const* event) {
            rec.event = event;
            rec.next_nparcels = best_nparcels_;
            rec.next_interval_us = best_interval_;
            decided = best_nparcels_ != current_ ||
                best_interval_ != current_interval_;
            apply(best_nparcels_, best_interval_);

            if (config_.tune_interval && !interval_pass_done_ &&
                dimension_ == dimension::nparcels)
            {
                // Coordinate descent: switch to the wait-time dimension
                // and re-open exploration from the nparcels optimum.
                dimension_ = dimension::interval;
                interval_pass_done_ = true;
                reversed_once_ = false;
                pending_confirmation_ = false;
                direction_ = +1;
                state_ = state::warmup;
            }
            else
            {
                state_ = state::settled;
            }
        };

        if (!worsened && !at_bound(direction_))
        {
            // Keep going while it helps (or is flat) and there is room.
            auto const [n, interval] = stepped(direction_);
            rec.event = "explore";
            rec.next_nparcels = n;
            rec.next_interval_us = interval;
            decided = true;
            apply(n, interval);
        }
        else if (!worsened)
        {
            settle("settle-bound");
        }
        else if (!reversed_once_)
        {
            // Got worse: reverse once and walk back past the best point.
            direction_ = -direction_;
            reversed_once_ = true;
            auto const [n, interval] = stepped(direction_);
            rec.event = "reverse";
            rec.next_nparcels = n;
            rec.next_interval_us = interval;
            decided = n != current_ || interval != current_interval_;
            apply(n, interval);
        }
        else
        {
            // Second reversal would oscillate: settle on the best seen.
            settle("settle");
        }
        break;
    }
    case state::settled:
        rec.event = "hold";
        break;
    }

    history_.push_back(rec);
    return decided;
}

void adaptive_coalescer::start()
{
    bool expected = false;
    if (!running_.compare_exchange_strong(expected, true))
        return;
    thread_ = std::thread([this] {
        while (running_.load(std::memory_order_acquire))
        {
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.sample_interval_us));
            if (!running_.load(std::memory_order_acquire))
                break;
            tick();
        }
    });
}

void adaptive_coalescer::stop()
{
    running_.store(false, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
}

std::size_t adaptive_coalescer::current_nparcels() const
{
    std::lock_guard lock(mutex_);
    return current_;
}

std::int64_t adaptive_coalescer::current_interval_us() const
{
    std::lock_guard lock(mutex_);
    return current_interval_;
}

std::vector<decision_record> adaptive_coalescer::history() const
{
    std::lock_guard lock(mutex_);
    return history_;
}

}    // namespace coal::adaptive
