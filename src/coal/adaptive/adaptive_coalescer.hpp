#pragma once

/// \file adaptive_coalescer.hpp
/// Adaptive tuning of coalescing parameters from the paper's introspection
/// metrics — the capability the paper motivates as its end goal (§I, §V)
/// but leaves as future work ("our aim is to eventually use these metrics
/// to tune, at runtime, parameters relating to active message
/// coalescing").  This module is therefore an *extension* of the paper,
/// built exactly the way §V prescribes:
///
///  - it samples the new intrinsic counters in real time
///    (`/threads/background-overhead` — Eq. 4 — and the per-action
///    coalescing counters), rather than relying on per-iteration timing
///    like Charm++'s PICS, so it works for applications without an
///    iterative structure;
///  - it detects *phase changes* from the parcel arrival rate and
///    re-opens exploration when the communication behaviour shifts;
///  - it hill-climbs `nparcels` in ×2 steps, settling when reversals
///    bracket a minimum of the measured overhead.
///
/// The controller can be pumped manually (`tick()`, deterministic in
/// tests) or run on its own sampling thread (`start()`/`stop()`).

#include <coal/core/coalescing_params.hpp>
#include <coal/perf/counter.hpp>
#include <coal/runtime/runtime.hpp>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace coal::adaptive {

struct tuner_config
{
    std::string action_name;

    /// Sampling period when running threaded (µs).
    std::int64_t sample_interval_us = 50000;

    /// Search bounds for nparcels (inclusive, explored in ×2 steps).
    std::size_t min_nparcels = 1;
    std::size_t max_nparcels = 512;

    /// Relative overhead change required to call a move "worse" (the
    /// hysteresis band).  Each ×2 step changes message counts by 2×, so
    /// genuine effects comfortably clear 10%; smaller values make the
    /// controller jumpy on noisy hosts.
    double improvement_threshold = 0.10;

    /// Ignore samples with fewer parcels than this (idle phases must not
    /// trigger decisions).
    std::uint64_t min_parcels_per_sample = 64;

    /// Relative change in parcel arrival rate that signals a new
    /// application phase and re-opens exploration.
    double phase_change_factor = 3.0;

    /// Also tune the flush wait time after nparcels settles (coordinate
    /// descent over the paper's full parameter space, §VI's "broad set
    /// of messaging parameters").
    bool tune_interval = false;
    std::int64_t min_interval_us = 500;
    std::int64_t max_interval_us = 16000;

    /// Hierarchical routing: the inter-node (node-pair) tier follows the
    /// tuned base knobs at these fixed ratios — the controller climbs one
    /// surface and both tiers move together, instead of doubling the
    /// search space.
    double inter_nparcels_factor = 8.0;
    double inter_interval_factor = 1.0;
};

/// One controller observation/decision, for analysis and the bench.
struct decision_record
{
    std::uint64_t tick = 0;
    std::size_t nparcels = 0;          ///< value that produced this sample
    std::int64_t interval_us = 0;      ///< wait time during the sample
    double overhead = 0.0;             ///< Eq. 4 over the sample window
    double parcel_rate = 0.0;          ///< parcels/s over the window
    std::size_t next_nparcels = 0;     ///< value chosen for the next window
    std::int64_t next_interval_us = 0;
    char const* event = "";            ///< "explore", "reverse", "settle", ...
};

class adaptive_coalescer
{
public:
    adaptive_coalescer(runtime& rt, tuner_config config);
    ~adaptive_coalescer();

    adaptive_coalescer(adaptive_coalescer const&) = delete;
    adaptive_coalescer& operator=(adaptive_coalescer const&) = delete;

    /// Take one sample and possibly adjust nparcels.  Returns true if a
    /// decision (parameter change) was made.
    bool tick();

    /// Run tick() on a dedicated thread every sample_interval_us.
    void start();
    void stop();

    [[nodiscard]] std::size_t current_nparcels() const;
    [[nodiscard]] std::int64_t current_interval_us() const;

    /// True once exploration bracketed a minimum (until a phase change).
    [[nodiscard]] bool converged() const noexcept
    {
        return state_ == state::settled;
    }

    /// Number of parameter *changes* made so far (the PICS comparison:
    /// their controller converged in 5 decisions).
    [[nodiscard]] std::uint64_t decisions() const noexcept
    {
        return decisions_;
    }

    [[nodiscard]] std::vector<decision_record> history() const;

private:
    enum class state
    {
        warmup,       ///< first usable sample establishes the baseline
        exploring,    ///< moving in `direction_` while overhead improves
        settled,      ///< minimum bracketed; holding
    };

    /// Coordinate-descent dimension currently being explored.
    enum class dimension
    {
        nparcels,
        interval,
    };

    void apply(std::size_t n, std::int64_t interval_us);
    [[nodiscard]] std::size_t step_nparcels(
        std::size_t n, int direction) const;
    [[nodiscard]] std::int64_t step_interval(
        std::int64_t interval_us, int direction) const;

    /// Current value of the active dimension / step along it (as a pair
    /// of candidate settings).
    [[nodiscard]] std::pair<std::size_t, std::int64_t> stepped(
        int direction) const;
    [[nodiscard]] bool at_bound(int direction) const;

    runtime& runtime_;
    tuner_config config_;
    coalescing::coalescing_params base_params_;

    perf::counter_ptr overhead_counter_;
    perf::counter_ptr parcels_counter_;

    mutable std::mutex mutex_;
    std::vector<decision_record> history_;

    state state_ = state::warmup;
    dimension dimension_ = dimension::nparcels;
    bool interval_pass_done_ = false;
    int direction_ = +1;
    bool reversed_once_ = false;
    bool pending_confirmation_ = false;
    std::size_t current_ = 0;
    std::int64_t current_interval_ = 0;
    double previous_overhead_ = 0.0;
    double previous_rate_ = -1.0;
    double best_overhead_ = 0.0;
    std::size_t best_nparcels_ = 0;
    std::int64_t best_interval_ = 0;
    std::uint64_t tick_count_ = 0;
    std::uint64_t decisions_ = 0;
    std::int64_t last_sample_ns_ = 0;

    std::atomic<bool> running_{false};
    std::thread thread_;
};

}    // namespace coal::adaptive
