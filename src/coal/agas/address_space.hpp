#pragma once

/// \file address_space.hpp
/// The Active Global Address Space service shared by all localities of a
/// runtime.  Responsibilities (mirroring HPX's AGAS at the scale this
/// reproduction needs):
///
///  - locality registration and enumeration,
///  - gid allocation (per-locality sequence counters),
///  - gid -> owner-locality resolution, including migration,
///  - a symbolic name service (string -> gid),
///  - a per-locality component-instance table for typed objects.
///
/// One process hosts all localities, so the service is a concurrent
/// shared object; in a real distributed runtime each method would be a
/// (potentially remote) AGAS action — the interface is shaped so that
/// seam is preserved.

#include <coal/agas/gid.hpp>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

namespace coal::agas {

class address_space
{
public:
    explicit address_space(std::uint32_t num_localities);

    [[nodiscard]] std::uint32_t num_localities() const noexcept
    {
        return num_localities_;
    }

    [[nodiscard]] std::vector<locality_id> all_localities() const;

    /// Every locality except `here` — HPX's find_remote_localities().
    [[nodiscard]] std::vector<locality_id> remote_localities(
        locality_id here) const;

    [[nodiscard]] bool is_valid(locality_id id) const noexcept
    {
        return id.valid() && id.value() < num_localities_;
    }

    /// Allocate a fresh gid homed at `owner`.
    gid allocate(locality_id owner);

    /// Current owner of a gid.  Unmigrated gids resolve from their bits
    /// without a table lookup (the common case, as in HPX's AGAS cache).
    [[nodiscard]] std::optional<locality_id> resolve(gid id) const;

    /// Re-home a gid (object migration).  Returns false for invalid args.
    bool migrate(gid id, locality_id new_owner);

    // --- symbolic names -----------------------------------------------

    /// Associate a (unique) name with a gid; false if taken.
    bool register_name(std::string name, gid id);

    [[nodiscard]] std::optional<gid> resolve_name(
        std::string const& name) const;

    bool unregister_name(std::string const& name);

    // --- component instances ------------------------------------------

    /// Store a typed object under a fresh gid homed at `owner`.
    template <typename T>
    gid bind(locality_id owner, std::shared_ptr<T> object)
    {
        gid const id = allocate(owner);
        std::lock_guard lock(mutex_);
        components_.insert_or_assign(id,
            component_entry{std::type_index(typeid(T)),
                std::shared_ptr<void>(std::move(object))});
        return id;
    }

    /// Retrieve a typed object; nullptr on unknown gid or type mismatch.
    template <typename T>
    [[nodiscard]] std::shared_ptr<T> find(gid id) const
    {
        std::lock_guard lock(mutex_);
        auto it = components_.find(id);
        if (it == components_.end())
            return nullptr;
        if (it->second.type != std::type_index(typeid(T)))
            return nullptr;
        return std::static_pointer_cast<T>(it->second.object);
    }

    /// Type-erased lookup used by the component-action machinery: the
    /// caller supplies the expected type; nullptr on unknown gid or
    /// type mismatch.
    [[nodiscard]] std::shared_ptr<void> find_erased(
        gid id, std::type_index expected) const;

    /// Remove an object binding; false if the gid was not bound.
    bool unbind(gid id);

    [[nodiscard]] std::size_t component_count() const;

private:
    struct component_entry
    {
        std::type_index type;
        std::shared_ptr<void> object;
    };

    std::uint32_t num_localities_;
    std::vector<std::atomic<std::uint64_t>> sequence_;

    mutable std::mutex mutex_;
    std::unordered_map<gid, locality_id> migrated_;
    std::map<std::string, gid> names_;
    std::unordered_map<gid, component_entry> components_;
};

}    // namespace coal::agas
