#pragma once

/// \file gid.hpp
/// Global identifiers — the coal analogue of HPX's AGAS GIDs.
///
/// A locality is the abstraction of a physical node (here: an in-process
/// node with its own scheduler and parcelport).  A gid names any globally
/// addressable object: the top 16 bits carry the locality that allocated
/// it, the low 48 bits a per-locality sequence number.  Resolution of a
/// gid to its (current) owner goes through agas::address_space, which
/// also supports migration (re-homing a gid), preserving the paper's
/// claim that an object's GID survives moves between nodes.

#include <coal/serialization/archive.hpp>

#include <cstdint>
#include <functional>

namespace coal::agas {

/// Identifies a locality (node).  Strong type to keep locality indices
/// from mixing with other integers in parcel headers.
class locality_id
{
public:
    constexpr locality_id() = default;

    constexpr explicit locality_id(std::uint32_t value) noexcept
      : value_(value)
    {
    }

    [[nodiscard]] constexpr std::uint32_t value() const noexcept
    {
        return value_;
    }

    friend constexpr auto operator<=>(locality_id, locality_id) = default;

    /// The conventional root locality (where `main`-like setup runs).
    static constexpr locality_id root() noexcept
    {
        return locality_id{0};
    }

    static constexpr locality_id invalid() noexcept
    {
        return locality_id{0xffffffffu};
    }

    [[nodiscard]] constexpr bool valid() const noexcept
    {
        return value_ != 0xffffffffu;
    }

    template <typename Archive>
    void serialize(Archive& ar)
    {
        ar & value_;
    }

private:
    std::uint32_t value_ = 0xffffffffu;
};

/// Global identifier of an object.
class gid
{
public:
    static constexpr unsigned locality_bits = 16;
    static constexpr unsigned sequence_bits = 48;
    static constexpr std::uint64_t sequence_mask =
        (std::uint64_t{1} << sequence_bits) - 1;

    constexpr gid() = default;

    constexpr gid(locality_id origin, std::uint64_t sequence) noexcept
      : raw_((static_cast<std::uint64_t>(origin.value()) << sequence_bits) |
            (sequence & sequence_mask))
    {
    }

    constexpr explicit gid(std::uint64_t raw) noexcept
      : raw_(raw)
    {
    }

    [[nodiscard]] constexpr std::uint64_t raw() const noexcept
    {
        return raw_;
    }

    /// Locality that allocated this gid (not necessarily the current
    /// owner once the object migrated — resolve through address_space).
    [[nodiscard]] constexpr locality_id origin() const noexcept
    {
        return locality_id{static_cast<std::uint32_t>(raw_ >> sequence_bits)};
    }

    [[nodiscard]] constexpr std::uint64_t sequence() const noexcept
    {
        return raw_ & sequence_mask;
    }

    [[nodiscard]] constexpr bool valid() const noexcept
    {
        return raw_ != 0;
    }

    friend constexpr auto operator<=>(gid, gid) = default;

    template <typename Archive>
    void serialize(Archive& ar)
    {
        ar & raw_;
    }

private:
    std::uint64_t raw_ = 0;
};

}    // namespace coal::agas

template <>
struct std::hash<coal::agas::locality_id>
{
    std::size_t operator()(coal::agas::locality_id id) const noexcept
    {
        return std::hash<std::uint32_t>{}(id.value());
    }
};

template <>
struct std::hash<coal::agas::gid>
{
    std::size_t operator()(coal::agas::gid g) const noexcept
    {
        return std::hash<std::uint64_t>{}(g.raw());
    }
};
