#include <coal/agas/address_space.hpp>

#include <coal/common/assert.hpp>

namespace coal::agas {

address_space::address_space(std::uint32_t num_localities)
  : num_localities_(num_localities)
  , sequence_(num_localities)
{
    COAL_ASSERT_MSG(num_localities > 0, "need at least one locality");
    COAL_ASSERT_MSG(num_localities < (1u << gid::locality_bits),
        "locality count exceeds gid locality field");
    for (auto& s : sequence_)
        s.store(0, std::memory_order_relaxed);
}

std::vector<locality_id> address_space::all_localities() const
{
    std::vector<locality_id> out;
    out.reserve(num_localities_);
    for (std::uint32_t i = 0; i != num_localities_; ++i)
        out.emplace_back(i);
    return out;
}

std::vector<locality_id> address_space::remote_localities(
    locality_id here) const
{
    std::vector<locality_id> out;
    out.reserve(num_localities_ > 0 ? num_localities_ - 1 : 0);
    for (std::uint32_t i = 0; i != num_localities_; ++i)
    {
        if (i != here.value())
            out.emplace_back(i);
    }
    return out;
}

gid address_space::allocate(locality_id owner)
{
    COAL_ASSERT(is_valid(owner));
    // Sequence numbers start at 1 so that gid{} (raw 0) stays invalid.
    std::uint64_t const seq =
        sequence_[owner.value()].fetch_add(1, std::memory_order_relaxed) + 1;
    COAL_ASSERT_MSG(seq <= gid::sequence_mask, "gid sequence exhausted");
    return gid{owner, seq};
}

std::optional<locality_id> address_space::resolve(gid id) const
{
    if (!id.valid())
        return std::nullopt;
    {
        std::lock_guard lock(mutex_);
        if (auto it = migrated_.find(id); it != migrated_.end())
            return it->second;
    }
    locality_id const origin = id.origin();
    if (!is_valid(origin))
        return std::nullopt;
    return origin;
}

bool address_space::migrate(gid id, locality_id new_owner)
{
    if (!id.valid() || !is_valid(new_owner))
        return false;
    std::lock_guard lock(mutex_);
    if (new_owner == id.origin())
        migrated_.erase(id);    // back home: drop the override entry
    else
        migrated_[id] = new_owner;
    return true;
}

bool address_space::register_name(std::string name, gid id)
{
    if (name.empty() || !id.valid())
        return false;
    std::lock_guard lock(mutex_);
    return names_.emplace(std::move(name), id).second;
}

std::optional<gid> address_space::resolve_name(std::string const& name) const
{
    std::lock_guard lock(mutex_);
    auto it = names_.find(name);
    if (it == names_.end())
        return std::nullopt;
    return it->second;
}

bool address_space::unregister_name(std::string const& name)
{
    std::lock_guard lock(mutex_);
    return names_.erase(name) != 0;
}

std::shared_ptr<void> address_space::find_erased(
    gid id, std::type_index expected) const
{
    std::lock_guard lock(mutex_);
    auto it = components_.find(id);
    if (it == components_.end() || it->second.type != expected)
        return nullptr;
    return it->second.object;
}

bool address_space::unbind(gid id)
{
    std::lock_guard lock(mutex_);
    return components_.erase(id) != 0;
}

std::size_t address_space::component_count() const
{
    std::lock_guard lock(mutex_);
    return components_.size();
}

}    // namespace coal::agas
