#pragma once

/// \file faulty_transport.hpp
/// Fault-injecting decorator over any transport.
///
/// Wraps an inner transport (sim_network, loopback, ...) and perturbs
/// traffic according to a seeded, deterministic `fault_plan`: per-link
/// drop probability, duplication, reordering, and timed link blackouts.
/// Faults are decided by hashing (seed, link, per-link message ordinal),
/// so the fault pattern for a given traffic sequence is reproducible
/// across runs and independent of thread interleavings on other links.
///
/// Reordering is modeled without an extra thread: a reorder-rolled
/// message is parked in a one-deep per-link slot and released right
/// *after* the next delivery on that link (a pairwise swap).  A parked
/// message therefore never starves as long as traffic flows; drain()
/// flushes parked messages, shutdown() drops them (counted).
///
/// The decorator extends transport_stats with drops_injected /
/// duplicates_injected so benches and counters can tell injected loss
/// from organic loss.

#include <coal/net/transport.hpp>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace coal {
class config;
}

namespace coal::net {

/// Per-directed-link drop-rate override.
struct link_fault
{
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    double drop_probability = 0.0;
};

/// A timed window during which every message on the matching link(s) is
/// dropped.  Times are µs relative to faulty_transport construction.
/// `any_locality` in src/dst acts as a wildcard, so a single entry can
/// express a full partition.
struct blackout_window
{
    static constexpr std::uint32_t any_locality = 0xffffffffu;

    std::uint32_t src = any_locality;
    std::uint32_t dst = any_locality;
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;

    [[nodiscard]] bool matches(
        std::uint32_t s, std::uint32_t d, std::int64_t t_us) const noexcept
    {
        return (src == any_locality || src == s) &&
            (dst == any_locality || dst == d) && t_us >= start_us &&
            t_us < end_us;
    }
};

/// Deterministic fault schedule.  All probabilities are in [0, 1].
struct fault_plan
{
    std::uint64_t seed = 0x5eedf001u;
    double drop_probability = 0.0;
    double duplicate_probability = 0.0;
    double reorder_probability = 0.0;
    std::vector<link_fault> link_overrides;    ///< replace the global drop rate
    std::vector<blackout_window> blackouts;

    /// True when any fault can ever fire.
    [[nodiscard]] bool active() const noexcept;

    /// Effective drop probability for a directed link.
    [[nodiscard]] double drop_for(
        std::uint32_t src, std::uint32_t dst) const noexcept;

    /// Read `fault.*` keys: fault.seed, fault.drop, fault.duplicate,
    /// fault.reorder, and one optional blackout via fault.blackout.start_us
    /// / fault.blackout.end_us / fault.blackout.src / fault.blackout.dst.
    [[nodiscard]] static fault_plan from_config(config const& cfg);

    /// Reproducibility hook shared by every fault/chaos schedule: returns
    /// the `COAL_FAULT_SEED` environment override when set (so a flaky
    /// run's logged seed can be replayed exactly), `fallback` otherwise.
    [[nodiscard]] static std::uint64_t resolve_seed(
        std::uint64_t fallback) noexcept;
};

class faulty_transport final : public transport
{
public:
    /// Owning: the decorator manages the inner transport's lifetime.
    faulty_transport(std::unique_ptr<transport> inner, fault_plan plan);

    /// Non-owning: caller keeps the inner transport alive.
    faulty_transport(transport& inner, fault_plan plan);

    ~faulty_transport() override;

    faulty_transport(faulty_transport const&) = delete;
    faulty_transport& operator=(faulty_transport const&) = delete;

    void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) override;

    void send(std::uint32_t src, std::uint32_t dst,
        serialization::wire_message&& message) override;

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return inner_->recv_overhead_us();
    }

    [[nodiscard]] double link_recv_overhead_us(
        std::uint32_t src, std::uint32_t dst) const noexcept override
    {
        return inner_->link_recv_overhead_us(src, dst);
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return inner_->in_flight() +
            held_count_.load(std::memory_order_acquire);
    }

    void drain() override;

    [[nodiscard]] transport_stats stats() const override;

    [[nodiscard]] fault_plan const& plan() const noexcept
    {
        return plan_;
    }

    void shutdown() override;

    /// Chaos API: while a locality is down the decorator drops every
    /// message to or from it — outbound in send(), inbound in the inner
    /// transport's delivery callback, and anything reorder-parked on its
    /// links — so the chaos API works over *any* inner transport.  Also
    /// forwarded to the inner transport when it implements the API
    /// (sim_network purges its wire heap too).
    bool set_locality_down(std::uint32_t locality, bool down) override;

private:
    void on_deliver(std::uint32_t src, std::uint32_t dst,
        serialization::shared_buffer&& buffer);

    /// Release every parked message to its handler.  Returns how many.
    std::size_t release_held();

    [[nodiscard]] static std::uint64_t link_key(
        std::uint32_t src, std::uint32_t dst) noexcept
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    struct held_message
    {
        std::uint32_t src;
        serialization::shared_buffer payload;
    };

    std::unique_ptr<transport> owned_;
    transport* inner_;
    fault_plan plan_;
    std::int64_t const epoch_ns_;    ///< blackout windows are relative to this

    mutable std::mutex mutex_;
    std::unordered_map<std::uint32_t, delivery_handler> handlers_;
    std::unordered_map<std::uint64_t, std::uint64_t> send_ordinal_;
    std::unordered_map<std::uint64_t, std::uint64_t> recv_ordinal_;
    std::unordered_map<std::uint64_t, held_message> held_;
    std::vector<char> down_;    // chaos API: crashed localities (grown lazily)
    bool stopped_ = false;

    [[nodiscard]] bool is_down(std::uint32_t locality) const noexcept
    {
        return locality < down_.size() && down_[locality] != 0;
    }

    std::atomic<std::uint64_t> held_count_{0};
    std::atomic<std::uint64_t> messages_sent_{0};
    std::atomic<std::uint64_t> bytes_sent_{0};
    std::atomic<std::uint64_t> messages_delivered_{0};
    std::atomic<std::uint64_t> bytes_delivered_{0};
    std::atomic<std::uint64_t> messages_dropped_{0};
    std::atomic<std::uint64_t> drops_injected_{0};
    std::atomic<std::uint64_t> duplicates_injected_{0};
};

}    // namespace coal::net
