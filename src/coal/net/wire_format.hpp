#pragma once

/// \file wire_format.hpp
/// Length-prefixed, CRC32C-protected framing for the real (socket)
/// parcelport.
///
/// A stream between two processes is a sequence of frames:
///
///     [ 32-byte header | payload (payload_len bytes) ]
///
/// with the header laid out as (little-endian, packed):
///
///     u32 magic        'C' 'O' 'A' 'W'  (0x57414f43)
///     u8  version      wire_version
///     u8  kind         frame_kind
///     u16 flags        reserved, must be 0
///     u32 src          source locality id
///     u32 dst          destination locality id
///     u32 payload_len  bytes following the header (<= frame cap)
///     u32 payload_crc  CRC32C of the payload bytes
///     u32 seq          per-connection frame ordinal (diagnostics only)
///     u32 header_crc   CRC32C of the preceding 28 header bytes
///
/// Integrity policy (the containment contract the fuzz tests assert):
///
///  - `header_crc` is validated *before* `payload_len` is trusted, so a
///    corrupted length can never trigger an allocation — the decoder
///    allocates the payload buffer only for a header that passed its CRC
///    and whose length is within the configured cap.
///  - A bad magic, bad header CRC, nonzero flags, wrong version or
///    oversized length means the byte stream itself is unsynchronized
///    (stream framing is lost, not just one frame): the decoder reports a
///    *fatal* error and the connection must be dropped and re-established.
///    The reliability layer retransmits whatever was in flight.
///  - A bad `payload_crc` damages exactly one frame; the stream remains
///    aligned.  The frame is dropped and counted, never delivered.
///  - Truncation (EOF mid-frame) surfaces as `finish()` reporting the
///    partial frame; partial bytes are discarded and counted.
///
/// Decoded frames are handed out as zero-copy views: the decoder reads
/// straight into a pooled `shared_buffer` per frame and the delivery
/// callback receives that buffer (no post-decode copy).

#include <coal/serialization/buffer.hpp>

#include <cstddef>
#include <cstdint>
#include <functional>

namespace coal::net::wire {

inline constexpr std::uint32_t frame_magic = 0x57414f43u;    // "COAW"
inline constexpr std::uint8_t wire_version = 1;
inline constexpr std::size_t header_size = 32;

/// Frames a parcelport exchanges.  `data` carries a parcel-layer wire
/// message; the others are the socket-level control plane (bootstrap
/// handshake, distributed barrier, graceful close).
enum class frame_kind : std::uint8_t
{
    data = 1,
    hello = 2,            ///< bootstrap: version/digest/rank exchange
    barrier_enter = 3,    ///< rank -> coordinator
    barrier_release = 4,    ///< coordinator -> rank
    goodbye = 5,            ///< graceful shutdown (vs. a crash's RST/EOF)
};

/// CRC32C (Castagnoli), bit-reflected, init/final-xor 0xffffffff — the
/// polynomial iSCSI/ext4 use and SSE4.2 accelerates.  Software
/// slice-by-one implementation; fast enough for the test-scale wire.
[[nodiscard]] std::uint32_t crc32c(
    void const* data, std::size_t size, std::uint32_t seed = 0) noexcept;

/// In-memory (host-order) frame header.  The wire layout matches the
/// packed description above; encode/decode go through explicit
/// little-endian serialization, so the format is stable across hosts.
struct frame_header
{
    std::uint8_t kind = 0;
    std::uint16_t flags = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t payload_len = 0;
    std::uint32_t payload_crc = 0;
    std::uint32_t seq = 0;
};

/// Serialize a header (computing both CRCs) into `out[header_size]`.
void encode_header(frame_header const& h, std::uint8_t* out) noexcept;

/// Why a fed byte sequence was rejected.
enum class decode_error : std::uint8_t
{
    bad_magic,         ///< fatal: stream unsynchronized
    bad_version,       ///< fatal: peer speaks a different wire revision
    bad_flags,         ///< fatal: reserved flags set (header corrupt)
    bad_header_crc,    ///< fatal: header bytes damaged
    oversized,         ///< fatal: length field exceeds the frame cap
    bad_payload_crc,    ///< recoverable: one frame damaged, stream aligned
    truncated,          ///< connection ended mid-frame
};

[[nodiscard]] char const* to_string(decode_error e) noexcept;

/// Running totals a decoder keeps (feeds the /net/wire counters).
struct decoder_stats
{
    std::uint64_t frames = 0;
    std::uint64_t bytes = 0;
    std::uint64_t crc_drops = 0;      ///< payload-CRC frame drops
    std::uint64_t fatal_errors = 0;    ///< desync errors (connection dropped)
    std::uint64_t oversized_drops = 0;
    std::uint64_t truncated_drops = 0;
};

/// Incremental frame decoder for one byte stream (one connection).
///
/// feed() consumes an arbitrary chunk of received bytes, invoking
/// `on_frame(header, payload)` for every complete, CRC-verified frame.
/// Errors are reported through `on_error`; after a *fatal* error the
/// decoder refuses further input until reset() (the caller is expected to
/// drop the connection, so a fresh connection gets a fresh decoder).
///
/// Memory containment: buffered state never exceeds `header_size +
/// max_frame_bytes`, and no payload allocation happens before the header
/// CRC validates the length field.  No exception escapes feed().
class frame_decoder
{
public:
    using frame_handler =
        std::function<void(frame_header const&, serialization::shared_buffer&&)>;
    using error_handler = std::function<void(decode_error)>;

    explicit frame_decoder(std::size_t max_frame_bytes,
        frame_handler on_frame, error_handler on_error = {});

    /// Consume `size` bytes of stream.  Returns false after a fatal
    /// error (caller should close the connection).
    bool feed(void const* data, std::size_t size) noexcept;

    /// Signal end-of-stream: a partially-buffered frame is reported as
    /// `truncated` and discarded.
    void finish() noexcept;

    /// Forget all buffered state (new connection, same counters).
    void reset() noexcept;

    [[nodiscard]] bool failed() const noexcept
    {
        return failed_;
    }

    /// Bytes currently buffered (bounded by header_size + cap).
    [[nodiscard]] std::size_t buffered_bytes() const noexcept
    {
        return have_;
    }

    [[nodiscard]] decoder_stats const& stats() const noexcept
    {
        return stats_;
    }

    [[nodiscard]] std::size_t max_frame_bytes() const noexcept
    {
        return max_frame_bytes_;
    }

private:
    [[nodiscard]] bool parse_header() noexcept;

    std::size_t max_frame_bytes_;
    frame_handler on_frame_;
    error_handler on_error_;

    // Decode state machine: accumulate header_size bytes into header_,
    // validate, then accumulate payload_len bytes into payload_.
    std::uint8_t header_[header_size];
    frame_header current_{};
    serialization::shared_buffer payload_;    // allocated post-validation
    std::size_t have_ = 0;     // bytes buffered for the current stage
    bool in_payload_ = false;
    bool failed_ = false;

    decoder_stats stats_;
};

}    // namespace coal::net::wire
