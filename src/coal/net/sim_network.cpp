#include <coal/net/sim_network.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/timing/busy_work.hpp>

#include <algorithm>
#include <chrono>

namespace coal::net {

sim_network::sim_network(std::uint32_t num_localities, cost_model model)
  : sim_network(topology{num_localities, 1}, model, model)
{
}

sim_network::sim_network(topology topo, cost_model inter, cost_model intra)
  : num_localities_(topo.num_localities)
  , topo_(topo)
  , model_(inter)
  , intra_model_(intra)
  , handlers_(topo.num_localities)
  , link_free_ns_(
        static_cast<std::size_t>(topo.num_localities) * topo.num_localities, 0)
  , link_stats_(
        static_cast<std::size_t>(topo.num_localities) * topo.num_localities)
  , down_(topo.num_localities, 0)
{
    COAL_ASSERT(num_localities_ > 0);
    delivery_thread_ = std::thread([this] { delivery_loop(); });
}

sim_network::~sim_network()
{
    shutdown();
}

void sim_network::set_delivery_handler(
    std::uint32_t dst, delivery_handler handler)
{
    COAL_ASSERT(dst < num_localities_);
    std::lock_guard lock(mutex_);
    handlers_[dst] = std::move(handler);
}

void sim_network::send(std::uint32_t src, std::uint32_t dst,
    serialization::wire_message&& message)
{
    COAL_ASSERT(src < num_localities_ && dst < num_localities_);

    std::size_t const bytes = message.size();

    // The wire is contiguous: flatten the fragment chain exactly here, at
    // the transport boundary.  Single-fragment messages move their buffer
    // out (zero copy); real gathers are counted by the buffer pool.
    serialization::shared_buffer buffer = std::move(message).flatten();

    // Sender-side CPU cost: burned *here*, on the caller's thread, which
    // is the background-work context of the sending locality.  This is
    // the per-message overhead that parcel coalescing amortizes.  The
    // link's tier picks which cost model prices the message.
    cost_model const& model = model_for(src, dst);
    timing::spin_for_us(model.sender_cpu_us(bytes));

    std::int64_t const now = now_ns();
    auto const transmit_ns =
        static_cast<std::int64_t>(model.transmit_us(bytes) * 1000.0);
    auto const latency_ns =
        static_cast<std::int64_t>(model.wire_latency_us * 1000.0);

    {
        std::lock_guard lock(mutex_);
        if (stopping_ || down_[src] != 0 || down_[dst] != 0)
        {
            // Shutdown races and crashed endpoints drop the message by
            // design — but the drop must be visible:
            // sent == delivered + dropped at quiescence.
            messages_sent_.fetch_add(1, std::memory_order_relaxed);
            bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }

        // Serialize the directed link: transmission begins when the
        // previous message's tail has left the wire.
        auto& link_free = link_free_ns_[link_index(src, dst)];
        std::int64_t const start = std::max(now, link_free);
        std::int64_t const done = start + transmit_ns;
        link_free = done;

        pending_message msg;
        msg.due_ns = done + latency_ns;
        msg.seq = next_seq_++;
        msg.src = src;
        msg.dst = dst;
        msg.payload = std::move(buffer);

        auto& ls = link_stats_[link_index(src, dst)];
        ls.messages += 1;
        ls.bytes += bytes;
        auto& ts =
            tier_stats_[static_cast<std::size_t>(topo_.tier_of(src, dst))];
        ts.messages += 1;
        ts.bytes += bytes;

        heap_.push(std::move(msg));
        in_flight_.fetch_add(1, std::memory_order_acq_rel);
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    cv_.notify_one();
}

void sim_network::delivery_loop()
{
    std::unique_lock lock(mutex_);
    for (;;)
    {
        if (stopping_)
            return;

        if (heap_.empty())
        {
            cv_.wait(lock, [&] { return stopping_ || !heap_.empty(); });
            continue;
        }

        std::int64_t const due = heap_.top().due_ns;
        std::int64_t const now = now_ns();
        if (due > now)
        {
            cv_.wait_for(lock, std::chrono::nanoseconds(due - now));
            continue;
        }

        // Deliver: detach the message and call the handler unlocked.
        pending_message msg = std::move(
            const_cast<pending_message&>(heap_.top()));
        heap_.pop();

        bool const crashed = down_[msg.src] != 0 || down_[msg.dst] != 0;
        delivery_handler handler = crashed ? nullptr : handlers_[msg.dst];
        lock.unlock();

        std::size_t const bytes = msg.payload.size();
        if (handler)
        {
            handler(msg.src, std::move(msg.payload));
            messages_delivered_.fetch_add(1, std::memory_order_relaxed);
            bytes_delivered_.fetch_add(bytes, std::memory_order_relaxed);
        }
        else
        {
            if (!crashed)
                COAL_LOG_WARN("net", "dropping message to locality %u "
                                     "(no delivery handler)",
                    msg.dst);
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        }

        if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1)
            drain_cv_.notify_all();

        lock.lock();
    }
}

void sim_network::drain()
{
    std::unique_lock lock(drain_mutex_);
    while (in_flight_.load(std::memory_order_acquire) != 0)
        drain_cv_.wait_for(lock, std::chrono::milliseconds(1));
}

transport_stats sim_network::stats() const
{
    transport_stats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.messages_delivered =
        messages_delivered_.load(std::memory_order_relaxed);
    s.bytes_delivered = bytes_delivered_.load(std::memory_order_relaxed);
    s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
    return s;
}

link_stats sim_network::link(std::uint32_t src, std::uint32_t dst) const
{
    COAL_ASSERT(src < num_localities_ && dst < num_localities_);
    std::lock_guard lock(mutex_);
    return link_stats_[link_index(src, dst)];
}

link_stats sim_network::tier_totals(link_tier tier) const
{
    std::lock_guard lock(mutex_);
    return tier_stats_[static_cast<std::size_t>(tier)];
}

bool sim_network::set_locality_down(std::uint32_t locality, bool down)
{
    COAL_ASSERT(locality < num_localities_);
    std::size_t purged = 0;
    {
        std::lock_guard lock(mutex_);
        down_[locality] = down ? 1 : 0;
        if (down)
        {
            // In-flight messages to or from the crashed locality vanish
            // with it.  Rebuild the heap without them; the drops stay
            // visible so sent == delivered + dropped keeps holding.
            std::vector<pending_message> keep;
            keep.reserve(heap_.size());
            while (!heap_.empty())
            {
                pending_message msg =
                    std::move(const_cast<pending_message&>(heap_.top()));
                heap_.pop();
                if (msg.src == locality || msg.dst == locality)
                    ++purged;
                else
                    keep.push_back(std::move(msg));
            }
            for (auto& msg : keep)
                heap_.push(std::move(msg));
        }
        else
        {
            // The restarted incarnation's links start fresh: no backlog
            // of modeled transmission time from before the crash.
            for (std::uint32_t peer = 0; peer != num_localities_; ++peer)
            {
                link_free_ns_[link_index(locality, peer)] = 0;
                link_free_ns_[link_index(peer, locality)] = 0;
            }
        }
    }
    if (purged != 0)
    {
        COAL_LOG_INFO("net", "kill_locality(%u) dropped %zu in-flight "
                             "message(s)",
            locality, purged);
        messages_dropped_.fetch_add(purged, std::memory_order_relaxed);
        in_flight_.fetch_sub(purged, std::memory_order_acq_rel);
        drain_cv_.notify_all();
    }
    return true;
}

void sim_network::shutdown()
{
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (delivery_thread_.joinable())
        delivery_thread_.join();

    // Messages still queued at shutdown are dropped, not lost silently:
    // the conservation invariant (sent == delivered + dropped) must hold
    // even across a racy teardown, and drain() must not hang on them.
    std::size_t remaining = 0;
    {
        std::lock_guard lock(mutex_);
        remaining = heap_.size();
        while (!heap_.empty())
            heap_.pop();
    }
    if (remaining != 0)
    {
        COAL_LOG_WARN("net", "shutdown dropped %zu undelivered messages",
            remaining);
        messages_dropped_.fetch_add(remaining, std::memory_order_relaxed);
        in_flight_.fetch_sub(remaining, std::memory_order_acq_rel);
    }
    drain_cv_.notify_all();
}

}    // namespace coal::net
