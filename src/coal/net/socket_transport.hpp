#pragma once

/// \file socket_transport.hpp
/// Real inter-process parcelport: a TCP / Unix-domain-socket stream
/// transport behind the `transport` interface.
///
/// Frames are length-prefixed and CRC32C-protected (wire_format.hpp).
/// Each *process* hosts a contiguous range of localities ("ranks"); every
/// locality maps to the endpoint of its hosting process, and the process
/// listens on one socket per distinct local endpoint.  Connections are
/// *directed*: each process initiates its own outbound connection per
/// remote endpoint (so there is no simultaneous-connect tie-breaking);
/// accepted connections are receive-only.  Frames carry (src, dst)
/// locality ids, so any number of localities multiplex one socket pair.
///
/// Connection lifecycle (DESIGN.md §15):
///
///   idle --send queued--> connecting --HELLO sent--> open
///     ^                       | connect refused/timeout: capped
///     |                       v exponential backoff + jitter
///     +----- queue empty -- closed <-- read error / EOF / forced drop
///
/// On connect, each side sends a HELLO frame carrying the wire version,
/// the locality count, its hosted rank range, the action-registry digest
/// (rank exchange + action-id verification: ids are content-addressed
/// FNV-1a name hashes, so agreement on the digest proves both binaries
/// resolve every action id identically), and a random process nonce used
/// to recognize self-loop connections.  A digest or geometry mismatch
/// closes the connection — fail-fast instead of executing wrong actions.
///
/// Reliability mapping: a dropped / corrupted / truncated frame, a
/// connection drop, or a backlog overflow all surface as *message drops*
/// (counted, never executed) and are healed by the PR 1 retransmit
/// layer; reconnecting does not bump any membership epoch — same
/// incarnation, sequenced frames replay exactly-once.  A partially
/// written frame at disconnect time is dropped (the receiver cannot have
/// completed it) rather than resent, keeping the wire at-most-once so
/// the parcel layer stays exactly-once.
///
/// Thread model: one IO thread owns every fd (poll-based, non-blocking);
/// sender threads only append to per-connection outbound queues and wake
/// the IO thread through a self-pipe.  Delivery handlers run on the IO
/// thread and must be cheap (the parcel layer just inbox-pushes).

#include <coal/net/transport.hpp>
#include <coal/net/wire_format.hpp>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace coal::net {

/// Configuration for the socket parcelport.
struct socket_params
{
    enum class family : std::uint8_t
    {
        tcp,    ///< 127.0.0.1 / IPv4 "host:port" endpoints
        uds,    ///< Unix-domain stream sockets, endpoint = path
    };

    family kind = family::tcp;

    /// One endpoint per locality (`host:port` for tcp, a filesystem path
    /// for uds).  Localities hosted by the same process share an
    /// endpoint.  Empty: single-process auto mode — every locality gets
    /// its own ephemeral endpoint on this host (tcp: 127.0.0.1 port 0;
    /// uds: a socket under `uds_dir`).
    std::vector<std::string> endpoints;

    /// Directory for auto-generated uds sockets.
    std::string uds_dir = "/tmp";

    /// Pre-bound listening socket inherited from a launcher (multi-process
    /// bootstrap: the parent binds every rank's listener before spawning,
    /// so advertised ports are collision-free).  -1: bind here.
    int inherited_listen_fd = -1;

    /// Action-registry digest exchanged (and required equal) in the HELLO
    /// handshake; the runtime fills it from
    /// `action_registry::wire_digest()`.  Both sides defaulting to 0
    /// (transport-level unit tests) trivially agree.
    std::uint64_t registry_digest = 0;

    /// Hard cap on a frame's payload; longer length prefixes are treated
    /// as stream corruption (decoder never allocates past this).
    std::size_t max_frame_bytes = 16u << 20;

    /// Per-connection outbound backlog cap; frames beyond it are dropped
    /// (counted) and recovered by the reliability layer.
    std::size_t max_backlog_bytes = 64u << 20;

    /// Reconnect backoff: initial delay, doubled per failure up to the
    /// cap, with deterministic jitter.
    std::int64_t reconnect_initial_us = 2'000;
    std::int64_t reconnect_max_us = 500'000;

    /// await_ready() gives up after this long (a peer process that never
    /// starts).
    std::int64_t bootstrap_timeout_ms = 20'000;

    /// drain()/shutdown(): after this long without forward progress the
    /// transport reconciles (drops what is stuck, counted) instead of
    /// hanging quiesce forever.
    std::int64_t drain_timeout_ms = 2'000;
};

/// Wire-level statistics (feeds the /net/wire/* counters).
struct socket_wire_stats
{
    std::uint64_t bytes_sent = 0;    ///< on-the-wire bytes incl. headers
    std::uint64_t bytes_received = 0;
    std::uint64_t frames_sent = 0;    ///< data + control frames written
    std::uint64_t frames_received = 0;
    std::uint64_t reconnects = 0;      ///< established connections lost
    std::uint64_t connects = 0;        ///< successful connects (incl. re-)
    std::uint64_t accepts = 0;
    std::uint64_t partial_write_resumptions = 0;
    std::uint64_t partial_read_resumptions = 0;
    std::uint64_t crc_drops = 0;        ///< payload-CRC frame drops
    std::uint64_t desync_drops = 0;     ///< fatal decode errors (conn cut)
    std::uint64_t oversized_drops = 0;
    std::uint64_t truncated_drops = 0;
    std::uint64_t connect_failures = 0;
    std::uint64_t accept_failures = 0;
    std::uint64_t handshake_failures = 0;    ///< digest/geometry mismatch
    std::uint64_t backlog_drops = 0;         ///< frames shed at the cap
};

class socket_transport final : public transport
{
public:
    /// Hosts ranks [first_local_rank, first_local_rank + num_local_ranks)
    /// of `num_localities`.  num_local_ranks == 0 hosts all of them
    /// (single-process mode).  Listeners are bound (or adopted) here;
    /// outbound connections are established lazily by traffic, or eagerly
    /// by await_ready().
    socket_transport(socket_params params, std::uint32_t num_localities,
        std::uint32_t first_local_rank = 0, std::uint32_t num_local_ranks = 0);

    ~socket_transport() override;

    socket_transport(socket_transport const&) = delete;
    socket_transport& operator=(socket_transport const&) = delete;

    void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) override;

    void send(std::uint32_t src, std::uint32_t dst,
        serialization::wire_message&& message) override;

    /// The real wire has no modeled CPU cost.
    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return 0.0;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return queued_frames_.load(std::memory_order_acquire) +
            loopback_transit_.load(std::memory_order_acquire);
    }

    void drain() override;

    [[nodiscard]] transport_stats stats() const override;

    [[nodiscard]] socket_wire_stats wire_stats() const;

    void shutdown() override;

    /// Chaos API: frames to or from a down locality are dropped at send
    /// and at delivery (kernel-buffered bytes cannot be unsent; the
    /// delivery-side check plays the role of sim_network's heap purge).
    bool set_locality_down(std::uint32_t locality, bool down) override;

    /// ---- bootstrap / rank exchange -----------------------------------

    /// Eagerly connect to every endpoint and wait until each outbound
    /// connection completed the HELLO exchange (digest-verified), with
    /// connect retries while peer processes are still launching.
    /// Returns false on bootstrap timeout or a handshake failure on an
    /// outbound (known-peer) connection; a stray client reaching a
    /// listener is merely closed and counted, never failing bootstrap.
    bool await_ready();

    /// The endpoint actually bound for a locality (auto mode resolves
    /// port 0 / generated uds paths at construction).
    [[nodiscard]] std::string const& endpoint_of(
        std::uint32_t locality) const;

    [[nodiscard]] std::uint32_t first_local_rank() const noexcept
    {
        return first_rank_;
    }

    [[nodiscard]] std::uint32_t num_local_ranks() const noexcept
    {
        return local_count_;
    }

    [[nodiscard]] bool hosts(std::uint32_t locality) const noexcept
    {
        return locality >= first_rank_ && locality < first_rank_ + local_count_;
    }

    /// Number of distinct processes in the endpoint table.
    [[nodiscard]] std::uint32_t process_count() const noexcept
    {
        return process_count_;
    }

    /// ---- distributed barrier (control plane) -------------------------

    /// Enter the next barrier generation; returns its token.  One call
    /// per process per barrier.  Poll barrier_done() until release.
    std::uint64_t enter_barrier();

    [[nodiscard]] bool barrier_done(std::uint64_t token) const noexcept
    {
        return barrier_released_.load(std::memory_order_acquire) >= token;
    }

    /// ---- test seams (wire-integrity + reconnect robustness) ----------

    /// Corrupt the next `n` outbound data frames by flipping one payload
    /// bit after the CRC was computed (the copy on the wire is damaged,
    /// never the caller's — retransmit buffers stay intact).
    void debug_corrupt_payload(std::uint32_t n) noexcept
    {
        corrupt_payload_.store(n, std::memory_order_release);
    }

    /// Corrupt the next `n` outbound frame *headers* (receiver desync:
    /// it must cut the connection and the stream must recover).
    void debug_corrupt_header(std::uint32_t n) noexcept
    {
        corrupt_header_.store(n, std::memory_order_release);
    }

    /// Forcibly close the established connection toward the process
    /// hosting `dst_locality` (reconnect + backoff must heal it).
    /// Returns false when no such connection is open.
    bool debug_drop_connection(std::uint32_t dst_locality);

private:
    struct endpoint_info;
    struct connection;
    struct out_frame;

    void io_loop();
    void wake() noexcept;

    // IO-thread helpers (own all fd state).
    void start_connect(connection& c, std::int64_t now_ns);
    void finish_connect(connection& c, std::int64_t now_ns);
    void connect_failed(connection& c, std::int64_t now_ns);
    void close_connection(connection& c, bool lost_established);
    void handle_readable(connection& c);
    void handle_writable(connection& c);
    void accept_pending(endpoint_info& ep);
    void send_hello(connection& c);
    void enqueue_control(std::uint32_t endpoint_index, wire::frame_kind kind,
        serialization::shared_buffer payload);
    void on_frame(connection& c, wire::frame_header const& h,
        serialization::shared_buffer&& payload);
    void on_decode_error(connection& c, wire::decode_error e);
    void deliver_data(connection& c, wire::frame_header const& h,
        serialization::shared_buffer&& payload);
    void barrier_note_entered(std::uint32_t process, std::uint64_t gen);
    void barrier_maybe_release();
    void purge_queue(connection& c, std::uint32_t locality_filter);
    void drop_frame_accounting(out_frame const& f);
    bool release_loopback_slot() noexcept;
    [[nodiscard]] std::int64_t next_poll_timeout_ms(
        std::int64_t now_ns) const noexcept;

    socket_params params_;
    std::uint32_t num_localities_;
    std::uint32_t first_rank_;
    std::uint32_t local_count_;
    std::uint32_t process_count_ = 1;
    std::uint64_t nonce_;    ///< random process identity (self-loop detect)
    std::uint64_t registry_digest_;

    // Endpoint table: one entry per distinct endpoint (process); the
    // per-locality map points into it.
    std::vector<std::unique_ptr<endpoint_info>> endpoints_;
    std::vector<std::uint32_t> endpoint_of_locality_;
    std::uint32_t self_endpoint_ = 0;    ///< first local endpoint index
    std::uint32_t coordinator_endpoint_ = 0;    ///< hosts locality 0

    // Outbound connections, one per endpoint (index-aligned).  Accepted
    // (inbound) connections live in in_conns_.
    std::vector<std::unique_ptr<connection>> out_conns_;
    std::vector<std::unique_ptr<connection>> in_conns_;

    mutable std::mutex mutex_;    ///< handlers, down set, barrier state
    std::vector<delivery_handler> handlers_;
    std::vector<char> down_;

    // Barrier state (guarded by mutex_): generation counters per peer
    // process plus our own; coordinator releases when all arrived.
    std::vector<std::uint64_t> barrier_entered_;    ///< per process
    std::uint64_t barrier_self_gen_ = 0;
    std::uint64_t barrier_released_gen_ = 0;    ///< coordinator bookkeeping
    std::atomic<std::uint64_t> barrier_released_{0};

    int wake_pipe_[2] = {-1, -1};
    std::thread io_thread_;
    std::atomic<bool> stopping_{false};     ///< reject new sends
    std::atomic<bool> io_stop_{false};      ///< terminate the IO loop
    std::atomic<bool> ready_failed_{false};    ///< handshake hard-failed
    std::atomic<bool> eager_connect_{false};    ///< bootstrap connects all
    std::atomic<bool> purge_requested_{false};    ///< drain reconciliation

    // Requests user threads hand to the IO thread (it owns all fd and
    // queue-structure state; see io_loop's service block).
    std::vector<std::uint32_t> pending_purges_;    ///< guarded by mutex_
    std::atomic<std::int32_t> drop_endpoint_{-1};    ///< forced conn drop

    // Custody accounting: queued_frames_ counts data frames accepted by
    // send() and not yet written out (or dropped); loopback_transit_
    // counts frames written toward a *locally hosted* destination that
    // have not yet come back through delivery (they sit in kernel socket
    // buffers).  in_flight() is their sum, which keeps quiesce() exact
    // for in-process wiring.
    std::atomic<std::uint64_t> queued_frames_{0};
    std::atomic<std::uint64_t> loopback_transit_{0};

    std::atomic<std::uint32_t> corrupt_payload_{0};
    std::atomic<std::uint32_t> corrupt_header_{0};

    // transport_stats (data frames).
    std::atomic<std::uint64_t> messages_sent_{0};
    std::atomic<std::uint64_t> bytes_sent_{0};
    std::atomic<std::uint64_t> messages_delivered_{0};
    std::atomic<std::uint64_t> bytes_delivered_{0};
    std::atomic<std::uint64_t> messages_dropped_{0};

    // socket_wire_stats.
    std::atomic<std::uint64_t> wire_bytes_sent_{0};
    std::atomic<std::uint64_t> wire_bytes_received_{0};
    std::atomic<std::uint64_t> wire_frames_sent_{0};
    std::atomic<std::uint64_t> wire_frames_received_{0};
    std::atomic<std::uint64_t> wire_reconnects_{0};
    std::atomic<std::uint64_t> wire_connects_{0};
    std::atomic<std::uint64_t> wire_accepts_{0};
    std::atomic<std::uint64_t> wire_partial_writes_{0};
    std::atomic<std::uint64_t> wire_partial_reads_{0};
    std::atomic<std::uint64_t> wire_crc_drops_{0};
    std::atomic<std::uint64_t> wire_desync_drops_{0};
    std::atomic<std::uint64_t> wire_oversized_drops_{0};
    std::atomic<std::uint64_t> wire_truncated_drops_{0};
    std::atomic<std::uint64_t> wire_connect_failures_{0};
    std::atomic<std::uint64_t> wire_accept_failures_{0};
    std::atomic<std::uint64_t> wire_handshake_failures_{0};
    std::atomic<std::uint64_t> wire_backlog_drops_{0};

    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;
};

}    // namespace coal::net
