#pragma once

/// \file sim_network.hpp
/// Simulated cluster interconnect.
///
/// This is the substitution for the multi-node testbed the paper uses
/// (ROSTAM's Marvin nodes): localities live in one process and exchange
/// framed messages through this object, which imposes an explicit cost
/// model:
///
///  - `send_overhead_us`: per-message CPU cost on the *sender* — protocol
///    stack, handshaking, doorbells.  Burned as real busy-work on the
///    calling thread, which is the runtime's background-work context, so
///    it is visible to the paper's Eq. 3/4 metrics.  This is the cost
///    coalescing amortizes.
///  - `send_per_kb_us`: additional sender CPU per KiB (buffer handling).
///  - `recv_overhead_us`: per-message CPU cost on the receiver, charged by
///    the receiving parcelport when it drains its inbox (published via
///    transport::recv_overhead_us()).
///  - `wire_latency_us` and `bandwidth_bytes_per_us`: delivery time.
///    Each directed link transmits serially (a message waits for the tail
///    of the previous one), so bandwidth is a real shared resource.
///
/// With a topology (localities grouped into nodes, topology.hpp) the
/// model is two-tiered: links within a node price by the cheap
/// `intra_node` cost model, links crossing nodes by the default one, and
/// per-tier totals record how much traffic crossed a node boundary.
///
/// A dedicated delivery thread holds a min-heap of (due-time, message)
/// and releases each message to the destination's handler when its due
/// time arrives.

#include <coal/net/topology.hpp>
#include <coal/net/transport.hpp>

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coal::net {

/// Tunable cost model for one link tier.  Defaults approximate a
/// commodity cluster's *inter-node* links, scaled so experiments complete
/// in seconds on a laptop; intra_node_defaults() prices the shared-memory
/// tier within a node.
struct cost_model
{
    double send_overhead_us = 2.0;
    double send_per_kb_us = 0.05;
    double recv_overhead_us = 2.0;
    double wire_latency_us = 5.0;
    double bandwidth_bytes_per_us = 2000.0;    ///< ≈ 2 GB/s per link

    /// Wire occupancy time for a message of `bytes` (µs).
    [[nodiscard]] double transmit_us(std::size_t bytes) const noexcept
    {
        if (bandwidth_bytes_per_us <= 0.0)
            return 0.0;
        return static_cast<double>(bytes) / bandwidth_bytes_per_us;
    }

    /// Sender CPU burn for a message of `bytes` (µs).
    [[nodiscard]] double sender_cpu_us(std::size_t bytes) const noexcept
    {
        return send_overhead_us +
            send_per_kb_us * static_cast<double>(bytes) / 1024.0;
    }

    /// Shared-memory tier between localities of one node: an order of
    /// magnitude cheaper per message and per byte than the NIC path.
    [[nodiscard]] static cost_model intra_node_defaults() noexcept
    {
        cost_model m;
        m.send_overhead_us = 0.4;
        m.send_per_kb_us = 0.01;
        m.recv_overhead_us = 0.4;
        m.wire_latency_us = 0.5;
        m.bandwidth_bytes_per_us = 10000.0;    // ≈ 10 GB/s
        return m;
    }
};

/// Per-directed-link traffic statistics.
struct link_stats
{
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
};

class sim_network final : public transport
{
public:
    /// Flat single-tier interconnect (every link prices by `model`).
    sim_network(std::uint32_t num_localities, cost_model model);

    /// Topology-aware interconnect: links within a node price by
    /// `intra`, links crossing nodes by `inter`.  With `topo.enabled()`
    /// false every link classifies as inter-node, so this degenerates to
    /// the flat constructor.
    sim_network(topology topo, cost_model inter, cost_model intra);

    ~sim_network() override;

    sim_network(sim_network const&) = delete;
    sim_network& operator=(sim_network const&) = delete;

    void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) override;

    void send(std::uint32_t src, std::uint32_t dst,
        serialization::wire_message&& message) override;

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return model_.recv_overhead_us;
    }

    [[nodiscard]] double link_recv_overhead_us(
        std::uint32_t src, std::uint32_t dst) const noexcept override
    {
        return model_for(src, dst).recv_overhead_us;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return in_flight_.load(std::memory_order_acquire);
    }

    void drain() override;

    [[nodiscard]] transport_stats stats() const override;

    [[nodiscard]] link_stats link(
        std::uint32_t src, std::uint32_t dst) const;

    /// Aggregate traffic per pricing tier — what the hierarchical
    /// aggregation benches report: "how many messages actually crossed a
    /// node boundary".  With the topology disabled everything lands in
    /// the inter_node bucket.
    [[nodiscard]] link_stats tier_totals(link_tier tier) const;

    [[nodiscard]] topology const& topo() const noexcept
    {
        return topo_;
    }

    /// The inter-node (default) tier of the cost model.
    [[nodiscard]] cost_model const& model() const noexcept
    {
        return model_;
    }

    [[nodiscard]] cost_model const& intra_model() const noexcept
    {
        return intra_model_;
    }

    /// Tier-resolved cost model for a directed link.
    [[nodiscard]] cost_model const& model_for(
        std::uint32_t src, std::uint32_t dst) const noexcept
    {
        return topo_.tier_of(src, dst) == link_tier::intra_node ?
            intra_model_ :
            model_;
    }

    void shutdown() override;

    /// Chaos API: while a locality is down the sim drops every message to
    /// or from it — including those already on the wire (in the delivery
    /// heap), which vanish immediately, as a crashed NIC's in-flight
    /// packets would.  Restart lifts the blackhole; the locality's links
    /// start fresh (no queued backlog from its dead incarnation).
    bool set_locality_down(std::uint32_t locality, bool down) override;

private:
    struct pending_message
    {
        std::int64_t due_ns;    // steady-clock ns when delivery happens
        std::uint64_t seq;      // tie-break: FIFO for equal due times
        std::uint32_t src;
        std::uint32_t dst;
        serialization::shared_buffer payload;
    };

    struct due_order
    {
        bool operator()(
            pending_message const& a, pending_message const& b) const noexcept
        {
            if (a.due_ns != b.due_ns)
                return a.due_ns > b.due_ns;    // min-heap on due time
            return a.seq > b.seq;
        }
    };

    void delivery_loop();

    [[nodiscard]] std::size_t link_index(
        std::uint32_t src, std::uint32_t dst) const noexcept
    {
        return static_cast<std::size_t>(src) * num_localities_ + dst;
    }

    std::uint32_t num_localities_;
    topology topo_;
    cost_model model_;          // inter-node (default) tier
    cost_model intra_model_;    // same-node tier

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::priority_queue<pending_message, std::vector<pending_message>,
        due_order>
        heap_;
    std::vector<delivery_handler> handlers_;
    std::vector<std::int64_t> link_free_ns_;    // per-link tail of transmission
    std::vector<link_stats> link_stats_;
    std::array<link_stats, link_tier_count> tier_stats_{};
    std::vector<char> down_;    // chaos API: localities currently crashed
    std::uint64_t next_seq_ = 0;
    bool stopping_ = false;

    std::atomic<std::uint64_t> in_flight_{0};
    std::atomic<std::uint64_t> messages_sent_{0};
    std::atomic<std::uint64_t> bytes_sent_{0};
    std::atomic<std::uint64_t> messages_delivered_{0};
    std::atomic<std::uint64_t> bytes_delivered_{0};
    std::atomic<std::uint64_t> messages_dropped_{0};

    std::mutex drain_mutex_;
    std::condition_variable drain_cv_;

    std::thread delivery_thread_;
};

}    // namespace coal::net
