#pragma once

/// \file loopback.hpp
/// Zero-cost transport: delivers synchronously on the sender's thread
/// with no modeled overheads.  Used by unit tests that need
/// timing-independent behaviour, and as the "infinitely fast network"
/// baseline in ablation benches.

#include <coal/net/transport.hpp>

#include <atomic>
#include <mutex>
#include <vector>

namespace coal::net {

class loopback_transport final : public transport
{
public:
    explicit loopback_transport(std::uint32_t num_localities);

    void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) override;

    void send(std::uint32_t src, std::uint32_t dst,
        serialization::wire_message&& message) override;

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return 0.0;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return 0;    // delivery is synchronous
    }

    void drain() override
    {
    }

    [[nodiscard]] transport_stats stats() const override;

    void shutdown() override;

    /// Chaos API: a down locality's sends and receives are dropped
    /// (counted), mirroring the sim_network semantics without a wire.
    bool set_locality_down(std::uint32_t locality, bool down) override;

private:
    std::uint32_t num_localities_;
    mutable std::mutex mutex_;
    std::vector<delivery_handler> handlers_;
    std::vector<char> down_;
    bool stopped_ = false;

    std::atomic<std::uint64_t> messages_{0};
    std::atomic<std::uint64_t> bytes_{0};
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> bytes_delivered_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

}    // namespace coal::net
