#include <coal/net/socket_transport.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <thread>

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

namespace coal::net {

namespace {

/// HELLO payload: the rank-exchange handshake.  Fixed little-endian
/// layout, written/read through memcpy of this trivially-copyable view
/// (both ends are the same wire revision once the header validated).
struct hello_payload
{
    std::uint32_t num_localities;
    std::uint32_t first_rank;
    std::uint32_t num_ranks;
    std::uint32_t reserved;
    std::uint64_t registry_digest;
    std::uint64_t nonce;
};

struct barrier_payload
{
    std::uint64_t generation;
    std::uint32_t process;    ///< sender's endpoint index
    std::uint32_t reserved;
};

constexpr std::uint32_t control_locality = 0xffffffffu;

void set_nonblock(int fd)
{
    int const flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_cloexec(int fd)
{
    int const flags = ::fcntl(fd, F_GETFD, 0);
    ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

[[nodiscard]] std::uint64_t random_nonce()
{
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd() ^
        (static_cast<std::uint64_t>(::getpid()) << 16) ^
        static_cast<std::uint64_t>(now_ns());
}

/// Deterministic jitter in [0, limit): hashed from (nonce, attempt) so
/// two processes backing off from the same event do not stampede in
/// lockstep, yet a run is reproducible given its seeds.
[[nodiscard]] std::int64_t jitter_us(
    std::uint64_t nonce, std::uint64_t attempt, std::int64_t limit) noexcept
{
    if (limit <= 0)
        return 0;
    std::uint64_t h = nonce ^ (attempt * 0x9e3779b97f4a7c15ull);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return static_cast<std::int64_t>(
        h % static_cast<std::uint64_t>(limit));
}

}    // namespace

/// One listening endpoint (a process's doorway).  `address` is the
/// advertised string form; for local endpoints the listener is bound (or
/// adopted) at construction and auto endpoints rewrite `address` with the
/// resolved port / generated path.
struct socket_transport::endpoint_info
{
    std::string address;
    bool is_local = false;
    int listen_fd = -1;
    std::string uds_path;    ///< non-empty: unlink on shutdown

    ::sockaddr_storage addr{};
    ::socklen_t addr_len = 0;
};

/// A frame staged for transmission: pre-encoded header + payload view.
/// The payload buffer is shared by refcount with the caller (retransmit
/// tables keep their own reference); the wire writes it verbatim.
struct socket_transport::out_frame
{
    std::uint8_t header[wire::header_size];
    serialization::shared_buffer payload;
    std::uint32_t src = control_locality;
    std::uint32_t dst = control_locality;
    bool is_data = false;
    bool local_dst = false;

    [[nodiscard]] std::size_t total() const noexcept
    {
        return wire::header_size + payload.size();
    }
};

struct socket_transport::connection
{
    enum class state : std::uint8_t
    {
        idle,          ///< no socket; connects when traffic appears
        connecting,    ///< non-blocking connect in progress
        open,          ///< established; HELLO queued/flowing
        closed,        ///< lost; waiting out the reconnect backoff
    };

    int fd = -1;
    /// Written by the IO thread, read by await_ready() on user threads.
    std::atomic<state> st{state::idle};
    std::uint32_t endpoint_index = 0;
    bool outbound = false;
    bool self_loop = false;        ///< peer nonce == ours (same process)
    /// Outbound: peer HELLO accepted.  Atomic: await_ready() polls it.
    std::atomic<bool> hello_verified{false};
    bool peer_goodbye = false;      ///< graceful close announced
    /// Set by on_frame() when a handshake is rejected: the connection
    /// must be closed, but never from inside the decoder's own callback
    /// (close_connection destroys the decoder mid-feed).  handle_readable
    /// honours it once feed() has returned.
    bool close_requested = false;
    std::uint32_t remote_first_rank = 0;
    std::uint32_t remote_num_ranks = 0;

    /// HELLO bytes go out before anything queued (handshake-first).
    std::vector<std::uint8_t> hello_buf;
    std::size_t hello_off = 0;

    /// Outbound queue: senders push under qlock, the IO thread writes.
    /// The front frame stays queued while partially written (write_off
    /// tracks progress across the header+payload concatenation).
    std::mutex qlock;
    std::deque<out_frame> q;
    std::size_t q_bytes = 0;
    std::size_t write_off = 0;

    std::unique_ptr<wire::frame_decoder> decoder;

    std::int64_t backoff_us = 0;
    std::int64_t retry_at_ns = 0;
    std::uint64_t connect_attempts = 0;
    std::uint32_t next_seq = 0;
};

socket_transport::socket_transport(socket_params params,
    std::uint32_t num_localities, std::uint32_t first_local_rank,
    std::uint32_t num_local_ranks)
  : params_(std::move(params))
  , num_localities_(num_localities)
  , first_rank_(first_local_rank)
  , local_count_(num_local_ranks == 0 ? num_localities : num_local_ranks)
  , nonce_(random_nonce())
  , registry_digest_(params_.registry_digest)
  , handlers_(num_localities)
  , down_(num_localities, 0)
{
    COAL_ASSERT(num_localities_ > 0);
    COAL_ASSERT(first_rank_ + local_count_ <= num_localities_);

    // Build the endpoint table: auto mode invents one endpoint per
    // locality; explicit mode dedupes identical strings (localities of
    // one process share its doorway).
    bool const auto_mode = params_.endpoints.empty();
    if (!auto_mode)
    {
        COAL_ASSERT_MSG(params_.endpoints.size() == num_localities_,
            "socket_params.endpoints must name every locality");
    }

    endpoint_of_locality_.resize(num_localities_);
    for (std::uint32_t rank = 0; rank != num_localities_; ++rank)
    {
        std::string address;
        if (auto_mode)
        {
            if (params_.kind == socket_params::family::tcp)
                address = "127.0.0.1:0";
            else
                address = params_.uds_dir + "/coal-" +
                    std::to_string(::getpid()) + "-" + std::to_string(rank) +
                    ".sock";
        }
        else
        {
            address = params_.endpoints[rank];
        }

        std::uint32_t index = 0;
        if (!auto_mode)
        {
            // Dedup by string: same endpoint, same process.
            for (; index != endpoints_.size(); ++index)
                if (endpoints_[index]->address == address)
                    break;
        }
        else
        {
            index = static_cast<std::uint32_t>(endpoints_.size());
        }

        if (index == endpoints_.size())
        {
            auto ep = std::make_unique<endpoint_info>();
            ep->address = std::move(address);
            ep->is_local = hosts(rank);
            endpoints_.push_back(std::move(ep));
        }
        endpoint_of_locality_[rank] = index;
    }

    process_count_ = static_cast<std::uint32_t>(endpoints_.size());
    self_endpoint_ = endpoint_of_locality_[first_rank_];
    coordinator_endpoint_ = endpoint_of_locality_[0];
    barrier_entered_.assign(endpoints_.size(), 0);

    // Bind every local listener now — bootstrap is crash-safe because a
    // peer that starts late finds our door already open, and we retry
    // *their* door with backoff until it opens.
    bool adopted_inherited = false;
    for (auto& ep : endpoints_)
    {
        if (!ep->is_local)
            continue;

        if (params_.inherited_listen_fd >= 0 && !adopted_inherited)
        {
            ep->listen_fd = params_.inherited_listen_fd;
            adopted_inherited = true;
            set_nonblock(ep->listen_fd);
            continue;
        }

        if (params_.kind == socket_params::family::tcp)
        {
            int const fd = ::socket(AF_INET, SOCK_STREAM, 0);
            COAL_ASSERT_MSG(fd >= 0, "socket() failed");
            int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

            ::sockaddr_in sa{};
            sa.sin_family = AF_INET;
            auto const colon = ep->address.rfind(':');
            std::string const host = ep->address.substr(0, colon);
            int const port = std::atoi(ep->address.c_str() + colon + 1);
            ::inet_pton(AF_INET, host.c_str(), &sa.sin_addr);
            sa.sin_port = htons(static_cast<std::uint16_t>(port));

            int rc = ::bind(fd, reinterpret_cast<::sockaddr*>(&sa), sizeof sa);
            COAL_ASSERT_MSG(rc == 0, "bind() failed");
            rc = ::listen(fd, 64);
            COAL_ASSERT_MSG(rc == 0, "listen() failed");

            // Auto mode: learn the kernel-assigned port and advertise it.
            ::socklen_t len = sizeof sa;
            ::getsockname(fd, reinterpret_cast<::sockaddr*>(&sa), &len);
            ep->address =
                host + ":" + std::to_string(ntohs(sa.sin_port));

            set_nonblock(fd);
            set_cloexec(fd);
            ep->listen_fd = fd;
        }
        else
        {
            int const fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            COAL_ASSERT_MSG(fd >= 0, "socket(AF_UNIX) failed");

            ::sockaddr_un sa{};
            sa.sun_family = AF_UNIX;
            COAL_ASSERT_MSG(ep->address.size() < sizeof sa.sun_path,
                "uds path too long for sun_path");
            std::strncpy(sa.sun_path, ep->address.c_str(),
                sizeof sa.sun_path - 1);
            ::unlink(sa.sun_path);    // stale socket from a crashed run

            int rc = ::bind(fd, reinterpret_cast<::sockaddr*>(&sa),
                sizeof sa);
            COAL_ASSERT_MSG(rc == 0, "bind(AF_UNIX) failed");
            rc = ::listen(fd, 64);
            COAL_ASSERT_MSG(rc == 0, "listen(AF_UNIX) failed");

            set_nonblock(fd);
            set_cloexec(fd);
            ep->listen_fd = fd;
            ep->uds_path = ep->address;
        }
    }

    // Resolve every endpoint's connect address.
    for (auto& ep : endpoints_)
    {
        if (params_.kind == socket_params::family::tcp)
        {
            auto* sa = reinterpret_cast<::sockaddr_in*>(&ep->addr);
            sa->sin_family = AF_INET;
            auto const colon = ep->address.rfind(':');
            std::string const host = ep->address.substr(0, colon);
            int const port = std::atoi(ep->address.c_str() + colon + 1);
            ::inet_pton(AF_INET, host.c_str(), &sa->sin_addr);
            sa->sin_port = htons(static_cast<std::uint16_t>(port));
            ep->addr_len = sizeof(::sockaddr_in);
        }
        else
        {
            auto* sa = reinterpret_cast<::sockaddr_un*>(&ep->addr);
            sa->sun_family = AF_UNIX;
            COAL_ASSERT_MSG(ep->address.size() < sizeof sa->sun_path,
                "uds path too long for sun_path");
            std::strncpy(sa->sun_path, ep->address.c_str(),
                sizeof sa->sun_path - 1);
            ep->addr_len = sizeof(::sockaddr_un);
        }
    }

    // One outbound connection slot per endpoint (including our own:
    // local traffic rides a real self-loop socket, which is what lets
    // the whole in-process test suite exercise the wire).
    out_conns_.reserve(endpoints_.size());
    for (std::uint32_t i = 0; i != endpoints_.size(); ++i)
    {
        auto c = std::make_unique<connection>();
        c->endpoint_index = i;
        c->outbound = true;
        c->backoff_us = params_.reconnect_initial_us;
        out_conns_.push_back(std::move(c));
    }

    if (::pipe2(wake_pipe_, O_NONBLOCK | O_CLOEXEC) != 0)
        COAL_ASSERT_MSG(false, "pipe2() failed");

    io_thread_ = std::thread([this] { io_loop(); });
}

socket_transport::~socket_transport()
{
    shutdown();
}

void socket_transport::set_delivery_handler(
    std::uint32_t dst, delivery_handler handler)
{
    COAL_ASSERT(dst < num_localities_);
    std::lock_guard lock(mutex_);
    handlers_[dst] = std::move(handler);
}

std::string const& socket_transport::endpoint_of(std::uint32_t locality) const
{
    COAL_ASSERT(locality < num_localities_);
    return endpoints_[endpoint_of_locality_[locality]]->address;
}

void socket_transport::wake() noexcept
{
    char const b = 1;
    [[maybe_unused]] auto r = ::write(wake_pipe_[1], &b, 1);
}

void socket_transport::send(std::uint32_t src, std::uint32_t dst,
    serialization::wire_message&& message)
{
    COAL_ASSERT(src < num_localities_ && dst < num_localities_);

    std::size_t const bytes = message.size();
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);

    bool down;
    {
        std::lock_guard lock(mutex_);
        down = down_[src] != 0 || down_[dst] != 0;
    }
    if (stopping_.load(std::memory_order_acquire) || down)
    {
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    // The wire is contiguous: flatten the fragment chain exactly once,
    // here (single-fragment messages move their buffer out, zero copy).
    serialization::shared_buffer payload = std::move(message).flatten();
    std::uint32_t const payload_crc =
        wire::crc32c(payload.data(), payload.size());

    // Wire-integrity test seam: damage the outbound bytes *after* the CRC
    // was captured, so the frame reaches the peer checksummed against its
    // pristine content.  The caller's buffer may be shared with a
    // retransmit table, so corruption operates on a private copy — the
    // healing path must stay intact.
    bool corrupt_header = false;
    if (std::uint32_t n = corrupt_payload_.load(std::memory_order_acquire);
        n != 0 && payload.size() != 0 &&
        corrupt_payload_.compare_exchange_strong(n, n - 1))
    {
        serialization::shared_buffer copy(payload.data(), payload.size());
        copy.mutable_data()[copy.size() / 2] ^= 0x40;
        payload = std::move(copy);
    }
    if (std::uint32_t n = corrupt_header_.load(std::memory_order_acquire);
        n != 0 && corrupt_header_.compare_exchange_strong(n, n - 1))
    {
        corrupt_header = true;
    }

    auto& conn = *out_conns_[endpoint_of_locality_[dst]];

    out_frame f;
    f.src = src;
    f.dst = dst;
    f.is_data = true;
    f.local_dst = hosts(dst);
    f.payload = std::move(payload);

    wire::frame_header h;
    h.kind = static_cast<std::uint8_t>(wire::frame_kind::data);
    h.src = src;
    h.dst = dst;
    h.payload_len = static_cast<std::uint32_t>(f.payload.size());
    h.payload_crc = payload_crc;

    {
        std::lock_guard lock(conn.qlock);
        if (conn.q_bytes + f.total() > params_.max_backlog_bytes)
        {
            // Outbound backlog cap: shed instead of buffering without
            // bound while a peer is down.  The reliability layer holds
            // its own copy and retransmits after the link heals.
            wire_backlog_drops_.fetch_add(1, std::memory_order_relaxed);
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        h.seq = conn.next_seq++;
        wire::encode_header(h, f.header);
        if (corrupt_header)
            f.header[10] ^= 0x04;    // damages src — header CRC must catch
        conn.q_bytes += f.total();
        queued_frames_.fetch_add(1, std::memory_order_acq_rel);
        conn.q.push_back(std::move(f));
    }
    wake();
}

void socket_transport::enqueue_control(std::uint32_t endpoint_index,
    wire::frame_kind kind, serialization::shared_buffer payload)
{
    auto& conn = *out_conns_[endpoint_index];

    out_frame f;
    f.is_data = false;
    f.payload = std::move(payload);

    wire::frame_header h;
    h.kind = static_cast<std::uint8_t>(kind);
    h.src = control_locality;
    h.dst = control_locality;
    h.payload_len = static_cast<std::uint32_t>(f.payload.size());
    h.payload_crc = wire::crc32c(f.payload.data(), f.payload.size());

    {
        std::lock_guard lock(conn.qlock);
        h.seq = conn.next_seq++;
        wire::encode_header(h, f.header);
        conn.q_bytes += f.total();
        conn.q.push_back(std::move(f));
    }
    wake();
}

void socket_transport::drop_frame_accounting(out_frame const& f)
{
    if (f.is_data)
    {
        queued_frames_.fetch_sub(1, std::memory_order_acq_rel);
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------------
// IO thread
// ---------------------------------------------------------------------

void socket_transport::start_connect(connection& c, std::int64_t now_ns_)
{
    auto& ep = *endpoints_[c.endpoint_index];

    int const af =
        params_.kind == socket_params::family::tcp ? AF_INET : AF_UNIX;
    int const fd = ::socket(af, SOCK_STREAM, 0);
    if (fd < 0)
    {
        connect_failed(c, now_ns_);
        return;
    }
    set_nonblock(fd);
    set_cloexec(fd);
    if (params_.kind == socket_params::family::tcp)
    {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }

    ++c.connect_attempts;
    int const rc = ::connect(
        fd, reinterpret_cast<::sockaddr const*>(&ep.addr), ep.addr_len);
    if (rc == 0)
    {
        c.fd = fd;
        finish_connect(c, now_ns_);
        return;
    }
    if (errno == EINPROGRESS)
    {
        c.fd = fd;
        c.st = connection::state::connecting;
        return;
    }
    ::close(fd);
    connect_failed(c, now_ns_);
}

void socket_transport::finish_connect(connection& c, std::int64_t now_ns_)
{
    (void) now_ns_;
    c.st = connection::state::open;
    c.backoff_us = params_.reconnect_initial_us;
    c.peer_goodbye = false;
    c.hello_verified = false;
    wire_connects_.fetch_add(1, std::memory_order_relaxed);

    // A fresh stream gets a fresh decoder (a desync dies with its
    // connection) but keeps no history: the parcel layer's sequencing is
    // what makes reconnection exactly-once, not the socket.
    c.decoder = std::make_unique<wire::frame_decoder>(
        params_.max_frame_bytes,
        [this, &c](wire::frame_header const& h,
            serialization::shared_buffer&& payload) {
            on_frame(c, h, std::move(payload));
        },
        [this, &c](wire::decode_error e) { on_decode_error(c, e); });

    send_hello(c);
}

void socket_transport::connect_failed(connection& c, std::int64_t now_ns_)
{
    if (c.fd >= 0)
    {
        ::close(c.fd);
        c.fd = -1;
    }
    wire_connect_failures_.fetch_add(1, std::memory_order_relaxed);
    c.st = connection::state::closed;
    c.retry_at_ns = now_ns_ + c.backoff_us * 1000 +
        jitter_us(nonce_ ^ c.endpoint_index, c.connect_attempts,
            c.backoff_us / 2 + 1) *
            1000;
    c.backoff_us = std::min(c.backoff_us * 2, params_.reconnect_max_us);
}

void socket_transport::send_hello(connection& c)
{
    hello_payload p{};
    p.num_localities = num_localities_;
    p.first_rank = first_rank_;
    p.num_ranks = local_count_;
    p.registry_digest = registry_digest_;
    p.nonce = nonce_;

    wire::frame_header h;
    h.kind = static_cast<std::uint8_t>(wire::frame_kind::hello);
    h.src = control_locality;
    h.dst = control_locality;
    h.payload_len = sizeof p;
    h.payload_crc = wire::crc32c(&p, sizeof p);
    h.seq = 0;

    c.hello_buf.resize(wire::header_size + sizeof p);
    wire::encode_header(h, c.hello_buf.data());
    std::memcpy(c.hello_buf.data() + wire::header_size, &p, sizeof p);
    c.hello_off = 0;
}

void socket_transport::close_connection(connection& c, bool lost_established)
{
    if (c.fd >= 0)
    {
        ::close(c.fd);
        c.fd = -1;
    }
    if (c.decoder)
    {
        // finish() reports a mid-frame EOF through the error handler, so
        // the truncated counter is maintained there — no double count.
        c.decoder->finish();
        c.decoder.reset();
    }
    c.hello_buf.clear();
    c.hello_off = 0;
    c.hello_verified = false;
    c.close_requested = false;

    if (c.outbound)
    {
        bool retry;
        {
            std::lock_guard lock(c.qlock);
            // A partially-written frame cannot be resumed on a new
            // connection (the receiver will discard the truncated tail);
            // drop it so the wire stays at-most-once and let the
            // reliability layer retransmit its own retained copy.
            if (c.write_off != 0 && !c.q.empty())
            {
                drop_frame_accounting(c.q.front());
                c.q_bytes -= c.q.front().total();
                c.q.pop_front();
            }
            c.write_off = 0;
            retry = !c.q.empty();
        }
        if (lost_established)
        {
            wire_reconnects_.fetch_add(1, std::memory_order_relaxed);
            // Reconnect immediately once, then back off on failures.
            c.retry_at_ns = 0;
        }
        c.st = retry ? connection::state::closed : connection::state::idle;
    }
    else
    {
        c.st = connection::state::closed;    // swept from in_conns_
    }
}

void socket_transport::accept_pending(endpoint_info& ep)
{
    for (;;)
    {
        int const fd = ::accept(ep.listen_fd, nullptr, nullptr);
        if (fd < 0)
        {
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != ECONNABORTED && errno != EINTR)
                wire_accept_failures_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        set_nonblock(fd);
        set_cloexec(fd);
        if (params_.kind == socket_params::family::tcp)
        {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        }

        auto c = std::make_unique<connection>();
        c->fd = fd;
        c->st = connection::state::open;
        c->outbound = false;
        c->endpoint_index = static_cast<std::uint32_t>(-1);
        auto* raw = c.get();
        c->decoder = std::make_unique<wire::frame_decoder>(
            params_.max_frame_bytes,
            [this, raw](wire::frame_header const& h,
                serialization::shared_buffer&& payload) {
                on_frame(*raw, h, std::move(payload));
            },
            [this, raw](wire::decode_error e) { on_decode_error(*raw, e); });
        // The acceptor answers with its own HELLO so the connector can
        // verify it reached the process it meant to reach.
        send_hello(*c);
        wire_accepts_.fetch_add(1, std::memory_order_relaxed);
        in_conns_.push_back(std::move(c));
    }
}

void socket_transport::handle_writable(connection& c)
{
    // Handshake-first: nothing leaves before our HELLO.
    while (c.hello_off < c.hello_buf.size())
    {
        auto const n = ::send(c.fd, c.hello_buf.data() + c.hello_off,
            c.hello_buf.size() - c.hello_off, MSG_NOSIGNAL);
        if (n < 0)
        {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                return;
            close_connection(c, true);
            return;
        }
        if (c.hello_off != 0)
            wire_partial_writes_.fetch_add(1, std::memory_order_relaxed);
        c.hello_off += static_cast<std::size_t>(n);
        wire_bytes_sent_.fetch_add(
            static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    }
    if (!c.hello_buf.empty() && c.hello_off == c.hello_buf.size())
    {
        c.hello_buf.clear();
        c.hello_off = 0;
        wire_frames_sent_.fetch_add(1, std::memory_order_relaxed);
    }

    for (;;)
    {
        out_frame* f = nullptr;
        {
            std::lock_guard lock(c.qlock);
            if (c.q.empty())
                return;
            f = &c.q.front();
        }
        // Safe to touch *f without the lock: only the IO thread pops or
        // mutates the front entry; senders only push_back.  (purge_queue
        // never removes a partially-written front either.)

        bool const resumed = c.write_off != 0;
        std::size_t const total = f->total();
        while (c.write_off < total)
        {
            std::uint8_t const* base;
            std::size_t chunk;
            if (c.write_off < wire::header_size)
            {
                base = f->header + c.write_off;
                chunk = wire::header_size - c.write_off;
            }
            else
            {
                std::size_t const off = c.write_off - wire::header_size;
                base = f->payload.data() + off;
                chunk = f->payload.size() - off;
            }
            auto const n = ::send(c.fd, base, chunk, MSG_NOSIGNAL);
            if (n < 0)
            {
                if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                    return;
                close_connection(c, true);
                return;
            }
            c.write_off += static_cast<std::size_t>(n);
            wire_bytes_sent_.fetch_add(
                static_cast<std::uint64_t>(n), std::memory_order_relaxed);
        }
        if (resumed)
            wire_partial_writes_.fetch_add(1, std::memory_order_relaxed);

        // Frame fully on the wire: custody passes to the kernel (remote
        // destinations) or to the loopback-transit gauge (local ones,
        // released again at delivery).
        wire_frames_sent_.fetch_add(1, std::memory_order_relaxed);
        if (f->is_data)
        {
            queued_frames_.fetch_sub(1, std::memory_order_acq_rel);
            if (f->local_dst)
                loopback_transit_.fetch_add(1, std::memory_order_acq_rel);
        }
        {
            std::lock_guard lock(c.qlock);
            c.q_bytes -= total;
            c.q.pop_front();
            c.write_off = 0;
        }
        drain_cv_.notify_all();
    }
}

void socket_transport::handle_readable(connection& c)
{
    if (!c.decoder)
        return;
    if (c.decoder->buffered_bytes() != 0)
        wire_partial_reads_.fetch_add(1, std::memory_order_relaxed);

    std::uint8_t buf[64 * 1024];
    for (;;)
    {
        auto const n = ::recv(c.fd, buf, sizeof buf, 0);
        if (n > 0)
        {
            wire_bytes_received_.fetch_add(
                static_cast<std::uint64_t>(n), std::memory_order_relaxed);
            if (!c.decoder->feed(buf, static_cast<std::size_t>(n)))
            {
                // Fatal decode error: the stream is unsynchronized.  Cut
                // the connection; reconnect gives both sides a clean one.
                close_connection(c, true);
                return;
            }
            if (c.close_requested)
            {
                // Handshake rejection noted by on_frame(): the close must
                // happen here, outside the decoder's callback, or the
                // decoder would be destroyed while feed() still runs.
                close_connection(c, false);
                return;
            }
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or hard error.
        close_connection(c, n == 0 && c.peer_goodbye ? false : true);
        return;
    }
}

void socket_transport::on_decode_error(connection& c, wire::decode_error e)
{
    using wire::decode_error;
    switch (e)
    {
    case decode_error::bad_payload_crc:
        wire_crc_drops_.fetch_add(1, std::memory_order_relaxed);
        // A data frame from our own process was in loopback transit;
        // its CRC death must release the custody slot (conservatively:
        // we cannot read the damaged frame's src, but on a self-loop
        // every data frame is ours).
        if (c.self_loop && release_loopback_slot())
        {
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            drain_cv_.notify_all();
        }
        break;
    case decode_error::oversized:
        wire_oversized_drops_.fetch_add(1, std::memory_order_relaxed);
        wire_desync_drops_.fetch_add(1, std::memory_order_relaxed);
        break;
    case decode_error::truncated:
        wire_truncated_drops_.fetch_add(1, std::memory_order_relaxed);
        break;
    default:
        wire_desync_drops_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
}

void socket_transport::on_frame(connection& c, wire::frame_header const& h,
    serialization::shared_buffer&& payload)
{
    // A rejected handshake condemned this connection; ignore anything the
    // decoder still parses out of the same feed() chunk.
    if (c.close_requested)
        return;

    wire_frames_received_.fetch_add(1, std::memory_order_relaxed);

    switch (static_cast<wire::frame_kind>(h.kind))
    {
    case wire::frame_kind::data:
        deliver_data(c, h, std::move(payload));
        break;

    case wire::frame_kind::hello:
    {
        hello_payload p{};
        if (payload.size() != sizeof p)
        {
            wire_handshake_failures_.fetch_add(1, std::memory_order_relaxed);
            // Only a known peer (outbound) failing its handshake dooms
            // bootstrap; a stray client reaching our listener is just
            // closed and counted.
            if (c.outbound)
                ready_failed_.store(true, std::memory_order_release);
            c.close_requested = true;
            break;
        }
        std::memcpy(&p, payload.data(), sizeof p);
        if (p.num_localities != num_localities_ ||
            p.registry_digest != registry_digest_)
        {
            // Geometry or action-registry mismatch: executing this
            // peer's parcels could invoke the wrong actions.  Refuse.
            COAL_LOG_ERROR("wire",
                "handshake rejected: localities %u vs %u, digest %llx vs "
                "%llx",
                p.num_localities, num_localities_,
                static_cast<unsigned long long>(p.registry_digest),
                static_cast<unsigned long long>(registry_digest_));
            wire_handshake_failures_.fetch_add(1, std::memory_order_relaxed);
            if (c.outbound)
                ready_failed_.store(true, std::memory_order_release);
            c.close_requested = true;
            break;
        }
        c.self_loop = p.nonce == nonce_;
        c.remote_first_rank = p.first_rank;
        c.remote_num_ranks = p.num_ranks;
        c.hello_verified = true;
        break;
    }

    case wire::frame_kind::barrier_enter:
    {
        barrier_payload p{};
        if (payload.size() == sizeof p)
        {
            std::memcpy(&p, payload.data(), sizeof p);
            barrier_note_entered(p.process, p.generation);
        }
        break;
    }

    case wire::frame_kind::barrier_release:
    {
        barrier_payload p{};
        if (payload.size() == sizeof p)
        {
            std::memcpy(&p, payload.data(), sizeof p);
            std::uint64_t cur =
                barrier_released_.load(std::memory_order_relaxed);
            while (cur < p.generation &&
                !barrier_released_.compare_exchange_weak(cur, p.generation))
            {
            }
        }
        break;
    }

    case wire::frame_kind::goodbye:
        c.peer_goodbye = true;
        break;
    }
}

/// Clamped decrement of the loopback custody gauge.  drain()'s stall
/// reconciliation can zero the gauge while a frame still sits in kernel
/// buffers; when that frame is delivered afterwards, an unconditional
/// fetch_sub would wrap the unsigned count to ~2^64 and wedge every later
/// drain.  Returns whether a slot was actually released.
bool socket_transport::release_loopback_slot() noexcept
{
    std::uint64_t cur = loopback_transit_.load(std::memory_order_acquire);
    while (cur != 0)
    {
        if (loopback_transit_.compare_exchange_weak(
                cur, cur - 1, std::memory_order_acq_rel))
            return true;
    }
    return false;
}

void socket_transport::deliver_data(connection& c,
    wire::frame_header const& h, serialization::shared_buffer&& payload)
{
    // Release the loopback custody slot first — whatever happens next
    // (delivered or dropped), the frame is no longer in transit.
    if (c.self_loop && release_loopback_slot())
        drain_cv_.notify_all();

    delivery_handler handler;
    bool down;
    {
        std::lock_guard lock(mutex_);
        down = h.src >= num_localities_ || h.dst >= num_localities_ ||
            down_[h.src] != 0 || down_[h.dst] != 0;
        if (!down && h.dst < num_localities_)
            handler = handlers_[h.dst];
    }

    if (down || !handler || stopping_.load(std::memory_order_acquire))
    {
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    bytes_delivered_.fetch_add(payload.size(), std::memory_order_relaxed);
    handler(h.src, std::move(payload));
}

// ---------------------------------------------------------------------
// main loop
// ---------------------------------------------------------------------

std::int64_t socket_transport::next_poll_timeout_ms(
    std::int64_t now_ns_) const noexcept
{
    std::int64_t timeout_ms = 50;
    bool const eager = eager_connect_.load(std::memory_order_acquire);
    for (auto const& cp : out_conns_)
    {
        auto& c = *cp;
        if (c.st != connection::state::closed)
            continue;
        bool has_work;
        {
            std::lock_guard lock(c.qlock);
            has_work = !c.q.empty();
        }
        // A closed connection with nothing to send (and no eager
        // bootstrap) just rests; no point spinning on its retry clock.
        if (!(has_work || eager))
            continue;
        auto const ms = c.retry_at_ns > now_ns_ ?
            (c.retry_at_ns - now_ns_) / 1'000'000 + 1 :
            1;
        timeout_ms = std::min(timeout_ms, ms);
    }
    return timeout_ms;
}

void socket_transport::io_loop()
{
    std::vector<::pollfd> pfds;
    std::vector<connection*> pfd_conns;    // index-aligned; null = listener

    while (!io_stop_.load(std::memory_order_acquire))
    {
        std::int64_t const now = now_ns();

        // Kick idle/closed outbound connections that have work (or that
        // bootstrap wants eagerly connected).
        bool const eager = eager_connect_.load(std::memory_order_acquire);
        for (auto& cp : out_conns_)
        {
            auto& c = *cp;
            bool has_work;
            {
                std::lock_guard lock(c.qlock);
                has_work = !c.q.empty();
            }
            if ((has_work || eager) &&
                (c.st == connection::state::idle ||
                    (c.st == connection::state::closed &&
                        now >= c.retry_at_ns)))
            {
                start_connect(c, now);
            }
        }

        pfds.clear();
        pfd_conns.clear();

        pfds.push_back({wake_pipe_[0], POLLIN, 0});
        pfd_conns.push_back(nullptr);

        for (auto& ep : endpoints_)
        {
            if (ep->is_local && ep->listen_fd >= 0)
            {
                pfds.push_back({ep->listen_fd, POLLIN, 0});
                pfd_conns.push_back(nullptr);
            }
        }
        std::size_t const first_conn = pfds.size();

        auto add_conn = [&](connection& c) {
            if (c.fd < 0)
                return;
            short ev = 0;
            if (c.st == connection::state::connecting)
                ev = POLLOUT;
            else if (c.st == connection::state::open)
            {
                ev = POLLIN;
                bool pending_write = c.hello_off < c.hello_buf.size();
                if (!pending_write)
                {
                    std::lock_guard lock(c.qlock);
                    pending_write = !c.q.empty();
                }
                if (pending_write)
                    ev |= POLLOUT;
            }
            if (ev != 0)
            {
                pfds.push_back({c.fd, ev, 0});
                pfd_conns.push_back(&c);
            }
        };
        for (auto& c : out_conns_)
            add_conn(*c);
        for (auto& c : in_conns_)
            add_conn(*c);

        int const timeout =
            static_cast<int>(next_poll_timeout_ms(now));
        int const nready =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout);
        if (nready < 0 && errno != EINTR)
            break;

        if (pfds[0].revents & POLLIN)
        {
            char buf[256];
            while (::read(wake_pipe_[0], buf, sizeof buf) > 0)
            {
            }
        }

        // Listeners.
        {
            std::size_t i = 1;
            for (auto& ep : endpoints_)
            {
                if (!(ep->is_local && ep->listen_fd >= 0))
                    continue;
                if (pfds[i].revents & POLLIN)
                    accept_pending(*ep);
                ++i;
            }
        }

        for (std::size_t i = first_conn; i != pfds.size(); ++i)
        {
            auto* c = pfd_conns[i];
            if (c == nullptr || c->fd < 0)
                continue;
            short const re = pfds[i].revents;
            if (c->st == connection::state::connecting)
            {
                if (re & (POLLOUT | POLLERR | POLLHUP))
                {
                    int err = 0;
                    ::socklen_t len = sizeof err;
                    ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
                    if (err == 0)
                        finish_connect(*c, now);
                    else
                        connect_failed(*c, now);
                }
                continue;
            }
            if (re & (POLLERR | POLLHUP))
            {
                // Half-close still delivers buffered bytes via POLLIN;
                // drain first, the read path notices EOF itself.
                handle_readable(*c);
                if (c->fd >= 0 && !(re & POLLIN))
                    close_connection(*c, true);
                continue;
            }
            if (re & POLLIN)
                handle_readable(*c);
            if (c->fd >= 0 && (re & POLLOUT))
                handle_writable(*c);
        }

        // Opportunistic writes: a sender may have queued onto an open
        // connection after the pollset snapshot.
        for (auto& c : out_conns_)
        {
            if (c->fd >= 0 && c->st == connection::state::open)
                handle_writable(*c);
        }

        // Sweep closed inbound connections.
        in_conns_.erase(
            std::remove_if(in_conns_.begin(), in_conns_.end(),
                [](auto const& c) { return c->fd < 0; }),
            in_conns_.end());

        // Service requests handed over by user threads: the IO thread is
        // the only one allowed to restructure queues or touch fds, so
        // chaos kills and forced drops funnel through here.
        {
            std::vector<std::uint32_t> purges;
            {
                std::lock_guard lock(mutex_);
                purges.swap(pending_purges_);
            }
            for (std::uint32_t locality : purges)
            {
                for (auto& c : out_conns_)
                    purge_queue(*c, locality);
            }
            if (!purges.empty())
                drain_cv_.notify_all();
        }
        if (std::int32_t const ep_index =
                drop_endpoint_.exchange(-1, std::memory_order_acq_rel);
            ep_index >= 0)
        {
            auto& c = *out_conns_[static_cast<std::uint32_t>(ep_index)];
            if (c.fd >= 0 && c.st == connection::state::open)
                close_connection(c, true);
        }

        // Drain reconciliation (see drain()): purge queues that cannot
        // make progress so quiesce never hangs on a dead endpoint.
        if (purge_requested_.exchange(false, std::memory_order_acq_rel))
        {
            for (auto& c : out_conns_)
            {
                if (c->st == connection::state::open)
                    continue;
                std::lock_guard lock(c->qlock);
                while (!c->q.empty())
                {
                    drop_frame_accounting(c->q.front());
                    c->q_bytes -= c->q.front().total();
                    c->q.pop_front();
                }
                c->write_off = 0;
            }
            drain_cv_.notify_all();
        }
    }
}

// ---------------------------------------------------------------------
// barrier / bootstrap
// ---------------------------------------------------------------------

void socket_transport::barrier_note_entered(
    std::uint32_t process, std::uint64_t gen)
{
    std::lock_guard lock(mutex_);
    if (process < barrier_entered_.size() &&
        barrier_entered_[process] < gen)
        barrier_entered_[process] = gen;
    barrier_maybe_release();
}

void socket_transport::barrier_maybe_release()
{
    // Caller holds mutex_.  Only the coordinator releases.
    if (endpoint_of_locality_[0] != self_endpoint_ ||
        !endpoints_[self_endpoint_]->is_local)
        return;

    for (;;)
    {
        std::uint64_t const g = barrier_released_gen_ + 1;
        bool all = barrier_entered_[self_endpoint_] >= g;
        for (std::uint32_t i = 0; all && i != endpoints_.size(); ++i)
        {
            if (!endpoints_[i]->is_local && barrier_entered_[i] < g)
                all = false;
        }
        if (!all)
            return;

        barrier_released_gen_ = g;
        std::uint64_t cur = barrier_released_.load(std::memory_order_relaxed);
        while (
            cur < g && !barrier_released_.compare_exchange_weak(cur, g))
        {
        }

        barrier_payload p{};
        p.generation = g;
        p.process = self_endpoint_;
        for (std::uint32_t i = 0; i != endpoints_.size(); ++i)
        {
            if (endpoints_[i]->is_local)
                continue;
            serialization::shared_buffer buf(&p, sizeof p);
            enqueue_control(
                i, wire::frame_kind::barrier_release, std::move(buf));
        }
    }
}

std::uint64_t socket_transport::enter_barrier()
{
    std::uint64_t gen;
    bool coordinator;
    {
        std::lock_guard lock(mutex_);
        gen = ++barrier_self_gen_;
        coordinator = endpoint_of_locality_[0] == self_endpoint_ &&
            endpoints_[self_endpoint_]->is_local;
        if (coordinator)
        {
            if (barrier_entered_[self_endpoint_] < gen)
                barrier_entered_[self_endpoint_] = gen;
            barrier_maybe_release();
        }
    }
    if (!coordinator)
    {
        barrier_payload p{};
        p.generation = gen;
        p.process = self_endpoint_;
        serialization::shared_buffer buf(&p, sizeof p);
        enqueue_control(endpoint_of_locality_[0],
            wire::frame_kind::barrier_enter, std::move(buf));
    }
    return gen;
}

bool socket_transport::await_ready()
{
    eager_connect_.store(true, std::memory_order_release);
    wake();

    std::int64_t const deadline =
        now_ns() + params_.bootstrap_timeout_ms * 1'000'000;
    for (;;)
    {
        if (ready_failed_.load(std::memory_order_acquire))
            return false;

        bool all = true;
        for (auto const& c : out_conns_)
        {
            if (!(c->st == connection::state::open && c->hello_verified))
            {
                all = false;
                break;
            }
        }
        if (all)
            return true;
        if (now_ns() > deadline)
        {
            COAL_LOG_ERROR("wire", "bootstrap timed out after %lld ms",
                static_cast<long long>(params_.bootstrap_timeout_ms));
            return false;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        wake();
    }
}

// ---------------------------------------------------------------------
// lifecycle / chaos / stats
// ---------------------------------------------------------------------

void socket_transport::purge_queue(
    connection& c, std::uint32_t locality_filter)
{
    std::lock_guard lock(c.qlock);
    // Never remove a partially-written front frame: cutting it mid-byte
    // would desynchronize the stream for every frame behind it.
    std::size_t const keep = c.write_off != 0 ? 1 : 0;
    for (std::size_t i = c.q.size(); i-- > keep;)
    {
        auto const& f = c.q[i];
        if (f.is_data &&
            (f.src == locality_filter || f.dst == locality_filter))
        {
            drop_frame_accounting(f);
            c.q_bytes -= f.total();
            c.q.erase(c.q.begin() + static_cast<std::ptrdiff_t>(i));
        }
    }
}

bool socket_transport::set_locality_down(std::uint32_t locality, bool down)
{
    if (locality >= num_localities_)
        return false;
    {
        std::lock_guard lock(mutex_);
        down_[locality] = down ? 1 : 0;
        if (down)
        {
            // Outbound frames already queued toward (or from) the dead
            // locality vanish, mirroring sim_network's wire-heap purge;
            // the IO thread (sole owner of queue structure) does the
            // purge.  Kernel-buffered frames are caught by the
            // delivery-side down check.
            pending_purges_.push_back(locality);
        }
    }
    wake();
    return true;
}

bool socket_transport::debug_drop_connection(std::uint32_t dst_locality)
{
    if (dst_locality >= num_localities_)
        return false;
    // Handed to the IO thread: it closes the established connection via
    // the normal lost-link path (drop partial frame, count a reconnect,
    // retry with backoff).  Touching the fd here would race the owner.
    drop_endpoint_.store(
        static_cast<std::int32_t>(endpoint_of_locality_[dst_locality]),
        std::memory_order_release);
    wake();
    return true;
}

void socket_transport::drain()
{
    std::uint64_t last_total = ~0ull;
    std::int64_t last_progress = now_ns();

    std::unique_lock lock(drain_mutex_);
    while (in_flight() != 0 && !io_stop_.load(std::memory_order_acquire))
    {
        std::uint64_t const total =
            messages_delivered_.load(std::memory_order_relaxed) +
            messages_dropped_.load(std::memory_order_relaxed);
        if (total != last_total)
        {
            last_total = total;
            last_progress = now_ns();
        }
        else if (now_ns() - last_progress >
            params_.drain_timeout_ms * 1'000'000)
        {
            // No forward progress: frames are stuck toward an endpoint
            // that will not come back (or loopback bytes died with a cut
            // self-connection).  Reconcile instead of hanging quiesce:
            // drop the stuck frames (counted) — the reliability layer
            // owns recovery.
            COAL_LOG_WARN("wire",
                "drain stalled %lld ms with %llu in flight; reconciling",
                static_cast<long long>(params_.drain_timeout_ms),
                static_cast<unsigned long long>(in_flight()));
            purge_requested_.store(true, std::memory_order_release);
            wake();
            drain_cv_.wait_for(lock, std::chrono::milliseconds(100));
            std::uint64_t transit =
                loopback_transit_.exchange(0, std::memory_order_acq_rel);
            if (transit != 0)
                messages_dropped_.fetch_add(
                    transit, std::memory_order_relaxed);
            return;
        }
        wake();
        drain_cv_.wait_for(lock, std::chrono::microseconds(500));
    }
}

void socket_transport::shutdown()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
    {
        if (io_thread_.joinable())
            io_thread_.join();
        return;
    }

    // Graceful drain: let the IO thread flush what is queued.
    std::int64_t const deadline =
        now_ns() + params_.drain_timeout_ms * 1'000'000;
    for (;;)
    {
        bool empty = true;
        for (auto& c : out_conns_)
        {
            std::lock_guard lock(c->qlock);
            if (!c->q.empty())
            {
                empty = false;
                break;
            }
        }
        if (empty || now_ns() > deadline)
            break;
        wake();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Announce the close so peers can tell graceful from crashed.
    for (std::uint32_t i = 0; i != endpoints_.size(); ++i)
    {
        auto& c = *out_conns_[i];
        if (c.st == connection::state::open)
            enqueue_control(
                i, wire::frame_kind::goodbye, serialization::shared_buffer{});
    }
    std::int64_t const bye_deadline = now_ns() + 100'000'000;
    for (;;)
    {
        bool empty = true;
        for (auto& c : out_conns_)
        {
            std::lock_guard lock(c->qlock);
            if (!c->q.empty())
            {
                empty = false;
                break;
            }
        }
        if (empty || now_ns() > bye_deadline)
            break;
        wake();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    io_stop_.store(true, std::memory_order_release);
    wake();
    if (io_thread_.joinable())
        io_thread_.join();

    // Account every frame that never made it out, then close the doors.
    for (auto& c : out_conns_)
    {
        std::lock_guard lock(c->qlock);
        for (auto const& f : c->q)
            drop_frame_accounting(f);
        c->q.clear();
        c->q_bytes = 0;
        c->write_off = 0;
        if (c->fd >= 0)
        {
            ::close(c->fd);
            c->fd = -1;
        }
    }
    for (auto& c : in_conns_)
    {
        if (c->fd >= 0)
        {
            ::close(c->fd);
            c->fd = -1;
        }
    }
    in_conns_.clear();
    for (auto& ep : endpoints_)
    {
        if (ep->listen_fd >= 0)
        {
            ::close(ep->listen_fd);
            ep->listen_fd = -1;
        }
        if (!ep->uds_path.empty())
            ::unlink(ep->uds_path.c_str());
    }
    for (int& fd : wake_pipe_)
    {
        if (fd >= 0)
        {
            ::close(fd);
            fd = -1;
        }
    }

    std::uint64_t const transit =
        loopback_transit_.exchange(0, std::memory_order_acq_rel);
    if (transit != 0)
        messages_dropped_.fetch_add(transit, std::memory_order_relaxed);
}

transport_stats socket_transport::stats() const
{
    transport_stats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.messages_delivered =
        messages_delivered_.load(std::memory_order_relaxed);
    s.bytes_delivered = bytes_delivered_.load(std::memory_order_relaxed);
    s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed);
    return s;
}

socket_wire_stats socket_transport::wire_stats() const
{
    socket_wire_stats s;
    s.bytes_sent = wire_bytes_sent_.load(std::memory_order_relaxed);
    s.bytes_received = wire_bytes_received_.load(std::memory_order_relaxed);
    s.frames_sent = wire_frames_sent_.load(std::memory_order_relaxed);
    s.frames_received =
        wire_frames_received_.load(std::memory_order_relaxed);
    s.reconnects = wire_reconnects_.load(std::memory_order_relaxed);
    s.connects = wire_connects_.load(std::memory_order_relaxed);
    s.accepts = wire_accepts_.load(std::memory_order_relaxed);
    s.partial_write_resumptions =
        wire_partial_writes_.load(std::memory_order_relaxed);
    s.partial_read_resumptions =
        wire_partial_reads_.load(std::memory_order_relaxed);
    s.crc_drops = wire_crc_drops_.load(std::memory_order_relaxed);
    s.desync_drops = wire_desync_drops_.load(std::memory_order_relaxed);
    s.oversized_drops =
        wire_oversized_drops_.load(std::memory_order_relaxed);
    s.truncated_drops =
        wire_truncated_drops_.load(std::memory_order_relaxed);
    s.connect_failures =
        wire_connect_failures_.load(std::memory_order_relaxed);
    s.accept_failures =
        wire_accept_failures_.load(std::memory_order_relaxed);
    s.handshake_failures =
        wire_handshake_failures_.load(std::memory_order_relaxed);
    s.backlog_drops = wire_backlog_drops_.load(std::memory_order_relaxed);
    return s;
}

}    // namespace coal::net
