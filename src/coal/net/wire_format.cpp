#include <coal/net/wire_format.hpp>

#include <array>
#include <cstring>

namespace coal::net::wire {

namespace {

/// CRC32C lookup table (reflected polynomial 0x82f63b78), built once.
struct crc_table
{
    std::array<std::uint32_t, 256> t{};

    constexpr crc_table()
    {
        for (std::uint32_t i = 0; i != 256; ++i)
        {
            std::uint32_t c = i;
            for (int k = 0; k != 8; ++k)
                c = (c & 1u) ? (0x82f63b78u ^ (c >> 1)) : (c >> 1);
            t[i] = c;
        }
    }
};

constexpr crc_table g_crc{};

void put_u16(std::uint8_t* p, std::uint16_t v) noexcept
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u32(std::uint8_t* p, std::uint32_t v) noexcept
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

[[nodiscard]] std::uint16_t get_u16(std::uint8_t const* p) noexcept
{
    return static_cast<std::uint16_t>(
        p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] std::uint32_t get_u32(std::uint8_t const* p) noexcept
{
    return p[0] | (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
}

}    // namespace

std::uint32_t crc32c(
    void const* data, std::size_t size, std::uint32_t seed) noexcept
{
    auto const* p = static_cast<std::uint8_t const*>(data);
    std::uint32_t c = ~seed;
    for (std::size_t i = 0; i != size; ++i)
        c = g_crc.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return ~c;
}

void encode_header(frame_header const& h, std::uint8_t* out) noexcept
{
    put_u32(out + 0, frame_magic);
    out[4] = wire_version;
    out[5] = h.kind;
    put_u16(out + 6, h.flags);
    put_u32(out + 8, h.src);
    put_u32(out + 12, h.dst);
    put_u32(out + 16, h.payload_len);
    put_u32(out + 20, h.payload_crc);
    put_u32(out + 24, h.seq);
    put_u32(out + 28, crc32c(out, header_size - 4));
}

char const* to_string(decode_error e) noexcept
{
    switch (e)
    {
    case decode_error::bad_magic:
        return "bad-magic";
    case decode_error::bad_version:
        return "bad-version";
    case decode_error::bad_flags:
        return "bad-flags";
    case decode_error::bad_header_crc:
        return "bad-header-crc";
    case decode_error::oversized:
        return "oversized";
    case decode_error::bad_payload_crc:
        return "bad-payload-crc";
    case decode_error::truncated:
        return "truncated";
    }
    return "unknown";
}

frame_decoder::frame_decoder(std::size_t max_frame_bytes,
    frame_handler on_frame, error_handler on_error)
  : max_frame_bytes_(max_frame_bytes)
  , on_frame_(std::move(on_frame))
  , on_error_(std::move(on_error))
{
}

bool frame_decoder::parse_header() noexcept
{
    // Validation order matters for containment: everything about the
    // header is checked before payload_len is acted upon.
    auto fail = [this](decode_error e) {
        failed_ = true;
        ++stats_.fatal_errors;
        if (e == decode_error::oversized)
            ++stats_.oversized_drops;
        if (on_error_)
            on_error_(e);
        return false;
    };

    if (get_u32(header_ + 0) != frame_magic)
        return fail(decode_error::bad_magic);
    if (get_u32(header_ + 28) != crc32c(header_, header_size - 4))
        return fail(decode_error::bad_header_crc);
    if (header_[4] != wire_version)
        return fail(decode_error::bad_version);
    if (get_u16(header_ + 6) != 0)
        return fail(decode_error::bad_flags);

    current_.kind = header_[5];
    current_.flags = 0;
    current_.src = get_u32(header_ + 8);
    current_.dst = get_u32(header_ + 12);
    current_.payload_len = get_u32(header_ + 16);
    current_.payload_crc = get_u32(header_ + 20);
    current_.seq = get_u32(header_ + 24);

    if (current_.payload_len > max_frame_bytes_)
        return fail(decode_error::oversized);

    // The only allocation the decoder ever makes, and only for a
    // CRC-validated, cap-checked length.
    payload_ = current_.payload_len != 0 ?
        serialization::shared_buffer(current_.payload_len) :
        serialization::shared_buffer{};
    in_payload_ = true;
    have_ = 0;
    return true;
}

bool frame_decoder::feed(void const* data, std::size_t size) noexcept
{
    if (failed_)
        return false;

    auto const* p = static_cast<std::uint8_t const*>(data);
    while (size != 0)
    {
        if (!in_payload_)
        {
            std::size_t const want = header_size - have_;
            std::size_t const take = want < size ? want : size;
            std::memcpy(header_ + have_, p, take);
            have_ += take;
            p += take;
            size -= take;
            if (have_ != header_size)
                break;
            if (!parse_header())
                return false;
        }

        // Payload stage (possibly zero-length).
        std::size_t const want = current_.payload_len - have_;
        std::size_t const take = want < size ? want : size;
        if (take != 0)
        {
            std::memcpy(payload_.mutable_data() + have_, p, take);
            have_ += take;
            p += take;
            size -= take;
        }
        if (have_ != current_.payload_len)
            break;

        // Frame complete: verify the payload CRC before delivery.
        if (crc32c(payload_.data(), payload_.size()) != current_.payload_crc)
        {
            ++stats_.crc_drops;
            if (on_error_)
                on_error_(decode_error::bad_payload_crc);
        }
        else
        {
            ++stats_.frames;
            stats_.bytes += header_size + current_.payload_len;
            if (on_frame_)
                on_frame_(current_, std::move(payload_));
        }
        payload_ = serialization::shared_buffer{};
        in_payload_ = false;
        have_ = 0;
    }
    return true;
}

void frame_decoder::finish() noexcept
{
    if (failed_)
        return;
    if (have_ != 0 || in_payload_)
    {
        ++stats_.truncated_drops;
        if (on_error_)
            on_error_(decode_error::truncated);
    }
    payload_ = serialization::shared_buffer{};
    in_payload_ = false;
    have_ = 0;
}

void frame_decoder::reset() noexcept
{
    payload_ = serialization::shared_buffer{};
    in_payload_ = false;
    have_ = 0;
    failed_ = false;
}

}    // namespace coal::net::wire
