#include <coal/net/faulty_transport.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/config.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>

#include <cstdlib>
#include <utility>
#include <vector>

namespace coal::net {

namespace {

    /// splitmix64 finalizer — the per-message fault decisions hash
    /// (seed, link, ordinal, salt) instead of consuming a shared RNG
    /// stream, so each link's fault pattern is reproducible regardless
    /// of how sends on *other* links interleave.
    std::uint64_t mix64(std::uint64_t x) noexcept
    {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    double roll(std::uint64_t seed, std::uint64_t link, std::uint64_t ordinal,
        std::uint64_t salt) noexcept
    {
        std::uint64_t const h = mix64(seed ^ mix64(link ^ salt) ^ ordinal);
        return static_cast<double>(h >> 11) * 0x1.0p-53;
    }

    constexpr std::uint64_t salt_drop = 0xd409u;
    constexpr std::uint64_t salt_duplicate = 0xd7b1u;
    constexpr std::uint64_t salt_reorder = 0x4e04u;

}    // namespace

bool fault_plan::active() const noexcept
{
    if (drop_probability > 0.0 || duplicate_probability > 0.0 ||
        reorder_probability > 0.0 || !blackouts.empty())
        return true;
    for (auto const& lf : link_overrides)
        if (lf.drop_probability > 0.0)
            return true;
    return false;
}

double fault_plan::drop_for(
    std::uint32_t src, std::uint32_t dst) const noexcept
{
    for (auto const& lf : link_overrides)
        if (lf.src == src && lf.dst == dst)
            return lf.drop_probability;
    return drop_probability;
}

std::uint64_t fault_plan::resolve_seed(std::uint64_t fallback) noexcept
{
    char const* env = std::getenv("COAL_FAULT_SEED");
    if (env == nullptr || *env == '\0')
        return fallback;
    char* end = nullptr;
    unsigned long long const v = std::strtoull(env, &end, 0);
    if (end == env)
    {
        COAL_LOG_WARN(
            "net", "ignoring unparsable COAL_FAULT_SEED='%s'", env);
        return fallback;
    }
    return static_cast<std::uint64_t>(v);
}

fault_plan fault_plan::from_config(config const& cfg)
{
    fault_plan plan;
    plan.seed = resolve_seed(static_cast<std::uint64_t>(
        cfg.get_int("fault.seed", static_cast<std::int64_t>(plan.seed))));
    plan.drop_probability = cfg.get_double("fault.drop", 0.0);
    plan.duplicate_probability = cfg.get_double("fault.duplicate", 0.0);
    plan.reorder_probability = cfg.get_double("fault.reorder", 0.0);

    if (cfg.contains("fault.blackout.end_us"))
    {
        blackout_window w;
        w.start_us = cfg.get_int("fault.blackout.start_us", 0);
        w.end_us = cfg.get_int("fault.blackout.end_us", 0);
        auto const src = cfg.get_int("fault.blackout.src", -1);
        auto const dst = cfg.get_int("fault.blackout.dst", -1);
        if (src >= 0)
            w.src = static_cast<std::uint32_t>(src);
        if (dst >= 0)
            w.dst = static_cast<std::uint32_t>(dst);
        if (w.end_us > w.start_us)
            plan.blackouts.push_back(w);
    }
    return plan;
}

namespace {

    /// Every fault schedule announces its seed up front, so a failing
    /// test's log always carries what COAL_FAULT_SEED needs for an exact
    /// replay.
    fault_plan announce(fault_plan plan)
    {
        plan.seed = fault_plan::resolve_seed(plan.seed);
        if (plan.active())
            COAL_LOG_INFO("net",
                "fault plan seed=%llu (set COAL_FAULT_SEED=%llu to replay)",
                static_cast<unsigned long long>(plan.seed),
                static_cast<unsigned long long>(plan.seed));
        return plan;
    }

}    // namespace

faulty_transport::faulty_transport(
    std::unique_ptr<transport> inner, fault_plan plan)
  : owned_(std::move(inner))
  , inner_(owned_.get())
  , plan_(announce(std::move(plan)))
  , epoch_ns_(now_ns())
{
    COAL_ASSERT(inner_ != nullptr);
}

faulty_transport::faulty_transport(transport& inner, fault_plan plan)
  : inner_(&inner)
  , plan_(announce(std::move(plan)))
  , epoch_ns_(now_ns())
{
}

faulty_transport::~faulty_transport()
{
    shutdown();
}

void faulty_transport::set_delivery_handler(
    std::uint32_t dst, delivery_handler handler)
{
    {
        std::lock_guard lock(mutex_);
        handlers_[dst] = std::move(handler);
    }
    inner_->set_delivery_handler(dst,
        [this, dst](std::uint32_t src, serialization::shared_buffer&& buf) {
            on_deliver(src, dst, std::move(buf));
        });
}

void faulty_transport::send(std::uint32_t src, std::uint32_t dst,
    serialization::wire_message&& message)
{
    std::size_t const bytes = message.size();
    std::uint64_t const key = link_key(src, dst);

    bool drop = false;
    bool duplicate = false;
    {
        std::lock_guard lock(mutex_);
        if (stopped_ || is_down(src) || is_down(dst))
        {
            messages_sent_.fetch_add(1, std::memory_order_relaxed);
            bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }

        std::int64_t const t_us = (now_ns() - epoch_ns_) / 1000;
        for (auto const& w : plan_.blackouts)
        {
            if (w.matches(src, dst, t_us))
            {
                drop = true;
                break;
            }
        }

        std::uint64_t const ordinal = send_ordinal_[key]++;
        if (!drop)
        {
            double const p = plan_.drop_for(src, dst);
            if (p > 0.0 && roll(plan_.seed, key, ordinal, salt_drop) < p)
                drop = true;
            else if (plan_.duplicate_probability > 0.0 &&
                roll(plan_.seed, key, ordinal, salt_duplicate) <
                    plan_.duplicate_probability)
                duplicate = true;
        }
    }

    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);

    if (drop)
    {
        // Lost "on the wire": the sender already paid its CPU cost at the
        // parcel layer; the inner transport never sees the message.
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        drops_injected_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    if (duplicate)
    {
        // The forged copy counts as an extra sent message so that
        // sent == delivered + dropped still balances.  Copying a
        // wire_message shares its fragments by refcount — the duplicate
        // costs no byte copies until the wire-boundary flatten.
        messages_sent_.fetch_add(1, std::memory_order_relaxed);
        bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
        duplicates_injected_.fetch_add(1, std::memory_order_relaxed);
        inner_->send(src, dst, serialization::wire_message(message));
    }

    inner_->send(src, dst, std::move(message));
}

void faulty_transport::on_deliver(std::uint32_t src, std::uint32_t dst,
    serialization::shared_buffer&& buffer)
{
    std::uint64_t const key = link_key(src, dst);

    delivery_handler handler;
    bool have_released = false;
    held_message released;
    {
        std::lock_guard lock(mutex_);
        if (stopped_ || is_down(src) || is_down(dst))
        {
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }

        auto const hit = handlers_.find(dst);
        if (hit == handlers_.end() || !hit->second)
        {
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        handler = hit->second;

        auto const slot = held_.find(key);
        if (slot != held_.end())
        {
            // A message is parked on this link: deliver the newcomer
            // first, then release the parked one — a pairwise swap.
            released = std::move(slot->second);
            held_.erase(slot);
            held_count_.fetch_sub(1, std::memory_order_acq_rel);
            have_released = true;
        }
        else if (plan_.reorder_probability > 0.0)
        {
            std::uint64_t const ordinal = recv_ordinal_[key]++;
            if (roll(plan_.seed, key, ordinal, salt_reorder) <
                plan_.reorder_probability)
            {
                held_.emplace(key, held_message{src, std::move(buffer)});
                held_count_.fetch_add(1, std::memory_order_acq_rel);
                return;
            }
        }
    }

    std::size_t const bytes = buffer.size();
    handler(src, std::move(buffer));
    messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    bytes_delivered_.fetch_add(bytes, std::memory_order_relaxed);

    if (have_released)
    {
        std::size_t const rbytes = released.payload.size();
        handler(released.src, std::move(released.payload));
        messages_delivered_.fetch_add(1, std::memory_order_relaxed);
        bytes_delivered_.fetch_add(rbytes, std::memory_order_relaxed);
    }
}

std::size_t faulty_transport::release_held()
{
    std::vector<std::pair<std::uint32_t, held_message>> out;
    {
        std::lock_guard lock(mutex_);
        for (auto& [key, msg] : held_)
        {
            auto const dst = static_cast<std::uint32_t>(key & 0xffffffffu);
            out.emplace_back(dst, std::move(msg));
        }
        held_.clear();
        held_count_.fetch_sub(out.size(), std::memory_order_acq_rel);
    }

    for (auto& [dst, msg] : out)
    {
        delivery_handler handler;
        {
            std::lock_guard lock(mutex_);
            auto const hit = handlers_.find(dst);
            if (hit != handlers_.end())
                handler = hit->second;
        }
        std::size_t const bytes = msg.payload.size();
        if (handler)
        {
            handler(msg.src, std::move(msg.payload));
            messages_delivered_.fetch_add(1, std::memory_order_relaxed);
            bytes_delivered_.fetch_add(bytes, std::memory_order_relaxed);
        }
        else
        {
            messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    return out.size();
}

bool faulty_transport::set_locality_down(std::uint32_t locality, bool down)
{
    std::size_t dropped_parked = 0;
    {
        std::lock_guard lock(mutex_);
        if (locality >= down_.size())
            down_.resize(static_cast<std::size_t>(locality) + 1, 0);
        down_[locality] = down ? 1 : 0;
        if (down)
        {
            // Reorder-parked frames on the crashed locality's links die
            // with it.
            for (auto it = held_.begin(); it != held_.end();)
            {
                auto const src =
                    static_cast<std::uint32_t>(it->first >> 32);
                auto const dst =
                    static_cast<std::uint32_t>(it->first & 0xffffffffu);
                if (src == locality || dst == locality)
                {
                    it = held_.erase(it);
                    ++dropped_parked;
                }
                else
                {
                    ++it;
                }
            }
            held_count_.fetch_sub(dropped_parked, std::memory_order_acq_rel);
        }
    }
    if (dropped_parked != 0)
        messages_dropped_.fetch_add(
            dropped_parked, std::memory_order_relaxed);

    // Forward so an inner sim_network purges its wire heap as well; the
    // decorator's own blackhole covers inner transports without chaos
    // support (loopback delivers through on_deliver, which now drops).
    inner_->set_locality_down(locality, down);
    return true;
}

void faulty_transport::drain()
{
    for (;;)
    {
        inner_->drain();
        if (release_held() == 0 && inner_->in_flight() == 0)
            return;
    }
}

transport_stats faulty_transport::stats() const
{
    transport_stats s;
    s.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    s.messages_delivered =
        messages_delivered_.load(std::memory_order_relaxed);
    s.bytes_delivered = bytes_delivered_.load(std::memory_order_relaxed);
    // Inner drops (shutdown races inside the wrapped transport) roll up so
    // the conservation invariant holds across the whole stack.
    s.messages_dropped = messages_dropped_.load(std::memory_order_relaxed) +
        inner_->stats().messages_dropped;
    s.drops_injected = drops_injected_.load(std::memory_order_relaxed);
    s.duplicates_injected =
        duplicates_injected_.load(std::memory_order_relaxed);
    return s;
}

void faulty_transport::shutdown()
{
    std::size_t dropped_held = 0;
    {
        std::lock_guard lock(mutex_);
        if (stopped_)
            return;
        stopped_ = true;
        dropped_held = held_.size();
        held_.clear();
        held_count_.fetch_sub(dropped_held, std::memory_order_acq_rel);
    }
    if (dropped_held != 0)
    {
        COAL_LOG_WARN("net", "shutdown drops %zu reorder-parked message(s)",
            dropped_held);
        messages_dropped_.fetch_add(dropped_held, std::memory_order_relaxed);
    }
    inner_->shutdown();
}

}    // namespace coal::net
