#include <coal/net/loopback.hpp>

#include <coal/common/assert.hpp>

namespace coal::net {

loopback_transport::loopback_transport(std::uint32_t num_localities)
  : num_localities_(num_localities)
  , handlers_(num_localities)
  , down_(num_localities, 0)
{
    COAL_ASSERT(num_localities > 0);
}

void loopback_transport::set_delivery_handler(
    std::uint32_t dst, delivery_handler handler)
{
    COAL_ASSERT(dst < num_localities_);
    std::lock_guard lock(mutex_);
    handlers_[dst] = std::move(handler);
}

void loopback_transport::send(std::uint32_t src, std::uint32_t dst,
    serialization::wire_message&& message)
{
    COAL_ASSERT(src < num_localities_ && dst < num_localities_);

    std::size_t const bytes = message.size();
    serialization::shared_buffer buffer = std::move(message).flatten();

    delivery_handler handler;
    bool dropped = false;
    {
        std::lock_guard lock(mutex_);
        if (stopped_ || down_[src] != 0 || down_[dst] != 0)
            dropped = true;
        else
            handler = handlers_[dst];
    }

    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(bytes, std::memory_order_relaxed);

    if (!dropped && handler)
    {
        handler(src, std::move(buffer));
        delivered_.fetch_add(1, std::memory_order_relaxed);
        bytes_delivered_.fetch_add(bytes, std::memory_order_relaxed);
    }
    else
    {
        // Post-shutdown sends and unregistered handlers count as drops so
        // that sent == delivered + dropped always holds.
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
}

transport_stats loopback_transport::stats() const
{
    transport_stats s;
    s.messages_sent = messages_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_.load(std::memory_order_relaxed);
    s.messages_delivered = delivered_.load(std::memory_order_relaxed);
    s.bytes_delivered = bytes_delivered_.load(std::memory_order_relaxed);
    s.messages_dropped = dropped_.load(std::memory_order_relaxed);
    return s;
}

void loopback_transport::shutdown()
{
    std::lock_guard lock(mutex_);
    stopped_ = true;
}

bool loopback_transport::set_locality_down(std::uint32_t locality, bool down)
{
    COAL_ASSERT(locality < num_localities_);
    std::lock_guard lock(mutex_);
    down_[locality] = down ? 1 : 0;
    return true;
}

}    // namespace coal::net
