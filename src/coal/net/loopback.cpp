#include <coal/net/loopback.hpp>

#include <coal/common/assert.hpp>

namespace coal::net {

loopback_transport::loopback_transport(std::uint32_t num_localities)
  : num_localities_(num_localities)
  , handlers_(num_localities)
{
    COAL_ASSERT(num_localities > 0);
}

void loopback_transport::set_delivery_handler(
    std::uint32_t dst, delivery_handler handler)
{
    COAL_ASSERT(dst < num_localities_);
    std::lock_guard lock(mutex_);
    handlers_[dst] = std::move(handler);
}

void loopback_transport::send(std::uint32_t src, std::uint32_t dst,
    serialization::byte_buffer&& buffer)
{
    COAL_ASSERT(src < num_localities_ && dst < num_localities_);

    delivery_handler handler;
    {
        std::lock_guard lock(mutex_);
        if (stopped_)
            return;
        handler = handlers_[dst];
    }

    messages_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(buffer.size(), std::memory_order_relaxed);

    if (handler)
        handler(src, std::move(buffer));
}

transport_stats loopback_transport::stats() const
{
    transport_stats s;
    s.messages_sent = messages_.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_.load(std::memory_order_relaxed);
    s.messages_delivered = s.messages_sent;
    s.bytes_delivered = s.bytes_sent;
    return s;
}

void loopback_transport::shutdown()
{
    std::lock_guard lock(mutex_);
    stopped_ = true;
}

}    // namespace coal::net
