#pragma once

/// \file topology.hpp
/// Cluster topology: localities grouped into "nodes".
///
/// The simulated interconnect is flat by default — every link prices the
/// same.  Real clusters are not: localities sharing a physical node talk
/// over shared memory (sub-µs latency, no NIC overhead) while cross-node
/// links pay the full network cost.  This header models the grouping as
/// a block partition — localities [0, s) form node 0, [s, 2s) node 1,
/// and so on with s = ceil(L / nodes) — which is both how schedulers lay
/// ranks out and what keeps node_of() a division instead of a table.
///
/// A topology with num_nodes <= 1 is *disabled*: every link classifies
/// as inter-node and the network behaves exactly as the flat single-tier
/// model always did.  This keeps the default-constructed runtime (and
/// every pre-topology test) bit-identical in behaviour.
///
/// The two-level structure is deliberately minimal so a later rack or
/// region tier is one more enum value and one more division, not a
/// redesign.

#include <algorithm>
#include <cstdint>

namespace coal::net {

/// Which pricing tier a directed link belongs to.
enum class link_tier : std::uint8_t
{
    intra_node = 0,    ///< both endpoints on the same node
    inter_node = 1,    ///< endpoints on different nodes (or topology off)
};

inline constexpr std::size_t link_tier_count = 2;

[[nodiscard]] constexpr char const* to_string(link_tier t) noexcept
{
    return t == link_tier::intra_node ? "intra-node" : "inter-node";
}

struct topology
{
    std::uint32_t num_localities = 1;
    std::uint32_t num_nodes = 1;

    /// True when the grouping actually partitions the localities.
    [[nodiscard]] constexpr bool enabled() const noexcept
    {
        return num_nodes > 1;
    }

    /// Localities per node (block partition; the last node may be short).
    [[nodiscard]] constexpr std::uint32_t node_size() const noexcept
    {
        std::uint32_t const nodes = std::max<std::uint32_t>(num_nodes, 1);
        return (num_localities + nodes - 1) / nodes;
    }

    [[nodiscard]] constexpr std::uint32_t node_of(
        std::uint32_t locality) const noexcept
    {
        return enabled() ? locality / node_size() : 0;
    }

    [[nodiscard]] constexpr bool same_node(
        std::uint32_t a, std::uint32_t b) const noexcept
    {
        return node_of(a) == node_of(b);
    }

    /// First locality of `node`.
    [[nodiscard]] constexpr std::uint32_t node_first(
        std::uint32_t node) const noexcept
    {
        return std::min(node * node_size(), num_localities);
    }

    /// One past the last locality of `node`.
    [[nodiscard]] constexpr std::uint32_t node_end(
        std::uint32_t node) const noexcept
    {
        return std::min(node_first(node) + node_size(), num_localities);
    }

    [[nodiscard]] constexpr link_tier tier_of(
        std::uint32_t src, std::uint32_t dst) const noexcept
    {
        return enabled() && same_node(src, dst) ? link_tier::intra_node :
                                                  link_tier::inter_node;
    }

    friend constexpr bool operator==(
        topology const&, topology const&) = default;
};

}    // namespace coal::net
