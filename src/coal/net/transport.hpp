#pragma once

/// \file transport.hpp
/// Abstract byte transport between localities — the seam where HPX would
/// plug a TCP or MPI parcelport.  send() accepts a scatter-gather
/// `wire_message` (fragment chain); a transport that needs contiguity
/// flattens exactly once at this boundary — for a single-fragment message
/// that is a zero-copy move-out, and any real gather is counted by the
/// buffer pool.  Delivery hands the receiver one contiguous refcounted
/// `shared_buffer` (whole framed messages, never partial fragments).
///
/// Delivery handlers are invoked on a transport-owned thread (or inline
/// for the loopback); they must be cheap — the parcel layer's handler
/// only moves the buffer into the destination's inbox queue.

#include <coal/serialization/buffer.hpp>
#include <coal/serialization/wire_message.hpp>

#include <cstdint>
#include <functional>

namespace coal::net {

/// Statistics every transport keeps (feeds /messages, /data and /net
/// counters).  Conservation invariant at quiescence:
/// `messages_sent == messages_delivered + messages_dropped`.
struct transport_stats
{
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t bytes_delivered = 0;
    /// Messages accepted by send() that will never reach a handler:
    /// shutdown races, unregistered handlers, and injected faults.
    std::uint64_t messages_dropped = 0;
    /// Subset of messages_dropped caused by a faulty_transport fault plan.
    std::uint64_t drops_injected = 0;
    /// Extra copies forged by a faulty_transport fault plan.
    std::uint64_t duplicates_injected = 0;
};

class transport
{
public:
    /// Called with (source locality, wire buffer) when a message arrives.
    using delivery_handler =
        std::function<void(std::uint32_t, serialization::shared_buffer&&)>;

    virtual ~transport() = default;

    /// Register the receive handler for a destination locality.  Must be
    /// called for every locality before traffic starts.
    virtual void set_delivery_handler(
        std::uint32_t dst, delivery_handler handler) = 0;

    /// Transmit a wire message (fragment chain).  Charges the modeled
    /// per-message sender CPU cost on the calling thread (real busy
    /// work), then schedules delivery.  Thread-safe.
    virtual void send(std::uint32_t src, std::uint32_t dst,
        serialization::wire_message&& message) = 0;

    /// Per-message CPU cost the *receiver* should charge when it picks a
    /// message out of its inbox (µs).  The transport cannot spin on the
    /// receiver's behalf — the cost must land on the receiving worker's
    /// background accounting — so it publishes the figure instead.
    [[nodiscard]] virtual double recv_overhead_us() const noexcept = 0;

    /// Link-resolved variant: a topology-aware transport (sim_network
    /// with nodes) charges less for a message that never left the node.
    /// Defaults to the flat figure so single-tier transports (and test
    /// doubles) implement only recv_overhead_us().  (Named distinctly
    /// rather than overloaded so overriding one does not hide the other.)
    [[nodiscard]] virtual double link_recv_overhead_us(
        std::uint32_t src, std::uint32_t dst) const noexcept
    {
        (void) src;
        (void) dst;
        return recv_overhead_us();
    }

    /// Messages handed to send() but not yet delivered to a handler.
    [[nodiscard]] virtual std::uint64_t in_flight() const noexcept = 0;

    /// Block until in_flight() reaches zero.
    virtual void drain() = 0;

    [[nodiscard]] virtual transport_stats stats() const = 0;

    /// Stop delivery; further sends are dropped.  Idempotent.
    virtual void shutdown() = 0;

    /// Chaos API: mark a locality as crashed (`down = true`) or back up
    /// (`down = false`).  While down, every message to *or* from that
    /// locality is dropped (counted in messages_dropped), modeling a
    /// crashed process whose NIC went silent.  Returns false when the
    /// transport does not implement the chaos API (the default).
    virtual bool set_locality_down(std::uint32_t locality, bool down)
    {
        (void) locality;
        (void) down;
        return false;
    }

    /// Convenience wrappers over set_locality_down for chaos schedules.
    bool kill_locality(std::uint32_t locality)
    {
        return set_locality_down(locality, true);
    }

    bool restart_locality(std::uint32_t locality)
    {
        return set_locality_down(locality, false);
    }
};

}    // namespace coal::net
