#include <coal/parcel/parcel.hpp>

namespace coal::parcel {

using serialization::byte_buffer;
using serialization::input_archive;
using serialization::output_archive;
using serialization::serialization_error;

namespace {

void encode_parcel(output_archive& ar, parcel const& p)
{
    ar & p.source & p.dest & p.action & p.continuation;
    ar & static_cast<std::uint64_t>(p.arguments.size());
    ar.write_bytes(p.arguments.data(), p.arguments.size());
}

parcel decode_parcel(input_archive& ar)
{
    parcel p;
    ar & p.source & p.dest & p.action & p.continuation;
    std::uint64_t nbytes = 0;
    ar & nbytes;
    if (nbytes > ar.remaining())
        throw serialization_error("parcel payload exceeds message size");
    auto const* data = ar.borrow_bytes(static_cast<std::size_t>(nbytes));
    p.arguments.assign(data, data + nbytes);
    return p;
}

}    // namespace

std::size_t message_wire_size(std::vector<parcel> const& parcels) noexcept
{
    std::size_t size = sizeof(std::uint32_t) * 2;    // magic + count
    for (auto const& p : parcels)
        size += p.wire_size() + sizeof(std::uint64_t);    // + length field
    return size;
}

byte_buffer encode_message(std::vector<parcel> const& parcels)
{
    byte_buffer buffer;
    buffer.reserve(message_wire_size(parcels));
    output_archive ar(buffer);
    ar & message_magic;
    ar & static_cast<std::uint32_t>(parcels.size());
    for (auto const& p : parcels)
        encode_parcel(ar, p);
    return buffer;
}

std::vector<parcel> decode_message(byte_buffer const& buffer)
{
    input_archive ar(buffer);
    std::uint32_t magic = 0;
    ar & magic;
    if (magic != message_magic)
        throw serialization_error("bad message magic");

    std::uint32_t count = 0;
    ar & count;
    if (count > ar.remaining())    // each parcel needs >= 1 byte of header
        throw serialization_error("parcel count exceeds message size");

    std::vector<parcel> parcels;
    parcels.reserve(count);
    for (std::uint32_t i = 0; i != count; ++i)
        parcels.push_back(decode_parcel(ar));

    if (ar.remaining() != 0)
        throw serialization_error("trailing bytes after last parcel");
    return parcels;
}

}    // namespace coal::parcel
