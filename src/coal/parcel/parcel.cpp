#include <coal/parcel/parcel.hpp>

#include <cstring>

namespace coal::parcel {

using serialization::byte_buffer;
using serialization::input_archive;
using serialization::output_archive;
using serialization::serialization_error;

namespace {

void encode_parcel(output_archive& ar, parcel const& p)
{
    ar & p.source & p.dest & p.action & p.continuation;
    ar & static_cast<std::uint64_t>(p.arguments.size());
    ar.write_bytes(p.arguments.data(), p.arguments.size());
}

parcel decode_parcel(input_archive& ar)
{
    parcel p;
    ar & p.source & p.dest & p.action & p.continuation;
    std::uint64_t nbytes = 0;
    ar & nbytes;
    if (nbytes > ar.remaining())
        throw serialization_error("parcel payload exceeds message size");
    auto const* data = ar.borrow_bytes(static_cast<std::size_t>(nbytes));
    p.arguments.assign(data, data + nbytes);
    return p;
}

}    // namespace

std::size_t message_wire_size(std::vector<parcel> const& parcels) noexcept
{
    std::size_t size = frame_prefix_bytes;
    for (auto const& p : parcels)
        size += p.wire_size() + sizeof(std::uint64_t);    // + length field
    return size;
}

byte_buffer encode_message(
    std::vector<parcel> const& parcels, frame_header const& header)
{
    byte_buffer buffer;
    buffer.reserve(message_wire_size(parcels));
    output_archive ar(buffer);
    ar & message_magic;
    ar & static_cast<std::uint32_t>(parcels.size());
    ar & header.seq & header.ack & header.sack;
    for (auto const& p : parcels)
        encode_parcel(ar, p);
    return buffer;
}

std::vector<parcel> decode_message(
    byte_buffer const& buffer, frame_header* header)
{
    input_archive ar(buffer);
    std::uint32_t magic = 0;
    ar & magic;
    if (magic != message_magic)
        throw serialization_error("bad message magic");

    std::uint32_t count = 0;
    ar & count;

    frame_header hdr;
    ar & hdr.seq & hdr.ack & hdr.sack;
    if (header != nullptr)
        *header = hdr;

    if (count > ar.remaining())    // each parcel needs >= 1 byte of header
        throw serialization_error("parcel count exceeds message size");

    std::vector<parcel> parcels;
    parcels.reserve(count);
    for (std::uint32_t i = 0; i != count; ++i)
        parcels.push_back(decode_parcel(ar));

    if (ar.remaining() != 0)
        throw serialization_error("trailing bytes after last parcel");
    return parcels;
}

void patch_frame_acks(
    byte_buffer& wire, std::uint64_t ack, std::uint64_t sack) noexcept
{
    if (wire.size() < frame_prefix_bytes)
        return;
    std::memcpy(wire.data() + frame_ack_offset, &ack, sizeof(ack));
    std::memcpy(wire.data() + frame_sack_offset, &sack, sizeof(sack));
}

}    // namespace coal::parcel
