#include <coal/parcel/parcel.hpp>

#include <cstring>

namespace coal::parcel {

using serialization::input_archive;
using serialization::serialization_error;
using serialization::shared_buffer;
using serialization::wire_message;

namespace {

parcel decode_parcel(input_archive& ar)
{
    parcel p;
    ar & p.source & p.dest & p.action & p.continuation;
    std::uint64_t nbytes = 0;
    ar & nbytes;
    if (nbytes > ar.remaining())
        throw serialization_error("parcel payload exceeds message size");
    // Zero-copy: the arguments alias the frame slab (a refcounted
    // sub-view) instead of being copied out.
    p.arguments = ar.borrow_view(static_cast<std::size_t>(nbytes));
    return p;
}

}    // namespace

std::size_t message_wire_size(std::vector<parcel> const& parcels) noexcept
{
    std::size_t size = frame_prefix_bytes;
    for (auto const& p : parcels)
        size += p.wire_size() + sizeof(std::uint64_t);    // + length field
    return size;
}

wire_message encode_message(
    std::vector<parcel> const& parcels, frame_header const& header)
{
    wire_message msg;
    msg.write_value(message_magic);
    msg.write_value(static_cast<std::uint32_t>(parcels.size()));
    msg.write_value(header.seq);
    msg.write_value(header.ack);
    msg.write_value(header.sack);
    msg.write_value(header.credit);
    msg.write_value(header.src_epoch);
    msg.write_value(header.dst_epoch);
    for (auto const& p : parcels)
    {
        msg.write_value(p.source);
        msg.write_value(p.dest);
        msg.write_value(p.action);
        msg.write_value(p.continuation);
        msg.write_value(static_cast<std::uint64_t>(p.arguments.size()));
        // Gather the already-serialized argument image by reference
        // (or inline it when it is small enough that a memcpy beats
        // carrying a fragment).
        msg.append(p.arguments);
    }
    return msg;
}

std::vector<parcel> decode_message(
    shared_buffer const& buffer, frame_header* header)
{
    input_archive ar(buffer);
    std::uint32_t magic = 0;
    ar & magic;
    if (magic != message_magic)
        throw serialization_error("bad message magic");

    std::uint32_t count = 0;
    ar & count;

    frame_header hdr;
    ar & hdr.seq & hdr.ack & hdr.sack & hdr.credit & hdr.src_epoch &
        hdr.dst_epoch;
    if (header != nullptr)
        *header = hdr;

    if (count > ar.remaining())    // each parcel needs >= 1 byte of header
        throw serialization_error("parcel count exceeds message size");

    std::vector<parcel> parcels;
    parcels.reserve(count);
    for (std::uint32_t i = 0; i != count; ++i)
        parcels.push_back(decode_parcel(ar));

    if (ar.remaining() != 0)
        throw serialization_error("trailing bytes after last parcel");
    return parcels;
}

std::vector<parcel> decode_message(
    wire_message const& message, frame_header* header)
{
    return decode_message(message.flatten_copy(), header);
}

frame_info peek_frame(shared_buffer const& buffer)
{
    input_archive ar(buffer);
    std::uint32_t magic = 0;
    ar & magic;
    if (magic != message_magic)
        throw serialization_error("bad message magic");

    frame_info info;
    ar & info.count & info.header.seq & info.header.ack & info.header.sack &
        info.header.credit & info.header.src_epoch & info.header.dst_epoch;
    if (info.count > ar.remaining())    // each parcel needs >= 1 byte
        throw serialization_error("parcel count exceeds message size");
    return info;
}

std::vector<std::size_t> scan_parcel_offsets(
    shared_buffer const& buffer, std::uint32_t count, std::size_t step)
{
    COAL_ASSERT(step != 0);
    input_archive ar(buffer);
    ar.skip(frame_prefix_bytes);

    std::vector<std::size_t> offsets;
    offsets.reserve(static_cast<std::size_t>(count) / step + 2);
    for (std::uint32_t i = 0; i != count; ++i)
    {
        if (i % step == 0)
            offsets.push_back(ar.position());
        // Hop over the parcel image reading only its length field.
        ar.skip(parcel::header_bytes);
        std::uint64_t nbytes = 0;
        ar & nbytes;
        if (nbytes > ar.remaining())
            throw serialization_error("parcel payload exceeds message size");
        ar.skip(static_cast<std::size_t>(nbytes));
    }
    if (ar.remaining() != 0)
        throw serialization_error("trailing bytes after last parcel");
    offsets.push_back(buffer.size());
    return offsets;
}

std::vector<parcel> decode_parcel_range(
    shared_buffer const& buffer, std::size_t offset, std::size_t count)
{
    input_archive ar(buffer);
    ar.skip(offset);
    std::vector<parcel> parcels;
    parcels.reserve(count);
    for (std::size_t i = 0; i != count; ++i)
        parcels.push_back(decode_parcel(ar));
    return parcels;
}

void patch_frame_acks(wire_message& wire, std::uint64_t ack,
    std::uint64_t sack, std::uint64_t credit) noexcept
{
    if (wire.size() < frame_prefix_bytes)
        return;
    wire.patch(frame_ack_offset, &ack, sizeof(ack));
    wire.patch(frame_sack_offset, &sack, sizeof(sack));
    wire.patch(frame_credit_offset, &credit, sizeof(credit));
}

}    // namespace coal::parcel
