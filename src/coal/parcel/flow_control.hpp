#pragma once

/// \file flow_control.hpp
/// Tunables and error vocabulary of the end-to-end flow-control and
/// overload-protection layer (DESIGN.md "Flow control, bounded-memory
/// admission and overload shedding").
///
/// Three cooperating mechanisms keep every stage of the parcel pipeline
/// bounded when a peer is slow or dark:
///
///  - **Per-peer credit windows.**  Every frame (data, retransmit, or
///    standalone ack) piggybacks a window grant computed from the
///    grantor's local memory pressure; a sender whose unacknowledged
///    bytes would exceed the latest grant *defers* the send job on a
///    per-peer queue instead of handing it to the wire.  Acks shrink the
///    in-flight figure and re-release deferred jobs in order.  One frame
///    is always allowed in flight regardless of the window, so progress
///    never deadlocks on a grant that is smaller than a single frame.
///
///  - **Byte watermarks.**  The buffer pool reports ok/soft/critical
///    pressure against configured watermarks (see buffer_pool.hpp), and
///    each link reports the same three states against its in-flight +
///    deferred bytes.  Under `soft` the coalescer shrinks its batch
///    targets (early flushes); under `critical` admission control in
///    put_parcel sheds best-effort parcels (fire-and-forget, no
///    continuation) with a surfaced `shed_overload` error.  Control/ack
///    frames and continuation-bearing parcels are never shed.
///
///  - **Slow-peer detection and link failure.**  A link whose sender has
///    been credit-starved (deferred jobs, no grant movement) longer than
///    `starvation_trip_us` trips the existing per-link circuit breaker.
///    Once the breaker is open *and* the link's in-flight + deferred
///    bytes have hit `link_inflight_cap_bytes`, further sends for that
///    link fail with a distinct `link_down` error instead of retaining
///    frames forever — the retransmission table stays capped through a
///    blackout of any length.
///
/// Flow control rides on the reliability layer (credits travel in the
/// ack fields), so enabling it forces `reliability_params::enabled`.

#include <cstdint>

namespace coal::parcel {

/// Why the parcel layer refused to deliver a parcel.  Surfaced through
/// parcelhandler::set_delivery_error_handler and the /net/flow counters.
enum class delivery_error : std::uint8_t
{
    /// Admission control shed a best-effort parcel under critical
    /// memory/link pressure.  Retrying later (or applying backpressure at
    /// the producer) is the caller's decision.
    shed_overload,

    /// The destination link's circuit breaker is open and its in-flight
    /// byte cap is exhausted: the link is treated as down and the parcel
    /// will not be queued behind an unbounded blackout.
    link_down,

    /// The membership layer declared the destination locality dead (or it
    /// rejoined under a new incarnation epoch before this parcel was
    /// acknowledged).  Delivery was *not confirmed*: the parcel may or
    /// may not have executed at the dead incarnation — callers must treat
    /// it as at-most-once (DESIGN.md "Failure model").
    peer_failed,
};

/// Number of delivery_error causes (per-cause counter array bound).
inline constexpr std::size_t delivery_error_causes = 3;

[[nodiscard]] constexpr char const* to_string(delivery_error e) noexcept
{
    switch (e)
    {
    case delivery_error::shed_overload:
        return "shed-overload";
    case delivery_error::link_down:
        return "link-down";
    case delivery_error::peer_failed:
        return "peer-failed";
    }
    return "?";
}

/// Tunables of the flow-control layer.  Disabled by default: the credit
/// field then stays 0 on the wire and every path behaves exactly as
/// before.
struct flow_params
{
    bool enabled = false;

    /// Window assumed for a peer that has not advertised yet.
    std::uint64_t initial_window_bytes = 256 * 1024;

    /// Window granted to peers while local pressure is ok; shrinks to
    /// /4 under soft and /16 under critical pressure.
    std::uint64_t window_bytes = 1u << 20;

    /// Grants never fall below this, so a pressured receiver throttles
    /// its peers without wedging them entirely (one frame can always
    /// move, which is what eventually relieves the pressure).
    std::uint64_t min_window_bytes = 64 * 1024;

    /// Per-link pressure thresholds over unacknowledged + deferred bytes:
    /// `soft` at link_soft_bytes; `critical` — and, with an open breaker,
    /// the link_down failure mode — at link_inflight_cap_bytes.
    std::uint64_t link_soft_bytes = 1u << 20;
    std::uint64_t link_inflight_cap_bytes = 4u << 20;

    /// Continuous credit starvation (deferred jobs waiting, no grant
    /// movement) on one link longer than this trips its circuit breaker.
    std::int64_t starvation_trip_us = 100000;

    /// Cadence at which a link with a non-empty deferred queue re-arms
    /// its due-ring service (release attempts, starvation-trip checks)
    /// when no ack traffic is driving it.  With the sharded peer store
    /// there is no periodic full-map walk to pick deferred jobs up as a
    /// side effect — this is the explicit replacement.
    std::int64_t defer_service_us = 5000;

    /// Buffer-pool watermarks the runtime applies to the global pool
    /// (bytes of live slab payload; see buffer_pool::set_watermarks).
    std::uint64_t pool_soft_bytes = 24u << 20;
    std::uint64_t pool_critical_bytes = 32u << 20;
    std::uint64_t pool_fallback_cap_bytes = 8u << 20;
};

}    // namespace coal::parcel
