#pragma once

/// \file membership.hpp
/// Tunables and vocabulary of the peer-liveness / epoched-membership
/// layer (DESIGN.md "Failure model").
///
/// Three cooperating pieces turn a permanently dark peer from an
/// indefinite hang into a first-class, recoverable event:
///
///  - **Heartbeats.**  Every frame a peer sends (data, retransmit,
///    standalone ack) doubles as a liveness proof; when a link has been
///    idle for `heartbeat_interval_us` the reliability loop emits a
///    standalone ack frame purely as a heartbeat.  Peers declared dead
///    are probed at the slower `probe_interval_us` so a restarted
///    incarnation is discovered without application traffic.
///
///  - **Phi-accrual suspicion.**  Per peer, the receiver keeps an EWMA
///    of frame interarrival times and scores silence as
///    `phi = elapsed / max(ewma, heartbeat_interval)`.  Crossing
///    `suspect_phi` marks the peer *suspected* (coalescing bypasses
///    batching, exactly like an open breaker); crossing `dead_phi` —
///    but never before `min_dead_us` of silence — declares it *dead*:
///    all queued/deferred/retransmit-held parcels for the peer fail with
///    `delivery_error::peer_failed`, and its seq/credit/breaker state is
///    torn down to a one-entry tombstone holding the fenced epoch.
///
///  - **Incarnation epochs.**  Every locality runs under an epoch
///    (starting at 1, bumped on restart) and every frame carries both
///    the sender's epoch and the sender's belief of the destination's
///    epoch.  A frame whose `src_epoch` is older than the peer's known
///    epoch is a ghost from a dead incarnation — discarded.  A frame
///    whose `dst_epoch` does not match the receiver's current epoch was
///    addressed to a previous incarnation — discarded (the receiver
///    answers with a heartbeat so the sender learns the new epoch and
///    fences).  Observing a *higher* `src_epoch` is a rejoin: both
///    directions of link state reset, unacknowledged frames toward the
///    old incarnation fail as `peer_failed`, and coalescing resumes.
///    Together the two checks keep delivery at-most-once across
///    incarnations: no parcel is both confirmed to its sender and
///    replayed into a later incarnation.
///
/// The layer rides on the reliability prefix (heartbeats are frames,
/// epochs travel in the frame header), so enabling it forces
/// `reliability_params::enabled`.
///
/// **Interplay with idle eviction** (peer_store.hpp): a peer whose link
/// is *data*-idle past `peer_store_params::evict_idle_us` is demoted to
/// a tombstone even while heartbeats flow — heartbeats deliberately do
/// not count as activity, or two idle peers would pin each other
/// resident forever.  An evicted peer neither emits heartbeats nor
/// scores phi; because both sides' last data contact is within one RTT
/// of each other, both evict at (almost) the same time and the mutual
/// silence is symmetric.  Suspicion does not survive eviction (it is a
/// detector verdict, not protocol state), but a dead verdict does: the
/// tombstone keeps the quarantined epoch, and `evict_idle_us` is scaled
/// 8x for dead peers so rejoin-probe cycles run first.

#include <cstdint>

namespace coal::parcel {

/// Liveness classification of a peer as seen by one parcelhandler.
enum class peer_status : std::uint8_t
{
    alive,        ///< heard from recently (phi below suspect threshold)
    suspected,    ///< silent past suspect_phi; batching bypassed
    dead,         ///< declared failed; state fenced, tombstone retained
};

[[nodiscard]] constexpr char const* to_string(peer_status s) noexcept
{
    switch (s)
    {
    case peer_status::alive:
        return "alive";
    case peer_status::suspected:
        return "suspected";
    case peer_status::dead:
        return "dead";
    }
    return "?";
}

/// Tunables of the failure detector.  Disabled by default: no heartbeats
/// are emitted, no suspicion is scored, and epoch fields stay inert.
struct membership_params
{
    bool enabled = false;

    /// Idle-link heartbeat period: a standalone ack frame is emitted
    /// toward any live peer this long after the last frame sent to it.
    std::int64_t heartbeat_interval_us = 20000;

    /// Probe period toward peers already declared dead — the rejoin
    /// discovery path when the application has stopped sending to them.
    std::int64_t probe_interval_us = 100000;

    /// Suspicion threshold: peer becomes `suspected` when silence
    /// exceeds suspect_phi × its EWMA interarrival (floored at the
    /// heartbeat interval).
    double suspect_phi = 3.0;

    /// Death threshold in the same units.  Must exceed suspect_phi.
    double dead_phi = 8.0;

    /// Hard floor on silence before death can be declared, so a single
    /// slow tick never fences a healthy peer regardless of phi.
    std::int64_t min_dead_us = 400000;

    /// EWMA gain for the interarrival estimate (0 < gain <= 1).
    double interarrival_gain = 0.125;
};

}    // namespace coal::parcel
