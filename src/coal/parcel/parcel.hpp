#pragma once

/// \file parcel.hpp
/// The parcel — HPX's form of an active message (Fig. 3 of the paper).
///
/// A parcel carries
///  - the destination (locality, since plain actions execute on a
///    locality; component actions resolve a gid to one),
///  - the action to execute there,
///  - the serialized arguments, and
///  - an optional continuation: here, the id of a promise at the source
///    locality that the action's result parcel will satisfy.
///
/// Wire format of one parcel image:
///     u32 source | u32 dest | u64 action | u64 continuation |
///     u64 nbytes | nbytes of serialized arguments
///
/// A *message* is what travels the transport: a frame of one or more
/// parcel images (message coalescing packs several), prefixed by the
/// reliability header (see DESIGN.md "Reliability & fault injection"):
///     u32 magic | u32 count | u64 seq | u64 ack | u64 sack | u64 credit |
///     u32 src_epoch | u32 dst_epoch | count * parcel image
///
/// `seq` is the per-(peer, direction) sequence number (0 = unsequenced,
/// used when the reliability layer is off).  `ack` is the cumulative
/// sequence received from the peer; `sack` is a bitmap of seq ack+1+i
/// received out of order.  A frame with count == 0 is a standalone ack
/// (also the membership layer's heartbeat/probe control frame).
/// `credit` is the flow-control window grant piggybacked on every frame
/// (DESIGN.md "Flow control"): 0 means "no advertisement", any other
/// value means "the receiver of this frame may keep credit−1 bytes of
/// unacknowledged data in flight toward me".
///
/// `src_epoch` / `dst_epoch` carry the membership layer's incarnation
/// epochs (DESIGN.md "Failure model"): the sender's own epoch and the
/// sender's belief of the destination's epoch at encode time.  They are
/// deliberately *not* patched on retransmit — a frame addressed to a dead
/// incarnation must keep saying so, which is what lets the restarted
/// receiver discard it and the sender fence it with
/// `delivery_error::peer_failed`.  0 means "epoch unknown" (membership
/// layer off, or a hand-crafted test frame) and disables fencing.

#include <coal/serialization/archive.hpp>
#include <coal/serialization/buffer.hpp>
#include <coal/serialization/wire_message.hpp>

#include <cstdint>
#include <vector>

namespace coal::parcel {

/// Stable identifier of an action (FNV-1a hash of its name).
using action_id = std::uint64_t;

/// Identifier of a promise in the source locality's response table.
using continuation_id = std::uint64_t;

struct parcel
{
    std::uint32_t source = 0;
    std::uint32_t dest = 0;
    action_id action = 0;
    continuation_id continuation = 0;    ///< 0 = fire-and-forget

    /// Serialized argument image.  A refcounted view: on the send side it
    /// is the sealed slab the output_archive produced; on the receive
    /// side it aliases the inbound frame slab (zero-copy decode).
    serialization::shared_buffer arguments;

    /// Bytes this parcel occupies inside a message frame.
    [[nodiscard]] std::size_t wire_size() const noexcept
    {
        return header_bytes + arguments.size();
    }

    /// source + dest (u32 each) + action + continuation (u64 each); the
    /// payload-length field is part of the frame, not the parcel header.
    static constexpr std::size_t header_bytes =
        sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 2;
};

/// Frame magic guarding against mis-routed or corrupt buffers.
inline constexpr std::uint32_t message_magic = 0x434f414cu;    // "COAL"

/// Reliability fields carried by every frame.  All zero when the
/// reliability layer is off — the frame is then fire-and-forget.
struct frame_header
{
    std::uint64_t seq = 0;     ///< link sequence number; 0 = unsequenced
    std::uint64_t ack = 0;     ///< cumulative ack for the reverse direction
    std::uint64_t sack = 0;    ///< bitmap: seq ack+1+i received out of order
    /// Flow-control window grant, biased by one so it can piggyback on
    /// every frame: 0 = no advertisement (flow control off), otherwise
    /// the sender of this frame allows credit−1 in-flight bytes.
    std::uint64_t credit = 0;
    /// Sender's incarnation epoch (membership layer); 0 = unknown.
    std::uint32_t src_epoch = 0;
    /// Sender's belief of the destination's incarnation epoch at encode
    /// time; 0 = unknown (fencing disabled for this frame).
    std::uint32_t dst_epoch = 0;
};

/// Frame prefix: magic + count + the four reliability/flow fields + the
/// two membership epochs.
inline constexpr std::size_t frame_prefix_bytes =
    sizeof(std::uint32_t) * 2 + sizeof(std::uint64_t) * 4 +
    sizeof(std::uint32_t) * 2;

/// Byte offsets of the patchable reliability/flow fields inside a frame.
inline constexpr std::size_t frame_ack_offset = 16;
inline constexpr std::size_t frame_sack_offset = 24;
inline constexpr std::size_t frame_credit_offset = 32;

/// Total wire size of a frame containing the given parcels.
[[nodiscard]] std::size_t message_wire_size(
    std::vector<parcel> const& parcels) noexcept;

/// Encode parcels into one wire message.  The frame prefix and per-parcel
/// headers are written fresh into the message's head slab; argument
/// images at or below `wire_message::inline_copy_threshold` are inlined,
/// larger ones ride as reference fragments (no memcpy).
[[nodiscard]] serialization::wire_message encode_message(
    std::vector<parcel> const& parcels, frame_header const& header = {});

/// Decode a wire message back into parcels; optionally extract the
/// reliability header.  Parcel arguments are zero-copy views into
/// `buffer`'s slab — they keep the frame alive by refcount.
/// \throws serialization::serialization_error on malformed input.
[[nodiscard]] std::vector<parcel> decode_message(
    serialization::shared_buffer const& buffer,
    frame_header* header = nullptr);

/// Convenience for tests/diagnostics: flattens (counted) then decodes.
[[nodiscard]] std::vector<parcel> decode_message(
    serialization::wire_message const& message,
    frame_header* header = nullptr);

// --- lazy (batched-receive) decode ----------------------------------------
//
// The batched receive pipeline avoids full decode on the background
// worker: `peek_frame` reads only the fixed prefix (O(1)),
// `scan_parcel_offsets` hops over the parcel images touching nothing but
// the length fields, and `decode_parcel_range` — the part that constructs
// parcels and bumps slab refcounts — runs inside the chunk tasks on the
// workers that will execute the parcels.

/// Fixed-prefix view of a frame: reliability header + parcel count.
struct frame_info
{
    frame_header header;
    std::uint32_t count = 0;
};

/// Validate the frame prefix and extract header fields without touching
/// any parcel image.  O(1); the receive path uses it for the duplicate
/// check *before* paying the modeled per-message protocol cost.
/// \throws serialization::serialization_error on bad magic / short frame.
[[nodiscard]] frame_info peek_frame(
    serialization::shared_buffer const& buffer);

/// Byte offsets of parcels 0, step, 2·step, … inside `buffer`, with
/// `buffer.size()` appended as the final sentinel — one entry per chunk
/// boundary of the batched receive pipeline.  Walks the frame reading
/// only each parcel's payload-length field (no parcel construction, no
/// refcount traffic) and validates the frame's structure end to end.
/// \throws serialization::serialization_error on malformed input.
[[nodiscard]] std::vector<std::size_t> scan_parcel_offsets(
    serialization::shared_buffer const& buffer, std::uint32_t count,
    std::size_t step);

/// Decode `count` parcels starting at byte `offset` — a chunk boundary
/// previously produced by scan_parcel_offsets.  Arguments are zero-copy
/// views into `buffer`'s slab, exactly as decode_message produces.
[[nodiscard]] std::vector<parcel> decode_parcel_range(
    serialization::shared_buffer const& buffer, std::size_t offset,
    std::size_t count);

/// Refresh the ack/sack/credit fields of an already-encoded frame in
/// place — retransmitted frames carry current acks and window grants, not
/// stale ones.  The caller must serialize this against readers of the
/// frame (the parcelhandler patches retained frames only under its peers
/// lock).
void patch_frame_acks(serialization::wire_message& wire, std::uint64_t ack,
    std::uint64_t sack, std::uint64_t credit = 0) noexcept;

}    // namespace coal::parcel
