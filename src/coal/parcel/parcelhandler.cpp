#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/timing/busy_work.hpp>
#include <coal/trace/tracer.hpp>

#include <algorithm>
#include <utility>

namespace coal::parcel {

namespace {

    /// Cheap deterministic jitter in [0, 1): retransmit deadlines of
    /// different frames must not re-synchronize after a blackout.
    double jitter_unit(std::uint64_t seq, unsigned attempts) noexcept
    {
        std::uint64_t x = seq * 0x9e3779b97f4a7c15ull + attempts;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    }

    /// Marks a message as in-progress for the duration of a progress_*
    /// body.  Incremented before the queue pop and released only after
    /// the downstream handoff (transport send / task post), so pending
    /// counts never transiently read zero while work is in flight.
    struct in_progress_guard
    {
        explicit in_progress_guard(std::atomic<std::size_t>& count)
          : count_(count)
        {
            count_.fetch_add(1, std::memory_order_acq_rel);
        }

        ~in_progress_guard()
        {
            count_.fetch_sub(1, std::memory_order_acq_rel);
        }

        in_progress_guard(in_progress_guard const&) = delete;
        in_progress_guard& operator=(in_progress_guard const&) = delete;

    private:
        std::atomic<std::size_t>& count_;
    };

}    // namespace

parcelhandler::parcelhandler(std::uint32_t here, net::transport& transport,
    threading::scheduler& scheduler, reliability_params reliability,
    flow_params flow)
  : here_(here)
  , transport_(transport)
  , scheduler_(scheduler)
  , reliability_(reliability)
  , flow_(flow)
{
    // Credits travel in the frame's ack fields, so flow control requires
    // the reliability layer underneath it.
    if (flow_.enabled)
        reliability_.enabled = true;

    // One shared invocation context for every parcel this handler ever
    // executes; the per-parcel path just passes a reference.
    invoke_ctx_.this_locality = here_;
    invoke_ctx_.put_parcel = [this](parcel&& out) {
        put_parcel(std::move(out));
    };
    invoke_ctx_.complete_promise = [this](continuation_id id,
                                       serialization::shared_buffer&& payload) {
        complete_promise(id, std::move(payload));
    };

    transport_.set_delivery_handler(
        here, [this](std::uint32_t src, serialization::shared_buffer&& buffer) {
            inbox_.push(inbound_message{src, std::move(buffer)});
        });

    scheduler_.register_background_work([this] { return progress(); });
}

parcelhandler::~parcelhandler()
{
    stop();
}

void parcelhandler::put_parcel(parcel&& p)
{
    COAL_ASSERT_MSG(p.action != 0, "parcel without action");
    p.source = here_;

    if (p.dest == here_)
    {
        trace::tracer::global().record(
            here_, trace::event_kind::parcel_local, p.action);
        deliver_local(std::move(p));
        return;
    }

    // Admission control: under critical memory/link pressure, best-effort
    // parcels (no continuation — nobody is waiting on a future) are shed
    // here, before they can pin another frame's worth of pool bytes.
    // Continuation-bearing parcels are always admitted: their population
    // is bounded by the caller's outstanding futures, and shedding them
    // would strand promises forever.
    if (flow_.enabled && p.continuation == 0 &&
        flow_pressure(p.dest) == pressure_state::critical)
    {
        counters_.parcels_shed.fetch_add(1, std::memory_order_relaxed);
        trace::tracer::global().record(
            here_, trace::event_kind::parcel_shed, p.action, p.dest);
        if (on_delivery_error_)
            on_delivery_error_(delivery_error::shed_overload, std::move(p));
        return;
    }

    trace::tracer::global().record(
        here_, trace::event_kind::parcel_put, p.action, p.dest);
    counters_.parcels_sent.fetch_add(1, std::memory_order_relaxed);

    if (auto handler = message_handler_for(p.action))
    {
        handler->enqueue(std::move(p));
        return;
    }

    std::uint32_t const dst = p.dest;
    std::vector<parcel> single;
    single.push_back(std::move(p));
    send_message(dst, std::move(single));
}

void parcelhandler::send_message(
    std::uint32_t dst, std::vector<parcel>&& parcels, send_ticket ticket)
{
    if (parcels.empty())
        return;
    COAL_ASSERT(dst != here_);

    if (ticket.stream == 0)
    {
        outbound_.push(send_job{dst, std::move(parcels)});
        return;
    }

    // Ticketed hand-off: the producer allocated `seq` under its own queue
    // lock but calls us lock-free, so two batches of one stream can
    // arrive here in either order.  Release to the outbound queue
    // strictly in ticket order, parking early arrivals.  Holding the
    // stream's shard lock across the pushes is what makes the release
    // order the queue order.
    auto& shard =
        sequencer_shards_[ticket.stream & (sequencer_shard_count - 1)];
    std::lock_guard lock(shard.lock);
    auto& stream = shard.streams[ticket.stream];
    if (ticket.seq != stream.next_seq)
    {
        COAL_ASSERT(ticket.seq > stream.next_seq);
        parked_sends_.fetch_add(1, std::memory_order_release);
        stream.parked.emplace(
            ticket.seq, send_job{dst, std::move(parcels)});
        return;
    }

    outbound_.push(send_job{dst, std::move(parcels)});
    ++stream.next_seq;
    for (auto it = stream.parked.begin();
        it != stream.parked.end() && it->first == stream.next_seq;
        it = stream.parked.erase(it), ++stream.next_seq)
    {
        outbound_.push(std::move(it->second));
        parked_sends_.fetch_sub(1, std::memory_order_release);
    }
}

void parcelhandler::set_message_handler(
    action_id id, std::shared_ptr<message_handler> handler)
{
    std::lock_guard lock(handlers_lock_);
    if (handler == nullptr)
        handlers_.erase(id);
    else
        handlers_[id] = std::move(handler);
}

std::shared_ptr<message_handler> parcelhandler::message_handler_for(
    action_id id) const
{
    std::lock_guard lock(handlers_lock_);
    auto it = handlers_.find(id);
    return it == handlers_.end() ? nullptr : it->second;
}

void parcelhandler::flush_message_handlers()
{
    std::vector<std::shared_ptr<message_handler>> handlers;
    {
        std::lock_guard lock(handlers_lock_);
        handlers.reserve(handlers_.size());
        for (auto const& [id, h] : handlers_)
            handlers.push_back(h);
    }
    for (auto const& h : handlers)
        h->flush();
}

continuation_id parcelhandler::register_response_callback(
    unique_function<void(serialization::shared_buffer&&)> callback)
{
    continuation_id const id =
        next_continuation_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(responses_lock_);
    responses_.emplace(id, std::move(callback));
    return id;
}

std::size_t parcelhandler::pending_responses() const
{
    std::lock_guard lock(responses_lock_);
    return responses_.size();
}

void parcelhandler::complete_promise(
    continuation_id id, serialization::shared_buffer&& payload)
{
    unique_function<void(serialization::shared_buffer&&)> callback;
    {
        std::lock_guard lock(responses_lock_);
        auto it = responses_.find(id);
        if (it == responses_.end())
        {
            COAL_LOG_WARN("parcel",
                "response for unknown continuation %llu at locality %u",
                static_cast<unsigned long long>(id), here_);
            return;
        }
        callback = std::move(it->second);
        responses_.erase(it);
    }
    callback(std::move(payload));
}

void parcelhandler::deliver_local(parcel&& p)
{
    counters_.parcels_local.fetch_add(1, std::memory_order_relaxed);
    scheduler_.post([this, parcel = std::move(p)]() mutable {
        execute_parcel(std::move(parcel));
    });
}

void parcelhandler::execute_parcel(parcel&& p)
{
    auto const* entry = action_registry::instance().find(p.action);
    if (entry == nullptr)
    {
        COAL_LOG_ERROR("parcel",
            "unknown action %llx at locality %u (parcel dropped)",
            static_cast<unsigned long long>(p.action), here_);
        return;
    }

    auto const action = p.action;
    try
    {
        entry->invoke(invoke_ctx_, std::move(p));
    }
    catch (std::exception const& e)
    {
        // Remote exceptions are not propagated across localities (see
        // README limitations); a throwing action must not take the
        // worker thread down with it.
        COAL_LOG_ERROR("parcel", "action '%s' threw: %s (parcel dropped)",
            entry->name.c_str(), e.what());
    }
    catch (...)
    {
        COAL_LOG_ERROR("parcel", "action '%s' threw a non-std exception "
                                 "(parcel dropped)",
            entry->name.c_str());
    }
    counters_.parcels_executed.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::parcel_executed, action);
}

bool parcelhandler::progress_send()
{
    in_progress_guard guard(sends_in_progress_);
    auto job = outbound_.try_pop();
    if (!job)
        return false;

    // Framing + transmission: this runs in background-work context, and
    // transport_.send burns the modeled per-message sender CPU here.
    serialization::wire_message wire;
    if (reliability_.enabled)
    {
        frame_header hdr;
        std::int64_t const now = now_ns();
        std::size_t const est = message_wire_size(job->parcels);
        std::uint32_t const dst = job->dst;
        bool down = false;
        bool deferred = false;
        std::uint64_t deferred_bytes_after = 0;
        {
            std::lock_guard lock(peers_lock_);
            auto& peer = peers_[dst];
            if (flow_.enabled)
            {
                if (link_down_locked(peer))
                {
                    down = true;
                }
                else if (should_defer_locked(peer, est))
                {
                    // Window exhausted: park the job on the peer instead
                    // of handing it to the wire.  No sequence number is
                    // consumed — the job re-enters this path when a grant
                    // or an ack opens the window.
                    if (peer.starved_since_ns == 0)
                        peer.starved_since_ns = now;
                    job->bytes = est;
                    peer.deferred_bytes += est;
                    deferred_bytes_after = peer.deferred_bytes;
                    peer.deferred.push_back(std::move(*job));
                    deferred_sends_.fetch_add(1, std::memory_order_release);
                    counters_.sends_deferred.fetch_add(
                        1, std::memory_order_relaxed);
                    update_link_pressure_locked(peer);
                    deferred = true;
                }
            }
            if (!down && !deferred)
            {
                hdr.seq = peer.next_seq++;
                hdr.ack = peer.cum_received;
                hdr.sack = sack_bits_locked(peer);
                if (flow_.enabled)
                    hdr.credit = advertised_credit_wire();
                peer.ack_pending = false;    // this frame carries the ack
            }
        }
        if (down)
        {
            fail_job(delivery_error::link_down, std::move(*job));
            return true;
        }
        if (deferred)
        {
            trace::tracer::global().record(here_,
                trace::event_kind::send_deferred, dst, deferred_bytes_after);
            return true;    // consumed a queue item (into the defer queue)
        }
        serialization::wire_message frame = encode_message(job->parcels, hdr);
        serialization::shared_buffer flat;
        {
            // Register the frame before handing it to the transport so a
            // synchronous loopback ack always finds its entry.
            std::lock_guard lock(peers_lock_);
            auto& peer = peers_[dst];
            unacked_frame u;
            // Retained by reference: the retransmission table shares the
            // frame's fragments instead of deep-copying the wire image.
            u.frame = std::move(frame);
            u.bytes = est;
            u.first_send_ns = now;
            u.rto_ns = initial_rto_ns_locked(peer);
            u.deadline_ns = now + u.rto_ns;
            peer.unacked_bytes += est;
            auto const it = peer.unacked.emplace(hdr.seq, std::move(u)).first;
            // The transport must not alias the retained fragments —
            // progress_reliability patches the ack/sack prefix in place
            // under this lock before every retransmit.  Take the one
            // gather copy per transmission here, while the frame is
            // guaranteed stable.
            flat = it->second.frame.flatten_copy();
            maybe_trip_breaker_locked(dst, peer);
            if (flow_.enabled)
                update_link_pressure_locked(peer);
        }
        wire = serialization::wire_message(std::move(flat));
    }
    else
    {
        // Fire-and-forget: the fragment chain goes straight to the
        // transport, which flattens (or moves out) at the wire boundary.
        wire = encode_message(job->parcels);
    }

    std::size_t const wire_bytes = wire.size();
    trace::tracer::global().record(here_, trace::event_kind::message_sent,
        job->parcels.size(), wire_bytes);
    counters_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_sent.fetch_add(wire_bytes, std::memory_order_relaxed);

    transport_.send(here_, job->dst, std::move(wire));
    return true;
}

bool parcelhandler::progress_receive()
{
    in_progress_guard guard(receives_in_progress_);

    // Budgeted multi-frame drain: amortize the poll (and, under load, the
    // wake-up that led here) over up to receive_drain_budget frames
    // instead of re-entering the whole progress machinery per frame.
    std::size_t frames = 0;
    while (frames != receive_drain_budget)
    {
        auto msg = inbox_.try_pop();
        if (!msg)
            break;
        ++frames;
        receive_one(std::move(*msg));
    }
    if (frames == 0)
        return false;

    counters_.receive_drains.fetch_add(1, std::memory_order_relaxed);
    counters_.frames_drained.fetch_add(frames, std::memory_order_relaxed);
    return true;
}

void parcelhandler::receive_one(inbound_message&& msg)
{
    counters_.messages_received.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_received.fetch_add(
        msg.payload.size(), std::memory_order_relaxed);

    frame_info info;
    try
    {
        info = peek_frame(msg.payload);
    }
    catch (serialization::serialization_error const& e)
    {
        COAL_LOG_WARN("parcel",
            "malformed frame from locality %u dropped: %s", msg.src, e.what());
        return;
    }

    trace::tracer::global().record(here_,
        trace::event_kind::message_received, info.count, msg.payload.size());

    if (reliability_.enabled && info.header.seq != 0)
    {
        // Duplicate check from the O(1) prefix peek, BEFORE the modeled
        // per-message protocol spin: a retransmit of a frame we already
        // hold must not cost receive_overhead a second time.  This early
        // check is only an optimization — the authoritative one happens
        // again at insertion below, under the same lock.
        bool duplicate = false;
        {
            std::int64_t const now = now_ns();
            std::lock_guard lock(peers_lock_);
            auto& peer = peers_[msg.src];
            if (info.header.seq <= peer.cum_received ||
                peer.held.count(info.header.seq) != 0)
            {
                duplicate = true;
                // Re-ack immediately-ish so the sender stops resending.
                schedule_ack_locked(peer, now);
            }
        }
        if (duplicate)
        {
            handle_acks(msg.src, info.header);    // dups carry fresh acks
            counters_.duplicates_suppressed.fetch_add(
                1, std::memory_order_relaxed);
            counters_.duplicate_overhead_avoided.fetch_add(
                1, std::memory_order_relaxed);
            return;
        }
    }

    // Receiver-side per-message CPU cost (protocol processing).
    timing::spin_for_us(transport_.recv_overhead_us());

    if (!reliability_.enabled || info.header.seq == 0)
    {
        // Unsequenced frame: standalone ack (count == 0) or plain traffic
        // with the reliability layer off.
        if (reliability_.enabled)
            handle_acks(msg.src, info.header);
        spawn_parcel_tasks(std::move(msg.payload), info.count);
        return;
    }

    handle_acks(msg.src, info.header);

    // Sequenced data frame: suppress duplicates, hold out-of-order frames
    // back (undecoded), and release the in-order prefix.  The duplicate
    // re-check is required: two workers may have popped two copies of the
    // same seq concurrently and both passed the early check above.
    std::vector<held_frame> ready;
    {
        std::int64_t const now = now_ns();
        std::lock_guard lock(peers_lock_);
        auto& peer = peers_[msg.src];
        if (info.header.seq <= peer.cum_received ||
            peer.held.count(info.header.seq) != 0)
        {
            counters_.duplicates_suppressed.fetch_add(
                1, std::memory_order_relaxed);
            schedule_ack_locked(peer, now);
        }
        else
        {
            peer.held.emplace(info.header.seq,
                held_frame{std::move(msg.payload), info.count});
            for (;;)
            {
                auto it = peer.held.find(peer.cum_received + 1);
                if (it == peer.held.end())
                    break;
                ++peer.cum_received;
                ready.push_back(std::move(it->second));
                peer.held.erase(it);
            }
            schedule_ack_locked(peer, now);
        }
    }

    for (auto& frame : ready)
        spawn_parcel_tasks(std::move(frame.payload), frame.count);
}

std::size_t parcelhandler::chunk_size_for(std::size_t count) const noexcept
{
    // ~2 chunks per worker keeps every worker fed and leaves slack for
    // stealing to balance uneven action runtimes, without descending to
    // chunk sizes where per-task overhead reappears.
    std::size_t const workers = std::max<std::size_t>(
        scheduler_.num_workers(), 1);
    std::size_t const per_chunk = (count + 2 * workers - 1) / (2 * workers);
    return std::max(per_chunk, receive_min_chunk_parcels);
}

void parcelhandler::spawn_parcel_tasks(
    serialization::shared_buffer&& buffer, std::uint32_t count)
{
    if (count == 0)
        return;    // standalone ack frame

    std::size_t const chunk = chunk_size_for(count);
    std::vector<std::size_t> offsets;
    try
    {
        offsets = scan_parcel_offsets(buffer, count, chunk);
    }
    catch (serialization::serialization_error const& e)
    {
        COAL_LOG_WARN(
            "parcel", "malformed frame body dropped: %s", e.what());
        return;
    }

    counters_.parcels_received.fetch_add(count, std::memory_order_relaxed);

    // One chunk task per boundary; each borrows the frame slab by
    // refcount and decodes its own parcel range on the worker that runs
    // it — the deserialization never executes on this (background) path.
    std::size_t const nchunks = offsets.size() - 1;
    std::vector<threading::task_type> tasks;
    tasks.reserve(nchunks);
    std::size_t remaining = count;
    for (std::size_t c = 0; c != nchunks; ++c)
    {
        std::size_t const in_chunk = std::min(chunk, remaining);
        remaining -= in_chunk;
        tasks.push_back(
            [this, buffer, offset = offsets[c], in_chunk]() mutable {
                execute_chunk(std::move(buffer), offset, in_chunk);
            });
    }

    counters_.chunk_tasks.fetch_add(nchunks, std::memory_order_relaxed);
    counters_.chunk_parcels.fetch_add(count, std::memory_order_relaxed);
    scheduler_.post_n(std::move(tasks));
}

void parcelhandler::execute_chunk(
    serialization::shared_buffer buffer, std::size_t offset, std::size_t count)
{
    std::int64_t const t_start = now_ns();
    std::vector<parcel> parcels;
    try
    {
        parcels = decode_parcel_range(buffer, offset, count);
    }
    catch (serialization::serialization_error const& e)
    {
        // scan_parcel_offsets validated the frame end to end, so this
        // would indicate slab corruption; drop the chunk, not the worker.
        COAL_LOG_ERROR(
            "parcel", "chunk decode failed: %s (parcels dropped)", e.what());
        return;
    }
    counters_.decode_offload_ns.fetch_add(
        static_cast<std::uint64_t>(now_ns() - t_start),
        std::memory_order_relaxed);

    for (auto& p : parcels)
        execute_parcel(std::move(p));
}

void parcelhandler::handle_acks(std::uint32_t src, frame_header const& hdr)
{
    std::int64_t const now = now_ns();
    std::vector<send_job> released;
    {
        std::lock_guard lock(peers_lock_);
        auto& peer = peers_[src];

        auto release =
            [&](std::map<std::uint64_t, unacked_frame>::iterator it) {
                unacked_frame const& u = it->second;
                counters_.ack_latency_ns.fetch_add(
                    static_cast<std::uint64_t>(now - u.first_send_ns),
                    std::memory_order_relaxed);
                counters_.acked_messages.fetch_add(
                    1, std::memory_order_relaxed);
                if (u.attempts == 1)
                {
                    // Karn's rule: only never-retransmitted frames give an
                    // unambiguous RTT sample.
                    double const sample_us =
                        static_cast<double>(now - u.first_send_ns) / 1000.0;
                    peer.srtt_us = peer.srtt_us <= 0.0 ?
                        sample_us :
                        (1.0 - reliability_.rtt_gain) * peer.srtt_us +
                            reliability_.rtt_gain * sample_us;
                }
                peer.unacked_bytes -=
                    std::min<std::uint64_t>(peer.unacked_bytes, u.bytes);
                peer.unacked.erase(it);
            };

        while (!peer.unacked.empty() && peer.unacked.begin()->first <= hdr.ack)
            release(peer.unacked.begin());
        for (unsigned i = 0; i != 64; ++i)
        {
            if ((hdr.sack & (1ull << i)) == 0)
                continue;
            if (auto it = peer.unacked.find(hdr.ack + 1 + i);
                it != peer.unacked.end())
                release(it);
        }

        if (peer.breaker_open &&
            peer.unacked.size() <= reliability_.breaker_close_backlog)
        {
            peer.breaker_open = false;
            open_breakers_.fetch_sub(1, std::memory_order_release);
            COAL_LOG_INFO("parcel",
                "link %u->%u healed: circuit breaker closed", here_, src);
        }

        if (flow_.enabled)
        {
            // Apply the piggybacked window grant (biased by one on the
            // wire; 0 means the peer advertised nothing on this frame).
            if (hdr.credit != 0)
            {
                std::uint64_t const window = hdr.credit - 1;
                if (!peer.has_credit || peer.credit_window != window)
                    counters_.credit_updates.fetch_add(
                        1, std::memory_order_relaxed);
                peer.has_credit = true;
                peer.credit_window = window;
            }
            // Acked bytes and fresh grants both open window space — give
            // deferred jobs a chance immediately rather than waiting for
            // the next reliability tick.
            release_deferred_locked(peer, released, now);
            update_link_pressure_locked(peer);
        }
    }

    for (auto& job : released)
    {
        outbound_.push(std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
        counters_.sends_released.fetch_add(1, std::memory_order_relaxed);
    }
}

void parcelhandler::schedule_ack_locked(peer_state& peer, std::int64_t now)
{
    if (peer.ack_pending)
        return;
    peer.ack_pending = true;
    peer.ack_deadline_ns = now + reliability_.ack_delay_us * 1000;
}

std::uint64_t parcelhandler::sack_bits_locked(peer_state const& peer) const
{
    std::uint64_t bits = 0;
    for (auto const& [seq, batch] : peer.held)
    {
        std::uint64_t const off = seq - peer.cum_received - 1;
        if (off >= 64)
            break;    // map is ordered: later entries are further out
        bits |= 1ull << off;
    }
    return bits;
}

std::int64_t parcelhandler::initial_rto_ns_locked(peer_state const& peer) const
{
    double rto_us = static_cast<double>(reliability_.min_rto_us);
    if (peer.srtt_us > 0.0)
        rto_us = std::clamp(reliability_.rto_rtt_multiplier * peer.srtt_us,
            static_cast<double>(reliability_.min_rto_us),
            static_cast<double>(reliability_.max_rto_us));
    return static_cast<std::int64_t>(rto_us * 1000.0);
}

void parcelhandler::maybe_trip_breaker_locked(
    std::uint32_t dst, peer_state& peer)
{
    if (peer.breaker_open)
        return;
    bool trip = peer.unacked.size() >= reliability_.breaker_trip_backlog;
    if (!trip && !peer.unacked.empty())
        trip = peer.unacked.begin()->second.attempts >
            reliability_.breaker_trip_attempts;
    if (!trip)
        return;
    peer.breaker_open = true;
    open_breakers_.fetch_add(1, std::memory_order_release);
    counters_.circuit_breaker_trips.fetch_add(1, std::memory_order_relaxed);
    COAL_LOG_WARN("parcel",
        "link %u->%u degraded (%zu unacked): circuit breaker open, "
        "coalescing bypassed",
        here_, dst, peer.unacked.size());
}

bool parcelhandler::progress_reliability()
{
    if (!reliability_.enabled)
        return false;

    std::int64_t const now = now_ns();
    struct ack_job
    {
        std::uint32_t dst;
        frame_header hdr;
    };
    std::vector<ack_job> acks;
    std::vector<std::pair<std::uint32_t, serialization::shared_buffer>> resends;
    std::vector<send_job> released;
    std::vector<send_job> failed;
    {
        std::lock_guard lock(peers_lock_);
        for (auto& [dst, peer] : peers_)
        {
            if (peer.ack_pending && now >= peer.ack_deadline_ns)
            {
                peer.ack_pending = false;
                frame_header hdr;
                hdr.ack = peer.cum_received;
                hdr.sack = sack_bits_locked(peer);
                if (flow_.enabled)
                    hdr.credit = advertised_credit_wire();
                acks.push_back(ack_job{dst, hdr});
            }

            if (flow_.enabled)
            {
                // Slow-peer detector: a link that has kept jobs deferred
                // for starvation_trip_us without any grant movement is
                // treated like a dark link — trip its circuit breaker so
                // the coalescer bypasses batching and, once the byte cap
                // is also exhausted, sends fail as link_down.
                if (!peer.breaker_open && !peer.deferred.empty() &&
                    peer.starved_since_ns != 0 &&
                    now - peer.starved_since_ns >=
                        flow_.starvation_trip_us * 1000)
                {
                    peer.breaker_open = true;
                    open_breakers_.fetch_add(1, std::memory_order_release);
                    counters_.starvation_trips.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.circuit_breaker_trips.fetch_add(
                        1, std::memory_order_relaxed);
                    peer.starved_since_ns = now;
                    COAL_LOG_WARN("parcel",
                        "link %u->%u credit-starved for %lld us: circuit "
                        "breaker open",
                        here_, dst,
                        static_cast<long long>(flow_.starvation_trip_us));
                }

                if (link_down_locked(peer) && !peer.deferred.empty())
                {
                    // Dark link past its byte cap: retained frames stay
                    // (they are what exactly-once delivery replays if the
                    // link heals) but deferred jobs — which never consumed
                    // a sequence number — fail with a distinct error
                    // instead of queueing behind an unbounded blackout.
                    while (!peer.deferred.empty())
                    {
                        send_job& front = peer.deferred.front();
                        peer.deferred_bytes -= std::min<std::uint64_t>(
                            peer.deferred_bytes, front.bytes);
                        failed.push_back(std::move(front));
                        peer.deferred.pop_front();
                    }
                    peer.starved_since_ns = 0;
                }
                else
                {
                    release_deferred_locked(peer, released, now);
                }
                update_link_pressure_locked(peer);
            }

            // Selective repeat bounded by the wire format's 64-bit sack
            // horizon: the receiver can only report frames in
            // [cum+1, cum+64], so retransmitting beyond the left edge
            // + 64 is blind — those frames are usually already held on
            // the receiver, and resending them turns one early drop in
            // a large burst into a storm of spurious retransmits.
            // Their timers stay paused until the window slides.
            std::uint64_t const window_end = peer.unacked.empty() ?
                0 :
                peer.unacked.begin()->first + 64;
            for (auto& [seq, u] : peer.unacked)
            {
                if (seq > window_end)
                    break;
                if (now < u.deadline_ns)
                    continue;
                u.attempts += 1;
                double backed =
                    static_cast<double>(u.rto_ns) * reliability_.rto_backoff;
                backed = std::min(backed,
                    static_cast<double>(reliability_.max_rto_us) * 1000.0);
                backed *=
                    1.0 + reliability_.rto_jitter * jitter_unit(seq, u.attempts);
                u.rto_ns = static_cast<std::int64_t>(backed);
                u.deadline_ns = now + u.rto_ns;
                // Refresh piggybacked acks and the credit grant — the
                // stored image has stale ones.  Patch + snapshot both
                // happen under peers_lock_, so no transport thread ever
                // reads a half-patched prefix; the retained frame itself
                // is reused, not deep-copied.
                patch_frame_acks(u.frame, peer.cum_received,
                    sack_bits_locked(peer),
                    flow_.enabled ? advertised_credit_wire() : 0);
                peer.ack_pending = false;    // the retransmit carries the ack
                resends.emplace_back(dst, u.frame.flatten_copy());
                counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
            }
            maybe_trip_breaker_locked(dst, peer);
        }
    }

    for (auto& job : acks)
    {
        counters_.acks_sent.fetch_add(1, std::memory_order_relaxed);
        transport_.send(here_, job.dst, encode_message({}, job.hdr));
    }
    for (auto& [dst, wire] : resends)
        transport_.send(here_, dst, serialization::wire_message(std::move(wire)));
    for (auto& job : released)
    {
        outbound_.push(std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
        counters_.sends_released.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& job : failed)
    {
        fail_job(delivery_error::link_down, std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
    }
    return !acks.empty() || !resends.empty() || !released.empty() ||
        !failed.empty();
}

std::size_t parcelhandler::pending_reliability() const
{
    if (!reliability_.enabled)
        return 0;
    std::lock_guard lock(peers_lock_);
    std::size_t pending = 0;
    for (auto const& [dst, peer] : peers_)
    {
        pending += peer.unacked.size() + peer.held.size();
        if (peer.ack_pending)
            pending += 1;
    }
    return pending;
}

bool parcelhandler::link_degraded(std::uint32_t dst) const
{
    // Fast path for the coalescer's enqueue: with no breaker open
    // anywhere (the steady state), answer from one atomic load without
    // touching the shared peers lock.
    if (!reliability_.enabled ||
        open_breakers_.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard lock(peers_lock_);
    auto const it = peers_.find(dst);
    return it != peers_.end() && it->second.breaker_open;
}

pressure_state parcelhandler::flow_pressure(std::uint32_t dst) const
{
    if (!flow_.enabled)
        return pressure_state::ok;
    pressure_state const pool =
        serialization::buffer_pool::global().pressure();
    // Steady state: no link above ok anywhere — answer without the lock.
    if (pressured_links_.load(std::memory_order_relaxed) == 0)
        return pool;
    std::lock_guard lock(peers_lock_);
    auto const it = peers_.find(dst);
    if (it == peers_.end())
        return pool;
    return max_pressure(pool, it->second.link_pressure);
}

pressure_state parcelhandler::current_pressure() const noexcept
{
    if (!flow_.enabled)
        return pressure_state::ok;
    return max_pressure(serialization::buffer_pool::global().pressure(),
        static_cast<pressure_state>(
            worst_link_pressure_.load(std::memory_order_relaxed)));
}

std::uint64_t parcelhandler::advertised_credit_wire() const noexcept
{
    std::uint64_t window = flow_.window_bytes;
    switch (serialization::buffer_pool::global().pressure())
    {
    case pressure_state::soft:
        window /= 4;
        break;
    case pressure_state::critical:
        window /= 16;
        break;
    case pressure_state::ok:
        break;
    }
    // Never advertise below the floor (and never 0 on the wire): the pool
    // is process-global, so a sender's own backlog can raise the pressure
    // this grant is computed from — a zero grant could then deadlock the
    // very traffic that would relieve it.
    window = std::max(window, flow_.min_window_bytes);
    return window + 1;
}

bool parcelhandler::should_defer_locked(
    peer_state const& peer, std::size_t bytes) const noexcept
{
    if (peer.unacked_bytes == 0)
        return false;    // one frame may always fly: no-deadlock guarantee
    std::uint64_t const window =
        peer.has_credit ? peer.credit_window : flow_.initial_window_bytes;
    return peer.unacked_bytes + bytes > window;
}

bool parcelhandler::link_down_locked(peer_state const& peer) const noexcept
{
    return peer.breaker_open && flow_.link_inflight_cap_bytes != 0 &&
        peer.unacked_bytes + peer.deferred_bytes >=
            flow_.link_inflight_cap_bytes;
}

void parcelhandler::release_deferred_locked(
    peer_state& peer, std::vector<send_job>& released, std::int64_t now)
{
    if (peer.deferred.empty() || link_down_locked(peer))
        return;
    std::uint64_t const window =
        peer.has_credit ? peer.credit_window : flow_.initial_window_bytes;
    // Plan against the window as if each released job were already on the
    // wire — otherwise one grant would release the whole queue at once
    // and progress_send would immediately re-defer most of it.
    std::uint64_t planned = peer.unacked_bytes;
    bool any = false;
    while (!peer.deferred.empty())
    {
        send_job& front = peer.deferred.front();
        if (planned != 0 && planned + front.bytes > window)
            break;
        planned += front.bytes;
        peer.deferred_bytes -=
            std::min<std::uint64_t>(peer.deferred_bytes, front.bytes);
        released.push_back(std::move(front));
        peer.deferred.pop_front();
        any = true;
    }
    if (peer.deferred.empty())
        peer.starved_since_ns = 0;
    else if (any)
        peer.starved_since_ns = now;    // the window moved: not starved
}

void parcelhandler::update_link_pressure_locked(peer_state& peer)
{
    std::uint64_t const total = peer.unacked_bytes + peer.deferred_bytes;
    pressure_state next = pressure_state::ok;
    if (flow_.link_inflight_cap_bytes != 0 &&
        total >= flow_.link_inflight_cap_bytes)
        next = pressure_state::critical;
    else if (flow_.link_soft_bytes != 0 && total >= flow_.link_soft_bytes)
        next = pressure_state::soft;
    if (next == peer.link_pressure)
        return;
    bool const was_ok = peer.link_pressure == pressure_state::ok;
    peer.link_pressure = next;
    if (was_ok && next != pressure_state::ok)
        pressured_links_.fetch_add(1, std::memory_order_relaxed);
    else if (!was_ok && next == pressure_state::ok)
        pressured_links_.fetch_sub(1, std::memory_order_relaxed);
    // Handful of peers: recomputing the max is cheaper than being clever.
    pressure_state worst = pressure_state::ok;
    for (auto const& [d, p] : peers_)
        worst = max_pressure(worst, p.link_pressure);
    worst_link_pressure_.store(
        static_cast<std::uint8_t>(worst), std::memory_order_relaxed);
}

void parcelhandler::fail_job(delivery_error err, send_job&& job)
{
    if (err == delivery_error::link_down)
    {
        counters_.link_down_failures.fetch_add(
            job.parcels.size(), std::memory_order_relaxed);
        trace::tracer::global().record(here_, trace::event_kind::link_down,
            job.dst, job.parcels.size());
        COAL_LOG_WARN("parcel",
            "link %u->%u down: %zu parcels failed (breaker open, in-flight "
            "cap exhausted)",
            here_, job.dst, job.parcels.size());
    }
    if (on_delivery_error_)
    {
        for (auto& p : job.parcels)
            on_delivery_error_(err, std::move(p));
    }
}

void parcelhandler::note_pressure_transition()
{
    auto const cur = static_cast<std::uint8_t>(current_pressure());
    std::uint8_t prev = last_pressure_.load(std::memory_order_relaxed);
    if (cur == prev ||
        !last_pressure_.compare_exchange_strong(
            prev, cur, std::memory_order_relaxed))
        return;
    counters_.pressure_transitions.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::pressure_changed, prev, cur);
    COAL_LOG_INFO("parcel", "locality %u pressure %s -> %s", here_,
        to_string(static_cast<pressure_state>(prev)),
        to_string(static_cast<pressure_state>(cur)));
}

bool parcelhandler::progress()
{
    if (stopped_.load(std::memory_order_acquire))
        return false;
    bool const sent = progress_send();
    bool const received = progress_receive();
    bool const pumped = progress_reliability();
    if (flow_.enabled)
        note_pressure_transition();
    return sent || received || pumped;
}

void parcelhandler::stop()
{
    bool expected = false;
    if (!stopped_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;
    outbound_.close();
    inbox_.close();
}

}    // namespace coal::parcel
