#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/timing/busy_work.hpp>
#include <coal/trace/tracer.hpp>

#include <utility>

namespace coal::parcel {

parcelhandler::parcelhandler(std::uint32_t here, net::transport& transport,
    threading::scheduler& scheduler)
  : here_(here)
  , transport_(transport)
  , scheduler_(scheduler)
{
    transport_.set_delivery_handler(
        here, [this](std::uint32_t src, serialization::byte_buffer&& buffer) {
            inbox_.push(inbound_message{src, std::move(buffer)});
        });

    scheduler_.register_background_work([this] { return progress(); });
}

parcelhandler::~parcelhandler()
{
    stop();
}

void parcelhandler::put_parcel(parcel&& p)
{
    COAL_ASSERT_MSG(p.action != 0, "parcel without action");
    p.source = here_;

    if (p.dest == here_)
    {
        trace::tracer::global().record(
            here_, trace::event_kind::parcel_local, p.action);
        deliver_local(std::move(p));
        return;
    }

    trace::tracer::global().record(
        here_, trace::event_kind::parcel_put, p.action, p.dest);
    counters_.parcels_sent.fetch_add(1, std::memory_order_relaxed);

    if (auto handler = message_handler_for(p.action))
    {
        handler->enqueue(std::move(p));
        return;
    }

    std::uint32_t const dst = p.dest;
    std::vector<parcel> single;
    single.push_back(std::move(p));
    send_message(dst, std::move(single));
}

void parcelhandler::send_message(
    std::uint32_t dst, std::vector<parcel>&& parcels)
{
    if (parcels.empty())
        return;
    COAL_ASSERT(dst != here_);
    outbound_.push(send_job{dst, std::move(parcels)});
}

void parcelhandler::set_message_handler(
    action_id id, std::shared_ptr<message_handler> handler)
{
    std::lock_guard lock(handlers_lock_);
    if (handler == nullptr)
        handlers_.erase(id);
    else
        handlers_[id] = std::move(handler);
}

std::shared_ptr<message_handler> parcelhandler::message_handler_for(
    action_id id) const
{
    std::lock_guard lock(handlers_lock_);
    auto it = handlers_.find(id);
    return it == handlers_.end() ? nullptr : it->second;
}

void parcelhandler::flush_message_handlers()
{
    std::vector<std::shared_ptr<message_handler>> handlers;
    {
        std::lock_guard lock(handlers_lock_);
        handlers.reserve(handlers_.size());
        for (auto const& [id, h] : handlers_)
            handlers.push_back(h);
    }
    for (auto const& h : handlers)
        h->flush();
}

continuation_id parcelhandler::register_response_callback(
    unique_function<void(serialization::byte_buffer&&)> callback)
{
    continuation_id const id =
        next_continuation_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(responses_lock_);
    responses_.emplace(id, std::move(callback));
    return id;
}

std::size_t parcelhandler::pending_responses() const
{
    std::lock_guard lock(responses_lock_);
    return responses_.size();
}

void parcelhandler::complete_promise(
    continuation_id id, serialization::byte_buffer&& payload)
{
    unique_function<void(serialization::byte_buffer&&)> callback;
    {
        std::lock_guard lock(responses_lock_);
        auto it = responses_.find(id);
        if (it == responses_.end())
        {
            COAL_LOG_WARN("parcel",
                "response for unknown continuation %llu at locality %u",
                static_cast<unsigned long long>(id), here_);
            return;
        }
        callback = std::move(it->second);
        responses_.erase(it);
    }
    callback(std::move(payload));
}

void parcelhandler::deliver_local(parcel&& p)
{
    counters_.parcels_local.fetch_add(1, std::memory_order_relaxed);
    scheduler_.post([this, parcel = std::move(p)]() mutable {
        execute_parcel(std::move(parcel));
    });
}

void parcelhandler::execute_parcel(parcel&& p)
{
    auto const* entry = action_registry::instance().find(p.action);
    if (entry == nullptr)
    {
        COAL_LOG_ERROR("parcel",
            "unknown action %llx at locality %u (parcel dropped)",
            static_cast<unsigned long long>(p.action), here_);
        return;
    }

    invocation_context ctx;
    ctx.this_locality = here_;
    ctx.put_parcel = [this](parcel&& out) { put_parcel(std::move(out)); };
    ctx.complete_promise = [this](continuation_id id,
                               serialization::byte_buffer&& payload) {
        complete_promise(id, std::move(payload));
    };
    ctx.find_component = component_resolver_;

    auto const action = p.action;
    try
    {
        entry->invoke(ctx, std::move(p));
    }
    catch (std::exception const& e)
    {
        // Remote exceptions are not propagated across localities (see
        // README limitations); a throwing action must not take the
        // worker thread down with it.
        COAL_LOG_ERROR("parcel", "action '%s' threw: %s (parcel dropped)",
            entry->name.c_str(), e.what());
    }
    catch (...)
    {
        COAL_LOG_ERROR("parcel", "action '%s' threw a non-std exception "
                                 "(parcel dropped)",
            entry->name.c_str());
    }
    counters_.parcels_executed.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::parcel_executed, action);
}

bool parcelhandler::progress_send()
{
    auto job = outbound_.try_pop();
    if (!job)
        return false;

    // Framing + transmission: this runs in background-work context, and
    // transport_.send burns the modeled per-message sender CPU here.
    serialization::byte_buffer wire = encode_message(job->parcels);

    trace::tracer::global().record(here_, trace::event_kind::message_sent,
        job->parcels.size(), wire.size());
    counters_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);

    transport_.send(here_, job->dst, std::move(wire));
    return true;
}

bool parcelhandler::progress_receive()
{
    auto msg = inbox_.try_pop();
    if (!msg)
        return false;

    // Receiver-side per-message CPU cost (protocol processing).
    timing::spin_for_us(transport_.recv_overhead_us());

    counters_.messages_received.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_received.fetch_add(
        msg->payload.size(), std::memory_order_relaxed);

    std::vector<parcel> parcels = decode_message(msg->payload);
    trace::tracer::global().record(here_,
        trace::event_kind::message_received, parcels.size(),
        msg->payload.size());
    counters_.parcels_received.fetch_add(
        parcels.size(), std::memory_order_relaxed);

    for (auto& p : parcels)
    {
        scheduler_.post([this, parcel = std::move(p)]() mutable {
            execute_parcel(std::move(parcel));
        });
    }
    return true;
}

bool parcelhandler::progress()
{
    if (stopped_.load(std::memory_order_acquire))
        return false;
    bool const sent = progress_send();
    bool const received = progress_receive();
    return sent || received;
}

void parcelhandler::stop()
{
    bool expected = false;
    if (!stopped_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;
    outbound_.close();
    inbox_.close();
}

}    // namespace coal::parcel
