#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/assert.hpp>
#include <coal/common/logging.hpp>
#include <coal/common/stopwatch.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/timing/busy_work.hpp>
#include <coal/trace/tracer.hpp>

#include <algorithm>
#include <thread>
#include <utility>

namespace coal::parcel {

namespace {

    /// Cheap deterministic jitter in [0, 1): retransmit deadlines of
    /// different frames must not re-synchronize after a blackout.
    double jitter_unit(std::uint64_t seq, unsigned attempts) noexcept
    {
        std::uint64_t x = seq * 0x9e3779b97f4a7c15ull + attempts;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        return static_cast<double>(x >> 11) * 0x1.0p-53;
    }

    /// Marks a message as in-progress for the duration of a progress_*
    /// body.  Incremented before the queue pop and released only after
    /// the downstream handoff (transport send / task post), so pending
    /// counts never transiently read zero while work is in flight.
    struct in_progress_guard
    {
        explicit in_progress_guard(std::atomic<std::size_t>& count)
          : count_(count)
        {
            count_.fetch_add(1, std::memory_order_acq_rel);
        }

        ~in_progress_guard()
        {
            count_.fetch_sub(1, std::memory_order_acq_rel);
        }

        in_progress_guard(in_progress_guard const&) = delete;
        in_progress_guard& operator=(in_progress_guard const&) = delete;

    private:
        std::atomic<std::size_t>& count_;
    };

}    // namespace

parcelhandler::parcelhandler(std::uint32_t here, net::transport& transport,
    threading::scheduler& scheduler, reliability_params reliability,
    flow_params flow, membership_params membership, peer_store_params store)
  : here_(here)
  , transport_(transport)
  , scheduler_(scheduler)
  , reliability_(reliability)
  , flow_(flow)
  , membership_(membership)
  , store_params_(store)
{
    // Credits travel in the frame's ack fields, so flow control requires
    // the reliability layer underneath it.  Membership likewise: epochs
    // and heartbeats ride the reliability prefix.
    if (flow_.enabled || membership_.enabled)
        reliability_.enabled = true;

    // One shared invocation context for every parcel this handler ever
    // executes; the per-parcel path just passes a reference.
    invoke_ctx_.this_locality = here_;
    invoke_ctx_.put_parcel = [this](parcel&& out) {
        put_parcel(std::move(out));
    };
    invoke_ctx_.complete_promise = [this](continuation_id id,
                                       serialization::shared_buffer&& payload) {
        complete_promise(id, std::move(payload));
    };

    transport_.set_delivery_handler(
        here, [this](std::uint32_t src, serialization::shared_buffer&& buffer) {
            inbox_.push(inbound_message{src, std::move(buffer)});
        });

    scheduler_.register_background_work([this] { return progress(); });
}

parcelhandler::~parcelhandler()
{
    stop();
}

void parcelhandler::put_parcel(parcel&& p)
{
    COAL_ASSERT_MSG(p.action != 0, "parcel without action");
    p.source = here_;

    // A crashed incarnation delivers and executes nothing; surface the
    // parcel through the failure path so producer-side accounting still
    // balances (offered == confirmed + failed + shed).
    if (crashed_.load(std::memory_order_acquire))
    {
        std::vector<parcel> failed;
        failed.push_back(std::move(p));
        fail_parcels(delivery_error::peer_failed, std::move(failed));
        return;
    }

    if (p.dest == here_)
    {
        trace::tracer::global().record(
            here_, trace::event_kind::parcel_local, p.action);
        deliver_local(std::move(p));
        return;
    }

    // A parcel toward a peer the failure detector declared dead fails
    // immediately instead of queueing behind a link that will never ack.
    // (A rejoin under a new incarnation epoch clears the dead mark and
    // traffic resumes.)  Steady state costs two relaxed loads; a dead
    // tombstone counts, so eviction never un-quarantines an incarnation.
    if (membership_.enabled &&
        dead_peers_.load(std::memory_order_acquire) +
                tombstoned_dead_.load(std::memory_order_acquire) !=
            0 &&
        peer_dead(p.dest))
    {
        std::vector<parcel> failed;
        failed.push_back(std::move(p));
        fail_parcels(delivery_error::peer_failed, std::move(failed));
        return;
    }

    // Admission control: under critical memory/link pressure, best-effort
    // parcels (no continuation — nobody is waiting on a future) are shed
    // here, before they can pin another frame's worth of pool bytes.
    // Continuation-bearing parcels are always admitted: their population
    // is bounded by the caller's outstanding futures, and shedding them
    // would strand promises forever.
    if (flow_.enabled && p.continuation == 0 &&
        flow_pressure(p.dest) == pressure_state::critical)
    {
        std::vector<parcel> shed;
        shed.push_back(std::move(p));
        fail_parcels(delivery_error::shed_overload, std::move(shed));
        return;
    }

    trace::tracer::global().record(
        here_, trace::event_kind::parcel_put, p.action, p.dest);
    counters_.parcels_sent.fetch_add(1, std::memory_order_relaxed);

    if (auto handler = message_handler_for(p.action))
    {
        handler->enqueue(std::move(p));
        return;
    }

    std::uint32_t const dst = p.dest;
    std::vector<parcel> single;
    single.push_back(std::move(p));
    send_message(dst, std::move(single));
}

void parcelhandler::send_message(
    std::uint32_t dst, std::vector<parcel>&& parcels, send_ticket ticket)
{
    if (parcels.empty())
        return;
    COAL_ASSERT(dst != here_);

    if (ticket.stream == 0)
    {
        outbound_.push(send_job{dst, std::move(parcels)});
        return;
    }

    // Ticketed hand-off: the producer allocated `seq` under its own queue
    // lock but calls us lock-free, so two batches of one stream can
    // arrive here in either order.  Release to the outbound queue
    // strictly in ticket order, parking early arrivals.  Holding the
    // stream's shard lock across the pushes is what makes the release
    // order the queue order.
    auto& shard =
        sequencer_shards_[ticket.stream & (sequencer_shard_count - 1)];
    std::lock_guard lock(shard.lock);
    auto& stream = shard.streams[ticket.stream];
    if (ticket.seq != stream.next_seq)
    {
        COAL_ASSERT(ticket.seq > stream.next_seq);
        parked_sends_.fetch_add(1, std::memory_order_release);
        stream.parked.emplace(
            ticket.seq, send_job{dst, std::move(parcels)});
        return;
    }

    outbound_.push(send_job{dst, std::move(parcels)});
    ++stream.next_seq;
    for (auto it = stream.parked.begin();
        it != stream.parked.end() && it->first == stream.next_seq;
        it = stream.parked.erase(it), ++stream.next_seq)
    {
        outbound_.push(std::move(it->second));
        parked_sends_.fetch_sub(1, std::memory_order_release);
    }
}

void parcelhandler::set_message_handler(
    action_id id, std::shared_ptr<message_handler> handler)
{
    std::lock_guard lock(handlers_lock_);
    if (handler == nullptr)
        handlers_.erase(id);
    else
        handlers_[id] = std::move(handler);
}

std::shared_ptr<message_handler> parcelhandler::message_handler_for(
    action_id id) const
{
    std::lock_guard lock(handlers_lock_);
    auto it = handlers_.find(id);
    return it == handlers_.end() ? nullptr : it->second;
}

void parcelhandler::flush_message_handlers()
{
    std::vector<std::shared_ptr<message_handler>> handlers;
    {
        std::lock_guard lock(handlers_lock_);
        handlers.reserve(handlers_.size());
        for (auto const& [id, h] : handlers_)
            handlers.push_back(h);
    }
    for (auto const& h : handlers)
        h->flush();
}

continuation_id parcelhandler::register_response_callback(
    unique_function<void(serialization::shared_buffer&&)> callback)
{
    continuation_id const id =
        next_continuation_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(responses_lock_);
    responses_.emplace(id, std::move(callback));
    return id;
}

std::size_t parcelhandler::pending_responses() const
{
    std::lock_guard lock(responses_lock_);
    return responses_.size();
}

void parcelhandler::complete_promise(
    continuation_id id, serialization::shared_buffer&& payload)
{
    unique_function<void(serialization::shared_buffer&&)> callback;
    {
        std::lock_guard lock(responses_lock_);
        auto it = responses_.find(id);
        if (it == responses_.end())
        {
            COAL_LOG_WARN("parcel",
                "response for unknown continuation %llu at locality %u",
                static_cast<unsigned long long>(id), here_);
            return;
        }
        callback = std::move(it->second);
        responses_.erase(it);
    }
    callback(std::move(payload));
}

void parcelhandler::deliver_local(parcel&& p)
{
    counters_.parcels_local.fetch_add(1, std::memory_order_relaxed);
    scheduler_.post([this, parcel = std::move(p)]() mutable {
        execute_parcel(std::move(parcel));
    });
}

void parcelhandler::execute_parcel(parcel&& p)
{
    auto const* entry = action_registry::instance().find(p.action);
    if (entry == nullptr)
    {
        COAL_LOG_ERROR("parcel",
            "unknown action %llx at locality %u (parcel dropped)",
            static_cast<unsigned long long>(p.action), here_);
        return;
    }

    auto const action = p.action;
    try
    {
        entry->invoke(invoke_ctx_, std::move(p));
    }
    catch (std::exception const& e)
    {
        // Remote exceptions are not propagated across localities (see
        // README limitations); a throwing action must not take the
        // worker thread down with it.
        COAL_LOG_ERROR("parcel", "action '%s' threw: %s (parcel dropped)",
            entry->name.c_str(), e.what());
    }
    catch (...)
    {
        COAL_LOG_ERROR("parcel", "action '%s' threw a non-std exception "
                                 "(parcel dropped)",
            entry->name.c_str());
    }
    counters_.parcels_executed.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::parcel_executed, action);
}

// -- sharded peer store ------------------------------------------------------

peer_state& parcelhandler::hydrate_locked(peer_entry& e)
{
    if (e.live)
        return *e.live;
    bool const was_tomb = e.tombstoned;
    bool const was_dead = was_tomb && e.tomb.status == peer_status::dead;
    peer_state& peer =
        store_.hydrate(e, self_epoch_.load(std::memory_order_relaxed));
    std::int64_t const now = now_ns();
    if (was_tomb)
    {
        counters_.peers_rehydrated.fetch_add(1, std::memory_order_relaxed);
        if (was_dead)
        {
            // The quarantine gauge moves back to the live column; the
            // put_parcel fail-fast gate keeps reading the sum.
            tombstoned_dead_.fetch_sub(1, std::memory_order_release);
            dead_peers_.fetch_add(1, std::memory_order_release);
        }
    }
    // Hydration is contact: restart the idle clock, and hand the entry to
    // the due ring so liveness/heartbeat service resumes (entry -> ring
    // bucket is within the lock order).  The first service is due NOW,
    // not one heartbeat out: a fresh peer_state has last_sent_ns == 0,
    // so the next drain emits the greeting heartbeat immediately —
    // carrying our epoch, the cumulative ack and a credit grant — and
    // starts the phi silence clock.  The old full-map walk gave new
    // peers exactly that first-tick service; deferring it by a full
    // heartbeat interval would leave the initial frame's ack hostage to
    // the 100 us delayed-ack timer alone.
    e.last_activity_ns = now;
    if (membership_.enabled)
        ring_.schedule(e.shared_from_this(), now);
    return peer;
}

bool parcelhandler::try_evict_locked(
    peer_entry& e, peer_state& peer, std::int64_t now)
{
    if (store_params_.evict_idle_us <= 0)
        return false;
    std::int64_t idle_ns = store_params_.evict_idle_us * 1000;
    // Dead peers linger 8x: several rejoin-probe cycles run before the
    // quarantine is compressed into the tombstone.
    if (peer.status == peer_status::dead)
        idle_ns *= 8;
    if (e.last_activity_ns == 0 || now - e.last_activity_ns < idle_ns)
        return false;
    if (!peer_store::evictable(peer))
        return false;
    if (peer.status == peer_status::suspected)
    {
        // Suspicion is a live-detector verdict, not protocol state: it
        // does not survive eviction.  (If the peer is genuinely gone, the
        // next hydration's silence re-derives it.)
        peer.status = peer_status::alive;
        suspected_peers_.fetch_sub(1, std::memory_order_release);
    }
    else if (peer.status == peer_status::dead)
    {
        dead_peers_.fetch_sub(1, std::memory_order_release);
        tombstoned_dead_.fetch_add(1, std::memory_order_release);
    }
    store_.demote(e);
    counters_.peers_evicted.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool parcelhandler::evict_hand_step(std::int64_t now)
{
    if (!reliability_.enabled || store_params_.evict_idle_us <= 0)
        return false;
    if (!hand_lock_.try_lock())
        return false;
    if (now - hand_last_step_ns_ < store_params_.evict_scan_interval_us * 1000)
    {
        hand_lock_.unlock();
        return false;
    }
    hand_last_step_ns_ = now;
    bool any = false;
    // The hand walks the published snapshots lock-free; entries inserted
    // since the last publication are folded in once per shard revolution
    // by refresh_snapshot, so steady state covers every entry.  Shard
    // advances count against the budget, bounding the loop on an empty
    // store.
    std::size_t budget = store_params_.evict_scan_budget;
    while (budget != 0)
    {
        peer_store::snapshot const* sn = store_.shard_snapshot(hand_shard_);
        std::size_t const n = sn == nullptr ? 0 : sn->entries.size();
        if (hand_pos_ >= n)
        {
            store_.refresh_snapshot(hand_shard_);
            hand_shard_ = (hand_shard_ + 1) % peer_store::shard_count;
            hand_pos_ = 0;
            --budget;
            continue;
        }
        peer_entry& e = *sn->entries[hand_pos_].second;
        ++hand_pos_;
        --budget;
        std::lock_guard lock(e.lock);
        if (e.live && try_evict_locked(e, *e.live, now))
            any = true;
    }
    hand_lock_.unlock();
    return any;
}

bool parcelhandler::progress_send()
{
    in_progress_guard guard(sends_in_progress_);
    // Re-checked under the guard: simulate_crash() waits for in-progress
    // counts to reach zero before tearing state down, so a worker that
    // raced past progress()'s check must not pop a job here.
    if (crashed_.load(std::memory_order_acquire))
        return false;
    auto job = outbound_.try_pop();
    if (!job)
        return false;

    // Framing + transmission: this runs in background-work context, and
    // transport_.send burns the modeled per-message sender CPU here.
    serialization::wire_message wire;
    if (reliability_.enabled)
    {
        frame_header hdr;
        std::int64_t const now = now_ns();
        std::size_t const est = message_wire_size(job->parcels);
        std::uint32_t const dst = job->dst;
        bool down = false;
        bool dead = false;
        bool deferred = false;
        std::uint64_t gen = 0;
        std::uint64_t deferred_bytes_after = 0;
        // Steady state this lookup is a lock-free snapshot binary search;
        // only a first-contact insert takes the shard lock.  All protocol
        // work below holds the PEER's lock — two destinations never
        // serialize on each other.
        peer_entry& e = store_.get_or_create(dst);
        {
            std::lock_guard lock(e.lock);
            peer_state& peer = hydrate_locked(e);
            if (membership_.enabled && peer.status == peer_status::dead)
            {
                // Jobs already queued when the peer was declared dead (or
                // flushed out of coalescing queues by the death) fail here.
                dead = true;
            }
            else if (flow_.enabled)
            {
                if (link_down_locked(peer))
                {
                    down = true;
                }
                else if (should_defer_locked(peer, est))
                {
                    // Window exhausted: park the job on the peer instead
                    // of handing it to the wire.  No sequence number is
                    // consumed — the job re-enters this path when a grant
                    // or an ack opens the window.
                    if (peer.starved_since_ns == 0)
                        peer.starved_since_ns = now;
                    job->bytes = est;
                    peer.deferred_bytes += est;
                    deferred_bytes_after = peer.deferred_bytes;
                    peer.deferred.push_back(std::move(*job));
                    deferred_sends_.fetch_add(1, std::memory_order_release);
                    counters_.sends_deferred.fetch_add(
                        1, std::memory_order_relaxed);
                    update_link_pressure_locked(peer);
                    deferred = true;
                }
            }
            if (!down && !dead && !deferred)
            {
                gen = peer.stream_gen;
                hdr.seq = peer.next_seq++;
                hdr.ack = peer.cum_received;
                hdr.sack = sack_bits_locked(peer);
                if (flow_.enabled)
                    hdr.credit = advertised_credit_wire();
                stamp_epochs_locked(peer, hdr);
                if (peer.ack_pending)
                {
                    peer.ack_pending = false;    // this frame carries the ack
                    acks_pending_.fetch_sub(1, std::memory_order_release);
                }
                peer.last_sent_ns = now;
                e.last_activity_ns = now;
            }
        }
        if (dead)
        {
            fail_job(delivery_error::peer_failed, std::move(*job));
            return true;
        }
        if (down)
        {
            fail_job(delivery_error::link_down, std::move(*job));
            return true;
        }
        if (deferred)
        {
            // Make sure the deferred queue gets service (starvation trip,
            // release) even if no ack ever arrives to drive it.
            ring_.schedule(e.shared_from_this(),
                now + flow_.defer_service_us * 1000);
            trace::tracer::global().record(here_,
                trace::event_kind::send_deferred, dst, deferred_bytes_after);
            return true;    // consumed a queue item (into the defer queue)
        }
        serialization::wire_message frame = encode_message(job->parcels, hdr);
        serialization::shared_buffer flat;
        std::int64_t retransmit_at = 0;
        {
            // Register the frame before handing it to the transport so a
            // synchronous loopback ack always finds its entry.
            std::lock_guard lock(e.lock);
            peer_state& peer = hydrate_locked(e);
            if (membership_.enabled &&
                (peer.status == peer_status::dead || peer.stream_gen != gen))
            {
                // Declared dead — or fenced by a death/rejoin — between the
                // two lock sections.  Registering here would inject a frame
                // of the fenced stream into the fresh one: its sequence
                // number was reset and will be re-issued, so the emplace
                // below would silently collide, and its stale epoch stamp
                // makes the receiver discard every retransmit — a permanent
                // hole that wedges the link.  Fail the job instead, exactly
                // as the fence failed its siblings.  (An evict/rehydrate
                // cycle between the sections is NOT a fence: the tombstone
                // carries stream_gen through, so the check passes.)
                dead = true;
            }
            else
            {
                unacked_frame u;
                // Retained by reference: the retransmission table shares the
                // frame's fragments instead of deep-copying the wire image.
                u.frame = std::move(frame);
                u.bytes = est;
                u.parcels = static_cast<std::uint32_t>(job->parcels.size());
                for (parcel const& p : job->parcels)
                    if (p.source != here_)
                        ++u.forwarded;
                u.first_send_ns = now;
                u.rto_ns = initial_rto_ns_locked(peer);
                u.deadline_ns = now + u.rto_ns;
                retransmit_at = u.deadline_ns;
                peer.unacked_bytes += est;
                auto const it =
                    peer.unacked.emplace(hdr.seq, std::move(u)).first;
                // The transport must not alias the retained fragments —
                // service_peer patches the ack/sack prefix in place under
                // this lock before every retransmit.  Take the one gather
                // copy per transmission here, while the frame is
                // guaranteed stable.
                flat = it->second.frame.flatten_copy();
                unacked_total_.fetch_add(1, std::memory_order_release);
                maybe_trip_breaker_locked(dst, peer);
                if (flow_.enabled)
                    update_link_pressure_locked(peer);
                e.last_activity_ns = now;
            }
        }
        if (dead)
        {
            fail_job(delivery_error::peer_failed, std::move(*job));
            return true;
        }
        // Arm the retransmission timer (CAS-min: a no-op if an earlier
        // deadline is already registered).
        ring_.schedule(e.shared_from_this(), retransmit_at);
        wire = serialization::wire_message(std::move(flat));
    }
    else
    {
        // Fire-and-forget: the fragment chain goes straight to the
        // transport, which flattens (or moves out) at the wire boundary.
        wire = encode_message(job->parcels);
    }

    std::size_t const wire_bytes = wire.size();
    trace::tracer::global().record(here_, trace::event_kind::message_sent,
        job->parcels.size(), wire_bytes);
    counters_.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_sent.fetch_add(wire_bytes, std::memory_order_relaxed);

    if (topo_.enabled())
    {
        auto& tier_counter =
            topo_.tier_of(here_, job->dst) == net::link_tier::inter_node ?
            counters_.messages_inter_node :
            counters_.messages_intra_node;
        tier_counter.fetch_add(1, std::memory_order_relaxed);
    }

    transport_.send(here_, job->dst, std::move(wire));
    return true;
}

bool parcelhandler::progress_receive()
{
    in_progress_guard guard(receives_in_progress_);
    if (crashed_.load(std::memory_order_acquire))
        return false;

    // Budgeted multi-frame drain: amortize the poll (and, under load, the
    // wake-up that led here) over up to receive_drain_budget frames
    // instead of re-entering the whole progress machinery per frame.
    std::size_t frames = 0;
    while (frames != receive_drain_budget)
    {
        auto msg = inbox_.try_pop();
        if (!msg)
            break;
        ++frames;
        receive_one(std::move(*msg));
    }
    if (frames == 0)
        return false;

    counters_.receive_drains.fetch_add(1, std::memory_order_relaxed);
    counters_.frames_drained.fetch_add(frames, std::memory_order_relaxed);
    return true;
}

void parcelhandler::receive_one(inbound_message&& msg)
{
    counters_.messages_received.fetch_add(1, std::memory_order_relaxed);
    counters_.bytes_received.fetch_add(
        msg.payload.size(), std::memory_order_relaxed);

    frame_info info;
    try
    {
        info = peek_frame(msg.payload);
    }
    catch (serialization::serialization_error const& e)
    {
        COAL_LOG_WARN("parcel",
            "malformed frame from locality %u dropped: %s", msg.src, e.what());
        return;
    }

    trace::tracer::global().record(here_,
        trace::event_kind::message_received, info.count, msg.payload.size());

    // Membership gate, BEFORE any ack/credit/dedup processing: a frame
    // from a fenced incarnation (or addressed to a previous incarnation of
    // this locality) must not touch the live link state — cross-epoch acks
    // applied to fresh sequence numbers would corrupt exactly-once
    // delivery.
    if (!membership_admit(msg.src, info))
        return;

    if (reliability_.enabled && info.header.seq != 0)
    {
        // Duplicate check from the O(1) prefix peek, BEFORE the modeled
        // per-message protocol spin: a retransmit of a frame we already
        // hold must not cost receive_overhead a second time.  This early
        // check is only an optimization — the authoritative one happens
        // again at insertion below, under the same lock.
        bool duplicate = false;
        bool stale = false;
        peer_entry& e = store_.get_or_create(msg.src);
        {
            std::int64_t const now = now_ns();
            std::lock_guard lock(e.lock);
            peer_state& peer = hydrate_locked(e);
            if (membership_.enabled && info.header.src_epoch != 0 &&
                info.header.src_epoch != peer.epoch)
            {
                // A fence slid in after membership_admit released the lock:
                // this frame belongs to the fenced incarnation now.  Its
                // seq/ack state must not touch the fresh stream.
                stale = true;
            }
            else if (info.header.seq <= peer.cum_received ||
                peer.held.count(info.header.seq) != 0)
            {
                duplicate = true;
                // Re-ack immediately-ish so the sender stops resending.
                schedule_ack_locked(e, peer, now);
            }
        }
        if (stale)
        {
            counters_.stale_epoch_frames.fetch_add(
                1, std::memory_order_relaxed);
            return;
        }
        if (duplicate)
        {
            handle_acks(msg.src, info.header);    // dups carry fresh acks
            counters_.duplicates_suppressed.fetch_add(
                1, std::memory_order_relaxed);
            counters_.duplicate_overhead_avoided.fetch_add(
                1, std::memory_order_relaxed);
            return;
        }
    }

    // Receiver-side per-message CPU cost (protocol processing), priced by
    // the link tier: a frame that never left the node costs less.
    timing::spin_for_us(transport_.link_recv_overhead_us(msg.src, here_));

    if (!reliability_.enabled || info.header.seq == 0)
    {
        // Unsequenced frame: standalone ack (count == 0) or plain traffic
        // with the reliability layer off.
        if (reliability_.enabled)
            handle_acks(msg.src, info.header);
        spawn_parcel_tasks(std::move(msg.payload), info.count);
        return;
    }

    handle_acks(msg.src, info.header);

    // Sequenced data frame: suppress duplicates, hold out-of-order frames
    // back (undecoded), and release the in-order prefix.  The duplicate
    // re-check is required: two workers may have popped two copies of the
    // same seq concurrently and both passed the early check above.
    std::vector<held_frame> ready;
    {
        std::int64_t const now = now_ns();
        peer_entry& e = store_.get_or_create(msg.src);
        std::lock_guard lock(e.lock);
        peer_state& peer = hydrate_locked(e);
        if (membership_.enabled && info.header.src_epoch != 0 &&
            info.header.src_epoch != peer.epoch)
        {
            // Fenced while this thread was between lock holds: parking the
            // frame would leave a hold-out of the dead incarnation in the
            // fresh stream's reorder buffer — a seq the new stream may
            // never fill.  Drop it undecoded.
            counters_.stale_epoch_frames.fetch_add(
                1, std::memory_order_relaxed);
            return;
        }
        if (info.header.seq <= peer.cum_received ||
            peer.held.count(info.header.seq) != 0)
        {
            counters_.duplicates_suppressed.fetch_add(
                1, std::memory_order_relaxed);
            schedule_ack_locked(e, peer, now);
        }
        else
        {
            peer.held.emplace(info.header.seq,
                held_frame{std::move(msg.payload), info.count});
            held_total_.fetch_add(1, std::memory_order_release);
            for (;;)
            {
                auto it = peer.held.find(peer.cum_received + 1);
                if (it == peer.held.end())
                    break;
                ++peer.cum_received;
                ready.push_back(std::move(it->second));
                peer.held.erase(it);
                held_total_.fetch_sub(1, std::memory_order_release);
            }
            schedule_ack_locked(e, peer, now);
            e.last_activity_ns = now;
        }
    }

    for (auto& frame : ready)
        spawn_parcel_tasks(std::move(frame.payload), frame.count);
}

std::size_t parcelhandler::chunk_size_for(std::size_t count) const noexcept
{
    // ~2 chunks per worker keeps every worker fed and leaves slack for
    // stealing to balance uneven action runtimes, without descending to
    // chunk sizes where per-task overhead reappears.
    std::size_t const workers = std::max<std::size_t>(
        scheduler_.num_workers(), 1);
    std::size_t const per_chunk = (count + 2 * workers - 1) / (2 * workers);
    return std::max(per_chunk, receive_min_chunk_parcels);
}

void parcelhandler::spawn_parcel_tasks(
    serialization::shared_buffer&& buffer, std::uint32_t count)
{
    if (count == 0)
        return;    // standalone ack frame

    std::size_t const chunk = chunk_size_for(count);
    std::vector<std::size_t> offsets;
    try
    {
        offsets = scan_parcel_offsets(buffer, count, chunk);
    }
    catch (serialization::serialization_error const& e)
    {
        COAL_LOG_WARN(
            "parcel", "malformed frame body dropped: %s", e.what());
        return;
    }

    counters_.parcels_received.fetch_add(count, std::memory_order_relaxed);

    // One chunk task per boundary; each borrows the frame slab by
    // refcount and decodes its own parcel range on the worker that runs
    // it — the deserialization never executes on this (background) path.
    std::size_t const nchunks = offsets.size() - 1;
    std::vector<threading::task_type> tasks;
    tasks.reserve(nchunks);
    std::size_t remaining = count;
    for (std::size_t c = 0; c != nchunks; ++c)
    {
        std::size_t const in_chunk = std::min(chunk, remaining);
        remaining -= in_chunk;
        tasks.push_back(
            [this, buffer, offset = offsets[c], in_chunk]() mutable {
                execute_chunk(std::move(buffer), offset, in_chunk);
            });
    }

    counters_.chunk_tasks.fetch_add(nchunks, std::memory_order_relaxed);
    counters_.chunk_parcels.fetch_add(count, std::memory_order_relaxed);
    scheduler_.post_n(std::move(tasks));
}

void parcelhandler::execute_chunk(
    serialization::shared_buffer buffer, std::size_t offset, std::size_t count)
{
    std::int64_t const t_start = now_ns();
    std::vector<parcel> parcels;
    try
    {
        parcels = decode_parcel_range(buffer, offset, count);
    }
    catch (serialization::serialization_error const& e)
    {
        // scan_parcel_offsets validated the frame end to end, so this
        // would indicate slab corruption; drop the chunk, not the worker.
        COAL_LOG_ERROR(
            "parcel", "chunk decode failed: %s (parcels dropped)", e.what());
        return;
    }
    counters_.decode_offload_ns.fetch_add(
        static_cast<std::uint64_t>(now_ns() - t_start),
        std::memory_order_relaxed);

    for (auto& p : parcels)
    {
        // Two-level aggregation: a parcel addressed past this locality
        // arrived on a node-pair bundle with us as the relay.  Custody
        // transfers here — the origin's frame was acked on receipt — and
        // the fan-out leg re-routes it over intra-node links.
        if (relay_routing_ && p.dest != here_)
            forward_parcel(std::move(p));
        else
            execute_parcel(std::move(p));
    }
}

void parcelhandler::forward_parcel(parcel&& p)
{
    counters_.parcels_relayed.fetch_add(1, std::memory_order_relaxed);

    // Unlike put_parcel, p.source is NOT re-stamped: the parcel still
    // belongs to its origin, and its continuation (if any) must complete
    // a promise *there*, not here.
    COAL_ASSERT(p.dest != here_);

    // The relay crashed after taking custody: the origin's copy is acked
    // and gone, so the loss must surface through this locality's failure
    // accounting (same funnel kill_locality drains).
    if (crashed_.load(std::memory_order_acquire))
    {
        std::vector<parcel> failed;
        failed.push_back(std::move(p));
        fail_parcels(delivery_error::peer_failed, std::move(failed));
        return;
    }

    // Same fail-fast as put_parcel: a fan-out leg toward a dead peer
    // would never be acked.
    if (membership_.enabled &&
        dead_peers_.load(std::memory_order_acquire) +
                tombstoned_dead_.load(std::memory_order_acquire) !=
            0 &&
        peer_dead(p.dest))
    {
        std::vector<parcel> failed;
        failed.push_back(std::move(p));
        fail_parcels(delivery_error::peer_failed, std::move(failed));
        return;
    }

    counters_.parcels_fanned_out.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::parcel_put, p.action, p.dest);

    // Fan out through the installed message handler so the intra-node leg
    // still coalesces (under the base, latency-sensitive knobs — the
    // destination is on our node, so the handler will not re-relay).
    if (auto handler = message_handler_for(p.action))
    {
        handler->enqueue(std::move(p));
        return;
    }

    std::uint32_t const dst = p.dest;
    std::vector<parcel> single;
    single.push_back(std::move(p));
    send_message(dst, std::move(single));
}

void parcelhandler::handle_acks(std::uint32_t src, frame_header const& hdr)
{
    std::int64_t const now = now_ns();
    std::vector<send_job> released;
    std::int64_t rearm = std::numeric_limits<std::int64_t>::max();
    peer_entry& e = store_.get_or_create(src);
    {
        std::lock_guard lock(e.lock);
        peer_state& peer = hydrate_locked(e);

        // membership_admit runs under a separate lock hold; a fence can
        // slide in between.  Acks of the fenced incarnation applied to the
        // fresh stream's (recycled) sequence numbers would release frames
        // the new incarnation never received — silent loss.
        if (membership_.enabled && hdr.src_epoch != 0 &&
            hdr.src_epoch != peer.epoch)
            return;

        auto release =
            [&](std::map<std::uint64_t, unacked_frame>::iterator it) {
                unacked_frame const& u = it->second;
                counters_.ack_latency_ns.fetch_add(
                    static_cast<std::uint64_t>(now - u.first_send_ns),
                    std::memory_order_relaxed);
                counters_.acked_messages.fetch_add(
                    1, std::memory_order_relaxed);
                counters_.parcels_confirmed.fetch_add(
                    u.parcels - u.forwarded, std::memory_order_relaxed);
                if (u.forwarded != 0)
                    counters_.parcels_relay_confirmed.fetch_add(
                        u.forwarded, std::memory_order_relaxed);
                if (u.attempts == 1)
                {
                    // Karn's rule: only never-retransmitted frames give an
                    // unambiguous RTT sample.
                    double const sample_us =
                        static_cast<double>(now - u.first_send_ns) / 1000.0;
                    peer.srtt_us = peer.srtt_us <= 0.0 ?
                        sample_us :
                        (1.0 - reliability_.rtt_gain) * peer.srtt_us +
                            reliability_.rtt_gain * sample_us;
                }
                peer.unacked_bytes -=
                    std::min<std::uint64_t>(peer.unacked_bytes, u.bytes);
                peer.unacked.erase(it);
                unacked_total_.fetch_sub(1, std::memory_order_release);
            };

        while (!peer.unacked.empty() && peer.unacked.begin()->first <= hdr.ack)
            release(peer.unacked.begin());
        for (unsigned i = 0; i != 64; ++i)
        {
            if ((hdr.sack & (1ull << i)) == 0)
                continue;
            if (auto it = peer.unacked.find(hdr.ack + 1 + i);
                it != peer.unacked.end())
                release(it);
        }

        // Close only once no retained frame still satisfies the trip
        // predicate: a blackout-era frame keeps its attempt count after
        // the link heals, and closing on backlog size alone would let
        // the very next service re-trip on it.  The tick-driven walk
        // re-evaluated the trip within one progress tick, so the closed
        // window was never observable; with event-driven service the
        // window is a full heartbeat interval, long enough for a caller
        // to read a healthy link and resume batching prematurely.
        if (peer.breaker_open &&
            peer.unacked.size() <= reliability_.breaker_close_backlog &&
            (peer.unacked.empty() ||
                peer.unacked.begin()->second.attempts <=
                    reliability_.breaker_trip_attempts))
        {
            peer.breaker_open = false;
            open_breakers_.fetch_sub(1, std::memory_order_release);
            COAL_LOG_INFO("parcel",
                "link %u->%u healed: circuit breaker closed", here_, src);
        }

        if (flow_.enabled)
        {
            // Apply the piggybacked window grant (biased by one on the
            // wire; 0 means the peer advertised nothing on this frame).
            if (hdr.credit != 0)
            {
                std::uint64_t const window = hdr.credit - 1;
                if (!peer.has_credit || peer.credit_window != window)
                    counters_.credit_updates.fetch_add(
                        1, std::memory_order_relaxed);
                peer.has_credit = true;
                peer.credit_window = window;
            }
            // Acked bytes and fresh grants both open window space — give
            // deferred jobs a chance immediately rather than waiting for
            // the next service tick.
            release_deferred_locked(peer, released, now);
            update_link_pressure_locked(peer);
            if (!peer.deferred.empty())
                rearm = std::min(rearm, now + flow_.defer_service_us * 1000);
        }
        // The sack window slid: frames that were beyond the selective-
        // repeat horizon (their timers paused) may be retransmittable
        // now.  Re-arm at the earliest remaining deadline — possibly in
        // the past, which the next ring drain services immediately.
        if (!peer.unacked.empty())
            rearm = std::min(
                rearm, peer.unacked.begin()->second.deadline_ns);
    }

    ring_.schedule(e.shared_from_this(), rearm);
    for (auto& job : released)
    {
        outbound_.push(std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
        counters_.sends_released.fetch_add(1, std::memory_order_relaxed);
    }
}

void parcelhandler::schedule_ack_locked(
    peer_entry& e, peer_state& peer, std::int64_t now)
{
    if (peer.ack_pending)
        return;
    peer.ack_pending = true;
    acks_pending_.fetch_add(1, std::memory_order_release);
    peer.ack_deadline_ns = now + reliability_.ack_delay_us * 1000;
    ring_.schedule(e.shared_from_this(), peer.ack_deadline_ns);
}

std::uint64_t parcelhandler::sack_bits_locked(peer_state const& peer) const
{
    std::uint64_t bits = 0;
    for (auto const& [seq, batch] : peer.held)
    {
        std::uint64_t const off = seq - peer.cum_received - 1;
        if (off >= 64)
            break;    // map is ordered: later entries are further out
        bits |= 1ull << off;
    }
    return bits;
}

std::int64_t parcelhandler::initial_rto_ns_locked(peer_state const& peer) const
{
    double rto_us = static_cast<double>(reliability_.min_rto_us);
    if (peer.srtt_us > 0.0)
        rto_us = std::clamp(reliability_.rto_rtt_multiplier * peer.srtt_us,
            static_cast<double>(reliability_.min_rto_us),
            static_cast<double>(reliability_.max_rto_us));
    return static_cast<std::int64_t>(rto_us * 1000.0);
}

void parcelhandler::maybe_trip_breaker_locked(
    std::uint32_t dst, peer_state& peer)
{
    if (peer.breaker_open)
        return;
    bool trip = peer.unacked.size() >= reliability_.breaker_trip_backlog;
    if (!trip && !peer.unacked.empty())
        trip = peer.unacked.begin()->second.attempts >
            reliability_.breaker_trip_attempts;
    if (!trip)
        return;
    peer.breaker_open = true;
    open_breakers_.fetch_add(1, std::memory_order_release);
    counters_.circuit_breaker_trips.fetch_add(1, std::memory_order_relaxed);
    COAL_LOG_WARN("parcel",
        "link %u->%u degraded (%zu unacked): circuit breaker open, "
        "coalescing bypassed",
        here_, dst, peer.unacked.size());
}

std::int64_t parcelhandler::service_peer(peer_entry& e)
{
    constexpr std::int64_t never = std::numeric_limits<std::int64_t>::max();
    if (!reliability_.enabled || crashed_.load(std::memory_order_acquire))
        return never;

    std::int64_t const now = now_ns();
    std::int64_t next = never;
    auto const closer = [&next](std::int64_t at) {
        if (at < next)
            next = at;
    };

    std::uint32_t const dst = e.id;
    bool send_ack = false;
    frame_header ack_hdr;
    std::vector<serialization::shared_buffer> resends;
    std::vector<send_job> released;
    std::vector<send_job> failed_deferred;
    bool died = false;
    fenced_state death;
    bool probe = false;
    frame_header probe_hdr;
    bool beat = false;
    frame_header beat_hdr;

    {
        std::lock_guard lock(e.lock);
        if (!e.live)
            return never;    // evicted: nothing to service, ring de-arms
        peer_state& peer = *e.live;

        // Delayed ack whose deadline came.
        if (peer.ack_pending)
        {
            if (now >= peer.ack_deadline_ns)
            {
                peer.ack_pending = false;
                acks_pending_.fetch_sub(1, std::memory_order_release);
                ack_hdr.ack = peer.cum_received;
                ack_hdr.sack = sack_bits_locked(peer);
                if (flow_.enabled)
                    ack_hdr.credit = advertised_credit_wire();
                stamp_epochs_locked(peer, ack_hdr);
                peer.last_sent_ns = now;
                send_ack = true;
            }
            else
            {
                closer(peer.ack_deadline_ns);
            }
        }

        if (flow_.enabled && peer.status != peer_status::dead)
        {
            // Slow-peer detector: a link that has kept jobs deferred for
            // starvation_trip_us without any grant movement is treated
            // like a dark link — trip its circuit breaker so the
            // coalescer bypasses batching and, once the byte cap is also
            // exhausted, sends fail as link_down.
            if (!peer.breaker_open && !peer.deferred.empty() &&
                peer.starved_since_ns != 0 &&
                now - peer.starved_since_ns >=
                    flow_.starvation_trip_us * 1000)
            {
                peer.breaker_open = true;
                open_breakers_.fetch_add(1, std::memory_order_release);
                counters_.starvation_trips.fetch_add(
                    1, std::memory_order_relaxed);
                counters_.circuit_breaker_trips.fetch_add(
                    1, std::memory_order_relaxed);
                peer.starved_since_ns = now;
                COAL_LOG_WARN("parcel",
                    "link %u->%u credit-starved for %lld us: circuit "
                    "breaker open",
                    here_, dst,
                    static_cast<long long>(flow_.starvation_trip_us));
            }

            if (link_down_locked(peer) && !peer.deferred.empty())
            {
                // Dark link past its byte cap: retained frames stay (they
                // are what exactly-once delivery replays if the link
                // heals) but deferred jobs — which never consumed a
                // sequence number — fail with a distinct error instead of
                // queueing behind an unbounded blackout.
                while (!peer.deferred.empty())
                {
                    send_job& front = peer.deferred.front();
                    peer.deferred_bytes -= std::min<std::uint64_t>(
                        peer.deferred_bytes, front.bytes);
                    failed_deferred.push_back(std::move(front));
                    peer.deferred.pop_front();
                }
                peer.starved_since_ns = 0;
            }
            else
            {
                release_deferred_locked(peer, released, now);
            }
            update_link_pressure_locked(peer);
            if (!peer.deferred.empty())
            {
                closer(now + flow_.defer_service_us * 1000);
                if (!peer.breaker_open && peer.starved_since_ns != 0)
                    closer(peer.starved_since_ns +
                        flow_.starvation_trip_us * 1000);
            }
        }

        // Selective repeat bounded by the wire format's 64-bit sack
        // horizon: the receiver can only report frames in [cum+1,
        // cum+64], so retransmitting beyond the left edge + 64 is blind —
        // those frames are usually already held on the receiver, and
        // resending them turns one early drop in a large burst into a
        // storm of spurious retransmits.  Their timers stay paused until
        // the window slides (handle_acks re-arms the ring when it does).
        std::uint64_t const window_end =
            peer.unacked.empty() ? 0 : peer.unacked.begin()->first + 64;
        for (auto& [seq, u] : peer.unacked)
        {
            if (seq > window_end)
                break;
            if (now < u.deadline_ns)
            {
                closer(u.deadline_ns);
                continue;
            }
            u.attempts += 1;
            double backed =
                static_cast<double>(u.rto_ns) * reliability_.rto_backoff;
            backed = std::min(backed,
                static_cast<double>(reliability_.max_rto_us) * 1000.0);
            backed *=
                1.0 + reliability_.rto_jitter * jitter_unit(seq, u.attempts);
            u.rto_ns = static_cast<std::int64_t>(backed);
            u.deadline_ns = now + u.rto_ns;
            closer(u.deadline_ns);
            // Refresh piggybacked acks and the credit grant — the stored
            // image has stale ones.  Patch + snapshot both happen under
            // the peer's lock, so no transport thread ever reads a
            // half-patched prefix; the retained frame itself is reused,
            // not deep-copied.
            patch_frame_acks(u.frame, peer.cum_received,
                sack_bits_locked(peer),
                flow_.enabled ? advertised_credit_wire() : 0);
            if (peer.ack_pending)
            {
                peer.ack_pending = false;    // the retransmit carries the ack
                acks_pending_.fetch_sub(1, std::memory_order_release);
                send_ack = false;
            }
            peer.last_sent_ns = now;
            resends.push_back(u.frame.flatten_copy());
            counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
        }
        maybe_trip_breaker_locked(dst, peer);

        if (membership_.enabled)
        {
            if (peer.status == peer_status::dead)
            {
                // Probe the dead peer occasionally: a restarted
                // incarnation answers (or just talks) with a higher
                // src_epoch, which readmits it through membership_admit.
                if (now - peer.last_probe_ns >=
                    membership_.probe_interval_us * 1000)
                {
                    peer.last_probe_ns = now;
                    peer.last_sent_ns = now;
                    stamp_epochs_locked(peer, probe_hdr);
                    // Poison probe: address the NEXT incarnation, not the
                    // fenced one.  A genuinely restarted peer carries a
                    // higher epoch anyway; a falsely-declared-dead peer
                    // sees a frame addressed past its own incarnation and
                    // learns it has been quarantined — it refutes by
                    // adopting the higher epoch (a virtual restart), which
                    // is the only way a false-positive death can heal:
                    // without it the victim retransmits into the
                    // quarantine forever while these very probes keep
                    // refreshing its liveness view of us.
                    ++probe_hdr.dst_epoch;
                    probe = true;
                }
                closer(peer.last_probe_ns +
                    membership_.probe_interval_us * 1000);
            }
            else
            {
                // Phi-accrual suspicion: how many expected inter-arrival
                // gaps have elapsed since the peer was last heard?
                if (peer.last_heard_ns == 0)
                    peer.last_heard_ns = now;    // start the silence clock
                double const elapsed_us =
                    static_cast<double>(now - peer.last_heard_ns) / 1000.0;
                double const mean_us = std::max(peer.ewma_interarrival_us,
                    static_cast<double>(membership_.heartbeat_interval_us));
                double const phi = elapsed_us / mean_us;

                if (peer.status == peer_status::alive &&
                    phi >= membership_.suspect_phi)
                {
                    peer.status = peer_status::suspected;
                    suspected_peers_.fetch_add(1, std::memory_order_release);
                    counters_.peers_suspected.fetch_add(
                        1, std::memory_order_relaxed);
                    trace::tracer::global().record(here_,
                        trace::event_kind::peer_suspected, dst,
                        static_cast<std::uint64_t>(phi * 1000.0));
                    COAL_LOG_WARN("parcel",
                        "peer %u suspected (phi %.1f, silent %.0f us): "
                        "coalescing bypassed",
                        dst, phi, elapsed_us);
                }

                if (phi >= membership_.dead_phi &&
                    elapsed_us >=
                        static_cast<double>(membership_.min_dead_us))
                {
                    if (peer.status == peer_status::suspected)
                        suspected_peers_.fetch_sub(
                            1, std::memory_order_release);
                    peer.status = peer_status::dead;
                    dead_peers_.fetch_add(1, std::memory_order_release);
                    counters_.peers_declared_dead.fetch_add(
                        1, std::memory_order_relaxed);
                    fence_peer_locked(e, peer, death);
                    died = true;
                    peer.last_probe_ns = now;
                    closer(peer.last_probe_ns +
                        membership_.probe_interval_us * 1000);
                }
                else
                {
                    // Keep the link's liveness signal alive when it is
                    // otherwise idle: a standalone heartbeat doubles as an
                    // ack/credit carrier, so a quiet link still converges
                    // its flow state.  (A tombstoned peer emits nothing —
                    // the early return above is the "heartbeat emitter
                    // skips evicted peers" half of the idle-footprint
                    // guarantee.)
                    if (now - peer.last_sent_ns >=
                        membership_.heartbeat_interval_us * 1000)
                    {
                        peer.last_sent_ns = now;
                        beat_hdr.ack = peer.cum_received;
                        beat_hdr.sack = sack_bits_locked(peer);
                        if (flow_.enabled)
                            beat_hdr.credit = advertised_credit_wire();
                        stamp_epochs_locked(peer, beat_hdr);
                        if (peer.ack_pending)
                        {
                            peer.ack_pending = false;    // beat carries it
                            acks_pending_.fetch_sub(
                                1, std::memory_order_release);
                            send_ack = false;
                        }
                        beat = true;
                    }
                    // The heartbeat cadence doubles as the phi-check
                    // cadence: every pop re-evaluates suspicion/death.
                    closer(peer.last_sent_ns +
                        membership_.heartbeat_interval_us * 1000);
                }
            }
        }
    }

    // Everything with side effects outside the peer happens after the
    // lock is released: transport sends, delivery-error callbacks,
    // coalescer flushes.
    if (send_ack)
    {
        counters_.acks_sent.fetch_add(1, std::memory_order_relaxed);
        transport_.send(here_, dst, encode_message({}, ack_hdr));
    }
    for (auto& flat : resends)
        transport_.send(
            here_, dst, serialization::wire_message(std::move(flat)));
    for (auto& job : released)
    {
        outbound_.push(std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
        counters_.sends_released.fetch_add(1, std::memory_order_relaxed);
    }
    for (auto& job : failed_deferred)
    {
        fail_job(delivery_error::link_down, std::move(job));
        deferred_sends_.fetch_sub(1, std::memory_order_release);
    }
    if (probe || beat)
    {
        counters_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
        transport_.send(
            here_, dst, encode_message({}, probe ? probe_hdr : beat_hdr));
    }
    if (died)
    {
        std::size_t const failed = fail_fenced(std::move(death));
        trace::tracer::global().record(
            here_, trace::event_kind::peer_failed, dst, failed);
        COAL_LOG_WARN("parcel",
            "peer %u declared dead: link fenced, %zu parcels failed "
            "(peer_failed)",
            dst, failed);
        // Parcels coalesced toward the dead peer must not sit in its
        // queues until the batch/delay trigger fires: flush now so they
        // reach progress_send and fail promptly.
        flush_message_handlers();
    }

    // Never hand the ring a deadline in the past: a condition that stays
    // "due" (e.g. a paused retransmit timer) would otherwise re-service
    // at every drain in a hot loop.
    if (next != never && next <= now)
        next = now + due_ring::tick_ns;
    return next;
}

std::size_t parcelhandler::pending_reliability() const
{
    if (!reliability_.enabled)
        return 0;
    // Maintained at every mutation point; no store walk, no locks.
    return unacked_total_.load(std::memory_order_acquire) +
        held_total_.load(std::memory_order_acquire) +
        acks_pending_.load(std::memory_order_acquire);
}

bool parcelhandler::link_degraded(std::uint32_t dst) const
{
    // Fast path for the coalescer's enqueue: with no breaker open and no
    // peer suspected anywhere (the steady state), answer from atomic
    // loads without touching any lock.
    if (!reliability_.enabled ||
        (open_breakers_.load(std::memory_order_acquire) == 0 &&
            suspected_peers_.load(std::memory_order_acquire) == 0))
        return false;
    peer_entry const* e = store_.find(dst);
    if (e == nullptr)
        return false;
    std::lock_guard lock(e->lock);
    // A tombstoned peer is never degraded: eviction clears suspicion and
    // requires a closed breaker.
    return e->live != nullptr &&
        (e->live->breaker_open ||
            e->live->status == peer_status::suspected);
}

pressure_state parcelhandler::flow_pressure(std::uint32_t dst) const
{
    if (!flow_.enabled)
        return pressure_state::ok;
    pressure_state const pool =
        serialization::buffer_pool::global().pressure();
    // Steady state: no link above ok anywhere — answer without any lock.
    if (pressured_links_.load(std::memory_order_relaxed) == 0)
        return pool;
    peer_entry const* e = store_.find(dst);
    if (e == nullptr)
        return pool;
    std::lock_guard lock(e->lock);
    if (e->live == nullptr)
        return pool;
    return max_pressure(pool, e->live->link_pressure);
}

pressure_state parcelhandler::current_pressure() const noexcept
{
    if (!flow_.enabled)
        return pressure_state::ok;
    // The worst link state is derived from two counters maintained under
    // the owning peers' locks — O(1) instead of the old full-map scan.
    pressure_state worst = pressure_state::ok;
    if (links_critical_.load(std::memory_order_relaxed) != 0)
        worst = pressure_state::critical;
    else if (pressured_links_.load(std::memory_order_relaxed) != 0)
        worst = pressure_state::soft;
    return max_pressure(
        serialization::buffer_pool::global().pressure(), worst);
}

std::uint64_t parcelhandler::advertised_credit_wire() const noexcept
{
    std::uint64_t window = flow_.window_bytes;
    switch (serialization::buffer_pool::global().pressure())
    {
    case pressure_state::soft:
        window /= 4;
        break;
    case pressure_state::critical:
        window /= 16;
        break;
    case pressure_state::ok:
        break;
    }
    // Never advertise below the floor (and never 0 on the wire): the pool
    // is process-global, so a sender's own backlog can raise the pressure
    // this grant is computed from — a zero grant could then deadlock the
    // very traffic that would relieve it.
    window = std::max(window, flow_.min_window_bytes);
    return window + 1;
}

bool parcelhandler::should_defer_locked(
    peer_state const& peer, std::size_t bytes) const noexcept
{
    if (peer.unacked_bytes == 0)
        return false;    // one frame may always fly: no-deadlock guarantee
    std::uint64_t const window =
        peer.has_credit ? peer.credit_window : flow_.initial_window_bytes;
    return peer.unacked_bytes + bytes > window;
}

bool parcelhandler::link_down_locked(peer_state const& peer) const noexcept
{
    return peer.breaker_open && flow_.link_inflight_cap_bytes != 0 &&
        peer.unacked_bytes + peer.deferred_bytes >=
            flow_.link_inflight_cap_bytes;
}

void parcelhandler::release_deferred_locked(
    peer_state& peer, std::vector<send_job>& released, std::int64_t now)
{
    if (peer.deferred.empty() || link_down_locked(peer))
        return;
    std::uint64_t const window =
        peer.has_credit ? peer.credit_window : flow_.initial_window_bytes;
    // Plan against the window as if each released job were already on the
    // wire — otherwise one grant would release the whole queue at once
    // and progress_send would immediately re-defer most of it.
    std::uint64_t planned = peer.unacked_bytes;
    bool any = false;
    while (!peer.deferred.empty())
    {
        send_job& front = peer.deferred.front();
        if (planned != 0 && planned + front.bytes > window)
            break;
        planned += front.bytes;
        peer.deferred_bytes -=
            std::min<std::uint64_t>(peer.deferred_bytes, front.bytes);
        released.push_back(std::move(front));
        peer.deferred.pop_front();
        any = true;
    }
    if (peer.deferred.empty())
        peer.starved_since_ns = 0;
    else if (any)
        peer.starved_since_ns = now;    // the window moved: not starved
}

void parcelhandler::update_link_pressure_locked(peer_state& peer)
{
    std::uint64_t const total = peer.unacked_bytes + peer.deferred_bytes;
    pressure_state next = pressure_state::ok;
    if (flow_.link_inflight_cap_bytes != 0 &&
        total >= flow_.link_inflight_cap_bytes)
        next = pressure_state::critical;
    else if (flow_.link_soft_bytes != 0 && total >= flow_.link_soft_bytes)
        next = pressure_state::soft;
    if (next == peer.link_pressure)
        return;
    pressure_state const prev = peer.link_pressure;
    peer.link_pressure = next;
    // Two transition counters keep current_pressure() O(1); the old code
    // recomputed the max over every peer under the global lock here.
    if (prev == pressure_state::ok && next != pressure_state::ok)
        pressured_links_.fetch_add(1, std::memory_order_relaxed);
    else if (prev != pressure_state::ok && next == pressure_state::ok)
        pressured_links_.fetch_sub(1, std::memory_order_relaxed);
    if (prev != pressure_state::critical &&
        next == pressure_state::critical)
        links_critical_.fetch_add(1, std::memory_order_relaxed);
    else if (prev == pressure_state::critical &&
        next != pressure_state::critical)
        links_critical_.fetch_sub(1, std::memory_order_relaxed);
}

void parcelhandler::fail_job(delivery_error err, send_job&& job)
{
    if (err == delivery_error::link_down)
    {
        COAL_LOG_WARN("parcel",
            "link %u->%u down: %zu parcels failed (breaker open, in-flight "
            "cap exhausted)",
            here_, job.dst, job.parcels.size());
    }
    fail_parcels(err, std::move(job.parcels));
}

void parcelhandler::fail_parcels(
    delivery_error err, std::vector<parcel>&& parcels)
{
    if (parcels.empty())
        return;
    // Parcels this locality holds as a node relay (source != self) belong
    // to the relay ledger, not the origin-keyed delivery-error taxonomy:
    // their origin already counted them confirmed when this relay acked
    // custody, so surfacing them through the per-cause counters and the
    // delivery-error handler would double-account the same parcel on two
    // localities.  They land in /coal/hierarchy/relay-failed instead —
    // the custody-loss half of the relay ledger (relay-confirmed +
    // relay-failed eventually equals fanned-out).
    if (std::size_t const own = static_cast<std::size_t>(std::distance(
            parcels.begin(), std::partition(parcels.begin(), parcels.end(),
                                 [&](parcel const& p)
                                 { return p.source == here_; })));
        own != parcels.size())
    {
        counters_.parcels_relay_failed.fetch_add(
            parcels.size() - own, std::memory_order_relaxed);
        parcels.resize(own);
        if (parcels.empty())
            return;
    }
    // The one funnel every undeliverable parcel passes through: per-cause
    // counter (the /net/count/delivery-errors/* family), the matching
    // trace event, then the delivery-error handler for each parcel.
    switch (err)
    {
    case delivery_error::shed_overload:
        counters_.parcels_shed.fetch_add(
            parcels.size(), std::memory_order_relaxed);
        for (auto const& p : parcels)
            trace::tracer::global().record(
                here_, trace::event_kind::parcel_shed, p.action, p.dest);
        break;
    case delivery_error::link_down:
        counters_.link_down_failures.fetch_add(
            parcels.size(), std::memory_order_relaxed);
        trace::tracer::global().record(here_, trace::event_kind::link_down,
            parcels.front().dest, parcels.size());
        break;
    case delivery_error::peer_failed:
        counters_.peer_failed_failures.fetch_add(
            parcels.size(), std::memory_order_relaxed);
        // The peer_failed trace event is emitted once where the death (or
        // crash) is declared, carrying the fenced total; a per-batch event
        // here would double-count it.
        break;
    }
    if (on_delivery_error_)
    {
        for (auto& p : parcels)
            on_delivery_error_(err, std::move(p));
    }
}

// -- membership / failure detection ----------------------------------------

void parcelhandler::stamp_epochs_locked(
    peer_state const& peer, frame_header& hdr) const
{
    if (!membership_.enabled)
        return;    // epoch 0 on the wire = membership checks bypassed
    // Stamp the epoch the STREAM is bound to, not the live self epoch:
    // (src_epoch, seq) consistency is then an invariant local to this
    // peer's lock, which is what lets an epoch refutation fence links one
    // at a time.  A send racing the refute sweep stamps the old epoch on
    // the old stream — the receiver fences it as a ghost — never the new
    // epoch on a stale sequence number.
    hdr.src_epoch = peer.link_epoch != 0 ?
        peer.link_epoch :
        self_epoch_.load(std::memory_order_relaxed);
    // Until the peer's epoch is observed, assume the initial incarnation.
    hdr.dst_epoch = peer.epoch == 0 ? 1 : peer.epoch;
}

bool parcelhandler::peer_dead(std::uint32_t dst) const
{
    peer_entry const* e = store_.find(dst);
    if (e == nullptr)
        return false;
    std::lock_guard lock(e->lock);
    if (e->live)
        return e->live->status == peer_status::dead;
    return e->tombstoned && e->tomb.status == peer_status::dead;
}

void parcelhandler::fence_peer_locked(
    peer_entry& e, peer_state& peer, fenced_state& out)
{
    out.dst = e.id;
    out.unacked.reserve(out.unacked.size() + peer.unacked.size());
    unacked_total_.fetch_sub(
        peer.unacked.size(), std::memory_order_release);
    for (auto& [seq, u] : peer.unacked)
        out.unacked.push_back(std::move(u));
    peer.unacked.clear();
    peer.unacked_bytes = 0;
    out.deferred.reserve(out.deferred.size() + peer.deferred.size());
    for (auto& job : peer.deferred)
        out.deferred.push_back(std::move(job));
    peer.deferred.clear();
    peer.deferred_bytes = 0;
    peer.starved_since_ns = 0;
    // Sender protocol state restarts from scratch.  The generation bump
    // voids any send job that already drew a sequence number from the old
    // stream but has not registered its frame yet.
    ++peer.stream_gen;
    peer.next_seq = 1;
    peer.srtt_us = 0.0;
    peer.credit_window = 0;
    peer.has_credit = false;
    // The fresh stream binds to the CURRENT self incarnation.
    peer.link_epoch = self_epoch_.load(std::memory_order_relaxed);
    // Receiver side: out-of-order frames from the fenced incarnation are
    // dropped undecoded, and the dedup window resets with the epoch.
    peer.cum_received = 0;
    held_total_.fetch_sub(peer.held.size(), std::memory_order_release);
    peer.held.clear();
    if (peer.ack_pending)
    {
        peer.ack_pending = false;
        acks_pending_.fetch_sub(1, std::memory_order_release);
    }
    if (peer.breaker_open)
    {
        peer.breaker_open = false;
        open_breakers_.fetch_sub(1, std::memory_order_release);
    }
    if (flow_.enabled)
        update_link_pressure_locked(peer);
    // A fence is contact (death verdict or rejoin): restart the idle
    // clock so the dead-peer probe cycles run before eviction compresses
    // the quarantine into the tombstone.
    e.last_activity_ns = now_ns();
}

std::size_t parcelhandler::fail_fenced(fenced_state&& fenced)
{
    std::vector<parcel> parcels;
    for (auto& u : fenced.unacked)
    {
        // The retransmission table holds encoded frame images; decode them
        // back to parcels so the delivery-error handler sees what callers
        // handed to put_parcel.
        try
        {
            auto batch = decode_message(u.frame);
            for (auto& p : batch)
                parcels.push_back(std::move(p));
        }
        catch (serialization::serialization_error const& e)
        {
            COAL_LOG_ERROR("parcel",
                "fenced frame toward locality %u undecodable: %s "
                "(parcels lost to accounting)",
                fenced.dst, e.what());
        }
    }
    std::size_t const deferred_jobs = fenced.deferred.size();
    for (auto& job : fenced.deferred)
        for (auto& p : job.parcels)
            parcels.push_back(std::move(p));
    std::size_t const failed = parcels.size();
    fail_parcels(delivery_error::peer_failed, std::move(parcels));
    for (std::size_t i = 0; i != deferred_jobs; ++i)
        deferred_sends_.fetch_sub(1, std::memory_order_release);
    return failed;
}

bool parcelhandler::membership_admit(
    std::uint32_t src, frame_info const& info)
{
    if (!membership_.enabled)
        return true;

    frame_header const& hdr = info.header;
    std::int64_t const now = now_ns();
    fenced_state fenced;
    bool rejoined = false;
    bool admit = true;
    std::uint32_t rejoin_epoch = 0;
    std::uint32_t refute_epoch = 0;
    peer_entry& e = store_.get_or_create(src);
    {
        std::lock_guard lock(e.lock);

        // Tombstone gate, BEFORE hydration: the cheap fencing decisions
        // are answered from the ~40-byte tombstone so ghosts and idle
        // chatter never resurrect a full protocol block.
        if (!e.live && e.tombstoned)
        {
            if (hdr.src_epoch != 0 && hdr.src_epoch < e.tomb.epoch)
            {
                // Ghost from an incarnation that already rejoined under a
                // newer epoch.
                counters_.stale_epoch_frames.fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
            if (hdr.src_epoch != 0 && hdr.src_epoch == e.tomb.epoch &&
                e.tomb.status == peer_status::dead)
            {
                // The quarantined incarnation keeps knocking: the
                // tombstone answers without rehydrating it.
                counters_.stale_epoch_frames.fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
            // Same-epoch pure control frame (heartbeat or standalone ack,
            // addressed to our current incarnation): acknowledge nothing,
            // rehydrate nothing.  Without this gate two idle peers would
            // flap each other's tombstones forever — A's heartbeat
            // rehydrates B, B heartbeats back, rehydrating A...  Data
            // frames, higher epochs and probes past our epoch fall
            // through and hydrate below.
            std::uint32_t const self =
                self_epoch_.load(std::memory_order_relaxed);
            if (hdr.seq == 0 && info.count == 0 &&
                (hdr.src_epoch == 0 || hdr.src_epoch == e.tomb.epoch) &&
                (hdr.dst_epoch == 0 || hdr.dst_epoch == self))
                return false;
        }

        peer_state& peer = hydrate_locked(e);

        // Source-epoch rules (0 = sender without membership: bypass).
        if (hdr.src_epoch != 0)
        {
            if (peer.epoch == 0)
            {
                peer.epoch = hdr.src_epoch;    // first observation
            }
            else if (hdr.src_epoch < peer.epoch)
            {
                // Ghost from an incarnation that already rejoined under a
                // newer epoch: drop, and do NOT count it as a liveness
                // signal.
                counters_.stale_epoch_frames.fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
            else if (hdr.src_epoch > peer.epoch)
            {
                // The peer restarted: fence every byte of state tied to
                // its previous incarnation, then admit the frame under the
                // new epoch.
                fence_peer_locked(e, peer, fenced);
                if (peer.status == peer_status::suspected)
                    suspected_peers_.fetch_sub(1, std::memory_order_release);
                else if (peer.status == peer_status::dead)
                    dead_peers_.fetch_sub(1, std::memory_order_release);
                peer.status = peer_status::alive;
                peer.epoch = hdr.src_epoch;
                peer.ewma_interarrival_us = 0.0;
                counters_.peer_rejoins.fetch_add(
                    1, std::memory_order_relaxed);
                rejoined = true;
                rejoin_epoch = hdr.src_epoch;
            }
            else if (peer.status == peer_status::dead)
            {
                // Same epoch as when we declared it dead: the incarnation
                // stays quarantined — only a restart under a higher epoch
                // readmits the peer (a false-positive death heals through
                // rejoin, never silently).
                counters_.stale_epoch_frames.fetch_add(
                    1, std::memory_order_relaxed);
                return false;
            }
        }

        // Liveness: any admitted frame is a heartbeat.
        if (peer.last_heard_ns != 0)
        {
            double const sample_us =
                static_cast<double>(now - peer.last_heard_ns) / 1000.0;
            peer.ewma_interarrival_us = peer.ewma_interarrival_us <= 0.0 ?
                sample_us :
                (1.0 - membership_.interarrival_gain) *
                        peer.ewma_interarrival_us +
                    membership_.interarrival_gain * sample_us;
        }
        peer.last_heard_ns = now;
        if (peer.status == peer_status::suspected)
        {
            peer.status = peer_status::alive;
            suspected_peers_.fetch_sub(1, std::memory_order_release);
            COAL_LOG_INFO("parcel",
                "peer %u heard from again: suspicion cleared", src);
        }
        // Only DATA traffic restarts the idle-eviction clock; heartbeats
        // and probes must not keep an idle pair resident forever.
        if (hdr.seq != 0 || info.count != 0)
            e.last_activity_ns = now;

        // Destination-epoch rules.
        std::uint32_t const self =
            self_epoch_.load(std::memory_order_relaxed);
        if (hdr.dst_epoch != 0 && hdr.dst_epoch > self)
        {
            // A frame addressed PAST our incarnation: some peer declared
            // us dead and will only readmit a newer epoch.  Refuting means
            // adopting that epoch and fencing EVERY link — done outside
            // this (single-peer) lock by refute_self; the per-peer
            // link_epoch keeps racing sends consistent meanwhile.
            refute_epoch = hdr.dst_epoch;
        }
        else if (hdr.dst_epoch != 0 && hdr.dst_epoch < self)
        {
            // Addressed to a previous incarnation of THIS locality: the
            // payload, acks and credit all belong to state that died with
            // it — discard wholesale, and reply with an immediate
            // heartbeat so the sender learns the current epoch and fences
            // its side.
            counters_.stale_epoch_frames.fetch_add(
                1, std::memory_order_relaxed);
            if (!peer.ack_pending)
            {
                peer.ack_pending = true;
                acks_pending_.fetch_add(1, std::memory_order_release);
            }
            peer.ack_deadline_ns = now;    // emit on the next tick
            ring_.schedule(e.shared_from_this(), now);
            admit = false;
        }
    }

    if (rejoined)
    {
        trace::tracer::global().record(
            here_, trace::event_kind::peer_rejoined, src, rejoin_epoch);
        std::size_t const failed = fail_fenced(std::move(fenced));
        COAL_LOG_INFO("parcel",
            "peer %u rejoined as incarnation epoch %u (%zu parcels toward "
            "its previous incarnation failed)",
            src, rejoin_epoch, failed);
    }
    if (refute_epoch != 0)
        refute_self(refute_epoch, src);
    return admit;
}

void parcelhandler::refute_self(std::uint32_t new_epoch, std::uint32_t accuser)
{
    // Only the CAS winner sweeps; concurrent accusations of the same (or
    // a lower) epoch are already covered by the winner's fence pass.
    std::uint32_t cur = self_epoch_.load(std::memory_order_acquire);
    for (;;)
    {
        if (cur >= new_epoch)
            return;
        if (self_epoch_.compare_exchange_weak(
                cur, new_epoch, std::memory_order_acq_rel))
            break;
    }
    counters_.epoch_refutes.fetch_add(1, std::memory_order_relaxed);

    // Fence every link, one peer lock at a time — a virtual restart
    // without a stop-the-world lock.  A send interleaving with the sweep
    // stamps its link's OLD epoch (link_epoch) on the OLD stream, which
    // the receiver fences as a ghost; the new epoch only ever appears on
    // streams this sweep has already reset.
    std::size_t failed = 0;
    std::vector<std::shared_ptr<peer_entry>> entries;
    for (std::size_t s = 0; s != peer_store::shard_count; ++s)
    {
        entries.clear();
        store_.collect_shard(s, entries);
        for (auto const& ep : entries)
        {
            fenced_state f;
            {
                std::lock_guard lock(ep->lock);
                if (ep->live)
                {
                    fence_peer_locked(*ep, *ep->live, f);
                }
                else if (ep->tombstoned)
                {
                    // Tombstones carry the stream binding too: patch them
                    // so a later rehydration starts a fresh stream under
                    // the new epoch instead of stamping the stale one.
                    ep->tomb.link_epoch = new_epoch;
                    ep->tomb.next_seq = 1;
                    ++ep->tomb.stream_gen;
                    ep->tomb.cum_received = 0;
                }
            }
            if (!f.unacked.empty() || !f.deferred.empty())
                failed += fail_fenced(std::move(f));
        }
    }
    COAL_LOG_WARN("parcel",
        "locality %u was falsely declared dead by peer %u: refuted by "
        "adopting incarnation epoch %u (virtual restart, %zu in-flight "
        "parcels failed)",
        here_, accuser, new_epoch, failed);
}

parcelhandler::health_snapshot parcelhandler::health() const
{
    health_snapshot s;
    // Live footprint only: tombstoned peers left the working set (their
    // quarantine, if any, is visible through peer_stats()).
    s.known_peers = store_.active();
    s.suspected_peers = suspected_peers_.load(std::memory_order_relaxed);
    s.dead_peers = dead_peers_.load(std::memory_order_relaxed);
    return s;
}

parcelhandler::peer_store_stats parcelhandler::peer_stats() const
{
    peer_store_stats s;
    s.active = store_.active();
    s.evicted = store_.tombstoned();
    s.shard_max_occupancy = store_.shard_max_occupancy();
    s.evictions = store_.evictions();
    s.rehydrations = store_.rehydrations();
    return s;
}

peer_status parcelhandler::peer_liveness(std::uint32_t dst) const
{
    peer_entry const* e = store_.find(dst);
    if (e == nullptr)
        return peer_status::alive;
    std::lock_guard lock(e->lock);
    if (e->live)
        return e->live->status;
    return e->tombstoned ? e->tomb.status : peer_status::alive;
}

namespace {

    void fill_debug_locked(
        parcelhandler::peer_debug& d, peer_state const& peer)
    {
        d.known = true;
        d.evicted = false;
        d.status = peer.status;
        d.epoch = peer.epoch;
        d.unacked_frames = peer.unacked.size();
        d.held_frames = peer.held.size();
        d.deferred_jobs = peer.deferred.size();
        d.unacked_bytes = peer.unacked_bytes;
        d.deferred_bytes = peer.deferred_bytes;
        d.next_seq = peer.next_seq;
        d.cum_received = peer.cum_received;
        if (!peer.unacked.empty())
            d.lowest_unacked_seq = peer.unacked.begin()->first;
        if (!peer.held.empty())
            d.lowest_held_seq = peer.held.begin()->first;
    }

}    // namespace

parcelhandler::peer_debug parcelhandler::debug_peer(std::uint32_t dst) const
{
    peer_debug d;
    peer_entry const* e = store_.find(dst);
    if (e == nullptr)
        return d;
    std::lock_guard lock(e->lock);
    if (e->live)
    {
        fill_debug_locked(d, *e->live);
    }
    else if (e->tombstoned)
    {
        d.known = true;
        d.evicted = true;
        d.status = e->tomb.status;
        d.epoch = e->tomb.epoch;
        d.next_seq = e->tomb.next_seq;
        d.cum_received = e->tomb.cum_received;
    }
    // A crash-reset slot (neither live nor tombstoned) reports unknown:
    // the incarnation's memory of that peer is gone.
    return d;
}

std::vector<std::pair<std::uint32_t, parcelhandler::peer_debug>>
parcelhandler::debug_active_peers() const
{
    std::vector<std::pair<std::uint32_t, peer_debug>> out;
    std::vector<std::shared_ptr<peer_entry>> entries;
    for (std::size_t s = 0; s != peer_store::shard_count; ++s)
    {
        // One shard lock to copy the entry list, then one entry lock per
        // peer: a slow diagnostic dump never stalls senders behind a
        // global lock (they only ever contend on their own peer).
        entries.clear();
        store_.collect_shard(s, entries);
        for (auto const& ep : entries)
        {
            std::lock_guard lock(ep->lock);
            if (!ep->live)
                continue;
            peer_debug d;
            fill_debug_locked(d, *ep->live);
            out.emplace_back(ep->id, d);
        }
    }
    return out;
}

void parcelhandler::simulate_crash()
{
    bool expected = false;
    if (!crashed_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;

    COAL_LOG_WARN("parcel", "locality %u: simulated crash of incarnation "
                            "epoch %u",
        here_, epoch());

    auto wait_idle = [this] {
        while (sends_in_progress_.load(std::memory_order_acquire) != 0 ||
            receives_in_progress_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    };

    std::vector<parcel> destroyed;
    std::vector<fenced_state> fenced_all;
    std::vector<std::shared_ptr<peer_entry>> entries;
    auto drain = [&] {
        // Queued-but-unsent messages die with the incarnation.  (The
        // ticket sequencer is deliberately left intact: batches detached
        // by the coalescer before the crash still arrive with allocated
        // tickets, and a cleared stream would park them forever.  They
        // surface in outbound_ and are handled post-restart.)
        while (auto job = outbound_.try_pop())
        {
            for (auto& p : job->parcels)
                destroyed.push_back(std::move(p));
        }
        // Undelivered inbound frames are lost memory of a dead process.
        while (auto msg = inbox_.try_pop())
        {
        }
        // Per-peer teardown, one entry lock at a time.  reset() drops the
        // tombstone too — the dead incarnation's memory (streams, dedup
        // windows, quarantines) must not leak into the next one.  Ring
        // registrations of reset entries die on their next pop (!live).
        for (std::size_t s = 0; s != peer_store::shard_count; ++s)
        {
            entries.clear();
            store_.collect_shard(s, entries);
            for (auto const& ep : entries)
            {
                std::lock_guard lock(ep->lock);
                if (ep->live)
                {
                    fenced_state f;
                    fence_peer_locked(*ep, *ep->live, f);
                    if (!f.unacked.empty() || !f.deferred.empty())
                        fenced_all.push_back(std::move(f));
                    if (ep->live->status == peer_status::suspected)
                        suspected_peers_.fetch_sub(
                            1, std::memory_order_release);
                    else if (ep->live->status == peer_status::dead)
                        dead_peers_.fetch_sub(1, std::memory_order_release);
                }
                else if (ep->tombstoned &&
                    ep->tomb.status == peer_status::dead)
                {
                    tombstoned_dead_.fetch_sub(1, std::memory_order_release);
                }
                store_.reset(*ep);
            }
        }
    };

    // Two wait+drain rounds close the race with workers that passed
    // progress()'s crashed check before the flag landed: round one drains
    // the bulk, round two collects anything such a straggler registered.
    wait_idle();
    drain();
    wait_idle();
    drain();

    // Response callbacks of the dead incarnation can never complete.
    {
        std::lock_guard lock(responses_lock_);
        responses_.clear();
    }

    std::size_t failed = destroyed.size();
    fail_parcels(delivery_error::peer_failed, std::move(destroyed));
    for (auto& f : fenced_all)
        failed += fail_fenced(std::move(f));
    trace::tracer::global().record(
        here_, trace::event_kind::peer_failed, here_, failed);
    COAL_LOG_WARN("parcel",
        "locality %u crash: %zu outbound parcels destroyed (surfaced as "
        "peer_failed)",
        here_, failed);
}

void parcelhandler::restart_incarnation()
{
    // Bump the epoch BEFORE lifting the crash flag: no frame may ever
    // leave a restarted locality stamped with the dead incarnation.
    std::uint32_t const next =
        self_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    bool expected = true;
    if (!crashed_.compare_exchange_strong(
            expected, false, std::memory_order_acq_rel))
    {
        COAL_LOG_WARN("parcel",
            "locality %u: restart_incarnation without a preceding crash",
            here_);
    }
    COAL_LOG_INFO("parcel",
        "locality %u restarted as incarnation epoch %u", here_, next);
}

void parcelhandler::note_pressure_transition()
{
    auto const cur = static_cast<std::uint8_t>(current_pressure());
    std::uint8_t prev = last_pressure_.load(std::memory_order_relaxed);
    if (cur == prev ||
        !last_pressure_.compare_exchange_strong(
            prev, cur, std::memory_order_relaxed))
        return;
    counters_.pressure_transitions.fetch_add(1, std::memory_order_relaxed);
    trace::tracer::global().record(
        here_, trace::event_kind::pressure_changed, prev, cur);
    COAL_LOG_INFO("parcel", "locality %u pressure %s -> %s", here_,
        to_string(static_cast<pressure_state>(prev)),
        to_string(static_cast<pressure_state>(cur)));
}

bool parcelhandler::progress()
{
    if (stopped_.load(std::memory_order_acquire) ||
        crashed_.load(std::memory_order_acquire))
        return false;
    bool const sent = progress_send();
    bool const received = progress_receive();
    bool pumped = false;
    if (reliability_.enabled)
    {
        // Deadline service is ring-driven: one drainer at a time visits
        // only the peers whose timers came due — amortized O(active)
        // instead of the old O(peers-ever-seen) full-map walks.
        std::int64_t const now = now_ns();
        pumped = ring_.drain(
            now, [this](peer_entry& e) { return service_peer(e); });
        if (evict_hand_step(now))
            pumped = true;
    }
    if (flow_.enabled)
        note_pressure_transition();
    return sent || received || pumped;
}

void parcelhandler::stop()
{
    bool expected = false;
    if (!stopped_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel))
        return;
    outbound_.close();
    inbox_.close();
}

}    // namespace coal::parcel
