#pragma once

/// \file action_registry.hpp
/// Process-wide registry of actions (remotely invocable functions).
///
/// Actions register at static-initialization time through the
/// COAL_PLAIN_ACTION macro.  An action's id is the FNV-1a hash of its
/// name, so ids are stable across localities (and would be stable across
/// processes in a real distributed build) without any registration-order
/// coordination; the registry asserts hash uniqueness.
///
/// For every action a *response action* is registered automatically under
/// `make_response_id(id)`.  Response parcels (the values async callers
/// wait on) are full parcels routed through the same machinery — which is
/// what lets the coalescing plugin batch an action's responses with the
/// same policy as its requests (see DESIGN.md §2).

#include <coal/agas/gid.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/serialization/buffer.hpp>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <vector>

namespace coal::parcel {

/// Services an action invoker may need from the hosting locality.
/// Supplied by the parcelhandler when it executes a received parcel.
struct invocation_context
{
    std::uint32_t this_locality = 0;

    /// Route an outbound parcel (used for result/continuation parcels);
    /// goes through put_parcel, i.e. through coalescing.
    std::function<void(parcel&&)> put_parcel;

    /// Satisfy a local promise with a serialized result.
    std::function<void(continuation_id, serialization::shared_buffer&&)>
        complete_promise;

    /// Resolve a locally hosted component instance (type-checked);
    /// nullptr when absent or of the wrong type.  Wired to AGAS by the
    /// runtime; component actions require it.
    std::function<std::shared_ptr<void>(agas::gid, std::type_index)>
        find_component;
};

using action_invoker = std::function<void(invocation_context&, parcel&&)>;

/// Response-action id derived from a request-action id.
[[nodiscard]] constexpr action_id make_response_id(action_id request) noexcept
{
    return request ^ 0x526573706f6e7365ull;    // "Response"
}

/// FNV-1a hash of an action name (the action's wire id).
[[nodiscard]] constexpr action_id hash_action_name(
    std::string_view name) noexcept
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char const c : name)
    {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

class action_registry
{
public:
    struct entry
    {
        action_id id = 0;
        std::string name;
        action_invoker invoke;
        bool is_response = false;
    };

    static action_registry& instance();

    /// Register an action and its paired response action.
    /// \returns the action id.  Idempotent for identical re-registration
    /// (helps header-only actions included in many TUs); throws on a
    /// name/hash conflict.
    action_id register_action(std::string name, action_invoker invoker);

    [[nodiscard]] entry const* find(action_id id) const;
    [[nodiscard]] entry const* find_by_name(std::string const& name) const;

    /// Names of all registered (non-response) actions, sorted.
    [[nodiscard]] std::vector<std::string> action_names() const;

    /// Order-independent digest over every registered action's (name, id)
    /// pair.  Two processes agree on the digest exactly when they resolve
    /// every action id identically, so the socket parcelport's HELLO
    /// handshake exchanges it in lieu of an id-translation table (ids are
    /// content-addressed name hashes — there is nothing to translate,
    /// only to verify).
    [[nodiscard]] std::uint64_t wire_digest() const;

private:
    action_registry() = default;

    mutable std::mutex mutex_;
    std::unordered_map<action_id, entry> entries_;
};

/// Static-init helper: `inline action_registrar<my_action> reg_my_action;`
template <typename Action>
struct action_registrar
{
    action_registrar()
    {
        Action::ensure_registered();
    }
};

}    // namespace coal::parcel
