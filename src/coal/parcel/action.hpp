#pragma once

/// \file action.hpp
/// Plain actions: remotely invocable free functions, HPX style.
///
///     std::complex<double> get_cplx() { return {13.3, -23.8}; }
///     COAL_PLAIN_ACTION(get_cplx, get_cplx_action);
///
/// defines `get_cplx_action`, registers it (and its response action) with
/// the process-wide registry, and provides everything the runtime needs
/// to ship a call: argument marshaling on the caller, unmarshaling +
/// invocation + result-parcel generation on the callee.

#include <coal/parcel/action_registry.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/serialization/archive.hpp>

#include <tuple>
#include <type_traits>
#include <utility>

namespace coal::parcel {

namespace detail {

template <typename F>
struct function_traits;

template <typename R, typename... Args>
struct function_traits<R (*)(Args...)>
{
    using result_type = R;
    using args_tuple = std::tuple<std::decay_t<Args>...>;
};

template <typename R, typename... Args>
struct function_traits<R (*)(Args...) noexcept>
{
    using result_type = R;
    using args_tuple = std::tuple<std::decay_t<Args>...>;
};

}    // namespace detail

/// CRTP base implementing the action protocol for a free function F.
/// Derived must provide `static constexpr char const* action_name`.
template <typename Derived, auto F>
struct plain_action
{
    using traits = detail::function_traits<decltype(F)>;
    using result_type = typename traits::result_type;
    using args_tuple = typename traits::args_tuple;

    [[nodiscard]] static char const* name() noexcept
    {
        return Derived::action_name;
    }

    /// Stable wire id (hash of the name).
    [[nodiscard]] static action_id id() noexcept
    {
        static action_id const cached = hash_action_name(name());
        return cached;
    }

    /// Register with the process-wide registry exactly once.
    static action_id ensure_registered()
    {
        static action_id const registered =
            action_registry::instance().register_action(name(), &invoke);
        return registered;
    }

    /// Marshal call arguments into a parcel payload (a sealed pooled
    /// slab the wire frame will reference without copying).
    template <typename... CallArgs>
    [[nodiscard]] static serialization::shared_buffer make_arguments(
        CallArgs&&... args)
    {
        args_tuple tuple(std::forward<CallArgs>(args)...);
        return serialization::to_bytes(tuple);
    }

    /// Callee side: unmarshal, run F, and send the result parcel if the
    /// caller attached a continuation.
    static void invoke(invocation_context& ctx, parcel&& p)
    {
        args_tuple args{};
        serialization::input_archive ia(p.arguments);
        ia & args;

        if constexpr (std::is_void_v<result_type>)
        {
            std::apply(F, std::move(args));
            if (p.continuation != 0)
            {
                // Empty-payload response: satisfies a future<void>.
                send_response(ctx, p, serialization::shared_buffer{});
            }
        }
        else
        {
            result_type result = std::apply(F, std::move(args));
            if (p.continuation != 0)
            {
                send_response(ctx, p, serialization::to_bytes(result));
            }
        }
    }

private:
    static void send_response(invocation_context& ctx, parcel const& request,
        serialization::shared_buffer&& payload)
    {
        parcel response;
        response.source = ctx.this_locality;
        response.dest = request.source;
        response.action = make_response_id(id());
        response.continuation = request.continuation;
        response.arguments = std::move(payload);
        ctx.put_parcel(std::move(response));
    }
};

}    // namespace coal::parcel

/// Define and register an action type for a free function, HPX's
/// HPX_PLAIN_ACTION analogue.  Use at namespace scope.
#define COAL_PLAIN_ACTION(func, action_type)                                   \
    struct action_type                                                         \
      : ::coal::parcel::plain_action<action_type, &func>                       \
    {                                                                          \
        static constexpr char const* action_name = #action_type;              \
    };                                                                         \
    inline ::coal::parcel::action_registrar<action_type> const                 \
        coal_action_registrar_##action_type {}
