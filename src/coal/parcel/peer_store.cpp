#include <coal/parcel/peer_store.hpp>

#include <coal/common/assert.hpp>

#include <algorithm>

namespace coal::parcel {

namespace {

    struct id_less
    {
        bool operator()(std::pair<std::uint32_t, peer_entry*> const& a,
            std::uint32_t b) const noexcept
        {
            return a.first < b;
        }
    };

}    // namespace

peer_entry* peer_store::find(std::uint32_t id) const noexcept
{
    shard const& s = shards_[shard_of(id)];
    snapshot const* sn = s.snap.load(std::memory_order_acquire);
    std::size_t covered = 0;
    if (sn != nullptr)
    {
        covered = sn->entries.size();
        auto const it = std::lower_bound(
            sn->entries.begin(), sn->entries.end(), id, id_less{});
        if (it != sn->entries.end() && it->first == id)
            return it->second;
    }
    // Definitive miss: the snapshot covers every entry in the shard.
    if (s.count.load(std::memory_order_acquire) == covered)
        return nullptr;
    std::lock_guard lock(s.lock);
    auto const it = s.map.find(id);
    return it == s.map.end() ? nullptr : it->second.get();
}

peer_entry& peer_store::get_or_create(std::uint32_t id)
{
    if (peer_entry* e = find(id))
        return *e;
    shard& s = shards_[shard_of(id)];
    std::lock_guard lock(s.lock);
    auto [it, inserted] = s.map.try_emplace(id);
    if (inserted)
    {
        it->second = std::make_shared<peer_entry>(id);
        s.count.store(s.map.size(), std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        // Doubling policy: O(log n) publications per shard, bounding
        // retired-snapshot memory at < 2n slots while keeping the
        // locked slow path rare.
        if (s.published == 0 || s.map.size() >= 2 * s.published)
            publish_locked(s);
    }
    return *it->second;
}

peer_state& peer_store::hydrate(peer_entry& e, std::uint32_t self_epoch)
{
    if (e.live)
        return *e.live;
    e.live = std::make_unique<peer_state>();
    peer_state& st = *e.live;
    if (e.tombstoned)
    {
        st.next_seq = e.tomb.next_seq;
        st.cum_received = e.tomb.cum_received;
        st.stream_gen = e.tomb.stream_gen;
        st.epoch = e.tomb.epoch;
        st.link_epoch =
            e.tomb.link_epoch != 0 ? e.tomb.link_epoch : self_epoch;
        st.status = e.tomb.status;
        e.tombstoned = false;
        tombstoned_.fetch_sub(1, std::memory_order_relaxed);
        rehydrations_.fetch_add(1, std::memory_order_relaxed);
    }
    else
    {
        st.link_epoch = self_epoch;
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    return st;
}

void peer_store::demote(peer_entry& e)
{
    COAL_ASSERT(e.live != nullptr);
    peer_state const& st = *e.live;
    COAL_ASSERT(evictable(st));
    e.tomb.next_seq = st.next_seq;
    e.tomb.cum_received = st.cum_received;
    e.tomb.stream_gen = st.stream_gen;
    e.tomb.epoch = st.epoch;
    e.tomb.link_epoch = st.link_epoch;
    e.tomb.status = st.status;
    e.tombstoned = true;
    e.live.reset();
    active_.fetch_sub(1, std::memory_order_relaxed);
    tombstoned_.fetch_add(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

void peer_store::reset(peer_entry& e)
{
    if (e.live)
    {
        e.live.reset();
        active_.fetch_sub(1, std::memory_order_relaxed);
    }
    if (e.tombstoned)
    {
        e.tombstoned = false;
        tombstoned_.fetch_sub(1, std::memory_order_relaxed);
    }
    e.tomb = peer_tombstone{};
    e.last_activity_ns = 0;
}

void peer_store::collect_shard(std::size_t shard_index,
    std::vector<std::shared_ptr<peer_entry>>& out) const
{
    shard const& s = shards_[shard_index];
    std::lock_guard lock(s.lock);
    out.reserve(out.size() + s.map.size());
    for (auto const& [id, e] : s.map)
        out.push_back(e);
}

peer_store::snapshot const* peer_store::shard_snapshot(
    std::size_t shard_index) const noexcept
{
    return shards_[shard_index].snap.load(std::memory_order_acquire);
}

void peer_store::refresh_snapshot(std::size_t shard_index)
{
    shard& s = shards_[shard_index];
    std::lock_guard lock(s.lock);
    if (s.map.size() != s.published)
        publish_locked(s);
}

std::size_t peer_store::shard_max_occupancy() const noexcept
{
    std::size_t worst = 0;
    for (auto const& s : shards_)
        worst = std::max(worst, s.count.load(std::memory_order_relaxed));
    return worst;
}

void peer_store::publish_locked(shard& s)
{
    auto next = std::make_unique<snapshot>();
    next->entries.reserve(s.map.size());
    for (auto const& [id, e] : s.map)
        next->entries.emplace_back(id, e.get());
    std::sort(next->entries.begin(), next->entries.end(),
        [](auto const& a, auto const& b) { return a.first < b.first; });
    s.snap.store(next.get(), std::memory_order_release);
    s.published = s.map.size();
    s.retired.push_back(std::move(next));
}

void due_ring::schedule(std::shared_ptr<peer_entry> entry, std::int64_t due_ns)
{
    if (due_ns == std::numeric_limits<std::int64_t>::max())
        return;
    if (due_ns < 1)
        due_ns = 1;
    std::int64_t cur = entry->ring_due.load(std::memory_order_relaxed);
    while (due_ns < cur)
    {
        if (entry->ring_due.compare_exchange_weak(
                cur, due_ns, std::memory_order_acq_rel))
        {
            // Park on the staging list; only the drainer files items
            // into buckets (see the class comment — bucketing here
            // would strand past-due deadlines behind the cursor).
            std::lock_guard lock(staging_lock_);
            staged_.push_back(item{due_ns, std::move(entry)});
            return;
        }
    }
}

std::size_t due_ring::queued() const
{
    std::size_t total = 0;
    {
        std::lock_guard lock(staging_lock_);
        total += staged_.size();
    }
    for (auto const& b : buckets_)
    {
        std::lock_guard lock(b.lock);
        total += b.items.size();
    }
    return total;
}

}    // namespace coal::parcel
