#pragma once

/// \file parcelhandler.hpp
/// Per-locality parcel subsystem: routing, transmission, reception.
///
/// Outbound path (put_parcel):
///   - destination == here: the action runs locally; a task is spawned
///     directly (no transport, no modeled network cost);
///   - a message handler (coalescing) is installed for the action: the
///     parcel is diverted to it; the handler later calls send_message();
///   - otherwise: a single-parcel message is queued for transmission.
///
/// Transmission and reception are *background work* (HPX's design): the
/// scheduler's workers pump `progress()` between tasks, which (a) frames
/// and sends queued outbound messages — paying the modeled per-message
/// sender cost inside background accounting — and (b) drains the inbox,
/// paying the receiver cost, decoding frames, and spawning one task per
/// parcel.  This is what makes Eq. 3/4 of the paper measurable.
///
/// The response table maps continuation ids to callbacks that complete
/// local promises when a result parcel arrives.

#include <coal/common/mpmc_queue.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/unique_function.hpp>
#include <coal/net/transport.hpp>
#include <coal/parcel/action_registry.hpp>
#include <coal/parcel/message_handler.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/threading/scheduler.hpp>

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace coal::parcel {

/// Monotonic counters the /parcels, /messages and /data performance
/// counters read.
struct parcelhandler_counters
{
    std::atomic<std::uint64_t> parcels_sent{0};
    std::atomic<std::uint64_t> parcels_received{0};
    std::atomic<std::uint64_t> parcels_local{0};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> parcels_executed{0};
};

class parcelhandler
{
public:
    parcelhandler(std::uint32_t here, net::transport& transport,
        threading::scheduler& scheduler);
    ~parcelhandler();

    parcelhandler(parcelhandler const&) = delete;
    parcelhandler& operator=(parcelhandler const&) = delete;

    [[nodiscard]] std::uint32_t here() const noexcept
    {
        return here_;
    }

    /// Route an outbound parcel (thread-safe).
    void put_parcel(parcel&& p);

    /// Queue a batch of parcels bound for `dst` as ONE wire message.
    /// Called by message handlers (a coalesced flush) and internally for
    /// singleton sends.  Actual framing/transmission happens in
    /// background work.
    void send_message(std::uint32_t dst, std::vector<parcel>&& parcels);

    /// Install/remove the message handler for an action.  Installing for
    /// a request action id does NOT implicitly cover its response id —
    /// the coalescing registry decides that policy.
    void set_message_handler(
        action_id id, std::shared_ptr<message_handler> handler);

    [[nodiscard]] std::shared_ptr<message_handler> message_handler_for(
        action_id id) const;

    /// Flush all installed message handlers (phase end / quiesce).
    void flush_message_handlers();

    /// Install the component resolver handed to action invocations
    /// (wired to AGAS by the runtime; component actions need it).
    void set_component_resolver(
        std::function<std::shared_ptr<void>(agas::gid, std::type_index)>
            resolver)
    {
        component_resolver_ = std::move(resolver);
    }

    /// Register a callback completing a local promise; returns the
    /// continuation id to embed in the outgoing parcel.
    continuation_id register_response_callback(
        unique_function<void(serialization::byte_buffer&&)> callback);

    /// Number of response callbacks still outstanding.
    [[nodiscard]] std::size_t pending_responses() const;

    /// Background work hook; registered with the locality's scheduler.
    /// Returns true when it made progress.
    bool progress();

    [[nodiscard]] parcelhandler_counters const& counters() const noexcept
    {
        return counters_;
    }

    /// Outbound messages accepted by send_message but not yet handed to
    /// the transport.
    [[nodiscard]] std::size_t pending_sends() const
    {
        return outbound_.size();
    }

    /// Received wire messages not yet decoded/executed.
    [[nodiscard]] std::size_t pending_receives() const
    {
        return inbox_.size();
    }

    /// Stop accepting traffic (queues close; progress drains nothing new).
    void stop();

private:
    struct send_job
    {
        std::uint32_t dst;
        std::vector<parcel> parcels;
    };

    struct inbound_message
    {
        std::uint32_t src;
        serialization::byte_buffer payload;
    };

    void deliver_local(parcel&& p);
    void execute_parcel(parcel&& p);
    bool progress_send();
    bool progress_receive();
    void complete_promise(
        continuation_id id, serialization::byte_buffer&& payload);

    std::uint32_t here_;
    net::transport& transport_;
    threading::scheduler& scheduler_;

    mpmc_queue<send_job> outbound_;
    mpmc_queue<inbound_message> inbox_;

    mutable spinlock handlers_lock_;
    std::unordered_map<action_id, std::shared_ptr<message_handler>> handlers_;

    mutable spinlock responses_lock_;
    std::unordered_map<continuation_id,
        unique_function<void(serialization::byte_buffer&&)>>
        responses_;
    std::atomic<std::uint64_t> next_continuation_{1};

    std::function<std::shared_ptr<void>(agas::gid, std::type_index)>
        component_resolver_;

    parcelhandler_counters counters_;
    std::atomic<bool> stopped_{false};
};

}    // namespace coal::parcel
