#pragma once

/// \file parcelhandler.hpp
/// Per-locality parcel subsystem: routing, transmission, reception.
///
/// Outbound path (put_parcel):
///   - destination == here: the action runs locally; a task is spawned
///     directly (no transport, no modeled network cost);
///   - a message handler (coalescing) is installed for the action: the
///     parcel is diverted to it; the handler later calls send_message();
///   - otherwise: a single-parcel message is queued for transmission.
///
/// Transmission and reception are *background work* (HPX's design): the
/// scheduler's workers pump `progress()` between tasks, which (a) frames
/// and sends queued outbound messages — paying the modeled per-message
/// sender cost inside background accounting — and (b) drains up to
/// `receive_drain_budget` inbox frames per call, paying the receiver cost
/// per frame.  This is what makes Eq. 3/4 of the paper measurable.
///
/// The receive pipeline is *batched*: the background worker never decodes
/// parcel arguments.  It peeks the O(1) frame prefix (duplicate frames
/// are suppressed before the modeled protocol spin is paid), scans the
/// frame's chunk boundaries touching only length fields, and bulk-spawns
/// one chunk task per K parcels through scheduler::post_n.  The chunk
/// tasks — running on the workers that execute the parcels — do the
/// actual deserialization against the shared frame slab, so a coalesced
/// frame costs the background path O(frame) instead of O(nparcels) task
/// spawns + decodes.  K is sized from the batch and the worker count
/// (~2 chunks per worker, floored at `receive_min_chunk_parcels`).
///
/// The response table maps continuation ids to callbacks that complete
/// local promises when a result parcel arrives.
///
/// Flow control (when `flow_params::enabled`): every outbound frame
/// carries a credit grant computed from local memory pressure, every
/// inbound frame updates the per-peer send window, and progress_send
/// *defers* jobs that would overrun the window onto a per-peer queue
/// instead of handing them to the wire.  Admission control in put_parcel
/// sheds best-effort parcels under critical pressure, and a link whose
/// breaker is open with its in-flight byte cap exhausted fails sends
/// with `delivery_error::link_down`.  See flow_control.hpp for the full
/// protocol description.

#include <coal/common/cacheline.hpp>
#include <coal/common/mpmc_queue.hpp>
#include <coal/common/pressure.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/common/unique_function.hpp>
#include <coal/net/topology.hpp>
#include <coal/net/transport.hpp>
#include <coal/parcel/action_registry.hpp>
#include <coal/parcel/flow_control.hpp>
#include <coal/parcel/membership.hpp>
#include <coal/parcel/message_handler.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/parcel/peer_store.hpp>
#include <coal/threading/scheduler.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace coal::parcel {

/// Monotonic counters the /parcels, /messages, /data and /net performance
/// counters read.
struct parcelhandler_counters
{
    std::atomic<std::uint64_t> parcels_sent{0};
    std::atomic<std::uint64_t> parcels_received{0};
    std::atomic<std::uint64_t> parcels_local{0};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> parcels_executed{0};
    // Reliability layer (all zero while it is disabled):
    std::atomic<std::uint64_t> retransmits{0};
    std::atomic<std::uint64_t> duplicates_suppressed{0};
    std::atomic<std::uint64_t> acks_sent{0};    ///< standalone ack frames
    std::atomic<std::uint64_t> ack_latency_ns{0};
    std::atomic<std::uint64_t> acked_messages{0};
    std::atomic<std::uint64_t> circuit_breaker_trips{0};
    // Batched receive pipeline (/threads/receive-pipeline/*):
    std::atomic<std::uint64_t> receive_drains{0};    ///< drains with >=1 frame
    std::atomic<std::uint64_t> frames_drained{0};    ///< frames those consumed
    std::atomic<std::uint64_t> chunk_tasks{0};       ///< chunk tasks spawned
    std::atomic<std::uint64_t> chunk_parcels{0};     ///< parcels they carried
    /// Argument-decode time spent inside chunk tasks — work the pipeline
    /// moved off the background critical path onto executing workers.
    std::atomic<std::uint64_t> decode_offload_ns{0};
    /// Duplicate frames recognized from the O(1) prefix peek alone,
    /// before the modeled per-message receive overhead was paid.
    std::atomic<std::uint64_t> duplicate_overhead_avoided{0};
    // Flow control / overload protection (/net/flow/*; zero while off):
    std::atomic<std::uint64_t> parcels_shed{0};    ///< admission-control drops
    std::atomic<std::uint64_t> sends_deferred{0};  ///< jobs parked on credit
    std::atomic<std::uint64_t> sends_released{0};  ///< deferred jobs re-queued
    std::atomic<std::uint64_t> credit_updates{0};  ///< window grants applied
    std::atomic<std::uint64_t> link_down_failures{0};    ///< parcels failed
    std::atomic<std::uint64_t> pressure_transitions{0};
    std::atomic<std::uint64_t> starvation_trips{0};    ///< slow-peer breaker trips
    // Membership / failure detection (/net/health/*; zero while off):
    std::atomic<std::uint64_t> heartbeats_sent{0};    ///< standalone liveness frames
    std::atomic<std::uint64_t> peers_suspected{0};    ///< suspicion escalations
    std::atomic<std::uint64_t> peers_declared_dead{0};
    std::atomic<std::uint64_t> peer_rejoins{0};
    std::atomic<std::uint64_t> stale_epoch_frames{0};    ///< fenced-incarnation frames discarded
    /// False-positive deaths healed: this locality saw a frame addressed
    /// past its own incarnation (a dead-peer probe from an accuser) and
    /// refuted by adopting the higher epoch — a virtual restart.
    std::atomic<std::uint64_t> epoch_refutes{0};
    std::atomic<std::uint64_t> peer_failed_failures{0};    ///< parcels failed as peer_failed
    // Sharded peer store (/net/peers/*; zero while reliability is off):
    std::atomic<std::uint64_t> peers_evicted{0};    ///< idle demotions to tombstones
    std::atomic<std::uint64_t> peers_rehydrated{0};    ///< tombstones restored on contact
    /// Parcels whose frame was acknowledged by the peer — the sender-side
    /// "confirmed delivered" half of the chaos-soak conservation law
    /// confirmed + failed + shed == offered.
    std::atomic<std::uint64_t> parcels_confirmed{0};
    // Hierarchical (two-level) aggregation (/coal/hierarchy/*; zero
    // while relay routing is off):
    /// Parcels this locality received as a node relay and re-routed to
    /// their final destination.
    std::atomic<std::uint64_t> parcels_relayed{0};
    /// Relayed parcels forwarded over intra-node links (the fan-out leg).
    std::atomic<std::uint64_t> parcels_fanned_out{0};
    /// Forwarded parcels acknowledged by their final destination — the
    /// completion half of the relay ledger.  These do NOT count into
    /// parcels_confirmed: the origin already counted the parcel when this
    /// relay acked custody of it.
    std::atomic<std::uint64_t> parcels_relay_confirmed{0};
    /// Forwarded parcels this relay could not deliver (destination died,
    /// link down, or the relay crashed holding them).  Custody was
    /// already confirmed to the origin, so these are the at-most-once
    /// window of the relay hop; they bypass the per-cause delivery-error
    /// counters and handler (origin-keyed accounting).
    std::atomic<std::uint64_t> parcels_relay_failed{0};
    /// Wire messages this locality sent across a node boundary / within
    /// its node (classified by the installed topology; both zero when no
    /// topology is installed).
    std::atomic<std::uint64_t> messages_inter_node{0};
    std::atomic<std::uint64_t> messages_intra_node{0};
};

/// Tunables of the ack/retransmit protocol.  Disabled by default: every
/// frame then goes out unsequenced (seq 0) exactly as before, so the
/// zero-loss fast path pays only the 32 unused header bytes.
struct reliability_params
{
    bool enabled = false;

    /// How long a received frame may wait for a piggyback opportunity
    /// before a standalone ack frame is emitted.
    std::int64_t ack_delay_us = 200;

    /// Retransmission timeout bounds and backoff.  The floor is
    /// deliberately conservative: the protocol has no flow control, so
    /// until the smoothed RTT converges a burst of outstanding frames
    /// must not outrun the timer — an aggressive floor turns every
    /// burst into a spurious retransmit storm (and Karn's rule then
    /// keeps srtt from ever converging).  Latency-sensitive callers
    /// with small windows can lower it.
    std::int64_t min_rto_us = 50000;
    std::int64_t max_rto_us = 200000;
    double rto_backoff = 2.0;
    double rto_jitter = 0.25;    ///< uniform fraction added on each backoff

    /// RTO = rto_rtt_multiplier × smoothed RTT (clamped to the bounds);
    /// the EWMA gain follows RFC 6298's alpha.
    double rtt_gain = 0.125;
    double rto_rtt_multiplier = 4.0;

    /// Per-link circuit breaker: opens when the retransmit backlog or the
    /// oldest frame's attempt count crosses a threshold, closes once the
    /// backlog drains to the low-water mark.  An open breaker makes the
    /// coalescer flush immediately for that destination.
    /// A healthy burst parks hundreds of unacked frames for one RTT, so
    /// the backlog threshold must sit well above any sane window, and a
    /// frame must survive several backoff doublings before its attempt
    /// count signals a dark link rather than a slow ack.
    std::size_t breaker_trip_backlog = 4096;
    unsigned breaker_trip_attempts = 5;
    std::size_t breaker_close_backlog = 2;
};

/// Ordering ticket for send_message.  Producers that detach batches
/// outside their queue lock (the sharded coalescer) allocate consecutive
/// sequence numbers on a per-destination stream *while still holding the
/// lock*, then hand off lock-free; the parcelhandler's sequencer restores
/// ticket order before the batch reaches the outbound queue.  A
/// default-constructed ticket (stream 0) means "unordered, enqueue
/// directly".
struct send_ticket
{
    std::uint64_t stream = 0;    ///< 0 = no ordering requirement
    std::uint64_t seq = 0;       ///< consecutive from 0 within a stream
};

class parcelhandler
{
public:
    /// Callback surfacing parcels the flow-control layer refused to
    /// deliver (shed under overload, or failed on a down link).  Invoked
    /// outside internal locks, possibly concurrently from several
    /// threads; the parcel is moved to the handler for inspection.
    using delivery_error_handler =
        std::function<void(delivery_error, parcel&&)>;

    parcelhandler(std::uint32_t here, net::transport& transport,
        threading::scheduler& scheduler, reliability_params reliability = {},
        flow_params flow = {}, membership_params membership = {},
        peer_store_params store = {});
    ~parcelhandler();

    parcelhandler(parcelhandler const&) = delete;
    parcelhandler& operator=(parcelhandler const&) = delete;

    [[nodiscard]] std::uint32_t here() const noexcept
    {
        return here_;
    }

    /// Route an outbound parcel (thread-safe).
    void put_parcel(parcel&& p);

    /// Queue a batch of parcels bound for `dst` as ONE wire message.
    /// Called by message handlers (a coalesced flush) and internally for
    /// singleton sends.  Actual framing/transmission happens in
    /// background work.  A non-zero ticket routes the batch through the
    /// per-stream sequencer: batches are released to the outbound queue
    /// strictly in ticket order, so callers may invoke this outside the
    /// lock that assigned the ticket.
    void send_message(std::uint32_t dst, std::vector<parcel>&& parcels,
        send_ticket ticket = {});

    /// Allocate a fresh sequencer stream id (never 0).  One stream per
    /// ordered producer lane — the coalescer uses one per destination.
    [[nodiscard]] std::uint64_t allocate_send_stream() noexcept
    {
        return next_stream_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Install/remove the message handler for an action.  Installing for
    /// a request action id does NOT implicitly cover its response id —
    /// the coalescing registry decides that policy.
    void set_message_handler(
        action_id id, std::shared_ptr<message_handler> handler);

    [[nodiscard]] std::shared_ptr<message_handler> message_handler_for(
        action_id id) const;

    /// Flush all installed message handlers (phase end / quiesce).
    void flush_message_handlers();

    /// Install the component resolver handed to action invocations
    /// (wired to AGAS by the runtime; component actions need it).  Must be
    /// called before traffic starts: the shared invocation context is read
    /// without synchronization by every executing worker.
    void set_component_resolver(
        std::function<std::shared_ptr<void>(agas::gid, std::type_index)>
            resolver)
    {
        invoke_ctx_.find_component = std::move(resolver);
    }

    /// Install the locality-to-node topology and enable/disable relay
    /// routing (two-level aggregation).  Like set_component_resolver this
    /// must be called before traffic starts: the fields are read without
    /// synchronization on every send and receive afterwards.  With relay
    /// routing on, cross-node coalesced batches ship to a single relay
    /// locality on the destination node, whose receive path fans them out
    /// over intra-node links (forward_parcel).
    void set_topology(net::topology topo, bool relay_routing)
    {
        topo_ = topo;
        relay_routing_ = relay_routing && topo.enabled();
    }

    [[nodiscard]] net::topology const& topo() const noexcept
    {
        return topo_;
    }

    /// True when cross-node parcels take the two-level relay path.
    [[nodiscard]] bool relay_routing() const noexcept
    {
        return relay_routing_;
    }

    /// Re-route a parcel that arrived here as the node relay but is
    /// destined elsewhere: counts it, then dispatches it like put_parcel
    /// *without* re-stamping p.source (responses must still route to the
    /// origin).  Runs on the executing worker inside a chunk task.
    void forward_parcel(parcel&& p);

    /// Register a callback completing a local promise; returns the
    /// continuation id to embed in the outgoing parcel.
    continuation_id register_response_callback(
        unique_function<void(serialization::shared_buffer&&)> callback);

    /// Number of response callbacks still outstanding.
    [[nodiscard]] std::size_t pending_responses() const;

    /// Background work hook; registered with the locality's scheduler.
    /// Returns true when it made progress.
    bool progress();

    [[nodiscard]] parcelhandler_counters const& counters() const noexcept
    {
        return counters_;
    }

    /// Outbound messages accepted by send_message but not yet handed to
    /// the transport.  Includes frames mid-encode inside progress_send and
    /// batches parked in the sequencer waiting for an earlier ticket, so
    /// quiescence checks never observe zero while a message is between
    /// the queue and the wire.
    [[nodiscard]] std::size_t pending_sends() const
    {
        return outbound_.size() +
            sends_in_progress_.load(std::memory_order_acquire) +
            parked_sends_.load(std::memory_order_acquire) +
            deferred_sends_.load(std::memory_order_acquire);
    }

    /// Received wire messages not yet decoded/executed.  Includes frames
    /// mid-decode inside progress_receive (tasks are posted before the
    /// in-progress count drops, so the work is always visible somewhere).
    [[nodiscard]] std::size_t pending_receives() const
    {
        return inbox_.size() +
            receives_in_progress_.load(std::memory_order_acquire);
    }

    [[nodiscard]] reliability_params const& reliability() const noexcept
    {
        return reliability_;
    }

    [[nodiscard]] flow_params const& flow() const noexcept
    {
        return flow_;
    }

    /// Install the callback that surfaces shed / link-down parcels.  Like
    /// the component resolver, this must be installed before traffic
    /// starts — it is read without synchronization afterwards.
    void set_delivery_error_handler(delivery_error_handler handler)
    {
        on_delivery_error_ = std::move(handler);
    }

    /// Overload pressure toward `dst`: the max of buffer-pool memory
    /// pressure and the link's in-flight/deferred byte pressure.  The
    /// coalescer consults this to shrink its batch targets under `soft`
    /// pressure; put_parcel sheds best-effort parcels under `critical`.
    /// Steady state (no watermark crossed anywhere) answers from two
    /// relaxed atomic loads without touching any peer lock.
    [[nodiscard]] pressure_state flow_pressure(std::uint32_t dst) const;

    /// Process-level pressure: pool state combined with the worst link.
    /// The /net/flow/pressure counter reads this.
    [[nodiscard]] pressure_state current_pressure() const noexcept;

    /// Unfinished reliability state: unacked outbound frames, parcels held
    /// for reordering, and acks not yet emitted.  Zero when disabled.
    /// quiesce() waits on this so retransmits cannot outlive shutdown.
    [[nodiscard]] std::size_t pending_reliability() const;

    /// True while the circuit breaker for the link to `dst` is open or the
    /// membership layer suspects the peer.  The coalescing handler
    /// bypasses batching for degraded links.
    [[nodiscard]] bool link_degraded(std::uint32_t dst) const;

    [[nodiscard]] membership_params const& membership() const noexcept
    {
        return membership_;
    }

    /// This locality's incarnation epoch (starts at 1; restart_incarnation
    /// bumps it).
    [[nodiscard]] std::uint32_t epoch() const noexcept
    {
        return self_epoch_.load(std::memory_order_acquire);
    }

    /// True between simulate_crash() and restart_incarnation().
    [[nodiscard]] bool crashed() const noexcept
    {
        return crashed_.load(std::memory_order_acquire);
    }

    /// The failure detector's current verdict on `dst` (alive when the
    /// peer is unknown).
    [[nodiscard]] peer_status peer_liveness(std::uint32_t dst) const;

    /// Lock-free gate for liveness scans (relay selection): true while
    /// the failure detector trusts every peer — no suspected or dead
    /// marks anywhere, tombstoned or live.  Steady state is three relaxed
    /// gauge loads.
    [[nodiscard]] bool all_peers_live() const noexcept
    {
        return suspected_peers_.load(std::memory_order_acquire) == 0 &&
            dead_peers_.load(std::memory_order_acquire) == 0 &&
            tombstoned_dead_.load(std::memory_order_acquire) == 0;
    }

    /// Aggregate membership gauges the /net/health counters read.
    /// known_peers is the *live* footprint (hydrated entries); evicted
    /// tombstones are reported through peer_stats() instead, and a dead
    /// peer demoted to a tombstone leaves dead_peers too.
    struct health_snapshot
    {
        std::size_t known_peers = 0;
        std::size_t suspected_peers = 0;
        std::size_t dead_peers = 0;
    };
    [[nodiscard]] health_snapshot health() const;

    /// Sharded-store gauges the /net/peers counters read.
    struct peer_store_stats
    {
        std::size_t active = 0;       ///< hydrated entries
        std::size_t evicted = 0;      ///< tombstoned entries
        std::size_t shard_max_occupancy = 0;
        std::uint64_t evictions = 0;
        std::uint64_t rehydrations = 0;
    };
    [[nodiscard]] peer_store_stats peer_stats() const;

    [[nodiscard]] peer_store_params const& store_params() const noexcept
    {
        return store_params_;
    }

    /// Test/debug introspection: bytes and entries the reliability/flow
    /// layers retain for one peer.  A fenced (dead) peer must show zero
    /// everywhere — that is the "no per-peer state leak" invariant the
    /// chaos soak asserts.
    struct peer_debug
    {
        bool known = false;
        bool evicted = false;    ///< demoted to a tombstone (state zeroed)
        peer_status status = peer_status::alive;
        std::uint32_t epoch = 0;
        std::size_t unacked_frames = 0;
        std::size_t held_frames = 0;
        std::size_t deferred_jobs = 0;
        std::uint64_t unacked_bytes = 0;
        std::uint64_t deferred_bytes = 0;
        // Stream positions: a wedged link shows up as a gap between
        // cum_received and the lowest held/unacked seq.
        std::uint64_t next_seq = 0;
        std::uint64_t cum_received = 0;
        std::uint64_t lowest_unacked_seq = 0;    ///< 0 = none
        std::uint64_t lowest_held_seq = 0;       ///< 0 = none
    };
    [[nodiscard]] peer_debug debug_peer(std::uint32_t dst) const;

    /// Every hydrated peer's debug view, collected one shard at a time
    /// (shard lock to copy the entry list, then one entry lock each) —
    /// the quiesce non-convergence diagnostic iterates this instead of
    /// probing every locality pair, so a 5 s dump no longer stalls all
    /// senders behind one global lock.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, peer_debug>>
    debug_active_peers() const;

    /// Chaos hook: model a hard crash of this locality.  All queued,
    /// in-flight and retransmit-held outbound parcels are surfaced through
    /// the delivery-error handler as `peer_failed` (so sender-side
    /// accounting still balances), every per-peer state table is dropped,
    /// pending responses are abandoned, and progress() becomes a no-op
    /// until restart_incarnation().  Call transport::kill_locality first
    /// so no frame from the dead incarnation escapes mid-crash.
    void simulate_crash();

    /// Chaos hook: come back from simulate_crash() under a fresh
    /// incarnation epoch (self epoch + 1).  All protocol state starts
    /// over; peers discover the new epoch from the first frame or probe
    /// reply they see and fence everything addressed to the old one.
    void restart_incarnation();

    /// Route parcels that will never be delivered through the unified
    /// delivery-failure path: per-cause counter, trace event, then the
    /// delivery-error handler for each parcel.  Public so the chaos
    /// machinery (runtime::kill_locality) can account for parcels a crash
    /// destroyed outside the parcelhandler, e.g. in coalescing queues.
    void fail_parcels(delivery_error err, std::vector<parcel>&& parcels);

    /// Stop accepting traffic (queues close; progress drains nothing new).
    void stop();

private:
    // send_job, unacked_frame, held_frame and peer_state moved to
    // peer_store.hpp with the sharded store.

    /// Reorder state for one ordered producer lane.  Lives in a sharded
    /// map: distinct streams (≈ distinct coalescer destinations) contend
    /// only when they hash to the same shard.
    struct stream_state
    {
        std::uint64_t next_seq = 0;                  ///< next ticket to release
        std::map<std::uint64_t, send_job> parked;    ///< out-of-order arrivals
    };

    struct alignas(cache_line_size) sequencer_shard
    {
        spinlock lock;
        std::unordered_map<std::uint64_t, stream_state> streams;
    };

    static constexpr std::size_t sequencer_shard_count = 16;    // power of two

    /// Max inbox frames one progress_receive call consumes.  Bounds the
    /// latency a single background poll can add to the task it preempted
    /// while still amortizing the poll over many frames.
    static constexpr std::size_t receive_drain_budget = 32;

    /// Floor on parcels per chunk task: below this, per-task overhead
    /// would eat what parallel decode gains.
    static constexpr std::size_t receive_min_chunk_parcels = 8;

    struct inbound_message
    {
        std::uint32_t src;
        serialization::shared_buffer payload;
    };

    void deliver_local(parcel&& p);
    void execute_parcel(parcel&& p);
    bool progress_send();
    bool progress_receive();
    void receive_one(inbound_message&& msg);
    void spawn_parcel_tasks(
        serialization::shared_buffer&& buffer, std::uint32_t count);
    void execute_chunk(serialization::shared_buffer buffer,
        std::size_t offset, std::size_t count);
    [[nodiscard]] std::size_t chunk_size_for(std::size_t count) const noexcept;
    void handle_acks(std::uint32_t src, frame_header const& hdr);
    void schedule_ack_locked(
        peer_entry& e, peer_state& peer, std::int64_t now);
    [[nodiscard]] std::uint64_t sack_bits_locked(peer_state const& peer) const;
    [[nodiscard]] std::int64_t initial_rto_ns_locked(
        peer_state const& peer) const;
    void maybe_trip_breaker_locked(std::uint32_t dst, peer_state& peer);
    void complete_promise(
        continuation_id id, serialization::shared_buffer&& payload);

    // -- sharded peer store -----------------------------------------------
    /// Rehydrate an evicted entry (gauge-aware wrapper around
    /// peer_store::hydrate).  Caller holds e.lock.
    peer_state& hydrate_locked(peer_entry& e);
    /// Demote the entry to its tombstone when the idle policy and the
    /// protocol-state safety check both allow it; clears suspicion and
    /// moves a dead verdict to the tombstoned_dead_ gauge.  Caller holds
    /// e.lock.  Returns true when the entry was evicted.
    bool try_evict_locked(peer_entry& e, peer_state& peer, std::int64_t now);
    /// Clock-hand eviction sweep: examine up to evict_scan_budget entries
    /// via the shard snapshots (try-lock; concurrent callers skip).
    bool evict_hand_step(std::int64_t now);
    /// Per-peer deadline service driven by the due-time ring: due acks,
    /// windowed RTO retransmits, starvation/dark-link handling, deferred
    /// release, phi-accrual liveness, heartbeats and dead-peer probes —
    /// everything the old full-map background walks did, now amortized
    /// O(active).  Returns the peer's next absolute deadline.
    std::int64_t service_peer(peer_entry& e);

    // -- flow control -----------------------------------------------------
    /// The credit this locality grants its peers right now, scaled by
    /// buffer-pool pressure and biased by one for the wire (never 0 when
    /// flow control is on — a grant of 0 would wedge the peer).
    [[nodiscard]] std::uint64_t advertised_credit_wire() const noexcept;
    /// Would sending `bytes` more overrun the peer's window?  One frame
    /// is always allowed in flight (unacked_bytes == 0), so a grant
    /// smaller than a single frame cannot deadlock the link.
    [[nodiscard]] bool should_defer_locked(
        peer_state const& peer, std::size_t bytes) const noexcept;
    /// Is the link to this peer past its in-flight cap with the breaker
    /// open — i.e. in the link_down failure mode?
    [[nodiscard]] bool link_down_locked(peer_state const& peer) const noexcept;
    /// Move deferred jobs that now fit the window back to outbound_.
    /// Appends them to `released`; the caller pushes after unlocking.
    void release_deferred_locked(
        peer_state& peer, std::vector<send_job>& released, std::int64_t now);
    /// Recompute this link's pressure state from its in-flight + deferred
    /// bytes; maintains the lock-free pressured_links_ fast path.
    void update_link_pressure_locked(peer_state& peer);
    /// Fail a job's parcels through the delivery-error handler (called
    /// without peers_lock_ held).
    void fail_job(delivery_error err, send_job&& job);
    /// Emit trace/counter updates when the process-level pressure state
    /// changed since the last check.  Called from progress().
    void note_pressure_transition();

    // -- membership / failure detection ------------------------------------
    /// Per-peer state torn off under peers_lock_ by a fence (peer died or
    /// rejoined under a new epoch); failed outside the lock.
    struct fenced_state
    {
        std::uint32_t dst = 0;
        std::vector<unacked_frame> unacked;
        std::vector<send_job> deferred;
    };
    /// Strip every byte of sender+receiver protocol state for a peer:
    /// unacked and deferred parcels move to `out` (to be failed as
    /// peer_failed), held/ack/credit/seq/breaker state is reset, the
    /// stream re-binds to the current self epoch (link_epoch), and the
    /// gauges (open_breakers_, deferred_sends_, pressured_links_ and the
    /// reliability totals) are adjusted.  The caller decides what the
    /// fence means (death vs rejoin) and fixes status/epoch afterwards.
    /// Caller holds e.lock.
    void fence_peer_locked(
        peer_entry& e, peer_state& peer, fenced_state& out);
    /// Fail everything a fence collected (decodes retained frames back to
    /// parcels).  Returns the number of parcels failed.
    std::size_t fail_fenced(fenced_state&& fenced);
    /// Epoch/liveness gate for one received frame.  Returns false when the
    /// frame must be discarded (ghost from a fenced incarnation, or
    /// addressed to a previous incarnation of this locality).  Updates
    /// last-heard/EWMA liveness state and handles rejoin fencing.
    [[nodiscard]] bool membership_admit(
        std::uint32_t src, frame_info const& info);
    /// Adopt `new_epoch` (a virtual restart refuting a false-positive
    /// death) and fence every link, one peer lock at a time.  The
    /// per-peer link_epoch makes the sweep safe without a global lock:
    /// sends racing it stamp the old epoch on the old stream, which the
    /// receiver fences as a ghost — never the new epoch on a stale
    /// sequence number.  Called WITHOUT any peer lock held.
    void refute_self(std::uint32_t new_epoch, std::uint32_t accuser);
    /// True when `dst` is currently marked dead (cheap gauge gate first,
    /// then the entry lock; a dead tombstone counts).
    [[nodiscard]] bool peer_dead(std::uint32_t dst) const;
    /// Stamp the membership epochs on an outgoing frame header for `dst`.
    void stamp_epochs_locked(peer_state const& peer, frame_header& hdr) const;

    std::uint32_t here_;
    net::transport& transport_;
    threading::scheduler& scheduler_;

    /// Locality-to-node map + relay-routing switch (set_topology; both
    /// immutable once traffic starts).
    net::topology topo_{};
    bool relay_routing_ = false;

    mpmc_queue<send_job> outbound_;
    mpmc_queue<inbound_message> inbox_;

    std::array<sequencer_shard, sequencer_shard_count> sequencer_shards_;
    std::atomic<std::uint64_t> next_stream_{1};
    std::atomic<std::size_t> parked_sends_{0};

    mutable spinlock handlers_lock_;
    std::unordered_map<action_id, std::shared_ptr<message_handler>> handlers_;

    mutable spinlock responses_lock_;
    std::unordered_map<continuation_id,
        unique_function<void(serialization::shared_buffer&&)>>
        responses_;
    std::atomic<std::uint64_t> next_continuation_{1};

    /// Shared invocation context, built once in the constructor.  Its
    /// std::functions are immutable after startup and invoked concurrently
    /// by every worker — execute_parcel no longer assembles three
    /// type-erased closures per parcel.
    invocation_context invoke_ctx_;

    reliability_params reliability_;
    flow_params flow_;
    membership_params membership_;
    peer_store_params store_params_;
    /// The sharded peer store (declared before the ring: the ring's
    /// buckets hold entry references and must be destroyed first).
    peer_store store_;
    due_ring ring_;
    /// Clock-hand eviction cursor (hand_lock_ guards all three; steps
    /// try-lock so concurrent progress() callers never wait here).
    spinlock hand_lock_;
    std::size_t hand_shard_ = 0;
    std::size_t hand_pos_ = 0;
    std::int64_t hand_last_step_ns_ = 0;
    /// Links whose circuit breaker is currently open; lets
    /// link_degraded() answer "none" without any peer lock.  Mutated
    /// only under the owning peer's lock.
    std::atomic<std::size_t> open_breakers_{0};
    /// Links whose link_pressure is above ok / at critical — the
    /// lock-free fast path of flow_pressure()/current_pressure().
    /// Mutated only under the owning peer's lock.
    std::atomic<std::size_t> pressured_links_{0};
    std::atomic<std::size_t> links_critical_{0};
    /// Last process-level pressure reported by note_pressure_transition().
    std::atomic<std::uint8_t> last_pressure_{0};
    /// Deferred send jobs across all peers (gauge for pending_sends()).
    std::atomic<std::size_t> deferred_sends_{0};
    /// Reliability totals maintained at every mutation point so
    /// pending_reliability() is three relaxed loads instead of a
    /// full-store walk under lock.
    std::atomic<std::size_t> unacked_total_{0};
    std::atomic<std::size_t> held_total_{0};
    std::atomic<std::size_t> acks_pending_{0};
    /// Peers currently suspected / declared dead (gauges; mutated only
    /// under the owning peer's lock).  Both also serve as lock-free
    /// fast-path gates: link_degraded() and put_parcel's dead-peer check
    /// skip the lock while they read zero.  A dead peer demoted to a
    /// tombstone moves from dead_peers_ to tombstoned_dead_ — the
    /// /net/health gauge reports only the live footprint, but the
    /// put_parcel fail-fast gate checks the sum.
    std::atomic<std::size_t> suspected_peers_{0};
    std::atomic<std::size_t> dead_peers_{0};
    std::atomic<std::size_t> tombstoned_dead_{0};
    /// This locality's incarnation epoch; starts at 1, bumped by
    /// restart_incarnation().
    std::atomic<std::uint32_t> self_epoch_{1};
    std::atomic<bool> crashed_{false};
    delivery_error_handler on_delivery_error_;

    parcelhandler_counters counters_;
    // Messages popped from outbound_/inbox_ but still being processed.
    // Incremented before the pop so pending_sends()/pending_receives()
    // never transiently read zero while a message is in flight.
    std::atomic<std::size_t> sends_in_progress_{0};
    std::atomic<std::size_t> receives_in_progress_{0};
    std::atomic<bool> stopped_{false};
};

}    // namespace coal::parcel
