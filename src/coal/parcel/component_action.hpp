#pragma once

/// \file component_action.hpp
/// Component actions: remotely invocable *member functions* of objects
/// registered in AGAS.  This is the second half of HPX's action model
/// (plain actions cover free functions); a gid names the target object,
/// AGAS resolves the gid to its current owner locality, and the parcel
/// carries the gid alongside the marshaled arguments.
///
///     struct counter_component {
///         std::int64_t add(std::int64_t n) { return value += n; }
///         std::int64_t value = 0;
///     };
///     COAL_COMPONENT_ACTION(&counter_component::add, counter_add_action);
///
///     auto gid = rt.new_component<counter_component>(locality_id{1});
///     auto f   = here.async<counter_add_action>(gid, 5);   // future<i64>
///
/// Because a gid survives migration, calls keep working after
/// address_space::migrate() re-homes the object.

#include <coal/agas/gid.hpp>
#include <coal/common/logging.hpp>
#include <coal/parcel/action_registry.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/serialization/archive.hpp>

#include <memory>
#include <tuple>
#include <type_traits>
#include <typeindex>
#include <utility>

namespace coal::parcel {

namespace detail {

template <typename F>
struct member_function_traits;

template <typename C, typename R, typename... Args>
struct member_function_traits<R (C::*)(Args...)>
{
    using component_type = C;
    using result_type = R;
    using args_tuple = std::tuple<std::decay_t<Args>...>;
};

template <typename C, typename R, typename... Args>
struct member_function_traits<R (C::*)(Args...) noexcept>
  : member_function_traits<R (C::*)(Args...)>
{
};

}    // namespace detail

/// CRTP base implementing the action protocol for a component member
/// function M.  Derived must provide `static constexpr char const*
/// action_name`.
template <typename Derived, auto M>
struct component_action
{
    using traits = detail::member_function_traits<decltype(M)>;
    using component_type = typename traits::component_type;
    using result_type = typename traits::result_type;
    using args_tuple = typename traits::args_tuple;

    /// Marker used by locality::async to require a gid target.
    static constexpr bool is_component_action = true;

    [[nodiscard]] static char const* name() noexcept
    {
        return Derived::action_name;
    }

    [[nodiscard]] static action_id id() noexcept
    {
        static action_id const cached = hash_action_name(name());
        return cached;
    }

    static action_id ensure_registered()
    {
        static action_id const registered =
            action_registry::instance().register_action(name(), &invoke);
        return registered;
    }

    /// Marshal the target gid plus call arguments.
    template <typename... CallArgs>
    [[nodiscard]] static serialization::shared_buffer make_arguments(
        agas::gid target, CallArgs&&... args)
    {
        serialization::output_archive ar;
        args_tuple tuple(std::forward<CallArgs>(args)...);
        ar & target & tuple;
        return ar.detach();
    }

    static void invoke(invocation_context& ctx, parcel&& p)
    {
        agas::gid target;
        args_tuple args{};
        serialization::input_archive ia(p.arguments);
        ia & target & args;

        if (!ctx.find_component)
        {
            COAL_LOG_ERROR("parcel",
                "component action '%s' without a component resolver "
                "(parcel dropped)",
                name());
            return;
        }
        auto instance = std::static_pointer_cast<component_type>(
            ctx.find_component(target, std::type_index(
                                           typeid(component_type))));
        if (instance == nullptr)
        {
            COAL_LOG_ERROR("parcel",
                "component action '%s': gid %llx not bound here or wrong "
                "type (parcel dropped)",
                name(), static_cast<unsigned long long>(target.raw()));
            return;
        }

        auto call = [&](auto&&... unpacked) -> decltype(auto) {
            return (instance.get()->*M)(
                std::forward<decltype(unpacked)>(unpacked)...);
        };

        if constexpr (std::is_void_v<result_type>)
        {
            std::apply(call, std::move(args));
            if (p.continuation != 0)
                send_response(ctx, p, serialization::shared_buffer{});
        }
        else
        {
            result_type result = std::apply(call, std::move(args));
            if (p.continuation != 0)
                send_response(ctx, p, serialization::to_bytes(result));
        }
    }

private:
    static void send_response(invocation_context& ctx, parcel const& request,
        serialization::shared_buffer&& payload)
    {
        parcel response;
        response.source = ctx.this_locality;
        response.dest = request.source;
        response.action = make_response_id(id());
        response.continuation = request.continuation;
        response.arguments = std::move(payload);
        ctx.put_parcel(std::move(response));
    }
};

}    // namespace coal::parcel

/// Define and register a component action for a member function pointer,
/// HPX's HPX_DEFINE_COMPONENT_ACTION analogue.  Use at namespace scope.
#define COAL_COMPONENT_ACTION(method_ptr, action_type)                         \
    struct action_type                                                         \
      : ::coal::parcel::component_action<action_type, method_ptr>             \
    {                                                                          \
        static constexpr char const* action_name = #action_type;              \
    };                                                                         \
    inline ::coal::parcel::action_registrar<action_type> const                 \
        coal_action_registrar_##action_type {}
