#pragma once

/// \file peer_store.hpp
/// Sharded, lock-free-on-read storage for per-peer protocol state, plus
/// the due-time ring that replaces full-map background scans.
///
/// The parcelhandler used to keep every peer's reliability/flow/
/// membership state in one `unordered_map` behind one global spinlock:
/// every frame send, ack apply, credit release and heartbeat from every
/// worker serialized on that lock, and the background tick walked the
/// whole map — O(peers-ever-seen) per call.  This store replaces it
/// with three cooperating structures:
///
/// 1. **Shards.**  Peer ids hash onto `shard_count` cacheline-aligned
///    shards; the shard lock guards only the map *structure* (insert and
///    snapshot publication).  Entries are heap-allocated and NEVER erased
///    while the store lives — eviction demotes an entry in place — so a
///    raw `peer_entry*` obtained from any lookup stays valid without
///    hazard pointers or reference counting on the hot path.
///
/// 2. **Published snapshots.**  Each shard publishes an immutable sorted
///    (id, entry*) array through one atomic pointer.  Readers binary-
///    search it lock-free; a miss consults the shard's entry count and
///    only falls back to the locked map when entries were added after the
///    last publication.  Publication follows a doubling policy (republish
///    when the map reaches 2x the snapshot), so a shard of n peers
///    retires O(log n) snapshots totalling < 2n slots; retired snapshots
///    are parked until the store is destroyed, which is what makes the
///    reader side safe with zero synchronization.  The eviction clock
///    hand folds in stragglers once per revolution, so the steady state
///    converges to "every entry visible lock-free".
///
/// 3. **Per-peer state behind a per-peer lock.**  All protocol state
///    (`peer_state`) hangs off the entry behind the entry's own spinlock;
///    two peers never serialize on each other.  Lock order is strictly
///    shard -> entry -> ring bucket; no path acquires a shard lock while
///    holding an entry lock.
///
/// **Idle eviction.**  An entry whose peer holds no protocol state (no
/// unacked/held frames, no deferred jobs, no pending ack, breaker
/// closed) can be demoted to a compact `peer_tombstone` — the few fields
/// that exactly-once delivery and epoch fencing must remember: the next
/// send sequence, the cumulative receive sequence, the stream generation
/// and both incarnation epochs.  Rehydration on next contact restores a
/// full `peer_state` from the tombstone transparently; an idle peer
/// costs tens of bytes instead of a full protocol block.
///
/// **Due-time ring.**  Per-peer deadlines (delayed acks, retransmit
/// timeouts, heartbeats, dead-peer probes, deferred-send service) are
/// registered in a bucketed time ring keyed by absolute nanoseconds.
/// Each entry tracks its earliest registered wake-up in one atomic;
/// re-registration is a CAS-min, pops are idempotent (the service
/// callback recomputes real deadlines from peer state), and one drainer
/// at a time walks only the buckets whose time has come — amortized
/// O(active peers) instead of O(all peers) per background tick.

#include <coal/common/cacheline.hpp>
#include <coal/common/pressure.hpp>
#include <coal/common/spinlock.hpp>
#include <coal/parcel/membership.hpp>
#include <coal/parcel/parcel.hpp>

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

namespace coal::parcel {

/// Tunables of the sharded peer store's idle-eviction sweeper.
struct peer_store_params
{
    /// Demote a state-free peer to a tombstone after this long without
    /// *data* traffic (heartbeats and probes do not count — otherwise
    /// two mutually-heartbeating idle peers would keep each other
    /// resident forever).  0 disables eviction.  Dead peers linger 8x
    /// as long so several rejoin-probe cycles run before the tombstone
    /// takes over (a restarted peer still rehydrates the link by
    /// contacting us with its higher epoch).
    std::int64_t evict_idle_us = 2'000'000;

    /// Entries the clock-hand sweeper examines per step.
    std::size_t evict_scan_budget = 64;

    /// Minimum interval between sweeper steps.
    std::int64_t evict_scan_interval_us = 500;
};

/// A batch of parcels bound for one destination as one wire message.
struct send_job
{
    std::uint32_t dst;
    std::vector<parcel> parcels;
    /// Estimated wire bytes; stamped when the job is deferred so the
    /// release path need not re-measure it.
    std::size_t bytes = 0;
};

/// An outbound frame awaiting acknowledgement; the encoded frame is
/// retained *by reference* (its fragments are refcount-shared with
/// nothing else that mutates them), so registering it for retransmission
/// copies no payload bytes.  Each transmission takes a flattened
/// snapshot under the owning peer's lock — the only point where the
/// patchable ack/sack prefix is both stable and current.
struct unacked_frame
{
    serialization::wire_message frame;
    std::size_t bytes = 0;        ///< wire size, counted in unacked_bytes
    std::uint32_t parcels = 0;    ///< parcel count, for parcels_confirmed
    /// How many of `parcels` this locality forwarded as a node relay
    /// (parcel source != self).  Their acks confirm the relay ledger
    /// (/coal/hierarchy/relay-confirmed), not parcels_confirmed — the
    /// origin already counted them when this relay acked custody.
    std::uint32_t forwarded = 0;
    std::int64_t first_send_ns = 0;
    std::int64_t deadline_ns = 0;
    std::int64_t rto_ns = 0;
    unsigned attempts = 1;
};

/// A sequenced frame parked for reordering.  Held *undecoded* — the
/// parcels are only materialized (by the chunk tasks) once the frame is
/// released in order, so a reordering stall never pays decode for frames
/// it may hold for a long time.
struct held_frame
{
    serialization::shared_buffer payload;
    std::uint32_t count = 0;
};

/// Per-(peer, direction) protocol state, guarded by the owning
/// peer_entry's lock.
struct peer_state
{
    // Sender side.
    std::uint64_t next_seq = 1;
    std::map<std::uint64_t, unacked_frame> unacked;
    double srtt_us = 0.0;
    /// Bumped by every fence.  A send job captures it with its sequence
    /// number; if a fence (death or rejoin) slides in while the frame is
    /// being encoded outside the lock, the stale generation is detected
    /// at registration time and the job fails as peer_failed instead of
    /// injecting a frame of the fenced stream — with its already-recycled
    /// sequence number and stale epoch stamp — into the fresh one.
    std::uint64_t stream_gen = 0;
    // Receiver side.
    std::uint64_t cum_received = 0;
    std::map<std::uint64_t, held_frame> held;    // out of order
    bool ack_pending = false;
    std::int64_t ack_deadline_ns = 0;
    // Per-link circuit breaker.
    bool breaker_open = false;
    // Flow control (sender side).
    std::uint64_t unacked_bytes = 0;    ///< wire bytes in `unacked`
    std::uint64_t credit_window = 0;    ///< latest grant from the peer
    bool has_credit = false;    ///< false until the first advertisement
    std::deque<send_job> deferred;      ///< jobs awaiting window space
    std::uint64_t deferred_bytes = 0;
    /// When continuous credit starvation on this link began (0 = not
    /// starving).  Feeds the slow-peer breaker trip.
    std::int64_t starved_since_ns = 0;
    pressure_state link_pressure = pressure_state::ok;
    // Membership / failure detection.
    /// The peer's incarnation epoch as last observed (0 = never heard
    /// from it; senders then assume the initial epoch, 1).  For a dead
    /// peer this is the *fenced* epoch: frames stamped with it stay
    /// quarantined until the peer rejoins under a higher one.
    std::uint32_t epoch = 0;
    /// OUR incarnation epoch this link's send stream is bound to.
    /// Outgoing frames stamp this — not the live self epoch — so that
    /// (src_epoch, seq) consistency is an invariant local to this peer's
    /// lock: an epoch refutation can then fence links one at a time
    /// without a stop-the-world lock, and a send racing the sweep stamps
    /// the OLD epoch on the OLD stream (the receiver fences it as a
    /// ghost) instead of the new epoch on a stale sequence number.
    /// Updated at hydration and by every fence.
    std::uint32_t link_epoch = 0;
    peer_status status = peer_status::alive;
    std::int64_t last_heard_ns = 0;    ///< last valid frame from the peer
    std::int64_t last_sent_ns = 0;     ///< last frame we emitted to it
    std::int64_t last_probe_ns = 0;    ///< last dead-peer rejoin probe
    /// EWMA of inter-arrival gaps, the phi-accrual denominator.
    double ewma_interarrival_us = 0.0;
};

/// What must survive eviction for exactly-once delivery and epoch
/// fencing to stay correct across a demote/rehydrate cycle.
struct peer_tombstone
{
    /// Next send sequence: without it a rehydrated stream would re-issue
    /// sequence numbers the peer's cumulative-ack dedup already covers,
    /// and every fresh frame would be suppressed as a duplicate.
    std::uint64_t next_seq = 1;
    /// Cumulative receive sequence: without it a retransmit arriving
    /// after rehydration would replay frames we already executed.
    std::uint64_t cum_received = 0;
    /// Voids send jobs that drew a sequence number before an eviction +
    /// fence interleaving (same re-check as a live fence).
    std::uint64_t stream_gen = 0;
    std::uint32_t epoch = 0;         ///< peer incarnation (ghost fencing)
    std::uint32_t link_epoch = 0;    ///< our incarnation bound to the stream
    peer_status status = peer_status::alive;
};

/// One peer's slot: a spinlock, the full state (null while evicted), the
/// tombstone, and the due-ring registration.  Entries are created once
/// and never destroyed while the store lives; `lock` guards every
/// non-atomic member.
class peer_entry : public std::enable_shared_from_this<peer_entry>
{
public:
    explicit peer_entry(std::uint32_t peer_id) noexcept
      : id(peer_id)
    {
    }

    peer_entry(peer_entry const&) = delete;
    peer_entry& operator=(peer_entry const&) = delete;

    std::uint32_t const id;
    mutable spinlock lock;
    std::unique_ptr<peer_state> live;    ///< null while evicted
    peer_tombstone tomb;    ///< authoritative while !live && tombstoned
    /// Distinguishes a real tombstone from a virgin/crash-reset slot.
    bool tombstoned = false;
    /// Last *data* contact (send registration, sequenced receive,
    /// hydration, fence).  Heartbeats and probes deliberately excluded.
    std::int64_t last_activity_ns = 0;
    /// Earliest due-ring registration (INT64_MAX = none).  CAS-min by
    /// schedulers, cleared by the drainer before servicing.
    std::atomic<std::int64_t> ring_due{
        std::numeric_limits<std::int64_t>::max()};
};

class peer_store
{
public:
    static constexpr std::size_t shard_count = 64;    // power of two

    /// One shard's published read index: (id, entry) sorted by id.
    /// Immutable after publication; entry pointers stay valid for the
    /// store's lifetime because entries are never erased.
    struct snapshot
    {
        std::vector<std::pair<std::uint32_t, peer_entry*>> entries;
    };

    peer_store() = default;
    peer_store(peer_store const&) = delete;
    peer_store& operator=(peer_store const&) = delete;

    /// Lock-free-on-read lookup: binary search of the published
    /// snapshot; a definitive miss (snapshot covers the whole shard)
    /// returns null without any lock, otherwise the shard map decides.
    [[nodiscard]] peer_entry* find(std::uint32_t id) const noexcept;

    /// Find-or-insert.  Hits resolve through the snapshot lock-free;
    /// only a genuine insert takes the shard lock (and republishes the
    /// snapshot under the doubling policy).
    [[nodiscard]] peer_entry& get_or_create(std::uint32_t id);

    /// Restore full state from the tombstone (or default-construct for a
    /// never-seen peer).  Caller holds e.lock.  `self_epoch` seeds
    /// link_epoch when the tombstone predates membership contact.
    peer_state& hydrate(peer_entry& e, std::uint32_t self_epoch);

    /// Demote a live entry to its tombstone.  Caller holds e.lock and
    /// has verified eligibility (evictable() plus idle policy) — this
    /// only performs the mechanical swap and bookkeeping.
    void demote(peer_entry& e);

    /// Crash reset: drop live state AND the tombstone (the incarnation's
    /// memory dies with it).  Caller holds e.lock and has already fenced
    /// the live state.
    void reset(peer_entry& e);

    /// Protocol-state emptiness — the safety half of eviction
    /// eligibility (the idle-time policy half is the caller's).
    [[nodiscard]] static bool evictable(peer_state const& st) noexcept
    {
        return st.unacked.empty() && st.held.empty() &&
            st.deferred.empty() && !st.ack_pending && !st.breaker_open &&
            st.unacked_bytes == 0 && st.deferred_bytes == 0;
    }

    /// Copy one shard's entries out under its lock (diagnostic and
    /// fence-all sweeps; never the hot path).
    void collect_shard(std::size_t shard_index,
        std::vector<std::shared_ptr<peer_entry>>& out) const;

    /// The shard's current published snapshot (may lag the map; the
    /// clock hand calls refresh_snapshot once per revolution to fold in
    /// stragglers).  Null until the first entry is inserted.
    [[nodiscard]] snapshot const* shard_snapshot(
        std::size_t shard_index) const noexcept;

    /// Republish the shard's snapshot if entries were added since the
    /// last publication.
    void refresh_snapshot(std::size_t shard_index);

    // Gauges (relaxed; the /net/peers counters read them).
    [[nodiscard]] std::size_t size() const noexcept
    {
        return size_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t active() const noexcept
    {
        return active_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::size_t tombstoned() const noexcept
    {
        return tombstoned_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t evictions() const noexcept
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t rehydrations() const noexcept
    {
        return rehydrations_.load(std::memory_order_relaxed);
    }
    /// Entries in the fullest shard — a skew diagnostic.  O(shards).
    [[nodiscard]] std::size_t shard_max_occupancy() const noexcept;

private:
    struct alignas(cache_line_size) shard
    {
        mutable spinlock lock;
        std::unordered_map<std::uint32_t, std::shared_ptr<peer_entry>> map;
        std::atomic<snapshot const*> snap{nullptr};
        /// Entry count, readable without the lock (the definitive-miss
        /// fast path compares it against the snapshot's size).
        std::atomic<std::size_t> count{0};
        /// Map size at the last publication (guarded by lock).
        std::size_t published = 0;
        /// Every snapshot ever published, kept alive until destruction:
        /// readers hold raw pointers with no synchronization, and the
        /// doubling policy bounds the total at O(2n) slots.
        std::vector<std::unique_ptr<snapshot const>> retired;
    };

    [[nodiscard]] static std::size_t shard_of(std::uint32_t id) noexcept
    {
        // Golden-ratio mix: locality ids are typically dense small
        // integers, which would also distribute fine, but benches use
        // synthetic ranges.
        return (id * 0x9e3779b9u) >> 16 & (shard_count - 1);
    }

    void publish_locked(shard& s);

    std::array<shard, shard_count> shards_;
    std::atomic<std::size_t> size_{0};
    std::atomic<std::size_t> active_{0};
    std::atomic<std::size_t> tombstoned_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> rehydrations_{0};
};

/// Bucketed absolute-time ring for per-peer deadlines.  ~134 ms horizon
/// (1024 buckets x 128 us); items due beyond the horizon simply survive
/// bucket revisits until their time comes.  Pops are idempotent — the
/// service callback recomputes real deadlines from peer state and the
/// drainer re-arms the returned next-due — so a duplicate registration
/// costs one cheap no-op service, never a missed deadline.
///
/// Only the drainer places items into buckets: schedule() parks the
/// registration on a staging list, and drain() either services it on
/// the spot (already due) or files it ahead of the cursor.  Bucketing
/// at the schedule() call site looks cheaper but is wrong — a deadline
/// in the past (service re-arms compute real deadlines, which expire
/// under load) lands *behind* the cursor and strands for a full ring
/// revolution, and while its stale registration holds `ring_due` low,
/// later CAS-min schedules push no item at all and strand with it.
class due_ring
{
public:
    static constexpr std::size_t bucket_count = 1024;    // power of two
    static constexpr std::int64_t tick_ns = 1 << 17;     // ~131 us

    due_ring() = default;
    due_ring(due_ring const&) = delete;
    due_ring& operator=(due_ring const&) = delete;

    /// Register a wake-up at absolute `due_ns`.  CAS-min against the
    /// entry's earliest registration: only a strictly earlier deadline
    /// inserts a new item, so mutation-site callers can re-arm
    /// conservatively without flooding the ring.
    void schedule(std::shared_ptr<peer_entry> entry, std::int64_t due_ns);

    /// Drain every bucket between the last drain and `now`, servicing
    /// items whose time has come.  `service(peer_entry&)` returns the
    /// entry's next absolute deadline (INT64_MAX = none), which is
    /// re-armed automatically.  Single-drainer via try-lock: concurrent
    /// callers return false immediately and do other work.
    template <typename Service>
    bool drain(std::int64_t now, Service&& service)
    {
        if (!drain_lock_.try_lock())
            return false;
        bool any = false;
        std::vector<item> due;

        // File (or service) everything staged since the last drain.
        // Servicing due items here — not merely filing them — matters:
        // a deadline as short as a delayed ack must not wait an extra
        // drain period between being staged and being swept.
        auto const process_staged = [&]() -> bool {
            {
                std::lock_guard lock(staging_lock_);
                due.swap(staged_);
            }
            bool serviced = false;
            for (auto& it : due)
            {
                if (it.due_ns <= now)
                {
                    service_item(it, service);
                    serviced = true;
                    any = true;
                }
                else
                {
                    bucket& b = buckets_[static_cast<std::size_t>(
                                             it.due_ns / tick_ns) &
                        (bucket_count - 1)];
                    std::lock_guard lock(b.lock);
                    b.items.push_back(std::move(it));
                }
            }
            due.clear();
            return serviced;
        };
        process_staged();

        std::int64_t const end_tick = now / tick_ns;
        std::int64_t start_tick = cursor_ == 0 ? end_tick : cursor_ / tick_ns;
        if (end_tick - start_tick >=
            static_cast<std::int64_t>(bucket_count))
            start_tick = end_tick - bucket_count + 1;
        for (std::int64_t t = start_tick; t <= end_tick; ++t)
        {
            bucket& b = buckets_[static_cast<std::size_t>(t) &
                (bucket_count - 1)];
            {
                std::lock_guard lock(b.lock);
                for (std::size_t i = 0; i != b.items.size();)
                {
                    if (b.items[i].due_ns <= now)
                    {
                        due.push_back(std::move(b.items[i]));
                        b.items[i] = std::move(b.items.back());
                        b.items.pop_back();
                    }
                    else
                    {
                        ++i;
                    }
                }
            }
            for (auto& it : due)
            {
                service_item(it, service);
                any = true;
            }
            due.clear();
        }
        // Catch registrations staged during the sweep (concurrent
        // receive threads scheduling acks, service re-arms landing in
        // the past): anything already due is serviced in THIS drain.
        // Bounded — each pass only recurs if it serviced something, and
        // sane services re-arm into the future — but capped anyway.
        for (int pass = 0; pass != 4 && process_staged(); ++pass)
        {
        }
        cursor_ = now;
        drain_lock_.unlock();
        return any;
    }

    /// Items currently parked across all buckets (test/diagnostic).
    [[nodiscard]] std::size_t queued() const;

private:
    struct item
    {
        std::int64_t due_ns = 0;
        std::shared_ptr<peer_entry> entry;
    };

    struct alignas(cache_line_size) bucket
    {
        mutable spinlock lock;
        std::vector<item> items;
    };

    /// Clear the registration so later deadlines re-arm (a racing
    /// schedule() that already lowered it keeps its own earlier item,
    /// and servicing twice is harmless), run the callback, re-arm.
    template <typename Service>
    void service_item(item& it, Service& service)
    {
        std::int64_t expected = it.due_ns;
        it.entry->ring_due.compare_exchange_strong(expected,
            std::numeric_limits<std::int64_t>::max(),
            std::memory_order_acq_rel);
        std::int64_t const next = service(*it.entry);
        if (next != std::numeric_limits<std::int64_t>::max())
            schedule(std::move(it.entry), next);
    }

    std::array<bucket, bucket_count> buckets_;
    spinlock drain_lock_;
    /// New registrations land here; the drainer alone moves them into
    /// buckets, so nothing is ever filed behind the cursor.
    mutable spinlock staging_lock_;
    std::vector<item> staged_;
    /// Last drained time; buckets between it and `now` are visited next
    /// (guarded by drain_lock_).
    std::int64_t cursor_ = 0;
};

}    // namespace coal::parcel
