#include <coal/parcel/action_registry.hpp>

#include <coal/common/assert.hpp>

#include <stdexcept>

namespace coal::parcel {

action_registry& action_registry::instance()
{
    static action_registry registry;
    return registry;
}

action_id action_registry::register_action(
    std::string name, action_invoker invoker)
{
    action_id const id = hash_action_name(name);
    action_id const response_id = make_response_id(id);

    std::lock_guard lock(mutex_);

    if (auto it = entries_.find(id); it != entries_.end())
    {
        if (it->second.name == name)
            return id;    // benign re-registration
        throw std::runtime_error("action id collision between '" + name +
            "' and '" + it->second.name + "'");
    }

    entry request;
    request.id = id;
    request.name = name;
    request.invoke = std::move(invoker);
    entries_.emplace(id, std::move(request));

    // The generic response invoker: deliver the serialized result to the
    // promise the original caller registered.
    entry response;
    response.id = response_id;
    response.name = name + "::response";
    response.is_response = true;
    response.invoke = [](invocation_context& ctx, parcel&& p) {
        ctx.complete_promise(p.continuation, std::move(p.arguments));
    };
    entries_.emplace(response_id, std::move(response));

    return id;
}

action_registry::entry const* action_registry::find(action_id id) const
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(id);
    return it == entries_.end() ? nullptr : &it->second;
}

action_registry::entry const* action_registry::find_by_name(
    std::string const& name) const
{
    std::lock_guard lock(mutex_);
    auto it = entries_.find(hash_action_name(name));
    return it == entries_.end() ? nullptr : &it->second;
}

std::uint64_t action_registry::wire_digest() const
{
    std::lock_guard lock(mutex_);
    // XOR of per-entry hashes: commutative, so registration order (which
    // static initialization does not pin down) cannot change the digest.
    std::uint64_t digest = 0x636f616c2d776972ull;    // "coal-wir"
    for (auto const& [id, e] : entries_)
    {
        std::uint64_t h = hash_action_name(e.name) * 0x9e3779b97f4a7c15ull;
        h ^= id + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
        digest ^= h;
    }
    return digest;
}

std::vector<std::string> action_registry::action_names() const
{
    std::lock_guard lock(mutex_);
    std::vector<std::string> names;
    for (auto const& [id, e] : entries_)
    {
        if (!e.is_response)
            names.push_back(e.name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

}    // namespace coal::parcel
