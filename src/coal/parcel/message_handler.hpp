#pragma once

/// \file message_handler.hpp
/// The seam between the parcelhandler and optional per-action message
/// handling plugins — where HPX mounts its coalescing plugin.
///
/// When an action has a message handler installed, outbound parcels for
/// that action are diverted to it instead of being sent one per message;
/// the handler decides when to hand batches back for transmission.

#include <coal/parcel/parcel.hpp>

#include <cstddef>

namespace coal::parcel {

class message_handler
{
public:
    virtual ~message_handler() = default;

    /// Take ownership of an outbound parcel.
    virtual void enqueue(parcel&& p) = 0;

    /// Force-send everything queued (quiesce, shutdown, phase barriers).
    virtual void flush() = 0;

    /// Parcels currently held back (all destinations).
    [[nodiscard]] virtual std::size_t queued_parcels() const = 0;
};

}    // namespace coal::parcel
