#include <coal/timing/busy_work.hpp>

#include <coal/common/stopwatch.hpp>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

namespace {

using coal::stopwatch;
using coal::timing::spin_flops;
using coal::timing::spin_for_ns;
using coal::timing::spin_for_us;

TEST(BusyWork, SpinDurationIsAtLeastRequested)
{
    stopwatch sw;
    spin_for_us(500);
    EXPECT_GE(sw.elapsed_us(), 500);
}

TEST(BusyWork, ZeroAndNegativeAreNoops)
{
    stopwatch sw;
    spin_for_us(0);
    spin_for_us(-5.0);
    spin_for_ns(-100);
    EXPECT_LT(sw.elapsed_us(), 200);
}

TEST(BusyWork, SpinScalesRoughlyLinearly)
{
    // Best-of-N: spin_for_us guarantees a lower bound, but a context
    // switch under load (ctest -j) can inflate a single short sample.
    auto best_of = [](double us) {
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (int i = 0; i != 5; ++i)
        {
            stopwatch sw;
            spin_for_us(us);
            best = std::min(best, sw.elapsed_ns());
        }
        return best;
    };

    auto const short_ns = best_of(200);
    auto const long_ns = best_of(2000);

    EXPECT_GT(long_ns, short_ns * 5);
}

TEST(BusyWork, FlopsReturnsFiniteDeterministicValue)
{
    double const a = spin_flops(10000);
    double const b = spin_flops(10000);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 1.0);
    EXPECT_LT(a, 1e12);
}

TEST(BusyWork, FlopsTimeGrowsWithCount)
{
    // Best-of-N: a single sample is easily inflated by a context switch
    // when the test machine is loaded (e.g. ctest -j).
    auto best_of = [](std::size_t flops) {
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (int i = 0; i != 5; ++i)
        {
            stopwatch sw;
            (void) spin_flops(flops);
            best = std::min(best, sw.elapsed_ns());
        }
        return best;
    };

    auto const small = best_of(100000);
    auto const large = best_of(2000000);

    EXPECT_GT(large, small * 4);
}

}    // namespace
