#include <coal/timing/busy_work.hpp>

#include <coal/common/stopwatch.hpp>

#include <gtest/gtest.h>

namespace {

using coal::stopwatch;
using coal::timing::spin_flops;
using coal::timing::spin_for_ns;
using coal::timing::spin_for_us;

TEST(BusyWork, SpinDurationIsAtLeastRequested)
{
    stopwatch sw;
    spin_for_us(500);
    EXPECT_GE(sw.elapsed_us(), 500);
}

TEST(BusyWork, ZeroAndNegativeAreNoops)
{
    stopwatch sw;
    spin_for_us(0);
    spin_for_us(-5.0);
    spin_for_ns(-100);
    EXPECT_LT(sw.elapsed_us(), 200);
}

TEST(BusyWork, SpinScalesRoughlyLinearly)
{
    stopwatch sw;
    spin_for_us(200);
    auto const short_ns = sw.elapsed_ns();

    sw.restart();
    spin_for_us(2000);
    auto const long_ns = sw.elapsed_ns();

    EXPECT_GT(long_ns, short_ns * 5);
}

TEST(BusyWork, FlopsReturnsFiniteDeterministicValue)
{
    double const a = spin_flops(10000);
    double const b = spin_flops(10000);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 1.0);
    EXPECT_LT(a, 1e12);
}

TEST(BusyWork, FlopsTimeGrowsWithCount)
{
    stopwatch sw;
    (void) spin_flops(100000);
    auto const small = sw.elapsed_ns();

    sw.restart();
    (void) spin_flops(2000000);
    auto const large = sw.elapsed_ns();

    EXPECT_GT(large, small * 4);
}

}    // namespace
