// Deadline timer service — the flush timer of Algorithm 1.  Correct
// cancellation semantics are what prevent double flushes, so they get
// particular attention.

#include <coal/timing/deadline_timer.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

using coal::steady_clock;
using coal::timing::deadline_timer_service;
using coal::timing::timer_id;

TEST(DeadlineTimer, FiresOnce)
{
    deadline_timer_service service;
    std::atomic<int> fired{0};
    service.schedule_after(1000, [&] { ++fired; });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(service.pending(), 0u);
}

TEST(DeadlineTimer, FiresNotBeforeDeadline)
{
    deadline_timer_service service;
    auto const start = steady_clock::now();
    std::atomic<std::int64_t> fire_delay_us{-1};

    service.schedule_after(20000, [&] {
        fire_delay_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                steady_clock::now() - start)
                .count();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_GE(fire_delay_us.load(), 0) << "timer never fired";
    EXPECT_GE(fire_delay_us.load(), 20000);
}

TEST(DeadlineTimer, OrdersByDeadlineNotScheduleOrder)
{
    deadline_timer_service service;
    std::mutex m;
    std::vector<int> order;

    service.schedule_after(30000, [&] {
        std::lock_guard lock(m);
        order.push_back(2);
    });
    service.schedule_after(5000, [&] {
        std::lock_guard lock(m);
        order.push_back(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(80));

    std::lock_guard lock(m);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

TEST(DeadlineTimer, CancelPreventsFiring)
{
    deadline_timer_service service;
    std::atomic<int> fired{0};
    timer_id const id = service.schedule_after(50000, [&] { ++fired; });

    EXPECT_TRUE(service.cancel(id));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_EQ(fired.load(), 0);
    EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(DeadlineTimer, CancelAfterFireReturnsFalse)
{
    deadline_timer_service service;
    std::atomic<int> fired{0};
    timer_id const id = service.schedule_after(500, [&] { ++fired; });

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(fired.load(), 1);
    EXPECT_FALSE(service.cancel(id));
}

TEST(DeadlineTimer, CancelUnknownIdReturnsFalse)
{
    deadline_timer_service service;
    EXPECT_FALSE(service.cancel(timer_id{}));
    EXPECT_FALSE(service.cancel(timer_id{123456}));
}

TEST(DeadlineTimer, ManyTimersAllFire)
{
    deadline_timer_service service;
    constexpr int n = 200;
    std::atomic<int> fired{0};
    for (int i = 0; i != n; ++i)
        service.schedule_after(100 + (i % 50) * 100, [&] { ++fired; });

    for (int spin = 0; spin != 100 && fired.load() != n; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(fired.load(), n);
    EXPECT_EQ(service.stats().fired, static_cast<std::uint64_t>(n));
}

TEST(DeadlineTimer, CallbackMayScheduleAnotherTimer)
{
    deadline_timer_service service;
    std::atomic<int> chain{0};
    service.schedule_after(500, [&] {
        ++chain;
        service.schedule_after(500, [&] { ++chain; });
    });
    for (int spin = 0; spin != 100 && chain.load() != 2; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(chain.load(), 2);
}

TEST(DeadlineTimer, ShutdownDropsPendingTimers)
{
    std::atomic<int> fired{0};
    {
        deadline_timer_service service;
        service.schedule_after(1000000, [&] { ++fired; });    // 1 s away
        service.shutdown();
    }
    EXPECT_EQ(fired.load(), 0);
}

TEST(DeadlineTimer, ScheduleAfterShutdownIsRejected)
{
    deadline_timer_service service;
    service.shutdown();
    timer_id const id = service.schedule_after(100, [] {});
    EXPECT_FALSE(id.valid());
}

TEST(DeadlineTimer, StatsTrackLateness)
{
    deadline_timer_service service;
    std::atomic<int> fired{0};
    for (int i = 0; i != 20; ++i)
    {
        service.schedule_after(2000, [&] { ++fired; });
        while (fired.load() != i + 1)
            std::this_thread::yield();
    }
    auto const stats = service.stats();
    EXPECT_EQ(stats.fired, 20u);
    EXPECT_GE(stats.mean_lateness_us, 0.0);
    EXPECT_GE(stats.max_lateness_us, stats.mean_lateness_us);
}

// Concurrent schedule/cancel storm: exercises the lock discipline between
// the caller side and the timer thread (a coalescing queue under load).
TEST(DeadlineTimer, ConcurrentScheduleCancelStorm)
{
    deadline_timer_service service;
    std::atomic<int> fired{0};
    std::atomic<int> cancelled{0};

    std::vector<std::thread> threads;
    for (int t = 0; t != 3; ++t)
    {
        threads.emplace_back([&] {
            for (int i = 0; i != 500; ++i)
            {
                timer_id const id =
                    service.schedule_after(100 + i % 7, [&] { ++fired; });
                if (i % 2 == 0 && service.cancel(id))
                    ++cancelled;
            }
        });
    }
    for (auto& th : threads)
        th.join();

    // Every timer either fired or was cancelled — no losses, no doubles.
    for (int spin = 0; spin != 200; ++spin)
    {
        if (fired.load() + cancelled.load() == 1500)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(fired.load() + cancelled.load(), 1500);
    auto const stats = service.stats();
    EXPECT_EQ(stats.scheduled, 1500u);
    EXPECT_EQ(stats.fired + stats.cancelled, 1500u);
}

}    // namespace
