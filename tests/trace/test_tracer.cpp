// Tracer unit tests plus integration with the runtime's instrumentation
// points (parcel flow and coalescing flush reasons).

#include <coal/trace/tracer.hpp>

#include <coal/parcel/action.hpp>
#include <coal/runtime/runtime.hpp>
#include <coal/threading/future.hpp>

#include <gtest/gtest.h>

#include <thread>

namespace {

int trace_echo(int x)
{
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(trace_echo, trace_echo_action);

namespace {

using coal::trace::event;
using coal::trace::event_kind;
using coal::trace::tracer;

TEST(Tracer, DisabledRecordsNothing)
{
    tracer t;
    t.record(0, event_kind::parcel_put, 1, 2);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, RecordsInOrder)
{
    tracer t;
    t.enable(64);
    for (std::uint64_t i = 0; i != 10; ++i)
        t.record(3, event_kind::message_sent, i, i * 2);

    auto const events = t.snapshot();
    ASSERT_EQ(events.size(), 10u);
    for (std::uint64_t i = 0; i != 10; ++i)
    {
        EXPECT_EQ(events[i].a, i);
        EXPECT_EQ(events[i].b, i * 2);
        EXPECT_EQ(events[i].locality, 3u);
        EXPECT_EQ(events[i].kind, event_kind::message_sent);
        if (i > 0)
        {
            EXPECT_GE(
                events[i].timestamp_ns, events[i - 1].timestamp_ns);
        }
    }
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldest)
{
    tracer t;
    t.enable(16);    // capacity rounds to 16
    for (std::uint64_t i = 0; i != 100; ++i)
        t.record(0, event_kind::parcel_put, i);

    auto const events = t.snapshot();
    ASSERT_EQ(events.size(), 16u);
    // The retained events are the newest 16.
    for (auto const& e : events)
        EXPECT_GE(e.a, 84u);
    EXPECT_EQ(t.recorded(), 100u);
    EXPECT_EQ(t.dropped(), 84u);
}

TEST(Tracer, CapacityRoundsToPowerOfTwo)
{
    tracer t;
    t.enable(100);    // -> 128
    for (std::uint64_t i = 0; i != 128; ++i)
        t.record(0, event_kind::parcel_put, i);
    EXPECT_EQ(t.snapshot().size(), 128u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, EnableResetsBuffer)
{
    tracer t;
    t.enable(16);
    t.record(0, event_kind::parcel_put, 1);
    t.enable(16);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.snapshot().empty());
}

TEST(Tracer, ConcurrentWritersLoseNothingUnderCapacity)
{
    tracer t;
    t.enable(1 << 16);
    constexpr int threads = 4;
    constexpr int per_thread = 5000;

    std::vector<std::thread> writers;
    for (int w = 0; w != threads; ++w)
    {
        writers.emplace_back([&t, w] {
            for (int i = 0; i != per_thread; ++i)
                t.record(static_cast<std::uint32_t>(w),
                    event_kind::parcel_put, static_cast<std::uint64_t>(i));
        });
    }
    for (auto& w : writers)
        w.join();

    EXPECT_EQ(t.recorded(),
        static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(t.snapshot().size(),
        static_cast<std::size_t>(threads) * per_thread);
}

TEST(Tracer, FormatEventIsReadable)
{
    event e;
    e.timestamp_ns = 12345;
    e.locality = 2;
    e.kind = event_kind::flush_timeout;
    e.a = 0xabc;
    e.b = 7;
    auto const s = coal::trace::format_event(e);
    EXPECT_NE(s.find("flush-timeout"), std::string::npos);
    EXPECT_NE(s.find("L2"), std::string::npos);
    EXPECT_NE(s.find("abc"), std::string::npos);
}

TEST(Tracer, EveryKindHasAName)
{
    for (int k = 0; k <= static_cast<int>(event_kind::message_received); ++k)
    {
        EXPECT_STRNE(
            coal::trace::to_string(static_cast<event_kind>(k)), "?");
    }
}

// Integration: the runtime's instrumentation points produce a coherent
// parcel-flow trace.
TEST(TracerIntegration, ParcelFlowEventsAppear)
{
    auto& t = tracer::global();
    t.enable(1 << 14);

    {
        coal::runtime_config cfg;
        cfg.num_localities = 2;
        cfg.use_loopback = true;
        cfg.apply_coalescing_defaults = false;
        coal::runtime rt(cfg);
        rt.enable_coalescing("trace_echo_action", {8, 2000});

        rt.run_on(0, [](coal::locality& here) {
            auto const other = here.find_remote_localities().front();
            std::vector<coal::threading::future<int>> futures;
            for (int i = 0; i != 64; ++i)
                futures.push_back(here.async<trace_echo_action>(other, i));
            coal::threading::wait_all(futures);
        });
        rt.stop();
    }
    t.disable();

    std::uint64_t puts = 0, queued = 0, size_flushes = 0, sent = 0,
                  received = 0, executed = 0;
    for (auto const& e : t.snapshot())
    {
        switch (e.kind)
        {
        case event_kind::parcel_put:
            ++puts;
            break;
        case event_kind::coalescing_queued:
            ++queued;
            break;
        case event_kind::flush_size:
            ++size_flushes;
            break;
        case event_kind::message_sent:
            ++sent;
            break;
        case event_kind::message_received:
            ++received;
            break;
        case event_kind::parcel_executed:
            ++executed;
            break;
        default:
            break;
        }
    }

    // 64 requests + 64 responses put and queued; 8-parcel batches.
    EXPECT_EQ(puts, 128u);
    EXPECT_EQ(queued, 128u);
    EXPECT_EQ(size_flushes, 16u);
    EXPECT_EQ(sent, received);
    EXPECT_EQ(sent, 16u);
    EXPECT_EQ(executed, 128u);
}

}    // namespace
