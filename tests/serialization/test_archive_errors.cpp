// Failure-injection tests: truncated and corrupt buffers must raise
// serialization_error, never crash or over-read.

#include <coal/serialization/archive.hpp>

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::input_archive;
using coal::serialization::serialization_error;
using coal::serialization::to_bytes;

TEST(ArchiveErrors, ReadingFromEmptyBufferThrows)
{
    byte_buffer empty;
    EXPECT_THROW((void) from_bytes<std::uint64_t>(empty), serialization_error);
}

TEST(ArchiveErrors, TruncatedScalarThrows)
{
    auto buf = to_bytes(std::uint64_t{42}).to_vector();
    buf.resize(4);
    EXPECT_THROW((void) from_bytes<std::uint64_t>(buf), serialization_error);
}

TEST(ArchiveErrors, TruncatedStringBodyThrows)
{
    auto buf = to_bytes(std::string("hello world")).to_vector();
    buf.resize(buf.size() - 3);
    EXPECT_THROW((void) from_bytes<std::string>(buf), serialization_error);
}

TEST(ArchiveErrors, HugeDeclaredStringLengthThrows)
{
    // Length prefix claims far more bytes than exist.
    byte_buffer buf = to_bytes(std::uint64_t{1ull << 40}).to_vector();
    buf.push_back('x');
    EXPECT_THROW((void) from_bytes<std::string>(buf), serialization_error);
}

TEST(ArchiveErrors, HugeDeclaredVectorLengthThrows)
{
    byte_buffer buf = to_bytes(std::uint64_t{1ull << 50}).to_vector();
    EXPECT_THROW((void) from_bytes<std::vector<double>>(buf), serialization_error);
    EXPECT_THROW(
        (void) from_bytes<std::vector<std::string>>(buf), serialization_error);
}

TEST(ArchiveErrors, CorruptOptionalFlagThrows)
{
    byte_buffer buf;
    buf.push_back(7);    // neither 0 nor 1
    EXPECT_THROW((void) from_bytes<std::optional<int>>(buf), serialization_error);
}

TEST(ArchiveErrors, TruncatedVectorElementThrows)
{
    auto buf = to_bytes(std::vector<std::string>{"aaa", "bbb"}).to_vector();
    buf.resize(buf.size() - 1);
    EXPECT_THROW(
        (void) from_bytes<std::vector<std::string>>(buf), serialization_error);
}

TEST(ArchiveErrors, ExceptionLeavesNoUndefinedBehaviourOnRetry)
{
    auto good = to_bytes(std::string("payload")).to_vector();
    auto bad = good;
    bad.resize(bad.size() - 2);

    EXPECT_THROW((void) from_bytes<std::string>(bad), serialization_error);
    // The good buffer still decodes fine afterwards.
    EXPECT_EQ(from_bytes<std::string>(good), "payload");
}

TEST(ArchiveErrors, BorrowBeyondEndThrows)
{
    byte_buffer buf{1, 2, 3};
    input_archive ia(buf);
    EXPECT_NO_THROW(ia.borrow_bytes(3));
    EXPECT_THROW(ia.borrow_bytes(1), serialization_error);
}

}    // namespace
