// Property-style parameterized sweeps: random payloads of varying sizes
// must round-trip bit-exactly, and the encoded size must follow the
// documented wire format.

#include <coal/serialization/archive.hpp>

#include <gtest/gtest.h>

#include <complex>
#include <random>
#include <string>
#include <vector>

namespace {

using coal::serialization::from_bytes;
using coal::serialization::to_bytes;

class VectorRoundTrip : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(VectorRoundTrip, DoublesBitExact)
{
    std::size_t const n = GetParam();
    std::mt19937_64 rng(n * 2654435761u + 1);
    std::uniform_real_distribution<double> dist(-1e12, 1e12);

    std::vector<double> v(n);
    for (auto& x : v)
        x = dist(rng);

    auto const buf = to_bytes(v);
    // Wire format: u64 count + n * 8 bytes.
    EXPECT_EQ(buf.size(), 8 + n * sizeof(double));
    EXPECT_EQ(from_bytes<std::vector<double>>(buf), v);
}

TEST_P(VectorRoundTrip, ComplexPayloadLikeParquet)
{
    std::size_t const n = GetParam();
    std::mt19937_64 rng(n + 99);
    std::uniform_real_distribution<double> dist(-10.0, 10.0);

    std::vector<std::complex<double>> v(n);
    for (auto& x : v)
        x = {dist(rng), dist(rng)};

    EXPECT_EQ(from_bytes<std::vector<std::complex<double>>>(to_bytes(v)), v);
}

TEST_P(VectorRoundTrip, RandomStringsRoundTrip)
{
    std::size_t const n = GetParam() % 257;    // keep the slow path bounded
    std::mt19937_64 rng(n * 31 + 7);
    std::uniform_int_distribution<int> len(0, 64);
    std::uniform_int_distribution<int> ch(0, 255);

    std::vector<std::string> v(n);
    for (auto& s : v)
    {
        s.resize(static_cast<std::size_t>(len(rng)));
        for (auto& c : s)
            c = static_cast<char>(ch(rng));
    }
    EXPECT_EQ(from_bytes<std::vector<std::string>>(to_bytes(v)), v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, VectorRoundTrip,
    ::testing::Values(0, 1, 2, 3, 7, 16, 64, 255, 256, 257, 1024, 4096,
        65536));

// Mixed random tuples: exercises composition of all the built-in
// serializers at once.
class TupleRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TupleRoundTrip, MixedPayload)
{
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<std::int64_t> ints(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max());
    std::uniform_real_distribution<double> reals(-1e6, 1e6);
    std::uniform_int_distribution<int> small(0, 40);

    using payload = std::tuple<std::int64_t, double,
        std::complex<double>, std::string, std::vector<std::uint32_t>,
        std::optional<std::pair<int, std::string>>>;

    std::string s(static_cast<std::size_t>(small(rng)), '?');
    for (auto& c : s)
        c = static_cast<char>('a' + small(rng) % 26);

    std::vector<std::uint32_t> nums(static_cast<std::size_t>(small(rng)));
    for (auto& x : nums)
        x = static_cast<std::uint32_t>(ints(rng));

    std::optional<std::pair<int, std::string>> opt;
    if (small(rng) % 2)
        opt = {small(rng), s + "!"};

    payload const original{ints(rng), reals(rng), {reals(rng), reals(rng)},
        s, nums, opt};
    EXPECT_EQ(from_bytes<payload>(to_bytes(original)), original);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TupleRoundTrip, ::testing::Range(0u, 25u));

// Concatenation property: serializing A then B into one buffer and
// reading A then B must be identical to separate round trips — this is
// exactly what message framing does with parcel images.
class ConcatenationProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ConcatenationProperty, FramingComposition)
{
    std::mt19937_64 rng(GetParam() * 7919);
    std::uniform_int_distribution<int> len(0, 100);

    std::vector<double> a(static_cast<std::size_t>(len(rng)), 1.5);
    std::string b(static_cast<std::size_t>(len(rng)), 'q');

    coal::serialization::output_archive oa;
    oa & a & b;
    auto const buf = oa.detach();

    coal::serialization::input_archive ia(buf);
    std::vector<double> a2;
    std::string b2;
    ia & a2 & b2;

    EXPECT_EQ(a2, a);
    EXPECT_EQ(b2, b);
    EXPECT_EQ(ia.remaining(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConcatenationProperty, ::testing::Range(0u, 10u));

}    // namespace
