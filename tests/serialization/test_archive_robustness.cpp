// Adversarial-input robustness: deeply nested payloads must round-trip,
// and *every* truncation or bit-flip of a valid encoding must either
// decode to some value or throw serialization_error — never crash, hang
// or read out of bounds.

#include <coal/serialization/archive.hpp>

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <tuple>
#include <vector>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::serialization_error;
using coal::serialization::to_bytes;

using nested_payload = std::map<std::string,
    std::vector<std::optional<std::tuple<std::int64_t, std::string,
        std::vector<double>>>>>;

nested_payload make_nested(unsigned seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> small(0, 6);

    nested_payload out;
    int const keys = 1 + small(rng);
    for (int k = 0; k != keys; ++k)
    {
        std::string key(1 + static_cast<std::size_t>(small(rng)), 'k');
        key += static_cast<char>('a' + k);
        auto& list = out[key];
        int const items = small(rng);
        for (int i = 0; i != items; ++i)
        {
            if (small(rng) == 0)
            {
                list.emplace_back(std::nullopt);
                continue;
            }
            std::vector<double> xs(static_cast<std::size_t>(small(rng)));
            for (auto& x : xs)
                x = static_cast<double>(small(rng)) * 1.5;
            list.emplace_back(std::tuple{
                static_cast<std::int64_t>(small(rng)) - 3,
                std::string(static_cast<std::size_t>(small(rng)), 'v'), xs});
        }
    }
    return out;
}

class NestedRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NestedRoundTrip, Exact)
{
    auto const original = make_nested(GetParam());
    EXPECT_EQ(from_bytes<nested_payload>(to_bytes(original)), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedRoundTrip, ::testing::Range(0u, 10u));

// Exhaustive truncation: decoding any strict prefix must throw
// serialization_error (the format has no trailing-optional parts), and
// the full buffer must decode.
TEST(ArchiveRobustness, EveryTruncationThrowsCleanly)
{
    auto const original = make_nested(1234);
    byte_buffer const wire = to_bytes(original).to_vector();
    ASSERT_GT(wire.size(), 0u);

    for (std::size_t cut = 0; cut != wire.size(); ++cut)
    {
        byte_buffer truncated(wire.begin(),
            wire.begin() + static_cast<std::ptrdiff_t>(cut));
        EXPECT_THROW((void) from_bytes<nested_payload>(truncated),
            serialization_error)
            << "prefix of " << cut << " bytes decoded without error";
    }
    EXPECT_EQ(from_bytes<nested_payload>(wire), original);
}

// Bit flips: every single-bit corruption either decodes to *some* value
// (the flip hit payload bytes) or throws serialization_error (the flip
// hit a length/flag) — undefined behaviour (caught by asan/ubsan presets)
// and uncontrolled exceptions are both failures.
TEST(ArchiveRobustness, EveryBitFlipIsContained)
{
    using payload =
        std::vector<std::tuple<std::string, std::optional<std::uint32_t>>>;
    payload const original{
        {"alpha", 7u}, {"", std::nullopt}, {"gamma-long-enough", 0u}};
    byte_buffer const wire = to_bytes(original).to_vector();

    for (std::size_t byte = 0; byte != wire.size(); ++byte)
    {
        for (int bit = 0; bit != 8; ++bit)
        {
            byte_buffer corrupted = wire;
            corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
            try
            {
                auto const decoded = from_bytes<payload>(corrupted);
                (void) decoded;
            }
            catch (serialization_error const&)
            {
                // fine: corruption detected
            }
            // anything else (std::bad_alloc from a lying length, segfault,
            // uncaught type) fails the test / trips the sanitizer presets
        }
    }
    SUCCEED();
}

// Random multi-byte corruption on a larger frame, same containment
// property, different corruption shapes (runs, swaps, zeroing).
TEST(ArchiveRobustness, RandomCorruptionIsContained)
{
    auto const original = make_nested(99);
    byte_buffer const wire = to_bytes(original).to_vector();
    std::mt19937_64 rng(2026);
    std::uniform_int_distribution<std::size_t> pos(0, wire.size() - 1);
    std::uniform_int_distribution<int> val(0, 255);

    for (int round = 0; round != 2000; ++round)
    {
        byte_buffer corrupted = wire;
        int const edits = 1 + round % 8;
        for (int e = 0; e != edits; ++e)
            corrupted[pos(rng)] = static_cast<std::uint8_t>(val(rng));
        try
        {
            (void) from_bytes<nested_payload>(corrupted);
        }
        catch (serialization_error const&)
        {
        }
    }
    SUCCEED();
}

// A failed decode must leave the process able to decode good input
// immediately afterwards (no sticky state in the pool or archives).
TEST(ArchiveRobustness, DecodeFailureLeavesPoolUsable)
{
    auto const original = make_nested(7);
    byte_buffer const wire = to_bytes(original).to_vector();

    for (int i = 0; i != 50; ++i)
    {
        byte_buffer bad(wire.begin(), wire.begin() + 3);
        EXPECT_THROW(
            (void) from_bytes<nested_payload>(bad), serialization_error);
        EXPECT_EQ(from_bytes<nested_payload>(wire), original);
    }
}

}    // namespace
