// Slab pool mechanics: size classing, free-list reuse, the outstanding
// gauge, heap fallback for oversized requests, and refcounted lifetime of
// buffers that outlive heavy pool churn (the retransmission-table case).

#include <coal/serialization/archive.hpp>
#include <coal/serialization/buffer.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/serialization/wire_message.hpp>

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace {

using coal::serialization::buffer_pool;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;
using coal::serialization::wire_message;
using coal::serialization::detail::slab;
using coal::serialization::detail::slab_release;

TEST(BufferPool, SizeClassesAreGeometric)
{
    EXPECT_EQ(buffer_pool::class_capacity(0), 256u);
    EXPECT_EQ(buffer_pool::class_capacity(1), 1024u);
    EXPECT_EQ(buffer_pool::class_capacity(2), 4096u);
    EXPECT_EQ(
        buffer_pool::class_capacity(buffer_pool::num_classes - 1), 1u << 20);
}

TEST(BufferPool, AcquireRoundsUpToClassCapacity)
{
    buffer_pool pool;
    slab* a = pool.acquire(1);
    slab* b = pool.acquire(257);
    EXPECT_EQ(a->capacity, 256u);
    EXPECT_EQ(b->capacity, 1024u);
    EXPECT_EQ(a->refs.load(), 1u);
    slab_release(a);
    slab_release(b);
}

TEST(BufferPool, ReleaseRecyclesIntoFreeListAndReacquireHits)
{
    buffer_pool pool;
    slab* a = pool.acquire(100);
    EXPECT_EQ(pool.stats().misses, 1u);
    slab_release(a);
    EXPECT_EQ(pool.cached(), 1u);

    slab* b = pool.acquire(100);    // must come from the free list
    EXPECT_EQ(b, a);
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(b->refs.load(), 1u);
    slab_release(b);
}

TEST(BufferPool, OutstandingGaugeTracksLiveSlabs)
{
    buffer_pool pool;
    EXPECT_EQ(pool.stats().outstanding, 0u);
    slab* a = pool.acquire(10);
    slab* b = pool.acquire(10);
    slab* c = pool.acquire(5000);
    EXPECT_EQ(pool.stats().outstanding, 3u);
    slab_release(a);
    slab_release(b);
    slab_release(c);
    EXPECT_EQ(pool.stats().outstanding, 0u);
    // Free-listed slabs are cached, not outstanding.
    EXPECT_EQ(pool.cached(), 3u);
}

TEST(BufferPool, OversizedRequestFallsBackToHeapNotFailure)
{
    buffer_pool pool;
    std::size_t const huge = (1u << 20) + 1;
    slab* s = pool.acquire(huge);
    ASSERT_NE(s, nullptr);
    EXPECT_GE(s->capacity, huge);
    EXPECT_EQ(s->size_class, buffer_pool::heap_class);
    EXPECT_EQ(pool.stats().heap_fallbacks, 1u);

    // The whole capacity is writable.
    std::memset(s->data(), 0xab, huge);
    EXPECT_EQ(s->data()[huge - 1], 0xab);

    slab_release(s);
    // Heap slabs go straight back to the heap, never the free lists.
    EXPECT_EQ(pool.cached(), 0u);
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPool, FreeListIsCappedExcessGoesToHeap)
{
    buffer_pool pool(/*max_free_per_class=*/4);
    std::vector<slab*> slabs;
    for (int i = 0; i != 16; ++i)
        slabs.push_back(pool.acquire(64));
    for (slab* s : slabs)
        slab_release(s);
    EXPECT_EQ(pool.cached(), 4u);
}

TEST(BufferPool, CopyAccountingSeams)
{
    buffer_pool pool;
    pool.count_copied(100);
    pool.count_referenced(1000);
    pool.count_flatten(64);
    auto const s = pool.stats();
    EXPECT_EQ(s.bytes_copied, 100u);
    EXPECT_EQ(s.bytes_referenced, 1000u);
    EXPECT_EQ(s.flattens, 1u);
    EXPECT_EQ(s.bytes_flattened, 64u);
}

TEST(SharedBuffer, CopyBumpsRefcountViewAliasesSlab)
{
    shared_buffer a(byte_buffer{1, 2, 3, 4, 5, 6, 7, 8});
    ASSERT_NE(a.slab(), nullptr);
    EXPECT_TRUE(a.unique());

    shared_buffer const b = a;
    EXPECT_FALSE(a.unique());
    EXPECT_EQ(a.slab(), b.slab());

    shared_buffer const v = a.view(2, 4);
    EXPECT_EQ(v.slab(), a.slab());
    EXPECT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], 3u);
    EXPECT_EQ(v[3], 6u);
}

// The retransmission-table property: a frame retained by reference must
// keep its bytes intact while the pool recycles its slab class hundreds of
// times underneath (a use-after-recycle bug would corrupt it).
TEST(SharedBuffer, RetainedFrameSurvivesPoolChurn)
{
    byte_buffer payload(2000);
    for (std::size_t i = 0; i != payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31 + 7);

    wire_message msg;
    msg.write_value(std::uint64_t{0xfeedface});
    msg.append_fragment(shared_buffer(payload));
    wire_message const retained = msg;    // refcount share, like unacked_frame

    // Churn: acquire and drop buffers of every size class from the same
    // (global) pool the fragments live in.
    for (int round = 0; round != 200; ++round)
    {
        shared_buffer churn(64 + static_cast<std::size_t>(round) * 17,
            static_cast<std::uint8_t>(round));
        shared_buffer churn2 = churn;
        (void) churn2;
    }

    auto const flat = retained.flatten_copy();
    ASSERT_EQ(flat.size(), sizeof(std::uint64_t) + payload.size());
    std::uint64_t magic = 0;
    std::memcpy(&magic, flat.data(), sizeof(magic));
    EXPECT_EQ(magic, 0xfeedfaceu);
    EXPECT_EQ(
        std::memcmp(flat.data() + sizeof(magic), payload.data(),
            payload.size()),
        0);
}

TEST(BufferPool, ResidentBytesTrackLiveSlabsNotFreeLists)
{
    buffer_pool pool;
    EXPECT_EQ(pool.stats().resident_bytes, 0u);

    slab* a = pool.acquire(100);     // 256 B class
    slab* b = pool.acquire(5000);    // 16 KiB class
    EXPECT_EQ(pool.stats().resident_bytes, 256u + 16384u);
    EXPECT_EQ(pool.stats().resident_bytes_peak, 256u + 16384u);

    slab_release(a);
    slab_release(b);
    // Free-listed slabs are cached, not resident; the peak stays.
    EXPECT_EQ(pool.stats().resident_bytes, 0u);
    EXPECT_EQ(pool.stats().resident_bytes_peak, 256u + 16384u);
}

TEST(BufferPool, PressureStatesFollowTheWatermarks)
{
    buffer_pool pool;
    EXPECT_EQ(pool.pressure(), coal::pressure_state::ok);

    // soft 1 KiB, critical 32 KiB: critical is *reported* one headroom
    // (critical/8 = 4 KiB) early, i.e. at resident >= 28 KiB.
    pool.set_watermarks(1024, 32 * 1024, 0);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::ok);

    slab* a = pool.acquire(1024);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::soft);

    slab* b = pool.acquire(40 * 1024);    // 64 KiB class: over the line
    EXPECT_EQ(pool.pressure(), coal::pressure_state::critical);

    slab_release(b);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::soft);
    slab_release(a);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::ok);

    pool.set_watermarks(0, 0, 0);    // disabled again
}

TEST(BufferPool, FallbackCapRefusesTryAcquireAndForcesCritical)
{
    buffer_pool pool;
    std::size_t const huge = (1u << 20) + 1;    // above the top class
    pool.set_watermarks(0, 0, 2 * huge);

    slab* a = pool.try_acquire(huge);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->size_class, buffer_pool::heap_class);
    EXPECT_EQ(pool.stats().fallback_bytes, huge);

    slab* b = pool.try_acquire(huge);    // 2*huge live: at the cap now
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::critical);
    EXPECT_EQ(pool.stats().fallback_bytes_peak, 2 * huge);

    // Over the cap: try_acquire refuses, the refusal is counted, and the
    // uncapped acquire() still never fails.
    EXPECT_EQ(pool.try_acquire(huge), nullptr);
    EXPECT_EQ(pool.stats().fallback_cap_hits, 1u);
    slab* c = pool.acquire(huge);
    ASSERT_NE(c, nullptr);

    // Pooled size classes are never refused, even at the fallback cap.
    slab* d = pool.try_acquire(100);
    ASSERT_NE(d, nullptr);

    slab_release(a);
    slab_release(b);
    slab_release(c);
    slab_release(d);
    EXPECT_EQ(pool.stats().fallback_bytes, 0u);
    EXPECT_EQ(pool.stats().fallback_bytes_peak, 3 * huge);
    EXPECT_EQ(pool.pressure(), coal::pressure_state::ok);
}

TEST(SharedBuffer, SerializesAsLengthPrefixedBytes)
{
    shared_buffer const in(byte_buffer{9, 8, 7, 6});
    auto const wire = coal::serialization::to_bytes(in);
    auto const out = coal::serialization::from_bytes<shared_buffer>(wire);
    EXPECT_EQ(out, in);
}

}    // namespace
