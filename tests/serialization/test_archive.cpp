// Round-trip tests for every built-in archive type plus user-defined
// types via member and ADL serialize.

#include <coal/serialization/archive.hpp>

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace {

using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::serialization::input_archive;
using coal::serialization::output_archive;
using coal::serialization::to_bytes;

template <typename T>
T round_trip(T const& value)
{
    return from_bytes<T>(to_bytes(value));
}

TEST(Archive, ArithmeticTypes)
{
    EXPECT_EQ(round_trip<std::int8_t>(-5), -5);
    EXPECT_EQ(round_trip<std::uint8_t>(200), 200);
    EXPECT_EQ(round_trip<std::int32_t>(-123456), -123456);
    EXPECT_EQ(round_trip<std::uint64_t>(0xdeadbeefcafeull),
        0xdeadbeefcafeull);
    EXPECT_EQ(round_trip<bool>(true), true);
    EXPECT_EQ(round_trip<bool>(false), false);
    EXPECT_FLOAT_EQ(round_trip<float>(3.14f), 3.14f);
    EXPECT_DOUBLE_EQ(round_trip<double>(-2.718281828), -2.718281828);
}

TEST(Archive, FloatingEdgeValues)
{
    EXPECT_DOUBLE_EQ(round_trip<double>(0.0), 0.0);
    EXPECT_DOUBLE_EQ(
        round_trip<double>(std::numeric_limits<double>::max()),
        std::numeric_limits<double>::max());
    EXPECT_DOUBLE_EQ(
        round_trip<double>(std::numeric_limits<double>::denorm_min()),
        std::numeric_limits<double>::denorm_min());
    EXPECT_TRUE(std::isinf(
        round_trip<double>(std::numeric_limits<double>::infinity())));
    EXPECT_TRUE(std::isnan(
        round_trip<double>(std::numeric_limits<double>::quiet_NaN())));
}

enum class color : std::uint16_t
{
    red = 1,
    green = 513,
};

TEST(Archive, Enums)
{
    EXPECT_EQ(round_trip(color::green), color::green);
}

TEST(Archive, ComplexDouble)
{
    // The paper's payload type (Listing 1).
    std::complex<double> const value(13.3, -23.8);
    EXPECT_EQ(round_trip(value), value);
}

TEST(Archive, Strings)
{
    EXPECT_EQ(round_trip(std::string{}), "");
    EXPECT_EQ(round_trip(std::string("hello parcel")), "hello parcel");
    std::string big(100000, 'x');
    big[50000] = '\0';    // embedded NUL survives
    EXPECT_EQ(round_trip(big), big);
}

TEST(Archive, VectorTriviallyCopyableFastPath)
{
    std::vector<double> const v{1.0, -2.5, 3.25, 1e300};
    EXPECT_EQ(round_trip(v), v);

    std::vector<std::complex<double>> const tensor_row(
        512, std::complex<double>(0.5, -0.25));
    EXPECT_EQ(round_trip(tensor_row), tensor_row);
}

TEST(Archive, VectorOfStringsSlowPath)
{
    std::vector<std::string> const v{"a", "", "long string with spaces",
        std::string(1000, 'z')};
    EXPECT_EQ(round_trip(v), v);
}

TEST(Archive, NestedVectors)
{
    std::vector<std::vector<int>> const v{{1, 2}, {}, {3, 4, 5}};
    EXPECT_EQ(round_trip(v), v);
}

TEST(Archive, EmptyVector)
{
    EXPECT_EQ(round_trip(std::vector<int>{}), std::vector<int>{});
}

TEST(Archive, ArrayPairTuple)
{
    std::array<int, 4> const a{1, 2, 3, 4};
    EXPECT_EQ(round_trip(a), a);

    std::array<std::string, 2> const sa{"x", "y"};
    EXPECT_EQ(round_trip(sa), sa);

    std::pair<int, std::string> const p{7, "seven"};
    EXPECT_EQ(round_trip(p), p);

    std::tuple<int, double, std::string> const t{1, 2.5, "three"};
    EXPECT_EQ(round_trip(t), t);

    std::tuple<> const empty{};
    EXPECT_EQ(round_trip(empty), empty);
}

TEST(Archive, AssociativeContainers)
{
    std::map<std::string, int> const m{{"a", 1}, {"b", 2}, {"zzz", -5}};
    EXPECT_EQ(round_trip(m), m);

    std::unordered_map<int, std::string> const um{
        {1, "one"}, {2, "two"}, {42, ""}};
    EXPECT_EQ(round_trip(um), um);

    std::set<std::int64_t> const s{-7, 0, 3, 1000000};
    EXPECT_EQ(round_trip(s), s);

    std::unordered_set<std::string> const us{"x", "y", ""};
    EXPECT_EQ(round_trip(us), us);

    EXPECT_EQ(round_trip(std::map<int, int>{}), (std::map<int, int>{}));
    EXPECT_EQ(round_trip(std::set<int>{}), std::set<int>{});
}

TEST(Archive, NestedAssociative)
{
    std::map<std::string, std::vector<double>> const m{
        {"series-a", {1.0, 2.0}}, {"series-b", {}},
        {"series-c", {3.5, -1.25, 0.0}}};
    EXPECT_EQ(round_trip(m), m);
}

TEST(Archive, Optional)
{
    std::optional<int> const none;
    std::optional<int> const some = 42;
    EXPECT_EQ(round_trip(none), none);
    EXPECT_EQ(round_trip(some), some);

    std::optional<std::vector<std::string>> const nested =
        std::vector<std::string>{"a", "b"};
    EXPECT_EQ(round_trip(nested), nested);
}

TEST(Archive, ChronoDuration)
{
    using us = std::chrono::microseconds;
    EXPECT_EQ(round_trip(us(4000)), us(4000));
}

struct member_serializable
{
    int a = 0;
    std::string b;

    template <typename Archive>
    void serialize(Archive& ar)
    {
        ar & a & b;
    }

    friend bool operator==(
        member_serializable const&, member_serializable const&) = default;
};

TEST(Archive, UserTypeWithMemberSerialize)
{
    member_serializable const v{5, "five"};
    EXPECT_EQ(round_trip(v), v);
}

struct adl_serializable
{
    double x = 0.0;
    std::vector<int> ys;

    friend bool operator==(
        adl_serializable const&, adl_serializable const&) = default;
};

template <typename Archive>
void serialize(Archive& ar, adl_serializable& v)
{
    ar & v.x & v.ys;
}

TEST(Archive, UserTypeWithAdlSerialize)
{
    adl_serializable const v{1.5, {1, 2, 3}};
    EXPECT_EQ(round_trip(v), v);
}

TEST(Archive, SequentialFieldsPreserveOrder)
{
    output_archive oa;
    oa & std::int32_t{1} & std::int32_t{2} & std::string("mid") &
        std::int32_t{3};
    auto const buf = oa.detach();

    input_archive ia(buf);
    std::int32_t a{}, b{}, c{};
    std::string s;
    ia & a & b & s & c;
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(s, "mid");
    EXPECT_EQ(c, 3);
    EXPECT_EQ(ia.remaining(), 0u);
}

TEST(Archive, BytesWrittenTracksSize)
{
    output_archive oa;
    oa & std::uint64_t{1};
    EXPECT_EQ(oa.bytes_written(), 8u);
    oa & std::uint8_t{1};
    EXPECT_EQ(oa.bytes_written(), 9u);
}

TEST(Archive, InputPositionAndRemaining)
{
    auto const buf = to_bytes(std::uint32_t{7});
    input_archive ia(buf);
    EXPECT_EQ(ia.remaining(), 4u);
    std::uint32_t v{};
    ia & v;
    EXPECT_EQ(ia.position(), 4u);
    EXPECT_EQ(ia.remaining(), 0u);
}

}    // namespace
