// Concurrency stress for the slab pool and refcounted buffers — built as
// its own binary with the "race" ctest label so the tsan preset runs
// exactly these under ThreadSanitizer.

#include <coal/serialization/buffer.hpp>
#include <coal/serialization/buffer_pool.hpp>
#include <coal/serialization/wire_message.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace {

using coal::serialization::buffer_pool;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;
using coal::serialization::wire_message;
using coal::serialization::detail::slab;
using coal::serialization::detail::slab_release;

TEST(BufferRaces, ConcurrentAcquireReleaseSharedPool)
{
    buffer_pool pool(/*max_free_per_class=*/8);
    constexpr int threads = 8;
    constexpr int iterations = 2000;

    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&pool, t] {
            for (int i = 0; i != iterations; ++i)
            {
                // Cycle through size classes; write the whole payload so
                // tsan sees any slab handed to two owners at once.
                std::size_t const size = 32u << ((i + t) % 10);
                slab* s = pool.acquire(size);
                ASSERT_NE(s, nullptr);
                ASSERT_GE(s->capacity, size);
                ASSERT_EQ(s->refs.load(), 1u);
                std::memset(s->data(), t, size);
                ASSERT_EQ(s->data()[size - 1], static_cast<std::uint8_t>(t));
                slab_release(s);
            }
        });
    }
    for (auto& w : workers)
        w.join();

    auto const s = pool.stats();
    EXPECT_EQ(s.outstanding, 0u);
    EXPECT_EQ(s.hits + s.misses,
        static_cast<std::uint64_t>(threads) * iterations);
}

TEST(BufferRaces, ConcurrentRefcountCopiesKeepContentStable)
{
    byte_buffer payload(4096);
    for (std::size_t i = 0; i != payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 131 + 5);
    shared_buffer const source(payload);

    std::atomic<bool> failed{false};
    std::vector<std::thread> workers;
    for (int t = 0; t != 8; ++t)
    {
        workers.emplace_back([&] {
            for (int i = 0; i != 5000; ++i)
            {
                shared_buffer copy = source;            // add_ref
                shared_buffer view = copy.view(100, 256);
                if (view[0] != static_cast<std::uint8_t>(100 * 131 + 5))
                    failed = true;
                copy = shared_buffer();                 // release
            }                                           // view releases
        });
    }
    for (auto& w : workers)
        w.join();
    EXPECT_FALSE(failed.load());
    EXPECT_TRUE(source.unique());
    EXPECT_EQ(source, payload);
}

// Retransmit-shaped race: one thread retains a frame and takes flattened
// copies (as progress_reliability does under its lock) while others churn
// the same global pool the frame's slabs came from.
TEST(BufferRaces, RetainedFrameFlattenDuringPoolChurn)
{
    byte_buffer payload(3000);
    for (std::size_t i = 0; i != payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i ^ 0x5a);

    wire_message retained;
    retained.write_value(std::uint64_t{1});
    retained.append_fragment(shared_buffer(payload));

    std::atomic<bool> stop{false};
    std::vector<std::thread> churners;
    for (int t = 0; t != 6; ++t)
    {
        churners.emplace_back([&stop] {
            std::size_t n = 100;
            while (!stop.load(std::memory_order_relaxed))
            {
                shared_buffer churn(n % 5000 + 1);
                n = n * 2654435761u + 11;
            }
        });
    }

    for (int i = 0; i != 500; ++i)
    {
        auto const flat = retained.flatten_copy();
        ASSERT_EQ(flat.size(), 8u + payload.size());
        ASSERT_EQ(
            std::memcmp(flat.data() + 8, payload.data(), payload.size()), 0);
    }

    stop = true;
    for (auto& c : churners)
        c.join();
}

TEST(BufferRaces, ParallelWireMessageBuildAndFlatten)
{
    std::vector<std::thread> workers;
    std::atomic<bool> failed{false};
    for (int t = 0; t != 8; ++t)
    {
        workers.emplace_back([t, &failed] {
            for (int i = 0; i != 500; ++i)
            {
                wire_message msg;
                msg.write_value(static_cast<std::uint64_t>(t));
                msg.append(shared_buffer(
                    static_cast<std::size_t>(600 + i % 700),
                    static_cast<std::uint8_t>(t)));
                auto const flat = std::move(msg).flatten();
                std::uint64_t head = 0;
                std::memcpy(&head, flat.data(), 8);
                if (head != static_cast<std::uint64_t>(t) ||
                    flat[flat.size() - 1] != static_cast<std::uint8_t>(t))
                    failed = true;
            }
        });
    }
    for (auto& w : workers)
        w.join();
    EXPECT_FALSE(failed.load());
}

}    // namespace
