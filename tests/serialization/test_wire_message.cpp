// Scatter-gather frame behaviour: fresh header bytes go into the head
// slab, parcel images ride as reference fragments (or inline when small),
// patching hits fragment 0 in place, and contiguity is produced exactly
// once at the wire boundary.

#include <coal/serialization/buffer_pool.hpp>
#include <coal/serialization/wire_message.hpp>

#include <gtest/gtest.h>

#include <cstring>

namespace {

using coal::serialization::buffer_pool;
using coal::serialization::byte_buffer;
using coal::serialization::shared_buffer;
using coal::serialization::wire_message;

byte_buffer pattern(std::size_t n, std::uint8_t seed)
{
    byte_buffer out(n);
    for (std::size_t i = 0; i != n; ++i)
        out[i] = static_cast<std::uint8_t>(seed + i * 13);
    return out;
}

TEST(WireMessage, WriteAccumulatesInOneHeadFragment)
{
    wire_message msg;
    for (std::uint32_t i = 0; i != 100; ++i)
        msg.write_value(i);
    EXPECT_EQ(msg.size(), 400u);
    EXPECT_EQ(msg.fragment_count(), 1u);

    auto const flat = msg.to_vector();
    std::uint32_t last = 0;
    std::memcpy(&last, flat.data() + 396, sizeof(last));
    EXPECT_EQ(last, 99u);
}

TEST(WireMessage, SmallAppendInlinesIntoHead)
{
    wire_message msg;
    msg.write_value(std::uint32_t{7});
    msg.append(shared_buffer(
        pattern(wire_message::inline_copy_threshold, 3)));
    EXPECT_EQ(msg.fragment_count(), 1u);
    EXPECT_EQ(msg.size(), 4u + wire_message::inline_copy_threshold);
}

TEST(WireMessage, LargeAppendBecomesReferenceFragment)
{
    auto const before = buffer_pool::global().stats();

    shared_buffer const image(
        pattern(wire_message::inline_copy_threshold + 1, 5));
    wire_message msg;
    msg.write_value(std::uint32_t{7});
    msg.append(image);

    EXPECT_EQ(msg.fragment_count(), 2u);
    // The image is shared, not copied: same slab, refcount > 1.
    EXPECT_EQ(msg.fragment(1).slab(), image.slab());
    EXPECT_FALSE(image.unique());

    auto const after = buffer_pool::global().stats();
    EXPECT_EQ(after.bytes_referenced - before.bytes_referenced,
        image.size());
}

TEST(WireMessage, WriteAfterFragmentOpensNewHead)
{
    wire_message msg;
    msg.write_value(std::uint32_t{1});
    msg.append_fragment(shared_buffer(pattern(600, 1)));
    msg.write_value(std::uint32_t{2});
    EXPECT_EQ(msg.fragment_count(), 3u);
    EXPECT_EQ(msg.size(), 608u);

    auto const flat = msg.to_vector();
    std::uint32_t tail = 0;
    std::memcpy(&tail, flat.data() + 604, sizeof(tail));
    EXPECT_EQ(tail, 2u);
}

TEST(WireMessage, PatchRewritesPrefixInPlace)
{
    wire_message msg;
    msg.write_value(std::uint64_t{1});
    msg.write_value(std::uint64_t{2});
    std::uint64_t const patched = 0xabcdef;
    msg.patch(8, &patched, sizeof(patched));

    auto const flat = msg.to_vector();
    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, flat.data(), 8);
    std::memcpy(&b, flat.data() + 8, 8);
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 0xabcdefu);
}

TEST(WireMessage, FlattenMovesSingleFragmentWithoutGather)
{
    auto const before = buffer_pool::global().stats();

    wire_message msg;
    msg.write_value(std::uint64_t{42});
    auto flat = std::move(msg).flatten();

    auto const after = buffer_pool::global().stats();
    EXPECT_EQ(after.flattens, before.flattens);    // zero-copy move-out
    ASSERT_EQ(flat.size(), 8u);
    std::uint64_t v = 0;
    std::memcpy(&v, flat.data(), 8);
    EXPECT_EQ(v, 42u);
}

TEST(WireMessage, FlattenGathersMultiFragmentOnce)
{
    auto const payload = pattern(4000, 9);

    wire_message msg;
    msg.write_value(std::uint32_t{0x11223344});
    msg.append_fragment(shared_buffer(payload));

    auto const before = buffer_pool::global().stats();
    auto const flat = std::move(msg).flatten();
    auto const after = buffer_pool::global().stats();

    EXPECT_EQ(after.flattens - before.flattens, 1u);
    EXPECT_EQ(after.bytes_flattened - before.bytes_flattened, flat.size());
    ASSERT_EQ(flat.size(), 4u + payload.size());
    EXPECT_EQ(std::memcmp(flat.data() + 4, payload.data(), payload.size()), 0);
}

// Retransmit safety: the flattened copy handed to the transport must not
// alias fragments the sender may patch again later.
TEST(WireMessage, FlattenCopyNeverAliasesRetainedFragments)
{
    wire_message msg;
    msg.write_value(std::uint64_t{0});    // patchable prefix

    auto const first = msg.flatten_copy();
    std::uint64_t const acked = 77;
    msg.patch(0, &acked, sizeof(acked));
    auto const second = msg.flatten_copy();

    std::uint64_t a = 0, b = 0;
    std::memcpy(&a, first.data(), 8);
    std::memcpy(&b, second.data(), 8);
    EXPECT_EQ(a, 0u);     // earlier transmission unaffected by the patch
    EXPECT_EQ(b, 77u);    // resend carries the updated acks
    EXPECT_NE(first.slab(), msg.fragment(0).slab());
}

TEST(WireMessage, CopySharesFragmentsByRefcount)
{
    shared_buffer const image(pattern(2048, 2));
    wire_message msg;
    msg.write_value(std::uint32_t{5});
    msg.append_fragment(image);

    auto const before = buffer_pool::global().stats();
    wire_message const dup = msg;    // fault-injection duplicate path
    auto const after = buffer_pool::global().stats();

    EXPECT_EQ(after.bytes_copied, before.bytes_copied);
    EXPECT_EQ(dup.size(), msg.size());
    EXPECT_EQ(dup.fragment(1).slab(), image.slab());
    EXPECT_EQ(dup.to_vector(), msg.to_vector());
}

TEST(WireMessage, ByteBufferConversionCopiesContent)
{
    byte_buffer const bytes{1, 2, 3, 4, 5};
    wire_message msg(bytes);
    EXPECT_EQ(msg.size(), bytes.size());
    EXPECT_EQ(msg.to_vector(), bytes);
}

TEST(WireMessage, EmptyMessageFlattensToEmptyBuffer)
{
    wire_message msg;
    EXPECT_TRUE(msg.empty());
    EXPECT_EQ(msg.flatten_copy().size(), 0u);
    EXPECT_EQ(std::move(msg).flatten().size(), 0u);
}

}    // namespace
