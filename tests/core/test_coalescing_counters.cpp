// Per-action coalescing statistics (the paper's five /coalescing
// counters) in isolation.

#include <coal/core/coalescing_counters.hpp>

#include <gtest/gtest.h>

#include <thread>

namespace {

using coal::coalescing::coalescing_counters;

TEST(CoalescingCounters, StartEmpty)
{
    coalescing_counters c;
    EXPECT_EQ(c.parcels(), 0u);
    EXPECT_EQ(c.messages(), 0u);
    EXPECT_EQ(c.gap_count(), 0u);
    EXPECT_DOUBLE_EQ(c.average_parcels_per_message(), 0.0);
    EXPECT_DOUBLE_EQ(c.average_arrival_us(), 0.0);
}

TEST(CoalescingCounters, FirstParcelHasNoGap)
{
    coalescing_counters c;
    EXPECT_EQ(c.record_parcel(), -1);
    EXPECT_EQ(c.parcels(), 1u);
    EXPECT_EQ(c.gap_count(), 0u);
}

TEST(CoalescingCounters, GapsAreMeasured)
{
    coalescing_counters c;
    c.record_parcel();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto const gap = c.record_parcel();
    EXPECT_GE(gap, 2000000);    // >= 2 ms in ns
    EXPECT_EQ(c.gap_count(), 1u);
    EXPECT_GE(c.average_arrival_us(), 2000.0);
}

TEST(CoalescingCounters, ParcelsPerMessageAverage)
{
    coalescing_counters c;
    c.record_message(4);
    c.record_message(8);
    EXPECT_EQ(c.messages(), 2u);
    EXPECT_EQ(c.parcels_in_messages(), 12u);
    EXPECT_DOUBLE_EQ(c.average_parcels_per_message(), 6.0);
}

TEST(CoalescingCounters, HistogramWireLayout)
{
    coalescing_counters c({0, 1000, 10});
    c.record_parcel();
    c.record_parcel();    // one gap, sub-millisecond
    auto const wire = c.arrival_histogram();
    ASSERT_EQ(wire.size(), 13u);
    EXPECT_EQ(wire[0], 0);
    EXPECT_EQ(wire[1], 1000);
    EXPECT_EQ(wire[2], 100);
    std::int64_t total = 0;
    for (std::size_t i = 3; i < wire.size(); ++i)
        total += wire[i];
    EXPECT_EQ(total, 1);
}

TEST(CoalescingCounters, ResetClearsAll)
{
    coalescing_counters c;
    c.record_parcel();
    c.record_parcel();
    c.record_message(2);
    c.reset();
    EXPECT_EQ(c.parcels(), 0u);
    EXPECT_EQ(c.messages(), 0u);
    EXPECT_EQ(c.gap_count(), 0u);
    // Gap tracking restarts: next parcel is "first" again.
    EXPECT_EQ(c.record_parcel(), -1);
}

TEST(CoalescingCounters, ResetHistogramKeepsScalars)
{
    coalescing_counters c;
    c.record_parcel();
    c.record_parcel();
    c.record_message(2);
    c.reset_arrival_histogram();
    EXPECT_EQ(c.parcels(), 2u);
    EXPECT_EQ(c.messages(), 1u);

    auto const wire = c.arrival_histogram();
    std::int64_t total = 0;
    for (std::size_t i = 3; i < wire.size(); ++i)
        total += wire[i];
    EXPECT_EQ(total, 0);
}

TEST(CoalescingCounters, ConcurrentRecordingConserves)
{
    coalescing_counters c;
    constexpr int threads = 4;
    constexpr int per_thread = 10000;

    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&c] {
            for (int i = 0; i != per_thread; ++i)
            {
                c.record_parcel();
                if (i % 8 == 7)
                    c.record_message(8);
            }
        });
    }
    for (auto& w : workers)
        w.join();

    EXPECT_EQ(c.parcels(), static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(c.gap_count(),
        static_cast<std::uint64_t>(threads) * per_thread - 1);
    EXPECT_EQ(c.parcels_in_messages(),
        static_cast<std::uint64_t>(threads) * per_thread);
}

// The striped internals must be invisible to readers: the aggregated
// mean equals the mean of the gaps record_parcel handed back, and the
// histogram holds exactly one entry per measured gap — no matter which
// thread (stripe) recorded each gap.
TEST(CoalescingCounters, StripedAggregationMatchesRecordedGaps)
{
    coalescing_counters c;
    constexpr int threads = 6;
    constexpr int per_thread = 5000;

    std::vector<std::int64_t> sums(threads, 0);
    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&c, &sums, t] {
            std::int64_t local = 0;
            for (int i = 0; i != per_thread; ++i)
            {
                auto const gap = c.record_parcel();
                if (gap >= 0)
                    local += gap;
            }
            sums[t] = local;
        });
    }
    for (auto& w : workers)
        w.join();

    constexpr std::uint64_t total =
        static_cast<std::uint64_t>(threads) * per_thread;
    ASSERT_EQ(c.gap_count(), total - 1);

    std::int64_t recorded_sum = 0;
    for (auto const s : sums)
        recorded_sum += s;
    double const expected_us =
        static_cast<double>(recorded_sum) / 1000.0 / (total - 1);
    EXPECT_NEAR(c.average_arrival_us(), expected_us,
        expected_us * 1e-9 + 1e-9);

    auto const wire = c.arrival_histogram();
    std::int64_t hist_total = 0;
    for (std::size_t i = 3; i < wire.size(); ++i)
        hist_total += wire[i];
    EXPECT_EQ(hist_total, static_cast<std::int64_t>(total - 1));
}

// Single-threaded sanity for the same invariant (no concurrency noise):
// the mean is exactly the sum of returned gaps over their count.
TEST(CoalescingCounters, AverageMatchesReturnedGapsExactly)
{
    coalescing_counters c;
    std::int64_t sum = 0;
    std::uint64_t count = 0;
    for (int i = 0; i != 1000; ++i)
    {
        auto const gap = c.record_parcel();
        if (gap >= 0)
        {
            sum += gap;
            ++count;
        }
    }
    ASSERT_EQ(count, 999u);
    ASSERT_EQ(c.gap_count(), count);
    EXPECT_DOUBLE_EQ(c.average_arrival_us(),
        static_cast<double>(sum) / 1000.0 / static_cast<double>(count));
}

}    // namespace
