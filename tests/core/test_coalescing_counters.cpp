// Per-action coalescing statistics (the paper's five /coalescing
// counters) in isolation.

#include <coal/core/coalescing_counters.hpp>

#include <gtest/gtest.h>

#include <thread>

namespace {

using coal::coalescing::coalescing_counters;

TEST(CoalescingCounters, StartEmpty)
{
    coalescing_counters c;
    EXPECT_EQ(c.parcels(), 0u);
    EXPECT_EQ(c.messages(), 0u);
    EXPECT_EQ(c.gap_count(), 0u);
    EXPECT_DOUBLE_EQ(c.average_parcels_per_message(), 0.0);
    EXPECT_DOUBLE_EQ(c.average_arrival_us(), 0.0);
}

TEST(CoalescingCounters, FirstParcelHasNoGap)
{
    coalescing_counters c;
    EXPECT_EQ(c.record_parcel(), -1);
    EXPECT_EQ(c.parcels(), 1u);
    EXPECT_EQ(c.gap_count(), 0u);
}

TEST(CoalescingCounters, GapsAreMeasured)
{
    coalescing_counters c;
    c.record_parcel();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto const gap = c.record_parcel();
    EXPECT_GE(gap, 2000000);    // >= 2 ms in ns
    EXPECT_EQ(c.gap_count(), 1u);
    EXPECT_GE(c.average_arrival_us(), 2000.0);
}

TEST(CoalescingCounters, ParcelsPerMessageAverage)
{
    coalescing_counters c;
    c.record_message(4);
    c.record_message(8);
    EXPECT_EQ(c.messages(), 2u);
    EXPECT_EQ(c.parcels_in_messages(), 12u);
    EXPECT_DOUBLE_EQ(c.average_parcels_per_message(), 6.0);
}

TEST(CoalescingCounters, HistogramWireLayout)
{
    coalescing_counters c({0, 1000, 10});
    c.record_parcel();
    c.record_parcel();    // one gap, sub-millisecond
    auto const wire = c.arrival_histogram();
    ASSERT_EQ(wire.size(), 13u);
    EXPECT_EQ(wire[0], 0);
    EXPECT_EQ(wire[1], 1000);
    EXPECT_EQ(wire[2], 100);
    std::int64_t total = 0;
    for (std::size_t i = 3; i < wire.size(); ++i)
        total += wire[i];
    EXPECT_EQ(total, 1);
}

TEST(CoalescingCounters, ResetClearsAll)
{
    coalescing_counters c;
    c.record_parcel();
    c.record_parcel();
    c.record_message(2);
    c.reset();
    EXPECT_EQ(c.parcels(), 0u);
    EXPECT_EQ(c.messages(), 0u);
    EXPECT_EQ(c.gap_count(), 0u);
    // Gap tracking restarts: next parcel is "first" again.
    EXPECT_EQ(c.record_parcel(), -1);
}

TEST(CoalescingCounters, ResetHistogramKeepsScalars)
{
    coalescing_counters c;
    c.record_parcel();
    c.record_parcel();
    c.record_message(2);
    c.reset_arrival_histogram();
    EXPECT_EQ(c.parcels(), 2u);
    EXPECT_EQ(c.messages(), 1u);

    auto const wire = c.arrival_histogram();
    std::int64_t total = 0;
    for (std::size_t i = 3; i < wire.size(); ++i)
        total += wire[i];
    EXPECT_EQ(total, 0);
}

TEST(CoalescingCounters, ConcurrentRecordingConserves)
{
    coalescing_counters c;
    constexpr int threads = 4;
    constexpr int per_thread = 10000;

    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&c] {
            for (int i = 0; i != per_thread; ++i)
            {
                c.record_parcel();
                if (i % 8 == 7)
                    c.record_message(8);
            }
        });
    }
    for (auto& w : workers)
        w.join();

    EXPECT_EQ(c.parcels(), static_cast<std::uint64_t>(threads) * per_thread);
    EXPECT_EQ(c.gap_count(),
        static_cast<std::uint64_t>(threads) * per_thread - 1);
    EXPECT_EQ(c.parcels_in_messages(),
        static_cast<std::uint64_t>(threads) * per_thread);
}

}    // namespace
