// Race-stress tests for the contention-free send path: the sharded
// coalescing handler (per-destination FIFO under concurrent producers
// with mixed size/timer/bypass/forced flushes), the striped arrival
// counters, and the timer-wheel-backed deadline timer service.  Built
// into a race-labeled binary so the tsan preset runs exactly these under
// ThreadSanitizer.

#include <coal/core/coalescing_message_handler.hpp>

#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

namespace {

void sendrace_noop(std::uint64_t)
{
}

}    // namespace

COAL_PLAIN_ACTION(sendrace_noop, sendrace_noop_action);

namespace {

using coal::coalescing::coalescing_counters;
using coal::coalescing::coalescing_message_handler;
using coal::coalescing::coalescing_params;
using coal::coalescing::shared_params;
using coal::net::transport;
using coal::parcel::decode_message;
using coal::parcel::parcelhandler;
using coal::threading::scheduler;
using coal::threading::scheduler_config;
using coal::timing::deadline_timer_service;

/// Wire-order observation point: decodes every frame the parcelhandler
/// emits and records the (producer, seq) payloads per destination in
/// transmission order.
struct recorded
{
    std::mutex m;
    std::map<std::uint32_t, std::vector<std::uint64_t>> order;
};

class recording_transport final : public transport
{
public:
    explicit recording_transport(recorded& sink)
      : sink_(sink)
    {
    }

    void set_delivery_handler(std::uint32_t, delivery_handler) override
    {
    }

    void send(std::uint32_t, std::uint32_t dst,
        coal::serialization::wire_message&& buf) override
    {
        auto const parcels = decode_message(buf);
        std::lock_guard lock(sink_.m);
        for (auto const& p : parcels)
        {
            std::tuple<std::uint64_t> args;
            coal::serialization::input_archive ia(p.arguments);
            ia & args;
            sink_.order[dst].push_back(std::get<0>(args));
        }
    }

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return 0.0;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return 0;
    }

    void drain() override
    {
    }

    [[nodiscard]] coal::net::transport_stats stats() const override
    {
        return {};
    }

    void shutdown() override
    {
    }

private:
    recorded& sink_;
};

constexpr std::uint64_t pack(std::uint64_t producer, std::uint64_t seq)
{
    return (producer << 32) | seq;
}

// The property the ticket sequencer must deliver: whatever mixture of
// size flushes, timer flushes, sparse bypasses, and concurrent forced
// flushes detaches the batches, each producer's parcels toward one
// destination appear on the wire in enqueue order.
TEST(SendPathRaces, PerDestinationFifoUnderConcurrentProducers)
{
    constexpr unsigned producers = 4;
    constexpr std::uint64_t per_producer = 3000;
    constexpr std::uint32_t destinations = 5;

    recorded sink;
    recording_transport transport(sink);
    scheduler_config cfg;
    cfg.num_workers = 1;
    scheduler sched(cfg);
    parcelhandler ph(0, transport, sched);
    deadline_timer_service timers;

    // Small batches + short interval + sparse bypass on: all flush modes
    // fire during the run.
    auto params = std::make_shared<shared_params>(
        coalescing_params{8, 500, 1 << 20, true});
    auto counters = std::make_shared<coalescing_counters>();
    {
        coalescing_message_handler handler(
            "sendrace_noop_action", ph, timers, params, counters);

        std::atomic<bool> stop_flusher{false};
        std::thread flusher([&] {
            while (!stop_flusher.load(std::memory_order_acquire))
            {
                handler.flush();
                std::this_thread::sleep_for(std::chrono::microseconds(300));
            }
        });

        std::vector<std::thread> threads;
        for (unsigned t = 0; t != producers; ++t)
        {
            threads.emplace_back([&, t] {
                for (std::uint64_t i = 0; i != per_producer; ++i)
                {
                    coal::parcel::parcel p;
                    p.dest = 1 + static_cast<std::uint32_t>(
                                     (i + t) % destinations);
                    p.action = sendrace_noop_action::id();
                    p.arguments =
                        sendrace_noop_action::make_arguments(pack(t, i));
                    handler.enqueue(std::move(p));
                    // Periodic pauses open sparse-bypass and timer-flush
                    // windows between bursts.
                    if ((i & 511) == 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                }
            });
        }
        for (auto& th : threads)
            th.join();
        stop_flusher.store(true, std::memory_order_release);
        flusher.join();
        // Handler destructor flushes the remainder.
    }

    for (int spin = 0; spin != 20000 && ph.pending_sends() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    ASSERT_EQ(ph.pending_sends(), 0u);
    sched.stop();
    ph.stop();

    std::lock_guard lock(sink.m);
    std::size_t total = 0;
    for (auto const& [dst, values] : sink.order)
    {
        total += values.size();
        // Per-producer order within this destination's wire stream.
        std::map<std::uint64_t, std::uint64_t> last_seq;
        for (auto const v : values)
        {
            std::uint64_t const producer = v >> 32;
            std::uint64_t const seq = v & 0xffffffffull;
            auto const it = last_seq.find(producer);
            if (it != last_seq.end())
                EXPECT_LT(it->second, seq)
                    << "wire reorder: producer " << producer << " at dst "
                    << dst;
            last_seq[producer] = seq;
        }
    }
    // Conservation: nothing lost, nothing duplicated (duplicates would
    // break the strict ordering above; the count pins losses).
    EXPECT_EQ(total, producers * per_producer);
    EXPECT_EQ(counters->parcels(), producers * per_producer);
    EXPECT_EQ(counters->parcels_in_messages(), producers * per_producer);
}

// Hammer all shards plus queued_parcels() observers; conservation must
// hold and the gauge must settle to zero.
TEST(SendPathRaces, ShardedHandlerGaugeSettlesUnderStress)
{
    constexpr unsigned producers = 4;
    constexpr std::uint64_t per_producer = 4000;

    recorded sink;
    recording_transport transport(sink);
    scheduler_config cfg;
    cfg.num_workers = 1;
    scheduler sched(cfg);
    parcelhandler ph(0, transport, sched);
    deadline_timer_service timers;

    auto params = std::make_shared<shared_params>(
        coalescing_params{16, 1000, 1 << 20, true});
    auto counters = std::make_shared<coalescing_counters>();
    coalescing_message_handler handler(
        "sendrace_noop_action", ph, timers, params, counters);

    std::atomic<bool> stop_observer{false};
    std::thread observer([&] {
        // The gauge is an unlocked relaxed atomic; reading it while every
        // shard churns must be race-free and never underflow.
        while (!stop_observer.load(std::memory_order_acquire))
        {
            auto const depth = handler.queued_parcels();
            EXPECT_LT(depth, std::size_t(1) << 60) << "gauge underflow";
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    });

    std::vector<std::thread> threads;
    for (unsigned t = 0; t != producers; ++t)
    {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i != per_producer; ++i)
            {
                coal::parcel::parcel p;
                // 32 destinations: every shard sees traffic, most shards
                // host two queues.
                p.dest = 1 + static_cast<std::uint32_t>((i * 7 + t) % 32);
                p.action = sendrace_noop_action::id();
                p.arguments =
                    sendrace_noop_action::make_arguments(pack(t, i));
                handler.enqueue(std::move(p));
            }
        });
    }
    for (auto& th : threads)
        th.join();
    stop_observer.store(true, std::memory_order_release);
    observer.join();

    handler.flush();
    for (int spin = 0; spin != 20000 && ph.pending_sends() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    ASSERT_EQ(ph.pending_sends(), 0u);
    EXPECT_EQ(handler.queued_parcels(), 0u);
    EXPECT_EQ(counters->parcels(), producers * per_producer);
    EXPECT_EQ(counters->parcels_in_messages(), producers * per_producer);
    sched.stop();
    ph.stop();
}

// Striped counters: every gap lands in exactly one stripe, so the
// aggregated views must conserve across any thread interleaving.
TEST(SendPathRaces, StripedCountersConserveAcrossThreads)
{
    constexpr unsigned threads = 8;
    constexpr std::uint64_t per_thread = 20000;

    coalescing_counters counters;
    std::vector<std::thread> workers;
    std::vector<std::int64_t> sums(threads, 0);
    for (unsigned t = 0; t != threads; ++t)
    {
        workers.emplace_back([&, t] {
            std::int64_t local = 0;
            for (std::uint64_t i = 0; i != per_thread; ++i)
            {
                std::int64_t const gap = counters.record_parcel();
                if (gap >= 0)
                    local += gap;
                counters.record_message(1);
            }
            sums[t] = local;
        });
    }
    for (auto& w : workers)
        w.join();

    constexpr std::uint64_t total = threads * per_thread;
    EXPECT_EQ(counters.parcels(), total);
    EXPECT_EQ(counters.messages(), total);
    EXPECT_EQ(counters.gap_count(), total - 1);

    // The aggregated mean must equal the mean of the gaps the recording
    // threads were handed — stripes lose nothing.
    std::int64_t observed_sum = 0;
    for (auto const s : sums)
        observed_sum += s;
    double const expected_us =
        static_cast<double>(observed_sum) / 1000.0 / (total - 1);
    EXPECT_NEAR(counters.average_arrival_us(), expected_us,
        expected_us * 1e-9 + 1e-9);

    // Histogram: one entry per measured gap, aggregated across stripes.
    auto const hist = counters.arrival_histogram();
    std::int64_t hist_total = 0;
    for (std::size_t i = 3; i < hist.size(); ++i)
        hist_total += hist[i];
    EXPECT_EQ(hist_total, static_cast<std::int64_t>(total - 1));
}

// Timer wheel storm across all three residence classes (level 0, level
// 1, overflow) with concurrent cancellation: the ran-exactly-once XOR
// cancelled guarantee must survive.
TEST(SendPathRaces, TimerWheelScheduleCancelFireStorm)
{
    constexpr unsigned threads = 4;
    constexpr std::size_t per_thread = 400;

    deadline_timer_service timers;
    struct entry
    {
        coal::timing::timer_id id;
        std::shared_ptr<std::atomic<int>> ran;
    };
    std::vector<std::vector<entry>> scheduled(threads);

    std::vector<std::thread> workers;
    for (unsigned t = 0; t != threads; ++t)
    {
        workers.emplace_back([&, t] {
            for (std::size_t i = 0; i != per_thread; ++i)
            {
                // Deadlines spanning the wheel levels: sub-tick, level 0
                // (≤65 ms), level 1 (≤33 s), and the overflow list.
                std::int64_t us;
                switch (i % 4)
                {
                case 0: us = 50 + static_cast<std::int64_t>(i); break;
                case 1: us = 5000 + static_cast<std::int64_t>(i * 11); break;
                case 2: us = 2000000; break;
                default: us = 60000000; break;
                }
                auto ran = std::make_shared<std::atomic<int>>(0);
                auto id = timers.schedule_after(us, [ran] {
                    ran->fetch_add(1, std::memory_order_relaxed);
                });
                scheduled[t].push_back({id, ran});
                // Cancel every other long timer immediately to churn the
                // lazy-tombstone path while the wheel advances.
                if (i % 2 == 1)
                {
                    bool const cancelled = timers.cancel(id);
                    if (cancelled)
                        scheduled[t].back().id = {};
                }
            }
        });
    }
    for (auto& w : workers)
        w.join();

    // Wait for all short (<100 ms) non-cancelled timers to fire.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    auto const stats = timers.stats();
    std::size_t ran_total = 0;
    for (auto const& lane : scheduled)
        for (auto const& e : lane)
        {
            int const runs = e.ran->load(std::memory_order_acquire);
            EXPECT_LE(runs, 1) << "timer callback ran twice";
            if (!e.id.valid())
                EXPECT_EQ(runs, 0) << "cancelled timer still fired";
            ran_total += static_cast<std::size_t>(runs);
        }
    EXPECT_EQ(stats.fired, ran_total);
    EXPECT_EQ(stats.scheduled, threads * per_thread);
    EXPECT_EQ(
        stats.scheduled, stats.fired + stats.cancelled + timers.pending());

    timers.shutdown();
}

}    // namespace
