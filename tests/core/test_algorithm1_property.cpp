// Parameterized property sweeps over Algorithm 1: for ANY (nparcels,
// interval, burst size, destinations) combination, the handler must
// satisfy the conservation invariants —
//   * no parcel lost, none duplicated (after a final flush),
//   * per-destination FIFO order preserved,
//   * no message carries more than nparcels parcels (nor exceeds the
//     buffer cap by more than one parcel),
//   * counter algebra: parcels == Σ batch sizes over messages.

#include <coal/core/coalescing_message_handler.hpp>

#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcel.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

namespace {

// The observed stream: sequence numbers per destination, recorded by a
// recording transport below the parcelhandler.
struct recorded
{
    std::mutex m;
    std::map<std::uint32_t, std::vector<std::uint64_t>> order;
    std::vector<std::size_t> batch_sizes;
};

void alg1_noop(std::uint64_t)
{
}

}    // namespace

COAL_PLAIN_ACTION(alg1_noop, alg1_noop_action);

namespace {

using coal::coalescing::coalescing_counters;
using coal::coalescing::coalescing_message_handler;
using coal::coalescing::coalescing_params;
using coal::coalescing::shared_params;
using coal::net::loopback_transport;
using coal::net::transport;
using coal::parcel::decode_message;
using coal::parcel::parcelhandler;
using coal::serialization::byte_buffer;
using coal::serialization::from_bytes;
using coal::threading::scheduler;
using coal::threading::scheduler_config;
using coal::timing::deadline_timer_service;

// Transport that records every frame instead of delivering it.
class recording_transport final : public transport
{
public:
    explicit recording_transport(recorded& sink)
      : sink_(sink)
    {
    }

    void set_delivery_handler(std::uint32_t, delivery_handler) override
    {
    }

    void send(std::uint32_t, std::uint32_t dst,
        coal::serialization::wire_message&& buf) override
    {
        auto const parcels = decode_message(buf);
        std::lock_guard lock(sink_.m);
        sink_.batch_sizes.push_back(parcels.size());
        for (auto const& p : parcels)
        {
            std::tuple<std::uint64_t> args;
            coal::serialization::input_archive ia(p.arguments);
            ia & args;
            sink_.order[dst].push_back(std::get<0>(args));
        }
    }

    [[nodiscard]] double recv_overhead_us() const noexcept override
    {
        return 0.0;
    }

    [[nodiscard]] std::uint64_t in_flight() const noexcept override
    {
        return 0;
    }

    void drain() override
    {
    }

    [[nodiscard]] coal::net::transport_stats stats() const override
    {
        return {};
    }

    void shutdown() override
    {
    }

private:
    recorded& sink_;
};

struct sweep_params
{
    std::size_t nparcels;
    std::int64_t interval_us;
    std::size_t burst;
    std::uint32_t destinations;
};

class Algorithm1Property : public ::testing::TestWithParam<sweep_params>
{
};

TEST_P(Algorithm1Property, ConservationOrderingAndBatchBounds)
{
    auto const sp = GetParam();

    recorded sink;
    recording_transport transport(sink);

    scheduler_config cfg;
    cfg.num_workers = 1;
    scheduler sched(cfg);
    parcelhandler ph(0, transport, sched);

    deadline_timer_service timers;
    auto params = std::make_shared<shared_params>(coalescing_params{
        sp.nparcels, sp.interval_us, 1 << 20});
    auto counters = std::make_shared<coalescing_counters>();
    coalescing_message_handler handler(
        "alg1_noop_action", ph, timers, params, counters);

    for (std::uint64_t i = 0; i != sp.burst; ++i)
    {
        coal::parcel::parcel p;
        p.dest = 1 + static_cast<std::uint32_t>(i) % sp.destinations;
        p.action = alg1_noop_action::id();
        p.arguments = alg1_noop_action::make_arguments(i);
        handler.enqueue(std::move(p));
    }
    handler.flush();

    // Drain outbound send jobs through the scheduler's background work.
    for (int spin = 0; spin != 5000 && ph.pending_sends() != 0; ++spin)
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    ASSERT_EQ(ph.pending_sends(), 0u);
    sched.stop();
    ph.stop();

    std::lock_guard lock(sink.m);

    // Conservation: exactly burst parcels observed, exactly once.
    std::size_t total = 0;
    for (auto const& [dst, seq] : sink.order)
        total += seq.size();
    EXPECT_EQ(total, sp.burst);

    // FIFO per destination: sequence numbers strictly increasing.
    for (auto const& [dst, seq] : sink.order)
    {
        for (std::size_t i = 1; i < seq.size(); ++i)
            EXPECT_LT(seq[i - 1], seq[i])
                << "reorder at dst " << dst << " index " << i;
    }

    // Batch bound: no message exceeds nparcels (pass-through mode sends
    // singletons).
    std::size_t const bound =
        coalescing_params{sp.nparcels, sp.interval_us}.coalescing_enabled() ?
        sp.nparcels :
        1;
    for (auto const s : sink.batch_sizes)
    {
        EXPECT_LE(s, bound);
        EXPECT_GE(s, 1u);
    }

    // Counter algebra.
    EXPECT_EQ(counters->parcels(), sp.burst);
    EXPECT_EQ(counters->parcels_in_messages(), sp.burst);
    EXPECT_EQ(counters->messages(), sink.batch_sizes.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, Algorithm1Property,
    ::testing::Values(
        // nparcels, interval_us, burst, destinations
        sweep_params{1, 4000, 100, 1},        // disabled by nparcels
        sweep_params{4, 0, 100, 1},           // disabled by interval
        sweep_params{2, 100000, 101, 1},      // odd tail parcel
        sweep_params{4, 100000, 64, 1},       // exact batches
        sweep_params{4, 100000, 67, 1},       // partial tail
        sweep_params{16, 100000, 1000, 1},
        sweep_params{128, 100000, 1000, 1},   // large batches, big tail
        sweep_params{1000, 100000, 10, 1},    // nothing fills; flush only
        sweep_params{4, 100000, 500, 3},      // multiple destinations
        sweep_params{8, 100000, 777, 5},
        sweep_params{32, 50, 2000, 2},        // timer races queue-full
        sweep_params{2, 50, 500, 4}),
    [](auto const& param_info) {
        auto const& p = param_info.param;
        return "n" + std::to_string(p.nparcels) + "_i" +
            std::to_string(p.interval_us) + "_b" + std::to_string(p.burst) +
            "_d" + std::to_string(p.destinations);
    });

}    // namespace
