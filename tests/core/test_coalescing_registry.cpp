// Coalescing registry: enable/disable per action, response siblings,
// shared live parameters, and the static defaults table behind
// COAL_ACTION_USES_MESSAGE_COALESCING.

#include <coal/core/coalescing_registry.hpp>

#include <coal/core/coalescing_defaults.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <gtest/gtest.h>

namespace {

void creg_action(int)
{
}

void creg_macro_action_fn(int)
{
}

}    // namespace

COAL_PLAIN_ACTION(creg_action, creg_action_type);
COAL_PLAIN_ACTION(creg_macro_action_fn, creg_macro_action_type);
COAL_ACTION_USES_MESSAGE_COALESCING_PARAMS(creg_macro_action_type, 32, 2500);

namespace {

using coal::coalescing::coalescing_defaults;
using coal::coalescing::coalescing_params;
using coal::coalescing::coalescing_registry;
using coal::net::loopback_transport;
using coal::parcel::make_response_id;
using coal::parcel::parcelhandler;
using coal::threading::scheduler;
using coal::threading::scheduler_config;
using coal::timing::deadline_timer_service;

struct registry_harness
{
    registry_harness()
      : transport(2)
      , sched(cfg())
      , ph(0, transport, sched)
      , registry(ph, timers)
    {
    }

    ~registry_harness()
    {
        ph.stop();
        sched.stop();
    }

    static scheduler_config cfg()
    {
        scheduler_config c;
        c.num_workers = 1;
        return c;
    }

    loopback_transport transport;
    scheduler sched;
    parcelhandler ph;
    deadline_timer_service timers;
    coalescing_registry registry;
};

TEST(CoalescingRegistry, EnableInstallsRequestAndResponseHandlers)
{
    registry_harness h;
    ASSERT_TRUE(h.registry.enable("creg_action_type", {8, 1000}));

    EXPECT_NE(h.ph.message_handler_for(creg_action_type::id()), nullptr);
    EXPECT_NE(h.ph.message_handler_for(
                  make_response_id(creg_action_type::id())),
        nullptr);
    auto const actions = h.registry.coalesced_actions();
    EXPECT_NE(std::find(actions.begin(), actions.end(), "creg_action_type"),
        actions.end());
}

TEST(CoalescingRegistry, EnableWithoutResponses)
{
    registry_harness h;
    ASSERT_TRUE(h.registry.enable("creg_action_type", {8, 1000},
        /*include_responses=*/false));
    EXPECT_NE(h.ph.message_handler_for(creg_action_type::id()), nullptr);
    EXPECT_EQ(h.ph.message_handler_for(
                  make_response_id(creg_action_type::id())),
        nullptr);
}

TEST(CoalescingRegistry, EnableUnknownActionFails)
{
    registry_harness h;
    EXPECT_FALSE(h.registry.enable("no_such_action", {8, 1000}));
}

TEST(CoalescingRegistry, ParamsReadBack)
{
    registry_harness h;
    coalescing_params p{16, 3000, 4096};
    h.registry.enable("creg_action_type", p);
    auto const q = h.registry.params("creg_action_type");
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, p);
    EXPECT_FALSE(h.registry.params("other").has_value());
}

TEST(CoalescingRegistry, SetParamsSharedBetweenRequestAndResponse)
{
    registry_harness h;
    h.registry.enable("creg_action_type", {8, 1000});
    ASSERT_TRUE(h.registry.set_params("creg_action_type", {64, 9000}));

    auto request = h.registry.handler("creg_action_type");
    ASSERT_NE(request, nullptr);
    EXPECT_EQ(request->params().nparcels, 64u);

    // The response handler sees the same cell.
    auto response_handler = std::static_pointer_cast<
        coal::coalescing::coalescing_message_handler>(
        h.ph.message_handler_for(
            make_response_id(creg_action_type::id())));
    ASSERT_NE(response_handler, nullptr);
    EXPECT_EQ(response_handler->params().nparcels, 64u);
    EXPECT_EQ(response_handler->params().interval_us, 9000);
}

TEST(CoalescingRegistry, SetParamsWithoutEnableFails)
{
    registry_harness h;
    EXPECT_FALSE(h.registry.set_params("creg_action_type", {4, 100}));
}

TEST(CoalescingRegistry, DisableUninstallsButKeepsCounters)
{
    registry_harness h;
    h.registry.enable("creg_action_type", {8, 1000});
    auto counters = h.registry.counters("creg_action_type");
    ASSERT_NE(counters, nullptr);

    ASSERT_TRUE(h.registry.disable("creg_action_type"));
    EXPECT_EQ(h.ph.message_handler_for(creg_action_type::id()), nullptr);
    EXPECT_EQ(h.registry.counters("creg_action_type"), counters);
    EXPECT_TRUE(h.registry.coalesced_actions().empty());

    EXPECT_FALSE(h.registry.disable("never_enabled"));
}

TEST(CoalescingRegistry, ReEnableKeepsCountersAndUpdatesParams)
{
    registry_harness h;
    h.registry.enable("creg_action_type", {8, 1000});
    auto counters_before = h.registry.counters("creg_action_type");
    h.registry.disable("creg_action_type");

    h.registry.enable("creg_action_type", {32, 5000});
    EXPECT_EQ(h.registry.counters("creg_action_type"), counters_before);
    EXPECT_EQ(h.registry.params("creg_action_type")->nparcels, 32u);
}

TEST(CoalescingRegistry, QueuedParcelsAggregates)
{
    registry_harness h;
    h.registry.enable("creg_action_type", {100, 1000000});

    coal::parcel::parcel p;
    p.dest = 1;
    p.action = creg_action_type::id();
    p.arguments = creg_action_type::make_arguments(1);

    auto handler = h.ph.message_handler_for(creg_action_type::id());
    for (int i = 0; i != 5; ++i)
    {
        auto copy = p;
        handler->enqueue(std::move(copy));
    }
    EXPECT_EQ(h.registry.queued_parcels(), 5u);

    h.registry.flush_all();
    EXPECT_EQ(h.registry.queued_parcels(), 0u);
}

TEST(CoalescingDefaults, MacroRegistersEntry)
{
    auto const entries = coalescing_defaults::instance().entries();
    auto it = std::find_if(entries.begin(), entries.end(),
        [](auto const& e) {
            return e.action_name == "creg_macro_action_type";
        });
    ASSERT_NE(it, entries.end());
    EXPECT_EQ(it->params.nparcels, 32u);
    EXPECT_EQ(it->params.interval_us, 2500);
    EXPECT_TRUE(it->include_responses);
}

TEST(CoalescingDefaults, AddUpdatesExistingEntry)
{
    auto& defaults = coalescing_defaults::instance();
    defaults.add("creg_test_temp", {4, 100});
    defaults.add("creg_test_temp", {9, 900}, false);

    auto const entries = defaults.entries();
    int matches = 0;
    for (auto const& e : entries)
    {
        if (e.action_name == "creg_test_temp")
        {
            ++matches;
            EXPECT_EQ(e.params.nparcels, 9u);
            EXPECT_FALSE(e.include_responses);
        }
    }
    EXPECT_EQ(matches, 1);
}

TEST(CoalescingParams, EnabledPredicate)
{
    EXPECT_TRUE((coalescing_params{2, 1}).coalescing_enabled());
    EXPECT_FALSE((coalescing_params{1, 1000}).coalescing_enabled());
    EXPECT_FALSE((coalescing_params{0, 1000}).coalescing_enabled());
    EXPECT_FALSE((coalescing_params{16, 0}).coalescing_enabled());
    EXPECT_FALSE((coalescing_params{16, -5}).coalescing_enabled());
}

}    // namespace
