// The coalescing message handler — Algorithm 1 behaviour:
// queue-full flush, timeout flush, sparse-traffic bypass, max-buffer cap,
// live parameter changes, epoch-based timer race resolution.

#include <coal/core/coalescing_message_handler.hpp>

#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/parcel/parcelhandler.hpp>
#include <coal/threading/scheduler.hpp>
#include <coal/timing/deadline_timer.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace {

std::atomic<int> g_cmh_hits{0};

void cmh_target(int)
{
    ++g_cmh_hits;
}

}    // namespace

COAL_PLAIN_ACTION(cmh_target, cmh_target_action);

namespace {

using coal::coalescing::coalescing_counters;
using coal::coalescing::coalescing_message_handler;
using coal::coalescing::coalescing_params;
using coal::coalescing::shared_params;
using coal::net::loopback_transport;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::threading::scheduler;
using coal::threading::scheduler_config;
using coal::timing::deadline_timer_service;

struct handler_harness
{
    explicit handler_harness(coalescing_params params)
      : transport(2)
      , sched0(cfg())
      , sched1(cfg())
      , ph0(0, transport, sched0)
      , ph1(1, transport, sched1)
      , shared(std::make_shared<shared_params>(params))
      , counters(std::make_shared<coalescing_counters>())
      , handler("cmh_target_action", ph0, timers, shared, counters)
    {
        g_cmh_hits = 0;
    }

    ~handler_harness()
    {
        settle();
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config cfg()
    {
        scheduler_config c;
        c.num_workers = 1;
        c.idle_sleep_us = 50;
        return c;
    }

    void settle()
    {
        // Wall-clock deadline, not an iteration count: under parallel
        // test load each sleep can stretch far past its nominal duration.
        auto const deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(15);
        while (std::chrono::steady_clock::now() < deadline)
        {
            if (ph0.pending_sends() == 0 && ph1.pending_receives() == 0 &&
                sched1.pending_tasks() == 0)
                return;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }

    parcel make_parcel(std::size_t payload = 8)
    {
        parcel p;
        p.source = 0;
        p.dest = 1;
        p.action = cmh_target_action::id();
        p.continuation = 0;
        p.arguments = cmh_target_action::make_arguments(1);
        if (payload > p.arguments.size())
        {
            auto padded = p.arguments.to_vector();
            padded.resize(payload);
            p.arguments = padded;
        }
        return p;
    }

    std::uint64_t wire_messages()
    {
        return transport.stats().messages_sent;
    }

    loopback_transport transport;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
    deadline_timer_service timers;
    std::shared_ptr<shared_params> shared;
    std::shared_ptr<coalescing_counters> counters;
    coalescing_message_handler handler;
};

coalescing_params params(std::size_t n, std::int64_t interval_us,
    std::size_t max_bytes = 1 << 20)
{
    coalescing_params p;
    p.nparcels = n;
    p.interval_us = interval_us;
    p.max_buffer_bytes = max_bytes;
    return p;
}

TEST(CoalescingHandler, QueueFullTriggersFlush)
{
    handler_harness h(params(4, 1000000));    // timer far away

    for (int i = 0; i != 4; ++i)
        h.handler.enqueue(h.make_parcel());
    h.settle();

    EXPECT_EQ(h.wire_messages(), 1u);
    EXPECT_EQ(h.handler.queued_parcels(), 0u);
    EXPECT_EQ(h.handler.size_flushes(), 1u);
    EXPECT_EQ(h.handler.timer_flushes(), 0u);
    EXPECT_EQ(h.counters->parcels(), 4u);
    EXPECT_EQ(h.counters->messages(), 1u);
    EXPECT_DOUBLE_EQ(h.counters->average_parcels_per_message(), 4.0);
}

TEST(CoalescingHandler, PartialBatchFlushedByTimer)
{
    handler_harness h(params(100, 10000));    // 10 ms timer

    for (int i = 0; i != 7; ++i)
        h.handler.enqueue(h.make_parcel());
    EXPECT_EQ(h.handler.queued_parcels(), 7u);
    EXPECT_EQ(h.wire_messages(), 0u);

    // Wait for the flush timer.
    for (int i = 0; i != 200 && h.handler.queued_parcels() != 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    h.settle();

    EXPECT_EQ(h.handler.queued_parcels(), 0u);
    EXPECT_EQ(h.wire_messages(), 1u);
    EXPECT_EQ(h.handler.timer_flushes(), 1u);
    EXPECT_EQ(g_cmh_hits.load(), 7);
}

TEST(CoalescingHandler, DisabledByNparcelsOnePassesThrough)
{
    handler_harness h(params(1, 4000));
    for (int i = 0; i != 5; ++i)
        h.handler.enqueue(h.make_parcel());
    h.settle();
    EXPECT_EQ(h.wire_messages(), 5u);
    EXPECT_EQ(h.counters->messages(), 5u);
    EXPECT_DOUBLE_EQ(h.counters->average_parcels_per_message(), 1.0);
}

TEST(CoalescingHandler, DisabledByZeroIntervalPassesThrough)
{
    handler_harness h(params(64, 0));
    for (int i = 0; i != 5; ++i)
        h.handler.enqueue(h.make_parcel());
    h.settle();
    EXPECT_EQ(h.wire_messages(), 5u);
}

TEST(CoalescingHandler, SparseTrafficBypassesQueue)
{
    // Interval 1000 µs; parcels arrive 5 ms apart -> tslp > interval with
    // an empty queue -> direct send, no timer latency added.
    handler_harness h(params(64, 1000));

    h.handler.enqueue(h.make_parcel());    // first parcel: queued (no gap)
    for (int i = 0; i != 3; ++i)
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        h.handler.enqueue(h.make_parcel());
    }
    h.settle();

    // First parcel: flushed by its timer after 1 ms.  The three sparse
    // parcels: sent directly.
    EXPECT_EQ(h.wire_messages(), 4u);
    EXPECT_EQ(h.handler.queued_parcels(), 0u);
}

TEST(CoalescingHandler, MaxBufferBytesForcesEarlyFlush)
{
    // Parcels of ~1 KiB payload; cap at 3 KiB -> flush every ~3 parcels
    // even though nparcels allows 100.
    handler_harness h(params(100, 1000000, 3 * 1024));
    for (int i = 0; i != 12; ++i)
        h.handler.enqueue(h.make_parcel(1024));
    h.handler.flush();
    h.settle();

    EXPECT_GE(h.wire_messages(), 4u);
    EXPECT_EQ(g_cmh_hits.load(), 12);
}

TEST(CoalescingHandler, ExplicitFlushSendsEverything)
{
    handler_harness h(params(1000, 1000000));
    for (int i = 0; i != 33; ++i)
        h.handler.enqueue(h.make_parcel());
    EXPECT_EQ(h.handler.queued_parcels(), 33u);

    h.handler.flush();
    h.settle();
    EXPECT_EQ(h.handler.queued_parcels(), 0u);
    EXPECT_EQ(h.wire_messages(), 1u);
    EXPECT_EQ(g_cmh_hits.load(), 33);
}

TEST(CoalescingHandler, FlushOnEmptyQueueIsNoop)
{
    handler_harness h(params(10, 1000));
    h.handler.flush();
    EXPECT_EQ(h.wire_messages(), 0u);
}

TEST(CoalescingHandler, LiveParameterChangeTakesEffect)
{
    handler_harness h(params(100, 1000000));
    for (int i = 0; i != 5; ++i)
        h.handler.enqueue(h.make_parcel());
    EXPECT_EQ(h.handler.queued_parcels(), 5u);

    // Shrink nparcels to 6: the next parcel completes a batch.
    h.handler.set_params(params(6, 1000000));
    h.handler.enqueue(h.make_parcel());
    h.settle();
    EXPECT_EQ(h.wire_messages(), 1u);
    EXPECT_EQ(h.counters->average_parcels_per_message(), 6.0);
}

TEST(CoalescingHandler, NoDoubleFlushWhenTimerRacesQueueFull)
{
    // Tight timer and tight batches: every batch is a race between the
    // timer thread and the enqueue path.  Conservation must hold.
    handler_harness h(params(2, 200));    // 200 µs timer, batches of 2

    constexpr int n = 2000;
    for (int i = 0; i != n; ++i)
        h.handler.enqueue(h.make_parcel());
    h.handler.flush();
    h.settle();

    EXPECT_EQ(g_cmh_hits.load(), n);
    EXPECT_EQ(h.counters->parcels(), static_cast<std::uint64_t>(n));
    // Parcels inside messages must also sum to n (no loss, no dup).
    EXPECT_EQ(h.counters->parcels_in_messages(), static_cast<std::uint64_t>(n));
}

TEST(CoalescingHandler, ConcurrentEnqueuersConserveParcels)
{
    handler_harness h(params(8, 500));
    constexpr int threads = 3;
    constexpr int per_thread = 1500;

    std::vector<std::thread> senders;
    for (int t = 0; t != threads; ++t)
    {
        senders.emplace_back([&h] {
            for (int i = 0; i != per_thread; ++i)
                h.handler.enqueue(h.make_parcel());
        });
    }
    for (auto& s : senders)
        s.join();
    h.handler.flush();
    h.settle();

    EXPECT_EQ(g_cmh_hits.load(), threads * per_thread);
    EXPECT_EQ(h.counters->parcels_in_messages(),
        static_cast<std::uint64_t>(threads) * per_thread);
}

TEST(CoalescingHandler, ArrivalStatisticsPopulated)
{
    handler_harness h(params(4, 100000));
    for (int i = 0; i != 8; ++i)
    {
        h.handler.enqueue(h.make_parcel());
        std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    h.settle();
    EXPECT_EQ(h.counters->gap_count(), 7u);
    EXPECT_GT(h.counters->average_arrival_us(), 0.0);

    auto const histogram = h.counters->arrival_histogram();
    std::int64_t total = 0;
    for (std::size_t i = 3; i < histogram.size(); ++i)
        total += histogram[i];
    EXPECT_EQ(total, 7);
}

}    // namespace
