// The toy application (Listing 1) driver: phase structure, measurement
// plumbing, per-phase parameter schedules (Fig. 9 machinery).

#include <coal/apps/toy_app.hpp>

#include <gtest/gtest.h>

namespace {

using coal::runtime;
using coal::runtime_config;
using coal::apps::run_toy_app;
using coal::apps::toy_params;

runtime_config loopback()
{
    runtime_config cfg;
    cfg.num_localities = 2;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

TEST(ToyApp, RunsAllPhasesAndReportsMetrics)
{
    runtime rt(loopback());
    toy_params params;
    params.parcels_per_phase = 300;
    params.phases = 3;
    params.coalescing = {16, 2000};

    auto const result = run_toy_app(rt, params);
    ASSERT_EQ(result.phases.size(), 3u);
    for (unsigned i = 0; i != 3; ++i)
    {
        EXPECT_EQ(result.phases[i].phase, i);
        EXPECT_EQ(result.phases[i].nparcels, 16u);
        EXPECT_GT(result.phases[i].metrics.duration_s, 0.0);
        // Both localities send 300 requests -> >= 1200 parcels executed
        // per phase (request + response on each side).  Tasks are fewer:
        // the batched receive pipeline executes remote parcels in chunks
        // of >= 8, so the floor is 1200 / 8.
        EXPECT_GE(result.phases[i].metrics.parcels_executed, 1200u);
        EXPECT_GE(result.phases[i].metrics.tasks, 1200u / 8);
    }
    EXPECT_GT(result.total_s, 0.0);
    rt.stop();
}

TEST(ToyApp, ActionNameIsRegistered)
{
    EXPECT_STREQ(coal::apps::toy_action_name(), "toy_get_cplx_action");
    EXPECT_NE(coal::parcel::action_registry::instance().find_by_name(
                  coal::apps::toy_action_name()),
        nullptr);
}

TEST(ToyApp, ToyFunctionMatchesListing1)
{
    auto const v = coal::apps::toy_get_cplx();
    EXPECT_DOUBLE_EQ(v.real(), 13.3);
    EXPECT_DOUBLE_EQ(v.imag(), -23.8);
}

TEST(ToyApp, CoalescingOffMeansOneParcelPerMessage)
{
    runtime rt(loopback());
    toy_params params;
    params.parcels_per_phase = 100;
    params.phases = 1;
    params.enable_coalescing = false;

    auto const result = run_toy_app(rt, params);
    ASSERT_EQ(result.phases.size(), 1u);
    EXPECT_EQ(result.phases[0].nparcels, 1u);
    rt.quiesce();
    // 100 requests + 100 responses per locality = 400 messages.
    EXPECT_EQ(rt.network().stats().messages_sent, 400u);
    rt.stop();
}

TEST(ToyApp, CoalescingOnReducesMessages)
{
    runtime rt(loopback());
    toy_params params;
    params.parcels_per_phase = 320;
    params.phases = 1;
    params.coalescing = {32, 5000};

    run_toy_app(rt, params);
    rt.quiesce();
    // 4×320 parcels total / 32 per message ≈ 40 + partial flush slack.
    EXPECT_LE(rt.network().stats().messages_sent, 80u);
    rt.stop();
}

TEST(ToyApp, ScheduleChangesParametersPerPhase)
{
    runtime rt(loopback());
    toy_params params;
    params.parcels_per_phase = 200;
    params.phases = 4;
    params.coalescing = {128, 2000};
    params.nparcels_schedule = {128, 1, 32};    // short: last entry sticks

    auto const result = run_toy_app(rt, params);
    ASSERT_EQ(result.phases.size(), 4u);
    EXPECT_EQ(result.phases[0].nparcels, 128u);
    EXPECT_EQ(result.phases[1].nparcels, 1u);
    EXPECT_EQ(result.phases[2].nparcels, 32u);
    EXPECT_EQ(result.phases[3].nparcels, 32u);
    rt.stop();
}

TEST(ToyApp, PhaseMetricsRecordMessageVolume)
{
    runtime rt(loopback());
    toy_params params;
    params.parcels_per_phase = 64;
    params.phases = 2;
    params.coalescing = {8, 2000};

    auto const result = run_toy_app(rt, params);
    for (auto const& phase : result.phases)
    {
        EXPECT_GT(phase.metrics.messages_sent, 0u);
        EXPECT_GT(phase.metrics.bytes_sent, 0u);
        EXPECT_GE(phase.metrics.network_overhead, 0.0);
    }
    rt.stop();
}

}    // namespace
