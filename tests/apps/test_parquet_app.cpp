// Parquet skeleton: communication volume matches the paper's formula
// (8·Nc² parcels of Nc elements per iteration), the checksum proves
// conservation under coalescing, and per-iteration metrics are recorded.

#include <coal/apps/parquet_app.hpp>

#include <gtest/gtest.h>

namespace {

using coal::runtime;
using coal::runtime_config;
using coal::apps::parquet_params;
using coal::apps::run_parquet_app;

runtime_config loopback(std::uint32_t localities = 4)
{
    runtime_config cfg;
    cfg.num_localities = localities;
    cfg.use_loopback = true;
    cfg.apply_coalescing_defaults = false;
    return cfg;
}

TEST(ParquetApp, ChecksumConservationWithCoalescing)
{
    runtime rt(loopback());
    parquet_params params;
    params.nc = 8;    // 512 parcels/iteration
    params.iterations = 2;
    params.coalescing = {4, 2000};
    params.compute_flops_per_parcel = 50;

    auto const result = run_parquet_app(rt, params);
    EXPECT_TRUE(result.checksum_ok)
        << "checksum error " << result.checksum_error;
    ASSERT_EQ(result.iterations.size(), 2u);
    rt.stop();
}

TEST(ParquetApp, ChecksumConservationWithoutCoalescing)
{
    runtime rt(loopback());
    parquet_params params;
    params.nc = 8;
    params.iterations = 1;
    params.enable_coalescing = false;
    params.compute_flops_per_parcel = 50;

    auto const result = run_parquet_app(rt, params);
    EXPECT_TRUE(result.checksum_ok);
    rt.stop();
}

TEST(ParquetApp, ParcelVolumeMatchesPaperFormula)
{
    runtime rt(loopback());
    parquet_params params;
    params.nc = 8;
    params.iterations = 1;
    params.enable_coalescing = false;
    params.compute_flops_per_parcel = 0;

    run_parquet_app(rt, params);
    rt.quiesce();

    // 8·Nc² request parcels + as many responses.
    auto const expected_requests = 8ull * params.nc * params.nc;
    EXPECT_EQ(rt.counters().query("/parcels/count/sent").value,
        static_cast<double>(2 * expected_requests));
    rt.stop();
}

TEST(ParquetApp, CumulativeTimesAreMonotone)
{
    runtime rt(loopback());
    parquet_params params;
    params.nc = 6;
    params.iterations = 3;
    params.coalescing = {4, 2000};
    params.compute_flops_per_parcel = 20;

    auto const result = run_parquet_app(rt, params);
    ASSERT_EQ(result.iterations.size(), 3u);
    double last = 0.0;
    for (auto const& iter : result.iterations)
    {
        EXPECT_GT(iter.cumulative_s, last);
        last = iter.cumulative_s;
        EXPECT_GT(iter.metrics.duration_s, 0.0);
        EXPECT_GT(iter.metrics.tasks, 0u);
    }
    rt.stop();
}

TEST(ParquetApp, WorksOnTwoLocalities)
{
    runtime rt(loopback(2));
    parquet_params params;
    params.nc = 6;
    params.iterations = 1;
    params.coalescing = {4, 2000};
    params.compute_flops_per_parcel = 20;

    auto const result = run_parquet_app(rt, params);
    EXPECT_TRUE(result.checksum_ok);
    rt.stop();
}

TEST(ParquetApp, ParcelsPerLocalityOverride)
{
    runtime rt(loopback());
    parquet_params params;
    params.nc = 8;
    params.iterations = 1;
    params.parcels_per_locality = 10;
    params.enable_coalescing = false;
    params.compute_flops_per_parcel = 0;

    run_parquet_app(rt, params);
    rt.quiesce();
    EXPECT_EQ(rt.counters().query("/parcels/count/sent").value,
        2.0 * 4 * 10);
    rt.stop();
}

TEST(ParquetApp, CoalescingReducesParquetMessages)
{
    std::uint64_t without = 0, with = 0;
    {
        runtime rt(loopback());
        parquet_params params;
        params.nc = 8;
        params.iterations = 1;
        params.enable_coalescing = false;
        params.compute_flops_per_parcel = 0;
        run_parquet_app(rt, params);
        rt.quiesce();
        without = rt.network().stats().messages_sent;
        rt.stop();
    }
    {
        runtime rt(loopback());
        parquet_params params;
        params.nc = 8;
        params.iterations = 1;
        params.coalescing = {4, 5000};
        params.compute_flops_per_parcel = 0;
        run_parquet_app(rt, params);
        rt.quiesce();
        with = rt.network().stats().messages_sent;
        rt.stop();
    }
    EXPECT_LT(with, without / 2);
}

}    // namespace
