// unique_function is the scheduler's task type; these tests pin down the
// move-only, SBO and lifetime behaviour the runtime depends on.

#include <coal/common/unique_function.hpp>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace {

using coal::unique_function;

TEST(UniqueFunction, EmptyIsFalsy)
{
    unique_function<void()> f;
    EXPECT_FALSE(f);
    unique_function<void()> g(nullptr);
    EXPECT_FALSE(g);
}

TEST(UniqueFunction, CallsLambda)
{
    int hits = 0;
    unique_function<void()> f([&] { ++hits; });
    ASSERT_TRUE(f);
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ReturnsValueAndTakesArguments)
{
    unique_function<int(int, int)> add([](int a, int b) { return a + b; });
    EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture)
{
    auto p = std::make_unique<int>(99);
    unique_function<int()> f([p = std::move(p)] { return *p; });
    EXPECT_EQ(f(), 99);
}

TEST(UniqueFunction, MoveTransfersOwnership)
{
    int hits = 0;
    unique_function<void()> a([&] { ++hits; });
    unique_function<void()> b(std::move(a));
    EXPECT_FALSE(a);    // NOLINT(bugprone-use-after-move) — testing it
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget)
{
    int first = 0, second = 0;
    unique_function<void()> a([&] { ++first; });
    unique_function<void()> b([&] { ++second; });
    b = std::move(a);
    b();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
}

TEST(UniqueFunction, SelfMoveAssignIsSafe)
{
    int hits = 0;
    unique_function<void()> f([&] { ++hits; });
    auto* alias = &f;
    f = std::move(*alias);
    ASSERT_TRUE(f);
    f();
    EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, LargeCaptureGoesToHeapAndWorks)
{
    // 256 bytes of captured state — far beyond the SBO buffer.
    std::array<std::uint64_t, 32> big{};
    big.fill(7);
    unique_function<std::uint64_t()> f([big] {
        std::uint64_t sum = 0;
        for (auto v : big)
            sum += v;
        return sum;
    });
    EXPECT_EQ(f(), 7u * 32u);

    unique_function<std::uint64_t()> g(std::move(f));
    EXPECT_EQ(g(), 7u * 32u);
}

TEST(UniqueFunction, DestructorRunsCaptureDestructors)
{
    auto counter = std::make_shared<int>(0);
    struct bump_on_destroy
    {
        std::shared_ptr<int> n;
        ~bump_on_destroy()
        {
            if (n)
                ++*n;
        }
        bump_on_destroy(std::shared_ptr<int> p)
          : n(std::move(p))
        {
        }
        bump_on_destroy(bump_on_destroy&&) = default;
        void operator()() const
        {
        }
    };
    {
        unique_function<void()> f(bump_on_destroy{counter});
        f();
        EXPECT_EQ(*counter, 0);
    }
    // Exactly one live instance was destroyed (moves must not double-run).
    EXPECT_EQ(*counter, 1);
}

TEST(UniqueFunction, ResetDestroysTarget)
{
    auto token = std::make_shared<int>(1);
    std::weak_ptr<int> watch = token;
    unique_function<void()> f([token = std::move(token)] {});
    EXPECT_FALSE(watch.expired());
    f.reset();
    EXPECT_TRUE(watch.expired());
    EXPECT_FALSE(f);
}

TEST(UniqueFunction, StoredInVector)
{
    std::vector<unique_function<int()>> tasks;
    for (int i = 0; i != 20; ++i)
        tasks.emplace_back([i] { return i * i; });
    // Force reallocation moves.
    tasks.reserve(200);
    for (int i = 0; i != 20; ++i)
        EXPECT_EQ(tasks[static_cast<std::size_t>(i)](), i * i);
}

}    // namespace
