// Histogram tests — layout must match the HPX wire format the
// /coalescing/time/parcel-arrival-histogram counter reports.

#include <coal/common/histogram.hpp>

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace {

using coal::concurrent_histogram;
using coal::histogram;
using coal::histogram_params;

TEST(Histogram, BucketWidthRoundsUp)
{
    histogram_params p{0, 100, 30};
    EXPECT_EQ(p.bucket_width(), 4);    // ceil(100/30)
    histogram_params q{0, 90, 30};
    EXPECT_EQ(q.bucket_width(), 3);
}

TEST(Histogram, ValuesLandInCorrectBuckets)
{
    histogram h(histogram_params{0, 100, 10});    // width 10
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(99);

    auto const& buckets = h.buckets();
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[9], 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderflowAndOverflowFoldIntoEdges)
{
    histogram h(histogram_params{10, 20, 5});
    h.add(-100);
    h.add(9);
    h.add(20);
    h.add(1000000);
    auto const& buckets = h.buckets();
    EXPECT_EQ(buckets.front(), 2u);
    EXPECT_EQ(buckets.back(), 2u);
}

TEST(Histogram, SerializeLayoutIsMinMaxWidthCounts)
{
    histogram h(histogram_params{5, 25, 4});
    h.add(6);
    h.add(24);
    auto const wire = h.serialize();
    ASSERT_EQ(wire.size(), 3u + 4u);
    EXPECT_EQ(wire[0], 5);
    EXPECT_EQ(wire[1], 25);
    EXPECT_EQ(wire[2], 5);    // ceil(20/4)
    EXPECT_EQ(std::accumulate(wire.begin() + 3, wire.end(), std::int64_t{0}),
        2);
}

TEST(Histogram, ResetZeroesCounts)
{
    histogram h(histogram_params{0, 10, 2});
    h.add(1);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    for (auto c : h.buckets())
        EXPECT_EQ(c, 0u);
}

TEST(ConcurrentHistogram, CountsAreExactUnderContention)
{
    concurrent_histogram h(histogram_params{0, 1000, 10});
    constexpr int threads = 4;
    constexpr int per_thread = 25000;

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&h, t] {
            for (int i = 0; i != per_thread; ++i)
                h.add((t * 31 + i) % 1000);
        });
    }
    for (auto& w : workers)
        w.join();

    EXPECT_EQ(h.total(),
        static_cast<std::uint64_t>(threads) * per_thread);
    auto const wire = h.serialize();
    EXPECT_EQ(std::accumulate(wire.begin() + 3, wire.end(), std::int64_t{0}),
        static_cast<std::int64_t>(threads) * per_thread);
}

TEST(ConcurrentHistogram, SerializeMatchesSingleThreadedReference)
{
    histogram_params const p{0, 100, 10};
    concurrent_histogram ch(p);
    histogram h(p);
    for (int i = -10; i != 150; ++i)
    {
        ch.add(i);
        h.add(i);
    }
    EXPECT_EQ(ch.serialize(), h.serialize());
}

}    // namespace
