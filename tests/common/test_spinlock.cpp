#include <coal/common/spinlock.hpp>

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace {

using coal::spinlock;

TEST(Spinlock, BasicLockUnlock)
{
    spinlock lock;
    lock.lock();
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(Spinlock, TryLockFailsWhenHeld)
{
    spinlock lock;
    lock.lock();
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(Spinlock, WorksWithLockGuard)
{
    spinlock lock;
    {
        std::lock_guard guard(lock);
        EXPECT_FALSE(lock.try_lock());
    }
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

TEST(Spinlock, MutualExclusionUnderContention)
{
    spinlock lock;
    long long counter = 0;    // deliberately unprotected except by `lock`
    constexpr int threads = 4;
    constexpr int per_thread = 50000;

    std::vector<std::thread> workers;
    for (int t = 0; t != threads; ++t)
    {
        workers.emplace_back([&] {
            for (int i = 0; i != per_thread; ++i)
            {
                std::lock_guard guard(lock);
                ++counter;
            }
        });
    }
    for (auto& w : workers)
        w.join();

    EXPECT_EQ(counter, static_cast<long long>(threads) * per_thread);
}

}    // namespace
