#include <coal/common/config.hpp>

#include <gtest/gtest.h>

#include <cstdlib>

namespace {

using coal::config;
using coal::parse_bool;

TEST(Config, DefaultsWhenMissing)
{
    config c;
    EXPECT_FALSE(c.contains("foo"));
    EXPECT_EQ(c.get_string("foo", "bar"), "bar");
    EXPECT_EQ(c.get_int("foo", 7), 7);
    EXPECT_DOUBLE_EQ(c.get_double("foo", 1.5), 1.5);
    EXPECT_TRUE(c.get_bool("foo", true));
}

TEST(Config, SetAndGet)
{
    config c;
    c.set("a.b", "12");
    EXPECT_TRUE(c.contains("a.b"));
    EXPECT_EQ(c.get_int("a.b", 0), 12);
    c.set("a.b", "13");    // override
    EXPECT_EQ(c.get_int("a.b", 0), 13);
}

TEST(Config, TypedGetters)
{
    config c;
    c.set("i", "-42");
    c.set("d", "2.75");
    c.set("b1", "yes");
    c.set("b0", "off");
    c.set("junk", "not-a-number");

    EXPECT_EQ(c.get_int("i", 0), -42);
    EXPECT_DOUBLE_EQ(c.get_double("d", 0.0), 2.75);
    EXPECT_TRUE(c.get_bool("b1", false));
    EXPECT_FALSE(c.get_bool("b0", true));
    EXPECT_EQ(c.get_int("junk", 5), 5);
    EXPECT_DOUBLE_EQ(c.get_double("junk", 5.5), 5.5);
}

TEST(Config, ParseArgsSeparatesPositional)
{
    config c;
    char const* argv[] = {"prog", "alpha=1", "positional", "beta=two",
        "=weird"};
    auto const positional = c.parse_args(5, argv);

    EXPECT_EQ(c.get_int("alpha", 0), 1);
    EXPECT_EQ(c.get_string("beta", ""), "two");
    ASSERT_EQ(positional.size(), 2u);
    EXPECT_EQ(positional[0], "positional");
    EXPECT_EQ(positional[1], "=weird");
}

TEST(Config, EnvironmentImport)
{
    ::setenv("COAL_TEST_KEY_ONE", "99", 1);
    config c;
    c.load_environment();
    EXPECT_EQ(c.get_int("test.key.one", 0), 99);
    ::unsetenv("COAL_TEST_KEY_ONE");
}

TEST(Config, EntriesSorted)
{
    config c;
    c.set("zz", "1");
    c.set("aa", "2");
    auto const entries = c.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].first, "aa");
    EXPECT_EQ(entries[1].first, "zz");
}

TEST(ParseBool, AllSpellings)
{
    for (auto const* t : {"1", "true", "yes", "on", "TRUE", "Yes", "ON"})
        EXPECT_EQ(parse_bool(t), true) << t;
    for (auto const* f : {"0", "false", "no", "off", "FALSE", "No", "OFF"})
        EXPECT_EQ(parse_bool(f), false) << f;
    EXPECT_FALSE(parse_bool("maybe").has_value());
    EXPECT_FALSE(parse_bool("").has_value());
}

}    // namespace
