// mpmc_queue carries locality inboxes and outbound send jobs; the tests
// cover FIFO order, close() semantics and concurrent producer/consumer
// conservation.

#include <coal/common/mpmc_queue.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using coal::mpmc_queue;

TEST(MpmcQueue, FifoOrder)
{
    mpmc_queue<int> q;
    for (int i = 0; i != 10; ++i)
        EXPECT_TRUE(q.push(int{i}));
    for (int i = 0; i != 10; ++i)
    {
        auto v = q.try_pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueue, SizeAndEmpty)
{
    mpmc_queue<int> q;
    EXPECT_TRUE(q.empty());
    q.push(1);
    q.push(2);
    EXPECT_EQ(q.size(), 2u);
    q.try_pop();
    EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueue, PushAfterCloseFails)
{
    mpmc_queue<int> q;
    q.push(1);
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(2));
    // Drain still works after close.
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
}

TEST(MpmcQueue, BlockingPopReturnsEmptyAfterCloseAndDrain)
{
    mpmc_queue<int> q;
    q.push(7);
    q.close();
    auto first = q.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 7);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, BlockingPopWakesOnClose)
{
    mpmc_queue<int> q;
    std::thread consumer([&] {
        auto v = q.pop();
        EXPECT_FALSE(v.has_value());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
    consumer.join();
}

TEST(MpmcQueue, MoveOnlyElements)
{
    mpmc_queue<std::unique_ptr<int>> q;
    q.push(std::make_unique<int>(5));
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 5);
}

TEST(MpmcQueue, ConcurrentConservation)
{
    mpmc_queue<int> q;
    constexpr int producers = 3;
    constexpr int consumers = 3;
    constexpr int per_producer = 20000;

    std::atomic<long long> consumed_sum{0};
    std::atomic<int> consumed_count{0};

    std::vector<std::thread> threads;
    for (int p = 0; p != producers; ++p)
    {
        threads.emplace_back([&q, p] {
            for (int i = 0; i != per_producer; ++i)
                q.push(p * per_producer + i);
        });
    }
    for (int c = 0; c != consumers; ++c)
    {
        threads.emplace_back([&] {
            while (true)
            {
                auto v = q.pop();
                if (!v)
                    return;
                consumed_sum.fetch_add(*v, std::memory_order_relaxed);
                consumed_count.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Join producers (first `producers` threads), then close.
    for (int p = 0; p != producers; ++p)
        threads[static_cast<std::size_t>(p)].join();
    q.close();
    for (int c = 0; c != consumers; ++c)
        threads[static_cast<std::size_t>(producers + c)].join();

    long long const n = static_cast<long long>(producers) * per_producer;
    EXPECT_EQ(consumed_count.load(), n);
    EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

}    // namespace
