#include <coal/common/stopwatch.hpp>

#include <gtest/gtest.h>

#include <thread>

namespace {

using coal::interval_accumulator;
using coal::now_ns;
using coal::now_us;
using coal::stopwatch;

TEST(Stopwatch, MonotonicClock)
{
    auto const a = now_ns();
    auto const b = now_ns();
    EXPECT_GE(b, a);
    EXPECT_GE(now_us(), a / 1000);
}

TEST(Stopwatch, MeasuresSleep)
{
    stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto const us = sw.elapsed_us();
    EXPECT_GE(us, 18000);
    EXPECT_LT(us, 2000000);    // sanity upper bound (loaded CI machine)
}

TEST(Stopwatch, RestartResets)
{
    stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sw.restart();
    EXPECT_LT(sw.elapsed_us(), 10000);
}

TEST(Stopwatch, UnitConversionsAgree)
{
    stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    auto const ns = sw.elapsed_ns();
    EXPECT_NEAR(sw.elapsed_ms(), static_cast<double>(ns) / 1e6, 5.0);
    EXPECT_NEAR(sw.elapsed_s(), static_cast<double>(ns) / 1e9, 0.005);
}

TEST(IntervalAccumulator, SumsOnlyActiveIntervals)
{
    interval_accumulator acc;
    acc.resume();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    acc.suspend();

    auto const after_first = acc.total_ns();
    EXPECT_GE(after_first, 8000000);

    // Suspended time must not count.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(acc.total_ns(), after_first);

    acc.resume();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    acc.suspend();
    EXPECT_GT(acc.total_ns(), after_first);

    acc.reset();
    EXPECT_EQ(acc.total_ns(), 0);
}

}    // namespace
