// Unit tests for the statistics helpers the evaluation harness relies on
// (Pearson correlation is how the paper quantifies Figs. 4 and 7).

#include <coal/common/stats.hpp>

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

namespace {

using coal::fit_line;
using coal::mean_of;
using coal::median_of;
using coal::pearson_correlation;
using coal::running_stats;

TEST(RunningStats, EmptyIsZero)
{
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.relative_stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    running_stats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments)
{
    running_stats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 7: sum of squared deviations is 32.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, RelativeStddevMatchesDefinition)
{
    running_stats s;
    for (double x : {10.0, 11.0, 9.0, 10.0})
        s.add(x);
    EXPECT_NEAR(s.relative_stddev(), s.stddev() / s.mean(), 1e-15);
}

TEST(RunningStats, ResetClearsEverything)
{
    running_stats s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential)
{
    std::mt19937 rng(7);
    std::normal_distribution<double> dist(5.0, 2.0);

    running_stats all, a, b;
    for (int i = 0; i != 1000; ++i)
    {
        double const x = dist(rng);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    running_stats a, b;
    a.add(3.0);
    a.merge(b);    // no-op
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);    // adopts
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Pearson, PerfectPositive)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    std::vector<double> x{1, 2, 3};
    std::vector<double> y{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Pearson, TooShortIsZero)
{
    std::vector<double> x{1};
    std::vector<double> y{2};
    EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Pearson, InvariantUnderAffineTransform)
{
    std::vector<double> x{1.0, 4.0, 2.0, 8.0, 5.0, 7.0};
    std::vector<double> y{2.0, 5.0, 3.0, 9.0, 4.0, 8.0};
    double const r = pearson_correlation(x, y);

    std::vector<double> x2 = x, y2 = y;
    for (auto& v : x2)
        v = 3.0 * v + 11.0;
    for (auto& v : y2)
        v = 0.5 * v - 2.0;
    EXPECT_NEAR(pearson_correlation(x2, y2), r, 1e-12);
}

TEST(Pearson, NoisyLinearIsStrong)
{
    std::mt19937 rng(13);
    std::normal_distribution<double> noise(0.0, 0.1);
    std::vector<double> x, y;
    for (int i = 0; i != 200; ++i)
    {
        double const v = static_cast<double>(i) / 100.0;
        x.push_back(v);
        y.push_back(2.0 * v + noise(rng));
    }
    EXPECT_GT(pearson_correlation(x, y), 0.95);
}

TEST(FitLine, RecoversSlopeAndIntercept)
{
    std::vector<double> x{0, 1, 2, 3, 4};
    std::vector<double> y{1, 3, 5, 7, 9};    // y = 2x + 1
    auto const fit = fit_line(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
}

TEST(FitLine, DegenerateInputs)
{
    std::vector<double> x{1, 1, 1};
    std::vector<double> y{1, 2, 3};
    auto const fit = fit_line(x, y);
    EXPECT_DOUBLE_EQ(fit.slope, 0.0);
    EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(MeanMedian, Basics)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
    EXPECT_DOUBLE_EQ(median_of(xs), 3.0);
    EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
    EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

}    // namespace
