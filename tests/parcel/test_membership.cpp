// Peer-liveness / epoched-membership layer: idle-link heartbeats, the
// phi-accrual failure detector (suspicion escalation and recovery),
// peer-death fencing through the unified delivery-failure path, the
// local-crash chaos hooks, and exactly-once semantics across incarnation
// epochs (ghost frames from a dead incarnation never execute).

#include <coal/parcel/parcelhandler.hpp>

#include <coal/common/stopwatch.hpp>
#include <coal/net/faulty_transport.hpp>
#include <coal/net/loopback.hpp>
#include <coal/parcel/action.hpp>
#include <coal/threading/scheduler.hpp>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace {

std::atomic<int> g_mem_sum{0};

int mem_record(int x)
{
    g_mem_sum += x;
    return x;
}

}    // namespace

COAL_PLAIN_ACTION(mem_record, mem_record_action);

namespace {

using coal::net::blackout_window;
using coal::net::fault_plan;
using coal::net::faulty_transport;
using coal::net::loopback_transport;
using coal::parcel::delivery_error;
using coal::parcel::frame_header;
using coal::parcel::membership_params;
using coal::parcel::parcel;
using coal::parcel::parcelhandler;
using coal::parcel::peer_status;
using coal::parcel::reliability_params;
using coal::threading::scheduler;
using coal::threading::scheduler_config;

reliability_params fast_reliability()
{
    reliability_params rel;
    rel.enabled = true;
    rel.ack_delay_us = 100;
    rel.min_rto_us = 500;
    rel.max_rto_us = 20000;
    return rel;
}

// Timescales compressed ~10x against the defaults so a death verdict
// arrives in tens of milliseconds instead of seconds.
membership_params fast_membership()
{
    membership_params m;
    m.enabled = true;
    m.heartbeat_interval_us = 2000;
    m.probe_interval_us = 10000;
    m.suspect_phi = 3.0;
    m.dead_phi = 8.0;
    m.min_dead_us = 50000;
    return m;
}

// Two-locality harness with the membership layer on and a per-cause
// record of everything the delivery-error handler on locality 0 saw.
struct membership_harness
{
    explicit membership_harness(fault_plan plan,
        membership_params mem = fast_membership(),
        reliability_params rel = fast_reliability())
      : inner(2)
      , faulty(inner, plan)
      , sched0(make_cfg())
      , sched1(make_cfg())
      , ph0(0, faulty, sched0, rel, {}, mem)
      , ph1(1, faulty, sched1, rel, {}, mem)
    {
        g_mem_sum = 0;
        ph0.set_delivery_error_handler([this](delivery_error err, parcel&&) {
            switch (err)
            {
            case delivery_error::shed_overload:
                shed0.fetch_add(1);
                break;
            case delivery_error::link_down:
                link_down0.fetch_add(1);
                break;
            case delivery_error::peer_failed:
                peer_failed0.fetch_add(1);
                break;
            }
        });
    }

    ~membership_harness()
    {
        ph0.stop();
        ph1.stop();
        sched0.stop();
        sched1.stop();
    }

    static scheduler_config make_cfg()
    {
        scheduler_config cfg;
        cfg.num_workers = 1;
        cfg.idle_sleep_us = 50;
        return cfg;
    }

    void put(parcelhandler& ph, std::uint32_t dst, int arg)
    {
        parcel p;
        p.dest = dst;
        p.action = mem_record_action::id();
        p.arguments = mem_record_action::make_arguments(arg);
        ph.put_parcel(std::move(p));
    }

    // Spin until `cond` holds; fail the test on deadline.  Membership
    // verdicts need real time (silence accrual, probe intervals), so the
    // deadline is generous — a healthy run exits in milliseconds.
    template <typename Cond>
    void wait_for(Cond&& cond, char const* what, double deadline_ms = 20000.0)
    {
        coal::stopwatch deadline;
        while (deadline.elapsed_ms() < deadline_ms)
        {
            if (cond())
                return;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        FAIL() << "timed out waiting for: " << what;
    }

    loopback_transport inner;
    faulty_transport faulty;
    scheduler sched0, sched1;
    parcelhandler ph0, ph1;
    std::atomic<std::uint64_t> shed0{0};
    std::atomic<std::uint64_t> link_down0{0};
    std::atomic<std::uint64_t> peer_failed0{0};
};

TEST(Membership, HeartbeatsKeepIdleLinkAlive)
{
    membership_harness h(fault_plan{});

    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 1; }, "delivery");

    // A long idle window (many heartbeat intervals, well past the
    // suspicion threshold for a silent link): heartbeats must keep both
    // verdicts at alive.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(h.ph0.peer_liveness(1), peer_status::alive);
    EXPECT_EQ(h.ph1.peer_liveness(0), peer_status::alive);
    EXPECT_GT(h.ph0.counters().heartbeats_sent.load(), 0u);
    EXPECT_GT(h.ph1.counters().heartbeats_sent.load(), 0u);
    EXPECT_EQ(h.ph0.counters().peers_suspected.load(), 0u);
    EXPECT_EQ(h.ph0.counters().peers_declared_dead.load(), 0u);
    EXPECT_EQ(h.ph0.health().suspected_peers, 0u);
    EXPECT_EQ(h.ph0.health().dead_peers, 0u);
}

TEST(Membership, SuspicionHealsWithoutDeathWhenBlackoutIsShort)
{
    // Both directions dark for 60 ms: far past the suspicion threshold
    // (~6 ms of silence) but the death floor is pushed out to 400 ms, so
    // the verdict must escalate to suspected and then heal back to alive
    // without ever fencing the peer.
    fault_plan plan;
    for (std::uint32_t src : {0u, 1u})
    {
        blackout_window w;
        w.src = src;
        w.dst = 1 - src;
        w.end_us = 60'000;
        plan.blackouts.push_back(w);
    }
    membership_params mem = fast_membership();
    mem.min_dead_us = 400000;
    membership_harness h(plan, mem);

    // First frame is eaten by the blackout; retransmission delivers it
    // after the window.  Meanwhile locality 0 knows peer 1 (it sent) and
    // hears nothing back — suspicion must trip.
    h.put(h.ph0, 1, 7);
    h.wait_for([&] { return h.ph0.peer_liveness(1) == peer_status::suspected; },
        "suspicion during blackout");
    EXPECT_GE(h.ph0.counters().peers_suspected.load(), 1u);
    EXPECT_EQ(h.ph0.health().suspected_peers, 1u);
    // A suspected link degrades exactly like an open breaker: the
    // coalescing layer bypasses batching for it.
    EXPECT_TRUE(h.ph0.link_degraded(1));

    // After the window the retransmits land, acks flow back, and the
    // suspicion must clear without a death verdict.
    h.wait_for(
        [&] {
            return g_mem_sum.load() == 7 &&
                h.ph0.peer_liveness(1) == peer_status::alive &&
                !h.ph0.link_degraded(1);
        },
        "recovery after blackout");
    EXPECT_EQ(h.ph0.counters().peers_declared_dead.load(), 0u);
    EXPECT_EQ(h.peer_failed0.load(), 0u);
    EXPECT_EQ(h.ph0.health().suspected_peers, 0u);

    // The healed link carries traffic normally again.
    for (int i = 0; i != 10; ++i)
        h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 17; }, "post-heal delivery");
}

TEST(Membership, PeerDeathFencesAllStateAndFailsParcels)
{
    membership_harness h(fault_plan{});

    // Establish contact, then the peer goes permanently dark.
    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 1; }, "initial delivery");
    h.faulty.kill_locality(1);

    // Parcels offered while the link is dark pile up in the retransmit
    // state until the detector declares death and fences them.
    constexpr int backlog = 20;
    for (int i = 0; i != backlog; ++i)
        h.put(h.ph0, 1, 1);

    h.wait_for([&] { return h.ph0.peer_liveness(1) == peer_status::dead; },
        "death verdict");
    EXPECT_GE(h.ph0.counters().peers_declared_dead.load(), 1u);
    EXPECT_EQ(h.ph0.health().dead_peers, 1u);

    // Every backlogged parcel surfaces as peer_failed — none vanish.
    h.wait_for(
        [&] {
            return h.peer_failed0.load() == static_cast<std::uint64_t>(backlog);
        },
        "backlog failed as peer_failed");

    // No per-peer state may remain for the dead peer: the tombstone
    // holds only the verdict and the fenced epoch.
    auto const dbg = h.ph0.debug_peer(1);
    EXPECT_TRUE(dbg.known);
    EXPECT_EQ(dbg.status, peer_status::dead);
    EXPECT_EQ(dbg.unacked_frames, 0u);
    EXPECT_EQ(dbg.held_frames, 0u);
    EXPECT_EQ(dbg.deferred_jobs, 0u);
    EXPECT_EQ(dbg.unacked_bytes, 0u);
    EXPECT_EQ(dbg.deferred_bytes, 0u);

    // put_parcel toward a dead peer fails fast, without queueing.
    h.put(h.ph0, 1, 1);
    EXPECT_EQ(h.peer_failed0.load(), static_cast<std::uint64_t>(backlog) + 1);
    EXPECT_EQ(h.ph0.counters().peer_failed_failures.load(),
        static_cast<std::uint64_t>(backlog) + 1);

    // Sender-side conservation: confirmed + failed + shed == offered.
    std::uint64_t const offered = 1 + backlog + 1;
    EXPECT_EQ(h.ph0.counters().parcels_confirmed.load() +
            h.peer_failed0.load() + h.link_down0.load() + h.shed0.load(),
        offered);
}

TEST(Membership, RestartedPeerRejoinsUnderNewEpoch)
{
    membership_harness h(fault_plan{});

    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 1; }, "initial delivery");

    // Hard crash of locality 1: wire dark first, then the parcel layer.
    h.faulty.kill_locality(1);
    h.ph1.simulate_crash();
    EXPECT_TRUE(h.ph1.crashed());

    h.wait_for([&] { return h.ph0.peer_liveness(1) == peer_status::dead; },
        "death verdict");

    // Restart under a fresh incarnation.  The epoch bumps before the
    // wire comes back so the first frame out already carries it.
    h.ph1.restart_incarnation();
    h.faulty.restart_locality(1);
    EXPECT_FALSE(h.ph1.crashed());
    EXPECT_EQ(h.ph1.epoch(), 2u);

    // Dead-peer probes discover the restart without application traffic:
    // the probe is addressed to the NEXT incarnation, which is exactly
    // the epoch the restarted peer came back under — it admits the probe
    // and its reply (a heartbeat carrying the new src_epoch) readmits it
    // at the prober.
    h.wait_for(
        [&] {
            return h.ph0.counters().peer_rejoins.load() >= 1 &&
                h.ph0.peer_liveness(1) == peer_status::alive;
        },
        "rejoin via probe");
    // A genuine restart needs no refutation — the epoch bump already
    // happened through restart_incarnation.
    EXPECT_EQ(h.ph1.counters().epoch_refutes.load(), 0u);
    EXPECT_EQ(h.ph0.debug_peer(1).epoch, 2u);
    EXPECT_EQ(h.ph0.health().dead_peers, 0u);

    // Delivery resumes to the new incarnation.
    auto const executed_before = h.ph1.counters().parcels_executed.load();
    for (int i = 0; i != 10; ++i)
        h.put(h.ph0, 1, 1);
    h.wait_for(
        [&] {
            return h.ph1.counters().parcels_executed.load() ==
                executed_before + 10;
        },
        "post-rejoin delivery");
}

TEST(Membership, GhostFramesFromDeadIncarnationNeverExecute)
{
    membership_harness h(fault_plan{});

    // Contact both ways, then locality 0 crashes and returns as epoch 2;
    // its first frame makes locality 1 adopt the new epoch.
    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 1; }, "initial delivery");
    h.ph0.simulate_crash();
    h.ph0.restart_incarnation();
    EXPECT_EQ(h.ph0.epoch(), 2u);
    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return h.ph1.debug_peer(0).epoch == 2; },
        "peer adopts epoch 2");

    // Forge a frame from the dead incarnation: src_epoch 1, correctly
    // addressed (dst_epoch matches), fresh sequence number.  It must be
    // discarded on the epoch check — never decoded, never executed.
    auto const executed_before = h.ph1.counters().parcels_executed.load();
    auto const stale_before = h.ph1.counters().stale_epoch_frames.load();
    parcel ghost;
    ghost.dest = 1;
    ghost.action = mem_record_action::id();
    ghost.arguments = mem_record_action::make_arguments(999);
    frame_header hdr;
    hdr.seq = 100;
    hdr.src_epoch = 1;
    hdr.dst_epoch = h.ph1.epoch();
    std::vector<parcel> ghosts;
    ghosts.push_back(std::move(ghost));
    h.faulty.send(0, 1, coal::parcel::encode_message(ghosts, hdr));

    h.wait_for(
        [&] {
            return h.ph1.counters().stale_epoch_frames.load() > stale_before;
        },
        "ghost frame discarded");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(h.ph1.counters().parcels_executed.load(), executed_before);
    EXPECT_EQ(g_mem_sum.load(), 2);    // the 999 never landed
}

TEST(Membership, FalseDeathHealsByEpochRefutation)
{
    // Asymmetric blackout: locality 1's frames toward 0 vanish for
    // 150 ms while everything from 0 still arrives.  Locality 0 declares
    // 1 dead — a false positive, 1 is alive and can hear 0 — and starts
    // probing the next incarnation.  Without refutation this wedges
    // forever: 0's probes keep refreshing 1's liveness view of 0, so 1
    // never fences its side and retransmits into 0's quarantine until
    // the end of time.  The refutation rule turns the poison probe into
    // a heal: 1 adopts the demanded epoch (a virtual restart), and once
    // the blackout lifts its frames carry the higher epoch, which 0
    // readmits through the ordinary rejoin path.
    fault_plan plan;
    blackout_window w;
    w.src = 1;
    w.dst = 0;
    w.end_us = 150'000;
    plan.blackouts.push_back(w);
    membership_harness h(plan);

    h.put(h.ph0, 1, 1);
    h.wait_for([&] { return g_mem_sum.load() == 1; }, "initial delivery");

    h.wait_for([&] { return h.ph0.peer_liveness(1) == peer_status::dead; },
        "false-positive death verdict");

    // The poison probe reaches 1 (that direction is clear): refute.
    h.wait_for([&] { return h.ph1.counters().epoch_refutes.load() >= 1; },
        "refutation");
    EXPECT_EQ(h.ph1.epoch(), 2u);
    EXPECT_FALSE(h.ph1.crashed());    // a virtual restart, not a crash

    // After the blackout the refuted incarnation is readmitted.
    h.wait_for(
        [&] {
            return h.ph0.counters().peer_rejoins.load() >= 1 &&
                h.ph0.peer_liveness(1) == peer_status::alive;
        },
        "rejoin under the refuted epoch");
    EXPECT_EQ(h.ph0.debug_peer(1).epoch, h.ph1.epoch());
    EXPECT_EQ(h.ph0.health().dead_peers, 0u);

    // The healed link carries traffic in both directions again.
    h.put(h.ph0, 1, 10);
    h.put(h.ph1, 0, 100);
    h.wait_for([&] { return g_mem_sum.load() == 111; }, "post-heal delivery");
}

TEST(Membership, CrashedLocalityFailsLocalPutsUntilRestart)
{
    membership_harness h(fault_plan{});

    h.ph0.simulate_crash();
    h.put(h.ph0, 1, 5);
    EXPECT_EQ(h.peer_failed0.load(), 1u);
    EXPECT_EQ(g_mem_sum.load(), 0);

    h.ph0.restart_incarnation();
    EXPECT_EQ(h.ph0.epoch(), 2u);
    h.put(h.ph0, 1, 5);
    h.wait_for([&] { return g_mem_sum.load() == 5; }, "post-restart delivery");
    // The receiver saw the fresh incarnation on first contact.
    EXPECT_EQ(h.ph1.debug_peer(0).epoch, 2u);
}

TEST(Membership, DisabledLayerStaysInert)
{
    membership_harness h(fault_plan{}, membership_params{});

    h.put(h.ph0, 1, 3);
    h.wait_for([&] { return g_mem_sum.load() == 3; }, "delivery");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    EXPECT_EQ(h.ph0.counters().heartbeats_sent.load(), 0u);
    EXPECT_EQ(h.ph0.counters().peers_suspected.load(), 0u);
    EXPECT_EQ(h.ph0.peer_liveness(1), peer_status::alive);
    EXPECT_EQ(h.ph0.health().suspected_peers, 0u);
    EXPECT_EQ(h.ph0.health().dead_peers, 0u);
}

}    // namespace
